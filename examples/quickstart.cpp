/**
 * @file
 * Quickstart: assemble a WISC program with wish branches by hand, run it
 * on the functional emulator and on the cycle-level out-of-order core,
 * and inspect the statistics.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "arch/emulator.hh"
#include "isa/assembler.hh"
#include "uarch/core.hh"

int
main()
{
    using namespace wisc;

    // A hand-written wish jump/join hammock (the paper's Figure 3c),
    // inside a loop over pseudo-random data. When the branch turns out
    // easy to predict the hardware follows the predictor; when it is
    // hard, the low-confidence mode executes both predicated arms and
    // never flushes.
    Program prog = assemble(R"(
        li r5, 0            ; i
        li r6, 12345        ; rng state
        li r4, 0            ; checksum
        loop:
        muli r6, r6, 1103515245
        addi r6, r6, 12345
        shri r7, r6, 16
        andi r7, r7, 1
        cmpi.eq p1, p2, r7, 0        ; hard-to-predict condition
        wish.jump p1, then_arm
        (p2) addi r4, r4, 1          ; else arm (predicated)
        (p2) muli r8, r4, 3
        (p2) add r4, r4, r8
        wish.join p2, join
        then_arm:
        (p1) addi r4, r4, 2          ; then arm (predicated)
        (p1) muli r9, r4, 5
        (p1) add r4, r4, r9
        join:
        addi r5, r5, 1
        cmpi.lt p3, p0, r5, 20000
        br p3, loop
        halt
    )");

    std::cout << "Program: " << prog.size() << " instructions\n";

    // 1. Functional reference run.
    Emulator emu;
    EmuResult fr = emu.run(prog);
    std::cout << "Emulator: " << fr.dynInsts << " instructions, result r4="
              << fr.resultReg << "\n";

    // 2. Timing runs: with and without wish-branch hardware.
    for (bool wish : {false, true}) {
        SimParams params;
        params.wishEnabled = wish;
        StatSet stats;
        SimResult r = simulate(prog, params, stats);
        std::cout << "\nTiming core (wish hardware "
                  << (wish ? "ON" : "OFF — hint bits ignored")
                  << "):\n  cycles=" << r.cycles
                  << "  IPC=" << r.ipc()
                  << "  flushes=" << stats.get("core.flushes")
                  << "\n  wish jump high/low conf: "
                  << stats.get("wish.jump.high.correct") +
                         stats.get("wish.jump.high.mispred")
                  << "/"
                  << stats.get("wish.jump.low.correct") +
                         stats.get("wish.jump.low.mispred")
                  << "\n";
    }

    std::cout << "\nWith wish hardware the hard branch runs as predicated "
                 "code (no flushes);\nwithout it, every misprediction "
                 "costs a ~30-cycle pipeline flush.\n";
    return 0;
}
