/**
 * @file
 * Using the compiler as a library: write a kernel against the
 * KernelBuilder API, let the driver produce all five Table-3 binary
 * variants (normal / BASE-DEF / BASE-MAX / wish jump-join / wish
 * jump-join-loop), verify they are architecturally equivalent, and race
 * them on the simulated machine.
 *
 * Build & run:  ./build/examples/custom_kernel
 */

#include <iostream>

#include "compiler/builder.hh"
#include "compiler/driver.hh"
#include "uarch/core.hh"

int
main()
{
    using namespace wisc;

    // A histogram-ish kernel: bucket pseudo-random values, with a
    // data-dependent hammock and a short variable-trip inner loop.
    KernelBuilder b;
    b.li(10, 0);     // i
    b.li(11, 30000); // n
    b.li(14, 2024);  // rng
    b.li(4, 0);      // checksum
    b.doWhileLoop(7, [&] {
        b.muli(14, 14, 69069);
        b.addi(14, 14, 1);
        b.shri(20, 14, 16);
        b.andi(20, 20, 255);

        b.cmpi(Opcode::CmpLtI, 1, 2, 20, 128);
        b.ifThenElse(
            1, 2,
            [&] { // small bucket
                b.muli(21, 20, 3);
                b.add(4, 4, 21);
                b.xori(4, 4, 0x1);
                b.addi(4, 4, 7);
                b.shli(22, 20, 1);
                b.add(4, 4, 22);
            },
            [&] { // large bucket
                b.muli(21, 20, 5);
                b.add(4, 4, 21);
                b.xori(4, 4, 0x2);
                b.addi(4, 4, 3);
                b.shri(22, 20, 1);
                b.add(4, 4, 22);
            });

        // Variable-trip tail loop: a wish-loop candidate.
        b.andi(23, 20, 3);
        b.addi(23, 23, 1);
        b.li(24, 0);
        b.doWhileLoop(3, [&] {
            b.add(4, 4, 24);
            b.addi(24, 24, 1);
            b.cmp(Opcode::CmpLt, 3, 0, 24, 23);
        });

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });
    IrFunction fn = b.finish();

    // Compile every variant (profiling runs the kernel functionally).
    auto variants = compileAllVariants(fn);
    std::cout << "Compiled " << variants.size() << " variants; "
              << "architectural equivalence: "
              << verifyVariantEquivalence(variants) << "/5 match\n\n";

    SimParams params;
    std::uint64_t baseCycles = 0;
    for (BinaryVariant v : kAllVariants) {
        StatSet stats;
        SimResult r = simulate(variants.at(v).program, params, stats);
        if (v == BinaryVariant::Normal)
            baseCycles = r.cycles;
        std::cout << "  " << variantName(v) << ": " << r.cycles
                  << " cycles ("
                  << static_cast<double>(r.cycles) /
                         static_cast<double>(baseCycles)
                  << "x), " << stats.get("core.flushes") << " flushes, "
                  << variants.at(v).staticWishBranches()
                  << " static wish branches\n";
    }
    return 0;
}
