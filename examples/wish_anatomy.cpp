/**
 * @file
 * Anatomy of a wish branch in the pipeline: renders pipeline diagrams
 * of the same hard-branch kernel (a) as a normal branch and (b) as a
 * wish jump in low-confidence mode, so you can *see* the flush on the
 * left and the predicated flow-through on the right.
 *
 * Build & run:  ./build/examples/wish_anatomy
 */

#include <iostream>

#include "isa/assembler.hh"
#include "uarch/core.hh"
#include "uarch/pipetrace.hh"

int
main()
{
    using namespace wisc;

    auto kernel = [](bool wish) {
        std::string br = wish ? "wish.jump p1, then_arm"
                              : "br p1, then_arm";
        std::string join = wish ? "wish.join p2, join" : "jmp join";
        return assemble(R"(
            li r5, 0
            li r6, 77777
            li r4, 0
            loop:
            muli r6, r6, 1103515245
            addi r6, r6, 12345
            shri r7, r6, 16
            andi r7, r7, 1
            cmpi.eq p1, p2, r7, 0
            )" + br + R"(
            (p2) addi r4, r4, 1
            (p2) muli r8, r4, 3
            (p2) add r4, r4, r8
            (p2) xori r4, r4, 5
            (p2) addi r4, r4, 2
            (p2) addi r4, r4, 3
            )" + join + R"(
            then_arm:
            (p1) addi r4, r4, 2
            (p1) muli r9, r4, 5
            (p1) add r4, r4, r9
            (p1) xori r4, r4, 7
            (p1) addi r4, r4, 4
            (p1) addi r4, r4, 1
            join:
            addi r5, r5, 1
            cmpi.lt p3, p0, r5, 3000
            br p3, loop
            halt
        )");
    };

    for (bool wish : {false, true}) {
        Program p = kernel(wish);
        SimParams params;
        StatSet stats;
        PipeTracer tracer(400);
        Core core(params, stats);
        core.addSink(&tracer);
        SimResult r = core.run(p);

        std::cout << "\n==== " << (wish ? "WISH JUMP/JOIN" : "NORMAL BRANCH")
                  << " ====  cycles=" << r.cycles
                  << "  flushes=" << stats.get("core.flushes") << "\n\n";
        // Show a window past the warm-up so the steady state is visible.
        tracer.render(std::cout, 300, 34);
    }

    std::cout << "\nOn the left run, mispredictions appear as lowercase "
                 "(squashed) rows followed\nby a refetch ~30 cycles "
                 "later. On the right, both arms flow through as\n"
                 "predicated code ('~' rows are the not-taken arm's "
                 "NOPs) with no flush.\n";
    return 0;
}
