; A hand-written wish loop (paper Figure 4b), runnable with:
;
;     ./build/src/harness/wisc-run --asm examples/wishloop.s --stats
;
; The inner loop runs a data-dependent 1..8 iterations. The wish loop
; hint lets the hardware fetch over-run iterations as predicated NOPs
; instead of flushing on every loop-exit misprediction.

        li r4, 0            ; checksum
        li r10, 0           ; outer counter
        li r14, 9001        ; rng state

outer:
        muli r14, r14, 1103515245
        addi r14, r14, 12345
        shri r20, r14, 16
        andi r20, r20, 7
        addi r20, r20, 1    ; trip count 1..8

        ; --- wish loop (Figure 4b) ---
        pset p1, 1          ; loop predicate initialized TRUE
        li r21, 0
loop:
        (p1) add r4, r4, r21
        (p1) addi r21, r21, 1
        (p1) cmp.lt p1, p0, r21, r20
        wish.loop p1, loop
        ; --- loop exit ---

        addi r10, r10, 1
        cmpi.lt p2, p0, r10, 20000
        br p2, outer
        halt
