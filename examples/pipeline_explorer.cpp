/**
 * @file
 * Exploring the machine-configuration space: how window size and
 * pipeline depth change what wish branches are worth. Reproduces the
 * trend behind Figures 14/15 for a single workload, interactively
 * explorable by editing the sweeps below.
 *
 * Build & run:  ./build/examples/pipeline_explorer
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main()
{
    using namespace wisc;

    printBanner(std::cout,
                "Study: machine configuration vs wish-branch benefit",
                "parser workload, wish-jjl vs normal binary (input A)");

    CompiledWorkload w = compileWorkload("parser");

    Table t({"window", "stages", "normal-cycles", "wjjl-cycles",
             "rel-time", "benefit"});
    for (unsigned rob : {128u, 256u, 512u}) {
        for (unsigned stages : {10u, 20u, 30u}) {
            SimParams p;
            p.robSize = rob;
            p.iqSize = rob / 4;
            p.lsqSize = rob / 2;
            p.pipelineStages = stages;

            RunOutcome n =
                run(RunRequest{w, BinaryVariant::Normal, InputSet::A, p});
            RunOutcome wr = run(RunRequest{
                w, BinaryVariant::WishJumpJoinLoop, InputSet::A, p});
            double rel = static_cast<double>(wr.result.cycles) /
                         static_cast<double>(n.result.cycles);
            t.addRow({std::to_string(rob), std::to_string(stages),
                      std::to_string(n.result.cycles),
                      std::to_string(wr.result.cycles), Table::num(rel),
                      Table::num((1.0 - rel) * 100.0, 1) + "%"});
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper trend: the deeper the pipeline and the larger "
                 "the window, the more a flush costs — and the more wish "
                 "branches save.\n";
    return 0;
}
