/**
 * @file
 * A small research study built on the library: how does the confidence
 * threshold trade predication overhead against flush elimination? Runs
 * the vpr-like workload's wish binary across thresholds and reports the
 * high/low confidence mix, flushes, and execution time.
 *
 * Build & run:  ./build/examples/confidence_study
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main()
{
    using namespace wisc;

    printBanner(std::cout,
                "Study: confidence threshold vs wish-branch behavior",
                "vpr workload, wish jump/join/loop binary (input A)");

    CompiledWorkload w = compileWorkload("vpr");

    SimParams base;
    StatSet s;
    double normal = static_cast<double>(
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A})
            .result.cycles);

    Table t({"threshold", "rel-time", "high-conf", "low-conf", "flushes",
             "high-mispred"});
    for (unsigned th : {1u, 2u, 4u, 8u, 12u, 15u}) {
        SimParams p;
        p.confThreshold = th;
        RunOutcome r = run(RunRequest{
            w, BinaryVariant::WishJumpJoinLoop, InputSet::A, p});
        std::uint64_t high = 0, low = 0, highM = 0;
        for (const char *k : {"jump", "join", "loop"}) {
            std::string pre = std::string("wish.") + k + ".";
            high += r.stat(pre + "high.correct") +
                    r.stat(pre + "high.mispred");
            highM += r.stat(pre + "high.mispred");
            low += r.stat(pre + "low.correct") +
                   r.stat(pre + "low.mispred") +
                   r.stat(pre + "low.early_exit") +
                   r.stat(pre + "low.late_exit") +
                   r.stat(pre + "low.no_exit");
        }
        t.addRow({std::to_string(th),
                  Table::num(static_cast<double>(r.result.cycles) /
                             normal),
                  std::to_string(high), std::to_string(low),
                  std::to_string(r.stat("core.flushes")),
                  std::to_string(highM)});
    }
    t.print(std::cout);

    std::cout << "\nLow thresholds trust the predictor too much "
                 "(high-confidence mispredictions flush); very high "
                 "thresholds predicate everything (overhead without "
                 "benefit). The sweet spot sits in between.\n";
    return 0;
}
