/**
 * @file
 * `wisc-serve`: the sharded-simulation daemon.
 *
 * Binds a unix-domain socket, serves RunRequests from any number of
 * client processes (bench/run_matrix --serve, tests, ad-hoc tools) on
 * one shared ParallelRunner and one shared run cache, and exits on
 * SIGINT/SIGTERM or a client `shutdown` request — printing the final
 * /stats document to stderr on the way out.
 */

#include <signal.h>
#include <sys/socket.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "serve/server.hh"
#include "serve/wire.hh"

namespace {

// The only async-signal-safe way to wake a thread blocked in accept(2)
// is to shut the listener down; the accept loop then requests a stop.
std::atomic<int> gListenerFd{-1};

extern "C" void
onSignal(int)
{
    const int fd = gListenerFd.load(std::memory_order_relaxed);
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

void
usage()
{
    std::cout
        << "usage: wisc-serve --socket PATH [options]\n\n"
        << "  --socket PATH       unix-domain socket to listen on "
           "(required)\n"
        << "  --cache DIR         shared persistent run cache "
           "(WISC_CACHE_DIR fallback)\n"
        << "  --jobs N            simulation worker threads "
           "(default: all cores)\n"
        << "  --max-pending N     admission-control bound on queued+"
           "executing runs (default 256)\n"
        << "  --retry-after-ms N  backoff hint sent with `overloaded` "
           "replies (default 50)\n"
        << "  --verbose           log connections and shutdown to "
           "stderr\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wisc;
    using namespace wisc::serve;

    ServeOptions opts;
    if (const char *env = std::getenv("WISC_CACHE_DIR"))
        opts.cacheDir = env;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto arg = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "wisc-serve: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            opts.socketPath = arg("--socket");
        } else if (a == "--cache") {
            opts.cacheDir = arg("--cache");
        } else if (a == "--jobs") {
            // ParallelRunner::shared() sizes itself from WISC_JOBS on
            // first use, which hasn't happened yet.
            ::setenv("WISC_JOBS", arg("--jobs"), 1);
        } else if (a == "--max-pending") {
            opts.maxPending =
                static_cast<unsigned>(std::atoi(arg("--max-pending")));
        } else if (a == "--retry-after-ms") {
            opts.retryAfterMs = static_cast<unsigned>(
                std::atoi(arg("--retry-after-ms")));
        } else if (a == "--verbose") {
            opts.verbose = true;
        } else {
            std::cerr << "wisc-serve: unknown option '" << a
                      << "' (try --help)\n";
            return 2;
        }
    }
    if (opts.socketPath.empty()) {
        std::cerr << "wisc-serve: --socket PATH is required\n";
        return 2;
    }

    try {
        ServeServer server(opts);
        server.start();
        gListenerFd.store(server.listenerFd(),
                          std::memory_order_relaxed);

        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = onSignal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        std::cerr << "wisc-serve: listening on " << opts.socketPath
                  << " (protocol v" << kProtocolVersion << ", machine "
                  << machineFingerprint() << ")\n";

        server.waitForShutdown();
        gListenerFd.store(-1, std::memory_order_relaxed);
        const json::Value finalStats = server.statsJson();
        server.stop();
        std::cerr << "wisc-serve: final stats: " << finalStats.dump(0)
                  << "\n";
    } catch (const FatalError &e) {
        std::cerr << "wisc-serve: fatal: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
