#include "serve/wire.hh"

#include "common/hash.hh"
#include "common/log.hh"
#include "harness/run_cache.hh"
#include "uarch/params.hh"

namespace wisc {
namespace serve {

std::uint64_t
machineFingerprint()
{
    Hasher h;
    h.str("wisc.machine.v1");
    h.u32(kProtocolVersion);
    // The default-SimParams fingerprint covers the whole machine-model
    // configuration surface: any added/removed/reordered field (or a
    // fingerprint-scheme change) moves it, which is exactly the "skewed
    // build" condition the handshake must catch.
    h.u64(SimParams{}.fingerprint());
    h.u32(runCacheFormatVersion());
    return h.digest();
}

json::Value
programToJson(const Program &p)
{
    json::Value v = json::Value::object();
    v["v"] = 1u;
    v["entry"] = p.entry();

    // One instruction per tuple, fields in Program::fingerprint()
    // order: [op,qp,rd,rs1,rs2,pd,pd2,ps,ps2,imm,target,wish,unc].
    json::Value code = json::Value::array();
    for (const Instruction &inst : p.code()) {
        json::Value t = json::Value::array();
        t.push(static_cast<std::uint64_t>(inst.op));
        t.push(static_cast<std::uint64_t>(inst.qp));
        t.push(static_cast<std::uint64_t>(inst.rd));
        t.push(static_cast<std::uint64_t>(inst.rs1));
        t.push(static_cast<std::uint64_t>(inst.rs2));
        t.push(static_cast<std::uint64_t>(inst.pd));
        t.push(static_cast<std::uint64_t>(inst.pd2));
        t.push(static_cast<std::uint64_t>(inst.ps));
        t.push(static_cast<std::uint64_t>(inst.ps2));
        t.push(static_cast<std::int64_t>(inst.imm));
        t.push(static_cast<std::uint64_t>(inst.target));
        t.push(static_cast<std::uint64_t>(inst.wish));
        t.push(inst.unc);
        code.push(std::move(t));
    }
    v["code"] = std::move(code);

    json::Value data = json::Value::array();
    for (const DataSegment &seg : p.data()) {
        json::Value s = json::Value::object();
        s["base"] = static_cast<std::uint64_t>(seg.base);
        json::Value words = json::Value::array();
        for (Word w : seg.words)
            words.push(static_cast<std::int64_t>(w));
        s["words"] = std::move(words);
        data.push(std::move(s));
    }
    v["data"] = std::move(data);
    return v;
}

namespace {

std::uint8_t
u8Field(const json::Value &t, std::size_t i, const char *what,
        std::uint64_t max)
{
    const std::uint64_t v = t.at(i).asUint();
    if (v > max)
        wisc_fatal("program JSON: instruction field '", what,
                   "' value ", v, " out of range (max ", max, ")");
    return static_cast<std::uint8_t>(v);
}

} // namespace

Program
programFromJson(const json::Value &v)
{
    if (!v.isObject())
        wisc_fatal("program JSON: not an object");
    if (v.at("v").asUint() != 1)
        wisc_fatal("program JSON: unsupported encoding version ",
                   v.at("v").asUint());

    Program p;
    const json::Value &code = v.at("code");
    if (!code.isArray())
        wisc_fatal("program JSON: 'code' is not an array");
    for (std::size_t i = 0; i < code.size(); ++i) {
        const json::Value &t = code.at(i);
        if (!t.isArray() || t.size() != 13)
            wisc_fatal("program JSON: instruction ", i,
                       " is not a 13-field tuple");
        Instruction inst;
        inst.op = static_cast<Opcode>(
            u8Field(t, 0, "op",
                    static_cast<std::uint64_t>(Opcode::NumOpcodes) - 1));
        inst.qp = u8Field(t, 1, "qp", 0xff);
        inst.rd = u8Field(t, 2, "rd", 0xff);
        inst.rs1 = u8Field(t, 3, "rs1", 0xff);
        inst.rs2 = u8Field(t, 4, "rs2", 0xff);
        inst.pd = u8Field(t, 5, "pd", 0xff);
        inst.pd2 = u8Field(t, 6, "pd2", 0xff);
        inst.ps = u8Field(t, 7, "ps", 0xff);
        inst.ps2 = u8Field(t, 8, "ps2", 0xff);
        inst.imm = static_cast<Word>(t.at(9).asInt());
        {
            const std::uint64_t target = t.at(10).asUint();
            if (target > 0xffffffffull)
                wisc_fatal("program JSON: instruction ", i,
                           " target out of range");
            inst.target = static_cast<std::uint32_t>(target);
        }
        inst.wish = static_cast<WishKind>(
            u8Field(t, 11, "wish",
                    static_cast<std::uint64_t>(WishKind::Loop)));
        inst.unc = t.at(12).asBool();
        p.append(inst);
    }

    const json::Value &data = v.at("data");
    if (!data.isArray())
        wisc_fatal("program JSON: 'data' is not an array");
    for (std::size_t i = 0; i < data.size(); ++i) {
        const json::Value &s = data.at(i);
        std::vector<Word> words;
        const json::Value &jw = s.at("words");
        words.reserve(jw.size());
        for (std::size_t k = 0; k < jw.size(); ++k)
            words.push_back(static_cast<Word>(jw.at(k).asInt()));
        p.addData(static_cast<Addr>(s.at("base").asUint()),
                  std::move(words));
    }

    const std::uint64_t entry = v.at("entry").asUint();
    if (entry >= p.size())
        wisc_fatal("program JSON: entry ", entry, " out of range (",
                   p.size(), " instructions)");
    p.setEntry(static_cast<std::uint32_t>(entry));
    p.validate();
    return p;
}

json::Value
makeMsg(const char *type, std::uint64_t id)
{
    json::Value v = json::Value::object();
    v["type"] = type;
    v["id"] = id;
    return v;
}

json::Value
makeError(std::uint64_t id, const char *error, const std::string &detail)
{
    json::Value v = makeMsg("error", id);
    v["error"] = error;
    v["detail"] = detail;
    return v;
}

} // namespace serve
} // namespace wisc
