/**
 * @file
 * Client side of the wisc-serve protocol.
 *
 * ServeClient wraps one connection: connect + hello handshake on
 * construction (FatalError on refusal, so version-skewed builds fail
 * loudly before any work is enqueued), then blocking request/reply
 * calls. One ServeClient must only be used from one thread at a time.
 *
 * installServeTransport() is how whole binaries go remote: it installs
 * a harness RunTransport that lazily opens one connection per calling
 * thread (ParallelRunner workers each get their own, so requests
 * overlap server-side) and transparently honors `overloaded`
 * backpressure by sleeping retry_after_ms and retrying.
 */

#ifndef WISC_SERVE_CLIENT_HH_
#define WISC_SERVE_CLIENT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/sockio.hh"
#include "harness/runner.hh"
#include "isa/program.hh"
#include "uarch/params.hh"

namespace wisc {
namespace serve {

class ServeClient
{
  public:
    /** Connect to the daemon at socketPath and run the hello
     *  handshake. FatalError if the daemon is unreachable, speaks a
     *  different protocol version, or is a skewed build. */
    explicit ServeClient(const std::string &socketPath);

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Execute one run remotely. Retries on `overloaded` (sleeping the
     *  server's retry_after_ms hint); FatalError on error replies or a
     *  dropped connection. */
    RunOutcome run(const Program &prog, const SimParams &params);

    /** Fetch the daemon's /stats document. */
    json::Value stats();

    /** Ask the daemon to exit. The daemon replies ok, then drains
     *  in-flight work and stops. */
    void shutdown();

  private:
    json::Value request(const json::Value &msg);

    Socket sock_;
    std::string path_;
    std::uint64_t nextId_ = 1;
};

/**
 * Route every cacheable run(RunRequest) in this process to the daemon
 * at socketPath (per-thread connections; see file comment). Performs
 * one eager handshake so misconfiguration fails immediately, not on
 * the first worker thread.
 */
void installServeTransport(const std::string &socketPath);

/**
 * Spawn a `wisc-serve` daemon as a child process and wait until its
 * socket accepts connections. Binary discovery: WISC_SERVE_BIN env
 * var, then a `wisc-serve` sibling of /proc/self/exe, then the build
 * layout's `../serve/wisc-serve`. Returns the child pid; FatalError if
 * no binary is found or the daemon does not come up within ~10 s.
 * extraArgs are appended verbatim to the command line.
 */
int spawnServeDaemon(const std::string &socketPath,
                     const std::string &cacheDir,
                     const std::vector<std::string> &extraArgs = {});

/** Send shutdown (best effort) and waitpid the daemon. */
void stopServeDaemon(int pid, const std::string &socketPath);

} // namespace serve
} // namespace wisc

#endif // WISC_SERVE_CLIENT_HH_
