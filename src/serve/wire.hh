/**
 * @file
 * The wisc-serve wire protocol: versioned, length-prefixed JSON frames
 * over a unix-domain stream socket (framing: common/sockio.hh).
 *
 * Every message is one JSON object with a "type" member. The protocol
 * is strictly request/reply from the client's point of view, and every
 * request carries a client-chosen "id" that the reply echoes.
 *
 * Handshake — first frames on every connection:
 *
 *   C: { "type":"hello", "protocol":u32, "machine":u64 }
 *   S: { "type":"hello", "protocol":u32, "machine":u64 }   (accepted)
 *      { "type":"error", "error":..., "detail":... }       (rejected)
 *
 * `protocol` is kProtocolVersion; `machine` is machineFingerprint(), a
 * digest over everything that must match for a replayed outcome to
 * mean the same thing on both sides: the default-SimParams fingerprint
 * (so a build whose SimParams struct drifted — new fields, reordered
 * enums — fails loudly), the run-cache entry format version, and the
 * wire schema itself. A stale client against a new daemon (or two
 * skewed builds sharing one daemon) is an error reply, never a wrong
 * answer.
 *
 * Requests after the handshake:
 *
 *   { "type":"run", "id":u64,
 *     "program": <Program doc>, "params": <SimParams doc> }
 *     -> { "type":"outcome", "id":u64, "outcome": <RunOutcome doc> }
 *      | { "type":"overloaded", "id":u64, "retry_after_ms":u64 }
 *      | { "type":"error", "id":u64, "error":..., "detail":... }
 *
 *   { "type":"stats", "id":u64 }
 *     -> { "type":"stats", "id":u64, ... } (see ServeServer::statsJson)
 *
 *   { "type":"shutdown", "id":u64 }
 *     -> { "type":"ok", "id":u64 }, then the daemon exits
 *
 * Document encodings: SimParams uses the canonical codec
 * (uarch/params_json.hh), RunOutcome the `--json` emission schema
 * (harness/json_writer.hh) — the wire deliberately adds no third
 * encoding. Program is defined here: entry point, instruction image as
 * flat field tuples in fingerprint order, and data segments;
 * programFromJson(programToJson(p)).fingerprint() == p.fingerprint().
 */

#ifndef WISC_SERVE_WIRE_HH_
#define WISC_SERVE_WIRE_HH_

#include <cstdint>

#include "common/json.hh"
#include "isa/program.hh"

namespace wisc {
namespace serve {

/** Bumped on any incompatible change to the frame or document shapes. */
inline constexpr std::uint32_t kProtocolVersion = 1;

/** Build/configuration fingerprint exchanged in the hello handshake. */
std::uint64_t machineFingerprint();

/** Program <-> JSON (fingerprint-preserving; labels are dropped — they
 *  are listing metadata the core never reads). */
json::Value programToJson(const Program &p);

/** Strict inverse; FatalError on malformed structure or out-of-range
 *  enum/opcode values. The result passes Program::validate(). */
Program programFromJson(const json::Value &v);

// ---- message helpers --------------------------------------------------

/** An { "type": t, "id": id } skeleton. */
json::Value makeMsg(const char *type, std::uint64_t id);

/** An error reply: { "type":"error", "id", "error", "detail" }. */
json::Value makeError(std::uint64_t id, const char *error,
                      const std::string &detail);

} // namespace serve
} // namespace wisc

#endif // WISC_SERVE_WIRE_HH_
