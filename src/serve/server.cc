#include "serve/server.hh"

#include <filesystem>
#include <iostream>
#include <utility>

#include "common/log.hh"
#include "harness/parallel_runner.hh"
#include "harness/run_cache.hh"
#include "harness/runner.hh"
#include "harness/json_writer.hh"
#include "serve/wire.hh"
#include "uarch/params_json.hh"

namespace wisc {
namespace serve {

ServeServer::ServeServer(ServeOptions opts) : opts_(std::move(opts))
{
}

ServeServer::~ServeServer()
{
    stop();
}

void
ServeServer::start()
{
    wisc_assert(!started_, "ServeServer started twice");
    if (opts_.socketPath.empty())
        wisc_fatal("wisc-serve: no socket path configured");

    // One shared RunService for every client: in-process memo always,
    // persistent layer when a directory is configured.
    svc_.setMemoize(true);
    svc_.setCacheDir(opts_.cacheDir);

    std::string error;
    listener_ = listenUnix(opts_.socketPath, &error);
    if (!listener_.valid())
        wisc_fatal("wisc-serve: ", error);

    startTime_ = std::chrono::steady_clock::now();
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
ServeServer::requestStop()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopRequested_ = true;
    }
    shutdownCv_.notify_all();
}

void
ServeServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lk(mutex_);
    shutdownCv_.wait(lk, [this] { return stopRequested_ || stopping_; });
}

void
ServeServer::stop()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!started_ || stopping_)
            return;
        stopping_ = true;
        stopRequested_ = true;
    }
    shutdownCv_.notify_all();

    // Kick the accept thread out of accept(2) and join it first so no
    // new connection can appear below.
    listener_.shutdownBoth();
    if (acceptThread_.joinable())
        acceptThread_.join();

    // Drain: every admitted request still owns a pointer to its Conn
    // (for the reply frame), so Conn objects must outlive the pool
    // tasks. Wait for pending work, then unblock + join the readers.
    {
        std::unique_lock<std::mutex> lk(mutex_);
        drainCv_.wait(lk, [this] { return pending_ == 0; });
        for (auto &c : conns_)
            c->sock.shutdownBoth();
    }
    for (auto &c : conns_)
        if (c->thread.joinable())
            c->thread.join();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        conns_.clear();
    }

    listener_.close();
    std::error_code ec;
    std::filesystem::remove(opts_.socketPath, ec);
    if (opts_.verbose)
        std::cerr << "wisc-serve: stopped\n";
}

void
ServeServer::acceptLoop()
{
    for (;;) {
        Socket sock = acceptConn(listener_);
        std::lock_guard<std::mutex> lk(mutex_);
        if (stopping_)
            return;
        if (!sock.valid()) {
            // Listener shut down without stop() — e.g. serve_main's
            // signal handler. Hand control back to the owner.
            stopRequested_ = true;
            shutdownCv_.notify_all();
            return;
        }
        ++connections_;
        conns_.push_back(std::make_unique<Conn>());
        Conn *conn = conns_.back().get();
        conn->sock = std::move(sock);
        conn->thread = std::thread([this, conn] { connLoop(conn); });
        if (opts_.verbose)
            std::cerr << "wisc-serve: client connected ("
                      << connections_ << " total)\n";
    }
}

void
ServeServer::sendOn(Conn *conn, const json::Value &msg)
{
    const std::string payload = msg.dump(0);
    std::lock_guard<std::mutex> lk(conn->sendMutex);
    // A vanished client is not an error worth acting on: the outcome
    // stays memoized for its retry.
    (void)sendFrame(conn->sock, payload);
}

void
ServeServer::connLoop(Conn *conn)
{
    bool helloDone = false;
    std::string payload;
    for (;;) {
        const FrameStatus st = recvFrame(conn->sock, payload);
        if (st == FrameStatus::Oversized) {
            sendOn(conn, makeError(0, "oversized-frame",
                                   "length prefix exceeds limit"));
            break; // stream position is unrecoverable
        }
        if (st != FrameStatus::Ok)
            break; // EOF / truncation / socket error: just close

        json::Value msg;
        try {
            msg = json::Value::parse(payload);
        } catch (const FatalError &e) {
            std::lock_guard<std::mutex> lk(mutex_);
            ++errors_;
            sendOn(conn, makeError(0, "bad-json", e.what()));
            continue; // framing is still intact; keep the connection
        }
        if (!dispatch(conn, msg, helloDone))
            break;
    }
    conn->sock.shutdownBoth();
}

bool
ServeServer::dispatch(Conn *conn, const json::Value &msg, bool &helloDone)
{
    std::string type;
    std::uint64_t id = 0;
    try {
        type = msg.at("type").asString();
        if (const json::Value *jid = msg.find("id"))
            id = jid->asUint();
    } catch (const FatalError &e) {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++errors_;
        }
        sendOn(conn, makeError(id, "bad-message", e.what()));
        return true;
    }

    if (type == "hello") {
        try {
            const std::uint64_t proto = msg.at("protocol").asUint();
            const std::uint64_t machine = msg.at("machine").asUint();
            if (proto != kProtocolVersion) {
                std::lock_guard<std::mutex> lk(mutex_);
                ++handshakeRejects_;
                sendOn(conn,
                       makeError(id, "protocol-version-mismatch",
                                 detail::format("client speaks v", proto,
                                                ", daemon speaks v",
                                                kProtocolVersion)));
                return false;
            }
            if (machine != machineFingerprint()) {
                std::lock_guard<std::mutex> lk(mutex_);
                ++handshakeRejects_;
                sendOn(conn,
                       makeError(id, "machine-fingerprint-mismatch",
                                 "client and daemon builds configure "
                                 "different machines; rebuild both from "
                                 "one tree"));
                return false;
            }
        } catch (const FatalError &e) {
            std::lock_guard<std::mutex> lk(mutex_);
            ++handshakeRejects_;
            sendOn(conn, makeError(id, "bad-hello", e.what()));
            return false;
        }
        json::Value reply = makeMsg("hello", id);
        reply["protocol"] = kProtocolVersion;
        reply["machine"] = machineFingerprint();
        sendOn(conn, reply);
        helloDone = true;
        return true;
    }

    if (!helloDone) {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++handshakeRejects_;
        }
        sendOn(conn, makeError(id, "handshake-required",
                               "first frame must be hello"));
        return false;
    }

    if (type == "run") {
        handleRun(conn, msg, id);
        return true;
    }
    if (type == "stats") {
        json::Value reply = statsJson();
        reply["type"] = "stats";
        reply["id"] = id;
        sendOn(conn, reply);
        return true;
    }
    if (type == "shutdown") {
        sendOn(conn, makeMsg("ok", id));
        if (opts_.verbose)
            std::cerr << "wisc-serve: shutdown requested\n";
        requestStop();
        return false;
    }

    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++errors_;
    }
    sendOn(conn, makeError(id, "unknown-type",
                           "unrecognized request type '" + type + "'"));
    return true;
}

void
ServeServer::handleRun(Conn *conn, const json::Value &msg,
                       std::uint64_t id)
{
    // Decode before admission so a malformed request never occupies a
    // pending slot.
    auto prog = std::make_shared<Program>();
    SimParams params;
    try {
        *prog = programFromJson(msg.at("program"));
        params = simParamsFromJson(msg.at("params"));
    } catch (const FatalError &e) {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++errors_;
        }
        sendOn(conn, makeError(id, "bad-request", e.what()));
        return;
    }

    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stopping_ || pending_ >= opts_.maxPending) {
            ++overloaded_;
            json::Value reply = makeMsg("overloaded", id);
            reply["retry_after_ms"] =
                static_cast<std::uint64_t>(opts_.retryAfterMs);
            sendOn(conn, reply);
            return;
        }
        ++pending_;
        ++requests_;
    }

    ParallelRunner::shared().submit([this, conn, id, prog,
                                     params]() mutable {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++executing_;
        }
        json::Value reply;
        std::uint64_t uops = 0, cycles = 0;
        bool ok = false;
        try {
            const RunOutcome out = svc_.run(*prog, params);
            reply = makeMsg("outcome", id);
            reply["outcome"] = toJson(out);
            uops = out.result.retiredUops;
            cycles = out.result.cycles;
            ok = true;
        } catch (const std::exception &e) {
            reply = makeError(id, "run-failed", e.what());
        }
        sendOn(conn, reply);
        noteDone();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            --executing_;
            --pending_;
            if (ok) {
                ++completed_;
                servedUops_ += uops;
                servedCycles_ += cycles;
            } else {
                ++errors_;
            }
        }
        drainCv_.notify_all();
    });
}

void
ServeServer::noteDone()
{
}

json::Value
ServeServer::statsJson() const
{
    const RunCacheStats cache = svc_.stats();
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime_)
            .count();

    json::Value v = json::Value::object();
    v["protocol"] = kProtocolVersion;
    v["machine"] = machineFingerprint();
    v["uptime_seconds"] = uptime;
    v["jobs"] = ParallelRunner::shared().jobs();
    v["max_pending"] = opts_.maxPending;

    std::lock_guard<std::mutex> lk(mutex_);
    v["connections"] = connections_;
    v["requests"] = requests_;
    v["completed"] = completed_;
    v["overloaded"] = overloaded_;
    v["errors"] = errors_;
    v["handshake_rejects"] = handshakeRejects_;
    v["pending"] = pending_;
    v["executing"] = executing_;
    v["queue_depth"] =
        static_cast<std::uint64_t>(pending_ - executing_);

    // Cross-client dedup/caching, straight off the shared RunService.
    json::Value c = json::Value::object();
    c["dedup_hits"] = cache.dedupHits;
    c["disk_hits"] = cache.diskHits;
    c["misses"] = cache.misses;
    c["disk_writes"] = cache.diskWrites;
    c["corrupt"] = cache.corrupt;
    v["cache"] = std::move(c);
    v["coalesced"] = cache.dedupHits;
    const std::uint64_t lookups =
        cache.dedupHits + cache.diskHits + cache.misses;
    v["cache_hit_rate"] =
        lookups ? static_cast<double>(cache.dedupHits + cache.diskHits) /
                      static_cast<double>(lookups)
                : 0.0;
    if (!opts_.cacheDir.empty())
        v["cache_dir"] = opts_.cacheDir;

    v["served_uops"] = servedUops_;
    v["served_cycles"] = servedCycles_;
    v["uops_per_second"] =
        uptime > 0 ? static_cast<double>(servedUops_) / uptime : 0.0;
    return v;
}

} // namespace serve
} // namespace wisc
