#include "serve/client.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "harness/json_writer.hh"
#include "serve/wire.hh"
#include "uarch/params_json.hh"

namespace wisc {
namespace serve {

ServeClient::ServeClient(const std::string &socketPath)
    : path_(socketPath)
{
    std::string error;
    sock_ = connectUnix(socketPath, &error);
    if (!sock_.valid())
        wisc_fatal("wisc-serve client: ", error);

    json::Value hello = makeMsg("hello", nextId_++);
    hello["protocol"] = kProtocolVersion;
    hello["machine"] = machineFingerprint();
    const json::Value reply = request(hello);
    const std::string &type = reply.at("type").asString();
    if (type == "error")
        wisc_fatal("wisc-serve handshake rejected by '", socketPath,
                   "': ", reply.at("error").asString(), " (",
                   reply.at("detail").asString(), ")");
    if (type != "hello")
        wisc_fatal("wisc-serve handshake: unexpected reply type '",
                   type, "'");
}

json::Value
ServeClient::request(const json::Value &msg)
{
    if (!sendFrame(sock_, msg.dump(0)))
        wisc_fatal("wisc-serve client: send to '", path_,
                   "' failed (daemon gone?)");
    std::string payload;
    const FrameStatus st = recvFrame(sock_, payload);
    if (st != FrameStatus::Ok)
        wisc_fatal("wisc-serve client: connection to '", path_,
                   "' closed mid-reply");
    return json::Value::parse(payload);
}

RunOutcome
ServeClient::run(const Program &prog, const SimParams &params)
{
    json::Value msg = makeMsg("run", nextId_++);
    msg["program"] = programToJson(prog);
    msg["params"] = simParamsToJson(params);

    for (;;) {
        const json::Value reply = request(msg);
        const std::string &type = reply.at("type").asString();
        if (type == "outcome")
            return runOutcomeFromJson(reply.at("outcome"));
        if (type == "overloaded") {
            const std::uint64_t ms =
                reply.at("retry_after_ms").asUint();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms ? ms : 1));
            continue;
        }
        if (type == "error")
            wisc_fatal("wisc-serve run failed: ",
                       reply.at("error").asString(), " (",
                       reply.at("detail").asString(), ")");
        wisc_fatal("wisc-serve run: unexpected reply type '", type,
                   "'");
    }
}

json::Value
ServeClient::stats()
{
    return request(makeMsg("stats", nextId_++));
}

void
ServeClient::shutdown()
{
    const json::Value reply = request(makeMsg("shutdown", nextId_++));
    if (reply.at("type").asString() != "ok")
        wisc_fatal("wisc-serve shutdown: unexpected reply type '",
                   reply.at("type").asString(), "'");
}

void
installServeTransport(const std::string &socketPath)
{
    // Fail fast: a bad path / skewed build should abort the whole
    // command, not surface later from a pool worker.
    { ServeClient probe(socketPath); }

    setRunTransport([socketPath](const Program &prog,
                                 const SimParams &params) {
        // One connection per calling thread, reused across requests.
        thread_local std::unique_ptr<ServeClient> conn;
        thread_local std::string connPath;
        if (!conn || connPath != socketPath) {
            conn = std::make_unique<ServeClient>(socketPath);
            connPath = socketPath;
        }
        return conn->run(prog, params);
    });
}

namespace {

std::string
findServeBinary()
{
    namespace fs = std::filesystem;
    if (const char *env = ::getenv("WISC_SERVE_BIN"))
        if (*env && fs::exists(env))
            return env;

    std::error_code ec;
    const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
    if (!ec) {
        const fs::path dir = exe.parent_path();
        // Same directory (installed layout), then the build tree's
        // src/serve relative to bench/ and tests/.
        for (const fs::path cand :
             {dir / "wisc-serve", dir / ".." / "src" / "serve" /
                                      "wisc-serve",
              dir / ".." / "serve" / "wisc-serve"})
            if (fs::exists(cand, ec))
                return cand.string();
    }
    return {};
}

} // namespace

int
spawnServeDaemon(const std::string &socketPath,
                 const std::string &cacheDir,
                 const std::vector<std::string> &extraArgs)
{
    const std::string bin = findServeBinary();
    if (bin.empty())
        wisc_fatal("cannot locate the wisc-serve binary (set "
                   "WISC_SERVE_BIN)");

    std::vector<std::string> argStore = {bin, "--socket", socketPath};
    if (!cacheDir.empty()) {
        argStore.push_back("--cache");
        argStore.push_back(cacheDir);
    }
    argStore.insert(argStore.end(), extraArgs.begin(), extraArgs.end());

    const pid_t pid = ::fork();
    if (pid < 0)
        wisc_fatal("fork for wisc-serve failed");
    if (pid == 0) {
        std::vector<char *> argv;
        for (std::string &a : argStore)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(bin.c_str(), argv.data());
        _exit(127); // exec failed
    }

    // Poll until the daemon's listener answers (it unlinks any stale
    // socket first, so a successful connect means *this* daemon).
    for (int i = 0; i < 1000; ++i) {
        std::string error;
        Socket probe = connectUnix(socketPath, &error);
        if (probe.valid())
            return static_cast<int>(pid);
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            wisc_fatal("wisc-serve exited during startup (status ",
                       status, ")");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    wisc_fatal("wisc-serve did not come up on '", socketPath,
               "' within 10s");
}

void
stopServeDaemon(int pid, const std::string &socketPath)
{
    try {
        ServeClient(socketPath).shutdown();
    } catch (const FatalError &) {
        // Already gone (or unreachable): fall through to reap/kill.
        ::kill(pid, SIGTERM);
    }
    for (int i = 0; i < 1000; ++i) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
}

} // namespace serve
} // namespace wisc
