/**
 * @file
 * ServeServer: the long-lived simulation daemon behind `wisc-serve`.
 *
 * Accepts RunRequests over a unix-domain socket (wire.hh), executes
 * them on the process-wide ParallelRunner through the process-wide
 * RunService — so identical in-flight requests coalesce *across
 * clients* and completed runs replay from one shared memo/disk cache —
 * and applies admission control: at most maxPending requests admitted
 * (executing + queued) at once; beyond that the daemon answers
 * `overloaded` with a retry-after hint instead of queueing unboundedly.
 *
 * Threading: one accept thread plus one thread per connection; run
 * execution happens on ParallelRunner::shared() workers, which write
 * the reply frame under a per-connection send mutex (replies can
 * complete out of order; the echoed id matches them up). stop() is
 * idempotent and joins everything.
 *
 * The server object is also usable in-process (tests start one on a
 * background thread without spawning the binary).
 */

#ifndef WISC_SERVE_SERVER_HH_
#define WISC_SERVE_SERVER_HH_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/sockio.hh"
#include "harness/run_cache.hh"

namespace wisc {
namespace serve {

struct ServeOptions
{
    std::string socketPath;
    /** Persistent run-cache directory shared by all clients ("" = only
     *  the in-process memo layer). */
    std::string cacheDir;
    /** Admission-control bound: requests admitted (queued + executing)
     *  at any instant. 0 refuses all work (useful for tests). */
    unsigned maxPending = 256;
    /** Hint clients wait this long before retrying after `overloaded`. */
    unsigned retryAfterMs = 50;
    /** Log one line per connection/shutdown to stderr. */
    bool verbose = false;
};

class ServeServer
{
  public:
    explicit ServeServer(ServeOptions opts);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** Bind the socket and start accepting. FatalError on bind/listen
     *  failure. */
    void start();

    /** Stop accepting, drain in-flight work, close every connection,
     *  join all threads, and remove the socket file. Idempotent. Must
     *  not be called from a connection thread — a remote `shutdown`
     *  request instead calls requestStop() and the owner (serve_main,
     *  or a test) runs stop() after waitForShutdown() returns. */
    void stop();

    /** Ask the owner to stop: wakes waitForShutdown(). Safe from any
     *  thread, including connection threads. */
    void requestStop();

    /** Block until requestStop() or stop(). */
    void waitForShutdown();

    /** Listener fd for async-signal-safe shutdown(2) from a signal
     *  handler (serve_main's SIGINT/SIGTERM path). -1 before start(). */
    int listenerFd() const { return listener_.fd(); }

    /** The /stats reply body (also handed to the shutdown logger). */
    json::Value statsJson() const;

    const ServeOptions &options() const { return opts_; }

  private:
    struct Conn
    {
        Socket sock;
        std::mutex sendMutex;
        std::thread thread;
    };

    void acceptLoop();
    void connLoop(Conn *conn);
    /** Handle one parsed frame; returns false when the connection must
     *  close (protocol violation or shutdown). */
    bool dispatch(Conn *conn, const json::Value &msg, bool &helloDone);
    void handleRun(Conn *conn, const json::Value &msg, std::uint64_t id);
    void sendOn(Conn *conn, const json::Value &msg);
    void noteDone();

    ServeOptions opts_;
    /** The daemon's own two-layer run service (not the process global):
     *  every client's requests coalesce and cache here, and /stats
     *  reports this daemon's counters, not whatever else the process
     *  ran. */
    RunService svc_;
    Socket listener_;
    std::thread acceptThread_;

    mutable std::mutex mutex_;
    std::condition_variable shutdownCv_;
    std::condition_variable drainCv_;
    bool started_ = false;
    bool stopping_ = false;
    bool stopRequested_ = false;
    std::list<std::unique_ptr<Conn>> conns_;

    // Admission control + stats (all under mutex_ unless atomic).
    unsigned pending_ = 0;   ///< admitted, not yet replied
    unsigned executing_ = 0; ///< currently on a pool worker
    std::uint64_t requests_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t overloaded_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t connections_ = 0;
    std::uint64_t handshakeRejects_ = 0;
    std::uint64_t servedUops_ = 0;
    std::uint64_t servedCycles_ = 0;
    std::chrono::steady_clock::time_point startTime_;
};

} // namespace serve
} // namespace wisc

#endif // WISC_SERVE_SERVER_HH_
