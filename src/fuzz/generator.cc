#include "fuzz/generator.hh"

#include <iterator>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "compiler/builder.hh"

namespace wisc {
namespace {

/**
 * Register conventions of generated programs (disjoint pools, so a
 * random scratch write can never corrupt a live loop counter):
 *   r4        checksum (the architectural result register)
 *   r5 / r6   data-segment / output-window base pointers
 *   r8..r23   scratch pool
 *   r24, r25  address temporaries for data-dependent accesses
 *   r26..r29  loop counters, one per nesting level
 *
 * Predicates: hammock pairs (p1,p2), (p3,p4), (p5,p6) by depth;
 * do-while continuation p7; while-loop (cont, exit) = (p8, p9). The
 * compiler's fresh-guard pool (p15 downward) never reaches p9 within
 * the GenConfig budgets.
 */
constexpr RegIdx kChk = 4;
constexpr RegIdx kDataPtr = 5;
constexpr RegIdx kOutPtr = 6;
constexpr RegIdx kScratchLo = 8;
constexpr unsigned kScratchCount = 16;
constexpr RegIdx kAddrTmp = 24;
constexpr RegIdx kCtrBase = 26;

class Generator
{
  public:
    Generator(std::uint64_t seed, const GenConfig &cfg)
        : rng_(seed ? seed : 1), cfg_(cfg)
    {
    }

    IrFunction
    run()
    {
        b_.li(kDataPtr, static_cast<Word>(kFuzzDataBase));
        b_.li(kOutPtr, static_cast<Word>(kFuzzOutBase));
        b_.li(kChk, 0);

        // Seed a few scratch registers with interesting constants:
        // small signed values, powers of two, and full-width words.
        for (unsigned i = 0; i < 6; ++i) {
            Word v;
            switch (rng_.below(3)) {
              case 0:  v = rng_.range(-16, 16); break;
              case 1:  v = Word{1} << rng_.below(63); break;
              default: v = static_cast<Word>(rng_.next()); break;
            }
            b_.li(scratch(), v);
        }

        genBody(0, drawStmts());

        // Fold every scratch register and counter into the checksum so
        // a corrupted value anywhere is observable in r4.
        for (unsigned i = 0; i < kScratchCount; ++i)
            b_.add(kChk, kChk, static_cast<RegIdx>(kScratchLo + i));
        for (unsigned i = 0; i < 4; ++i)
            b_.xor_(kChk, kChk, static_cast<RegIdx>(kCtrBase + i));

        b_.data(kFuzzDataBase, synthWords(cfg_.dataWords));
        return b_.finish();
    }

  private:
    unsigned
    drawStmts()
    {
        return 1 + static_cast<unsigned>(
                       rng_.below(2 * cfg_.stmtsPerBody));
    }

    RegIdx
    scratch()
    {
        return static_cast<RegIdx>(kScratchLo + rng_.below(kScratchCount));
    }

    std::vector<Word>
    synthWords(unsigned n)
    {
        std::vector<Word> w;
        w.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            switch (rng_.below(4)) {
              case 0:  w.push_back(rng_.range(-8, 8)); break;
              case 1:  w.push_back(static_cast<Word>(rng_.below(256)));
                       break;
              default: w.push_back(static_cast<Word>(rng_.next())); break;
            }
        }
        return w;
    }

    void
    genBody(unsigned depth, unsigned stmts)
    {
        for (unsigned s = 0; s < stmts; ++s)
            genStmt(depth);
    }

    void
    genStmt(unsigned depth)
    {
        // Weighted statement kinds; structure only while budget and
        // depth allow.
        bool canIf = hammocks_ < cfg_.hammockBudget &&
                     depth < cfg_.maxDepth;
        bool canLoop = loops_ < cfg_.loopBudget &&
                       loopDepth_ < cfg_.maxLoopDepth &&
                       depth < cfg_.maxDepth;
        unsigned roll = static_cast<unsigned>(rng_.below(100));
        if (roll < 40)
            genAlu();
        else if (roll < 55)
            genLoad();
        else if (roll < 68)
            genStore();
        else if (roll < 76)
            b_.add(kChk, kChk, scratch());
        else if (roll < 90 && canIf)
            genHammock(depth);
        else if (canLoop)
            genLoop(depth);
        else
            genAlu();
    }

    void
    genAlu()
    {
        static const Opcode kOps3[] = {
            Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
            Opcode::Xor, Opcode::Shl, Opcode::Shr, Opcode::Sra,
            Opcode::Mul, Opcode::Div, Opcode::Rem,
        };
        static const Opcode kOpsI[] = {
            Opcode::AddI, Opcode::AndI, Opcode::OrI, Opcode::XorI,
            Opcode::ShlI, Opcode::ShrI, Opcode::SraI, Opcode::MulI,
        };
        if (rng_.chance(0.55)) {
            Opcode op = kOps3[rng_.below(std::size(kOps3))];
            b_.op3(op, scratch(), scratch(), scratch());
        } else {
            Opcode op = kOpsI[rng_.below(std::size(kOpsI))];
            Word imm = (op == Opcode::ShlI || op == Opcode::ShrI ||
                        op == Opcode::SraI)
                           ? static_cast<Word>(rng_.below(64))
                           : rng_.range(-64, 64);
            b_.opImm(op, scratch(), scratch(), imm);
        }
    }

    void
    genLoad()
    {
        if (rng_.chance(0.5)) {
            // Static offset into the input segment.
            b_.ld(scratch(), kDataPtr,
                  8 * static_cast<Word>(rng_.below(cfg_.dataWords)));
        } else {
            // Data-dependent index, masked into the segment.
            b_.andi(kAddrTmp, scratch(),
                    static_cast<Word>(cfg_.dataWords - 1));
            b_.shli(kAddrTmp, kAddrTmp, 3);
            b_.add(kAddrTmp, kAddrTmp, kDataPtr);
            if (rng_.chance(0.2))
                b_.ld1(scratch(), kAddrTmp, 0);
            else
                b_.ld(scratch(), kAddrTmp, 0);
        }
    }

    void
    genStore()
    {
        RegIdx val = scratch();
        if (rng_.chance(0.5)) {
            b_.st(val, kOutPtr,
                  8 * static_cast<Word>(rng_.below(cfg_.outWords)));
        } else {
            b_.andi(kAddrTmp, scratch(),
                    static_cast<Word>(cfg_.outWords - 1));
            b_.shli(kAddrTmp, kAddrTmp, 3);
            b_.add(kAddrTmp, kAddrTmp,
                   rng_.chance(0.25) ? kDataPtr : kOutPtr);
            if (rng_.chance(0.2))
                b_.st1(val, kAddrTmp, 0);
            else
                b_.st(val, kAddrTmp, 0);
        }
    }

    void
    genCompare(PredIdx pd, PredIdx pdC)
    {
        static const Opcode kCmp[] = {
            Opcode::CmpEq, Opcode::CmpNe, Opcode::CmpLt, Opcode::CmpLe,
            Opcode::CmpGt, Opcode::CmpGe, Opcode::CmpLtU, Opcode::CmpGeU,
        };
        static const Opcode kCmpI[] = {
            Opcode::CmpEqI, Opcode::CmpNeI, Opcode::CmpLtI,
            Opcode::CmpLeI, Opcode::CmpGtI, Opcode::CmpGeI,
        };
        if (rng_.chance(0.5))
            b_.cmp(kCmp[rng_.below(std::size(kCmp))], pd, pdC, scratch(),
                   scratch());
        else
            b_.cmpi(kCmpI[rng_.below(std::size(kCmpI))], pd, pdC,
                    scratch(), rng_.range(-4, 4));
    }

    void
    genHammock(unsigned depth)
    {
        ++hammocks_;
        PredIdx p = static_cast<PredIdx>(1 + 2 * depth);
        PredIdx pc = static_cast<PredIdx>(p + 1);
        genCompare(p, pc);

        auto arm = [&](bool allowEmpty) {
            return [this, depth, allowEmpty] {
                if (allowEmpty && rng_.chance(cfg_.emptyArmChance))
                    return; // deliberately empty fall-through path
                genBody(depth + 1, drawStmts());
            };
        };

        if (rng_.chance(0.4))
            b_.ifThen(p, pc, arm(true));
        else
            b_.ifThenElse(p, pc, arm(true), arm(true));
    }

    void
    genLoop(unsigned depth)
    {
        ++loops_;
        RegIdx ctr = static_cast<RegIdx>(kCtrBase + loopDepth_);
        ++loopDepth_;

        // Data-dependent trip count in [1, tripMask + 2].
        b_.ld(ctr, kDataPtr,
              8 * static_cast<Word>(rng_.below(cfg_.dataWords)));
        b_.andi(ctr, ctr, static_cast<Word>(cfg_.tripMask));
        b_.addi(ctr, ctr, 1);

        unsigned pad = 0;
        if (rng_.chance(cfg_.bigLoopBodyChance)) {
            // Straddle the wish-loop body limit (L = 30 by default).
            pad = 26 + static_cast<unsigned>(rng_.below(9));
        }

        if (rng_.chance(0.6)) {
            // do-while: the body ends with the continuation compare.
            b_.doWhileLoop(7, [&] {
                genBody(depth + 1, 1 + rng_.below(3));
                for (unsigned i = 0; i < pad; ++i)
                    b_.addi(kChk, kChk, 1);
                b_.addi(ctr, ctr, -1);
                b_.cmpi(Opcode::CmpGtI, 7, 0, ctr, 0);
            });
        } else {
            // while: the single-block header recomputes (exit, cont)
            // every iteration.
            b_.whileLoop(
                [&] {
                    b_.addi(ctr, ctr, -1);
                    b_.cmpi(Opcode::CmpLtI, 9, 8, ctr, 0);
                },
                8, 9,
                [&] {
                    genBody(depth + 1, 1 + rng_.below(3));
                    for (unsigned i = 0; i < pad; ++i)
                        b_.addi(kChk, kChk, 1);
                });
        }
        --loopDepth_;
    }

    Rng rng_;
    GenConfig cfg_;
    KernelBuilder b_;
    unsigned hammocks_ = 0;
    unsigned loops_ = 0;
    unsigned loopDepth_ = 0;
};

} // namespace

IrFunction
generateProgram(std::uint64_t seed, const GenConfig &cfg)
{
    wisc_assert((cfg.dataWords & (cfg.dataWords - 1)) == 0 &&
                    cfg.dataWords > 0,
                "GenConfig::dataWords must be a power of two");
    wisc_assert((cfg.outWords & (cfg.outWords - 1)) == 0 &&
                    cfg.outWords > 0,
                "GenConfig::outWords must be a power of two");
    wisc_assert((cfg.tripMask & (cfg.tripMask + 1)) == 0,
                "GenConfig::tripMask must be 2^k - 1");
    wisc_assert(cfg.maxLoopDepth <= 4,
                "only four loop counter registers are reserved");
    // The deepest hammock is opened at depth maxDepth-1 and uses the
    // pair (1 + 2*(maxDepth-1), 2 + 2*(maxDepth-1)).
    wisc_assert(cfg.maxDepth >= 1 && 2 * cfg.maxDepth <= 6,
                "hammock predicate pairs exceed the reserved p1..p6");
    return Generator(seed, cfg).run();
}

} // namespace wisc
