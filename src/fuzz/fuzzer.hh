/**
 * @file
 * Differential fuzzing driver.
 *
 * For each seed: generate a structured random program (generator.hh),
 * compile all five Table-3 binary variants, and cross-check
 *
 *  (a) the functional emulator across variants — full architectural
 *      state (every integer register and memory word) must match the
 *      normal variant's; the first differing word is reported;
 *  (b) the emulator's two dispatch engines against each other — the
 *      computed-goto threaded loop (arch/threaded.hh) must leave
 *      bit-identical architectural state, retire counts, and
 *      fingerprints to the reference switch interpreter on every
 *      variant (the guarantee the sampled-simulation fast-forward
 *      path rests on);
 *  (c) the cycle-accurate core across a SimParams matrix (confidence
 *      geometry, ROB/IQ sizes, poll vs. event scheduler, predication
 *      mechanism) — result register and memory fingerprint must match
 *      the emulator on every variant × machine point;
 *  (d) the attribution invariant — with collectAttribution on, the
 *      attrib.* CPI-stack counters must sum exactly to core.cycles.
 *
 * On divergence the driver shrinks the program (shrink.hh) under a
 * predicate that re-checks the same failure kind, and writes a
 * self-contained reproducer (seed + failure + IR text) that
 * replayReproducer() re-checks byte-for-byte.
 */

#ifndef WISC_FUZZ_FUZZER_HH_
#define WISC_FUZZ_FUZZER_HH_

#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/generator.hh"
#include "uarch/params.hh"

namespace wisc {

/** One machine configuration of the cross-check matrix. */
struct ParamsPoint
{
    std::string label;
    SimParams params;
};

/**
 * The default SimParams matrix. Every point disables checkFinalState
 * (the fuzzer does that comparison itself, reportably, instead of
 * dying on a core-internal assert) and bounds maxCycles so a timing
 * hang cannot stall the fuzzer.
 *
 * 'smoke' keeps five points (default+attribution, small window with
 * the poll scheduler, tiny confidence estimator, a small TAGE with its
 * free confidence estimator, and a bimodal); the full matrix adds
 * select-µop predication, an up/down-estimator point, and a standalone
 * two-level predictor.
 */
std::vector<ParamsPoint> defaultParamsMatrix(bool smoke);

/** Fuzzing campaign configuration. */
struct FuzzOptions
{
    std::uint64_t seed = 1;      ///< campaign seed
    unsigned runs = 200;         ///< programs to generate
    GenConfig gen;               ///< program-shape knobs
    bool runCore = true;         ///< also run the cycle-accurate core
    /** Cross-check threaded vs. switch dispatch on every variant
     *  (kind "dispatch-diverge"); cheap, so on by default. */
    bool checkDispatch = true;
    std::vector<ParamsPoint> matrix = defaultParamsMatrix(true);
    std::uint64_t emuMaxSteps = 2'000'000; ///< per-run emulator budget
    bool shrink = true;          ///< minimize failures before reporting
    std::string reproDir;        ///< write reproducers here ("" = off)
};

/** One detected failure. */
struct FuzzFailure
{
    std::uint64_t seed = 0;   ///< per-program seed (regenerates it)
    std::string kind;         ///< "emu-diverge", "core-diverge", ...
    std::string detail;       ///< first differing word, variant, point
    std::string reproPath;    ///< file written, if reproDir was set
    std::string minimizedIr;  ///< IR text after shrinking
};

/** Campaign result. */
struct FuzzReport
{
    unsigned programs = 0;       ///< programs generated and checked
    unsigned variantsChecked = 0;///< variant runs on the emulator
    unsigned dispatchChecked = 0;///< switch-vs-threaded cross-checks
    unsigned coreRuns = 0;       ///< core simulations executed
    unsigned compileRejects = 0; ///< out-of-predicate-register skips
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Outcome of checking one program (shared by fuzz loop and replay). */
struct CheckOutcome
{
    bool ok = true;
    std::string kind;   ///< empty when ok
    std::string detail; ///< empty when ok
    bool compileReject = false; ///< fresh-guard pool exhausted: skip
    unsigned variantsChecked = 0;
    unsigned dispatchChecked = 0;
    unsigned coreRuns = 0;
};

/** Differential check of one IR function under the given options. */
CheckOutcome checkProgram(const IrFunction &fn, const FuzzOptions &opts);

/** Run a campaign. Progress and failures are narrated to 'log' when
 *  non-null. */
FuzzReport fuzzCampaign(const FuzzOptions &opts,
                        std::ostream *log = nullptr);

/** Serialize a reproducer document (header comments + IR text). */
std::string formatReproducer(const FuzzFailure &f, const IrFunction &fn);

/**
 * Parse a reproducer file's contents (the comment header is ignored by
 * the IR parser) and re-run the differential check. Returns the check
 * outcome for the *current* tree — a fixed bug yields ok=true.
 */
CheckOutcome replayReproducer(const std::string &text,
                              const FuzzOptions &opts);

} // namespace wisc

#endif // WISC_FUZZ_FUZZER_HH_
