#include "fuzz/fuzzer.hh"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "arch/emulator.hh"
#include "arch/state_diff.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "compiler/driver.hh"
#include "compiler/ir_text.hh"
#include "fuzz/shrink.hh"
#include "harness/runner.hh"

namespace wisc {
namespace {

/** Common adjustments for every matrix point: the fuzzer does its own
 *  final-state comparison (reportable, shrinkable) instead of dying on
 *  the core-internal assert, and a timing hang must not stall the
 *  campaign. */
SimParams
fuzzBase()
{
    SimParams p;
    p.checkFinalState = false;
    p.maxCycles = 20'000'000;
    p.maxRetired = 20'000'000;
    return p;
}

} // namespace

std::vector<ParamsPoint>
defaultParamsMatrix(bool smoke)
{
    std::vector<ParamsPoint> m;

    {
        SimParams p = fuzzBase();
        p.collectAttribution = true;
        m.push_back({"default-attrib", p});
    }
    {
        SimParams p = fuzzBase();
        p.robSize = 64;
        p.iqSize = 16;
        p.lsqSize = 32;
        p.pollScheduler = true; // cross-checked against its event twin
        m.push_back({"small-poll", p});
    }
    {
        SimParams p = fuzzBase();
        p.confSets = 16;
        p.confHistBits = 4;
        p.confThreshold = 4;
        p.fetchWidth = 4;
        p.pipelineStages = 10;
        p.collectAttribution = true;
        m.push_back({"tiny-conf-shallow", p});
    }
    {
        // Small TAGE (with its free confidence estimator) so the zoo
        // is covered even on the smoke matrix; tables are kept tiny to
        // force aliasing, allocation churn and u-bit aging.
        SimParams p = fuzzBase();
        p.predictor = PredictorKind::Tage;
        p.confKind = ConfKind::Tage;
        p.tageTables = 4;
        p.tageEntriesLog2 = 6;
        p.tageBaseEntriesLog2 = 8;
        p.tageMaxHist = 32;
        p.tageResetPeriod = 4096;
        m.push_back({"tage-small", p});
    }
    {
        SimParams p = fuzzBase();
        p.predictor = PredictorKind::Bimodal;
        p.bimodalEntries = 256;
        m.push_back({"bimodal", p});
    }
    {
        // Dynamic predication, tuned hot: a small merge table with a
        // single-confirmation threshold on a tiny low-threshold JRS so
        // regions trigger constantly, on a small machine so the runtime
        // region cap and the trigger-deferral path are exercised under
        // IQ/ROB pressure.
        SimParams p = fuzzBase();
        p.dynPred = DynPredMode::MergePoint;
        p.dynMergeMinConf = 1;
        p.dynMergeEntries = 64;
        p.robSize = 64;
        p.iqSize = 16;
        p.lsqSize = 32;
        p.confSets = 16;
        p.confHistBits = 4;
        p.confThreshold = 6;
        p.collectAttribution = true;
        m.push_back({"dynpred-merge", p});
    }
    if (!smoke) {
        {
            SimParams p = fuzzBase();
            p.predMech = PredMechanism::SelectUop;
            p.collectAttribution = true;
            m.push_back({"select-uop", p});
        }
        {
            SimParams p = fuzzBase();
            p.confKind = ConfKind::UpDown;
            p.collectAttribution = true;
            m.push_back({"updown-conf", p});
        }
        {
            SimParams p = fuzzBase();
            p.predictor = PredictorKind::TwoLevel;
            p.twoLevelEntries = 1024;
            p.twoLevelHistBits = 6;
            m.push_back({"two-level", p});
        }
        {
            // Merge-point predication colliding with compiler wish
            // branches and select-µop expansion in the same frontend.
            SimParams p = fuzzBase();
            p.dynPred = DynPredMode::MergePoint;
            p.dynMergeMinConf = 1;
            p.predMech = PredMechanism::SelectUop;
            p.collectAttribution = true;
            m.push_back({"dynpred-merge-select", p});
        }
        {
            SimParams p = fuzzBase();
            p.dynPred = DynPredMode::FetchGate;
            p.dynFetchGateCycles = 8;
            p.collectAttribution = true;
            m.push_back({"dynpred-fetchgate", p});
        }
    }
    return m;
}

CheckOutcome
checkProgram(const IrFunction &fn, const FuzzOptions &opts)
{
    CheckOutcome out;
    auto fail = [&](const char *kind, const std::string &detail) {
        out.ok = false;
        out.kind = kind;
        out.detail = detail;
    };

    std::map<BinaryVariant, CompiledBinary> variants;
    try {
        CompileOptions copts;
        copts.profileMaxSteps = opts.emuMaxSteps;
        variants = compileAllVariants(fn, copts);
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        if (msg.find("out of predicate registers") != std::string::npos) {
            // Documented pass limitation, not a bug: count and skip.
            out.compileReject = true;
            return out;
        }
        if (msg.find("did not terminate") != std::string::npos) {
            // The profiling run hit the step budget: same invariant
            // violation as a non-halting variant, one stage earlier.
            fail("nonhalt", msg);
            return out;
        }
        fail("compile-fatal", msg);
        return out;
    }

    // (a) Functional equivalence, full state, every variant.
    Emulator refEmu;
    const Program &refProg =
        variants.at(BinaryVariant::Normal).program;
    EmuResult refRes = refEmu.run(refProg, nullptr, opts.emuMaxSteps);
    if (!refRes.halted) {
        fail("nonhalt",
             detail::format("normal variant did not halt within ",
                            opts.emuMaxSteps, " steps"));
        return out;
    }

    for (const auto &kv : variants) {
        Emulator emu;
        EmuResult res = emu.run(kv.second.program, nullptr,
                                opts.emuMaxSteps);
        ++out.variantsChecked;
        if (!res.halted) {
            fail("nonhalt",
                 detail::format(variantName(kv.first),
                                " did not halt within ",
                                opts.emuMaxSteps,
                                " steps (normal halted after ",
                                refRes.dynInsts, ")"));
            return out;
        }
        if (StateDiff d = firstStateDiff(refEmu.state(), emu.state())) {
            fail("emu-diverge",
                 detail::format(variantName(kv.first), ": ",
                                d.describe()));
            return out;
        }

        // (b) Dispatch differential: the computed-goto threaded engine
        // (what `emu` just ran, and what sampled simulation fast-forwards
        // on) must be bit-identical to the reference switch interpreter
        // — same retire counts and *every* architectural state word.
        if (opts.checkDispatch) {
            Emulator sw;
            EmuResult swRes = sw.run(kv.second.program, nullptr,
                                     opts.emuMaxSteps,
                                     EmuDispatch::Switch);
            ++out.dispatchChecked;
            if (swRes.halted != res.halted ||
                swRes.dynInsts != res.dynInsts ||
                swRes.predFalse != res.predFalse ||
                swRes.resultReg != res.resultReg ||
                swRes.memFingerprint != res.memFingerprint) {
                fail("dispatch-diverge",
                     detail::format(
                         variantName(kv.first),
                         ": switch vs threaded counters: halted ",
                         swRes.halted, "/", res.halted, ", dynInsts ",
                         swRes.dynInsts, "/", res.dynInsts,
                         ", predFalse ", swRes.predFalse, "/",
                         res.predFalse, ", result ", swRes.resultReg,
                         "/", res.resultReg, ", memfp ",
                         swRes.memFingerprint, "/",
                         res.memFingerprint));
                return out;
            }
            if (StateDiff d = firstStateDiff(sw.state(), emu.state())) {
                fail("dispatch-diverge",
                     detail::format(variantName(kv.first),
                                    ": switch vs threaded state: ",
                                    d.describe()));
                return out;
            }
        }
    }

    // (c) + (d) Cycle-accurate core across the machine matrix.
    if (!opts.runCore)
        return out;
    for (const ParamsPoint &pt : opts.matrix) {
        for (const auto &kv : variants) {
            const char *vn = variantName(kv.first);
            RunOutcome r;
            try {
                r = captureRun(kv.second.program, pt.params);
            } catch (const FatalError &e) {
                fail("core-fatal", detail::format(pt.label, "/", vn,
                                                  ": ", e.what()));
                return out;
            }
            ++out.coreRuns;
            if (!r.result.halted) {
                fail("core-hang",
                     detail::format(pt.label, "/", vn,
                                    ": core hit the cycle limit at ",
                                    r.result.cycles, " cycles"));
                return out;
            }
            if (r.result.resultReg != refRes.resultReg ||
                r.result.memFingerprint != refRes.memFingerprint) {
                fail("core-diverge",
                     detail::format(
                         pt.label, "/", vn, ": result ",
                         r.result.resultReg, " vs emulator ",
                         refRes.resultReg, ", memfp ",
                         r.result.memFingerprint, " vs ",
                         refRes.memFingerprint));
                return out;
            }
            if (pt.params.collectAttribution) {
                std::uint64_t sum = 0;
                for (const auto &st : r.stats)
                    if (st.first.rfind("attrib.", 0) == 0)
                        sum += st.second;
                if (sum != r.result.cycles) {
                    fail("attrib-invariant",
                         detail::format(pt.label, "/", vn, ": sum(",
                                        sum, ") != core.cycles(",
                                        r.result.cycles, ")"));
                    return out;
                }
            }
            if (pt.params.pollScheduler) {
                // The poll scan is the event scheduler's verification
                // reference: identical machines must produce identical
                // statistics.
                SimParams twin = pt.params;
                twin.pollScheduler = false;
                RunOutcome e = captureRun(kv.second.program, twin);
                ++out.coreRuns;
                if (e.result.cycles != r.result.cycles ||
                    e.stats != r.stats) {
                    fail("sched-mismatch",
                         detail::format(pt.label, "/", vn,
                                        ": poll vs event scheduler "
                                        "statistics differ (cycles ",
                                        r.result.cycles, " vs ",
                                        e.result.cycles, ")"));
                    return out;
                }
            }
        }
    }
    return out;
}

std::string
formatReproducer(const FuzzFailure &f, const IrFunction &fn)
{
    std::ostringstream os;
    os << "; wisc_fuzz reproducer\n";
    os << "; seed=" << f.seed << "\n";
    os << "; kind=" << f.kind << "\n";
    std::string detail = f.detail;
    for (char &c : detail)
        if (c == '\n')
            c = ' ';
    os << "; detail=" << detail << "\n";
    os << irToText(fn);
    return os.str();
}

CheckOutcome
replayReproducer(const std::string &text, const FuzzOptions &opts)
{
    IrFunction fn = irFromText(text);
    return checkProgram(fn, opts);
}

FuzzReport
fuzzCampaign(const FuzzOptions &opts, std::ostream *log)
{
    FuzzReport rep;
    for (unsigned i = 0; i < opts.runs; ++i) {
        const std::uint64_t progSeed =
            mixHash(opts.seed + 0x9e3779b97f4a7c15ull * (i + 1));
        IrFunction fn = generateProgram(progSeed, opts.gen);
        CheckOutcome c = checkProgram(fn, opts);
        ++rep.programs;
        rep.variantsChecked += c.variantsChecked;
        rep.dispatchChecked += c.dispatchChecked;
        rep.coreRuns += c.coreRuns;
        if (c.compileReject) {
            ++rep.compileRejects;
            continue;
        }
        if (c.ok)
            continue;

        FuzzFailure f;
        f.seed = progSeed;
        f.kind = c.kind;
        f.detail = c.detail;
        if (log)
            *log << "wisc_fuzz: seed " << progSeed << " FAILED ["
                 << c.kind << "] " << c.detail << std::endl;

        IrFunction minimized = fn;
        if (opts.shrink) {
            // Shrinking re-checks the predicate hundreds of times, so
            // drop the core matrix unless the failure needs it.
            FuzzOptions so = opts;
            so.shrink = false;
            const bool coreKind = f.kind.rfind("core", 0) == 0 ||
                                  f.kind == "attrib-invariant" ||
                                  f.kind == "sched-mismatch";
            so.runCore = coreKind;
            const unsigned budget = coreKind ? 400 : 1500;
            auto sameFailure = [&](const IrFunction &cand) {
                CheckOutcome cc = checkProgram(cand, so);
                return !cc.ok && cc.kind == f.kind;
            };
            ShrinkStats st;
            minimized = shrinkIr(fn, sameFailure, &st, budget);
            CheckOutcome cc = checkProgram(minimized, so);
            if (!cc.ok)
                f.detail = cc.detail;
            if (log)
                *log << "wisc_fuzz: shrunk with " << st.checks
                     << " checks / " << st.accepted << " edits ("
                     << st.rounds << " rounds)" << std::endl;
        }
        f.minimizedIr = irToText(minimized);

        if (!opts.reproDir.empty()) {
            std::filesystem::create_directories(opts.reproDir);
            std::string path =
                opts.reproDir + "/repro_" + std::to_string(progSeed) +
                "_" + f.kind + ".ir";
            std::ofstream of(path);
            of << formatReproducer(f, minimized);
            if (of.good())
                f.reproPath = path;
            else
                wisc_warn("wisc_fuzz: failed to write reproducer ", path);
            if (log && !f.reproPath.empty())
                *log << "wisc_fuzz: reproducer written to " << path
                     << std::endl;
        }
        rep.failures.push_back(std::move(f));
    }
    return rep;
}

} // namespace wisc
