#include "fuzz/shrink.hh"

#include <functional>

#include "common/log.hh"

namespace wisc {
namespace {

/** Mark every block unreachable from the entry dead (the entry always
 *  survives). Lowering skips dead blocks, so this shrinks the binary
 *  as well as the IR. */
void
killUnreachable(IrFunction &fn)
{
    std::vector<bool> seen(fn.numBlocks(), false);
    std::vector<BlockId> work{fn.entry()};
    seen[fn.entry()] = true;
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId s : fn.successors(b)) {
            if (s != kNoBlock && s < fn.numBlocks() && !seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    for (BlockId b = 0; b < fn.numBlocks(); ++b)
        if (!seen[b])
            fn.block(b).dead = true;
}

class Shrinker
{
  public:
    Shrinker(const FailurePredicate &pred, unsigned budget)
        : pred_(pred), budget_(budget)
    {
    }

    IrFunction
    run(const IrFunction &fn)
    {
        if (!check(fn))
            wisc_fatal("shrinkIr: the input function does not fail the "
                       "given predicate (or the check budget is 0)");

        IrFunction cur = fn;
        for (unsigned round = 0; round < kMaxRounds; ++round) {
            ++st_.rounds;
            bool any = false;
            any |= passBypassBranches(cur);
            any |= passEmptyBlocks(cur);
            any |= passDeleteInsts(cur);
            any |= passSimplifyOperands(cur);
            any |= passDropData(cur);
            if (!any || st_.checks >= budget_)
                break;
        }
        return cur;
    }

    const ShrinkStats &stats() const { return st_; }

  private:
    static constexpr unsigned kMaxRounds = 8;

    bool
    check(const IrFunction &cand)
    {
        if (st_.checks >= budget_)
            return false;
        ++st_.checks;
        try {
            cand.validate();
            return pred_(cand);
        } catch (const FatalError &) {
            // Candidate broke in a way the predicate does not claim —
            // a different failure; reject the edit.
            return false;
        }
    }

    bool
    tryEdit(IrFunction &fn, const std::function<void(IrFunction &)> &edit)
    {
        IrFunction cand = fn;
        edit(cand);
        if (!check(cand))
            return false;
        fn = std::move(cand);
        ++st_.accepted;
        return true;
    }

    /** ddmin-style chunked instruction deletion inside every block. */
    bool
    passDeleteInsts(IrFunction &fn)
    {
        bool any = false;
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            if (fn.block(b).dead)
                continue;
            std::size_t n = fn.block(b).insts.size();
            for (std::size_t chunk = n ? n : 1; chunk >= 1; chunk /= 2) {
                std::size_t start = 0;
                while (start + chunk <= fn.block(b).insts.size()) {
                    bool ok = tryEdit(fn, [&](IrFunction &c) {
                        auto &v = c.block(b).insts;
                        v.erase(v.begin() + static_cast<long>(start),
                                v.begin() + static_cast<long>(start + chunk));
                    });
                    if (ok)
                        any = true; // vector shrank; same start again
                    else
                        start += chunk;
                }
                if (chunk == 1)
                    break;
            }
        }
        return any;
    }

    /** Try emptying whole blocks (keeps the terminator / CFG shape). */
    bool
    passEmptyBlocks(IrFunction &fn)
    {
        bool any = false;
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            if (fn.block(b).dead || fn.block(b).insts.empty())
                continue;
            any |= tryEdit(fn, [&](IrFunction &c) {
                c.block(b).insts.clear();
            });
        }
        return any;
    }

    /** Rewrite conditional branches to one of their sides, then kill
     *  whatever became unreachable — deletes whole subgraphs. */
    bool
    passBypassBranches(IrFunction &fn)
    {
        bool any = false;
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            if (fn.block(b).dead ||
                fn.block(b).term.kind != TermKind::CondBr)
                continue;
            for (bool takeTaken : {true, false}) {
                bool ok = tryEdit(fn, [&](IrFunction &c) {
                    Terminator &t = c.block(b).term;
                    BlockId tgt = takeTaken ? t.taken : t.next;
                    t = Terminator{};
                    t.kind = TermKind::Jump;
                    t.taken = tgt;
                    killUnreachable(c);
                });
                if (ok) {
                    any = true;
                    break;
                }
            }
        }
        return any;
    }

    /** Zero immediates, drop qualifying predicates, clear unc flags. */
    bool
    passSimplifyOperands(IrFunction &fn)
    {
        bool any = false;
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            if (fn.block(b).dead)
                continue;
            for (std::size_t i = 0; i < fn.block(b).insts.size(); ++i) {
                // By value: an accepted tryEdit replaces 'fn' wholesale,
                // so a reference into its instruction vector would
                // dangle across iterations of the field edits below.
                const Instruction inst = fn.block(b).insts[i];
                if (inst.imm != 0) {
                    any |= tryEdit(fn, [&](IrFunction &c) {
                        c.block(b).insts[i].imm = 0;
                    });
                }
                if (inst.qp != 0) {
                    any |= tryEdit(fn, [&](IrFunction &c) {
                        c.block(b).insts[i].qp = 0;
                    });
                }
                if (inst.unc) {
                    any |= tryEdit(fn, [&](IrFunction &c) {
                        c.block(b).insts[i].unc = false;
                    });
                }
            }
        }
        return any;
    }

    /** Drop data segments wholesale, then halve the survivors. */
    bool
    passDropData(IrFunction &fn)
    {
        bool any = false;
        for (std::size_t i = 0; i < fn.data().size(); ++i) {
            any |= tryEdit(fn, [&](IrFunction &c) {
                // IrFunction has no segment-removal API; rebuild.
                std::vector<DataSegment> keep;
                for (std::size_t j = 0; j < c.data().size(); ++j)
                    if (j != i)
                        keep.push_back(c.data()[j]);
                IrFunction repl = rebuildWithData(c, keep);
                c = std::move(repl);
            });
        }
        for (std::size_t i = 0; i < fn.data().size(); ++i) {
            if (fn.data()[i].words.size() < 2)
                continue;
            any |= tryEdit(fn, [&](IrFunction &c) {
                std::vector<DataSegment> segs = c.data();
                segs[i].words.resize(segs[i].words.size() / 2);
                IrFunction repl = rebuildWithData(c, segs);
                c = std::move(repl);
            });
        }
        return any;
    }

    /** Copy 'src' with a different data-segment list. */
    static IrFunction
    rebuildWithData(const IrFunction &src,
                    const std::vector<DataSegment> &segs)
    {
        IrFunction out = src;
        // Blocks/entry/preds copy over; only data must be replaced, and
        // addData is append-only, so rebuild from a block-only copy.
        IrFunction fresh;
        while (fresh.numBlocks() < out.numBlocks())
            fresh.newBlock();
        for (BlockId b = 0; b < out.numBlocks(); ++b)
            fresh.block(b) = out.block(b);
        fresh.setEntry(out.entry());
        fresh.setMaxUserPred(out.maxUserPred());
        for (const DataSegment &s : segs)
            fresh.addData(s.base, s.words);
        return fresh;
    }

    const FailurePredicate &pred_;
    unsigned budget_;
    ShrinkStats st_;
};

} // namespace

IrFunction
shrinkIr(const IrFunction &fn, const FailurePredicate &stillFails,
         ShrinkStats *stats, unsigned checkBudget)
{
    Shrinker s(stillFails, checkBudget);
    IrFunction out = s.run(fn);
    if (stats)
        *stats = s.stats();
    return out;
}

} // namespace wisc
