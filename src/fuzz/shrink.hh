/**
 * @file
 * Automatic test-case reduction for fuzzer-found divergences.
 *
 * Given a failing IR function and a predicate that re-checks the
 * failure, the shrinker greedily applies reduction passes — delete
 * instruction chunks (ddmin-style halving), empty whole blocks, bypass
 * conditional branches (rewriting them to one side and killing the
 * unreachable subgraph), and simplify operands (zero immediates, drop
 * qualifying predicates, drop data segments) — keeping an edit only if
 * the reduced function still validates and still fails. Runs rounds to
 * a fixpoint under a bounded check budget, so shrinking always
 * terminates even when the predicate is expensive.
 *
 * The predicate must treat *any* error path it does not recognize as
 * "not the same failure" (return false) — the shrinker itself catches
 * FatalError thrown by validation or by the predicate and rejects the
 * candidate.
 */

#ifndef WISC_FUZZ_SHRINK_HH_
#define WISC_FUZZ_SHRINK_HH_

#include <functional>

#include "compiler/ir.hh"

namespace wisc {

/** Re-check callback: true iff the candidate still exhibits the
 *  original failure. */
using FailurePredicate = std::function<bool(const IrFunction &)>;

/** Reduction telemetry. */
struct ShrinkStats
{
    unsigned checks = 0;   ///< predicate evaluations spent
    unsigned accepted = 0; ///< edits kept
    unsigned rounds = 0;   ///< full pass sweeps
};

/**
 * Reduce 'fn' while 'stillFails' holds. 'fn' itself must fail (asserted
 * via one predicate call up front). Returns the smallest function
 * found; stats (if non-null) reports the work done.
 *
 * @param checkBudget hard cap on predicate evaluations.
 */
IrFunction shrinkIr(const IrFunction &fn,
                    const FailurePredicate &stillFails,
                    ShrinkStats *stats = nullptr,
                    unsigned checkBudget = 2000);

} // namespace wisc

#endif // WISC_FUZZ_SHRINK_HH_
