/**
 * @file
 * Seeded random IR generator for the differential fuzzer.
 *
 * Emits structured CFGs through KernelBuilder — the same front end the
 * hand-written workloads use, so every generated program honors the
 * conventions the if-conversion and wish-lowering passes rely on:
 * hammocks (if-then), diamonds (if-then-else, possibly with empty
 * arms), nested if-else chains, and short do-while / while loops with
 * data-dependent trip counts, plus loads and stores into a synthesized
 * data segment. All loops are counter-bounded, so every generated
 * program terminates by construction.
 *
 * Determinism: generateProgram(seed, cfg) is a pure function — the same
 * seed and config produce the same IR on every platform (Rng is the
 * repo's xorshift64*, not std::mt19937).
 */

#ifndef WISC_FUZZ_GENERATOR_HH_
#define WISC_FUZZ_GENERATOR_HH_

#include <cstdint>

#include "compiler/ir.hh"

namespace wisc {

/** Knobs bounding the shape of generated programs. */
struct GenConfig
{
    /** Maximum nesting depth of structured constructs. */
    unsigned maxDepth = 3;
    /** Maximum loop nesting depth (counter registers are per-level). */
    unsigned maxLoopDepth = 2;
    /** Baseline statements per body (the generator draws in
     *  [1, 2*stmtsPerBody]). */
    unsigned stmtsPerBody = 5;
    /** Total if-constructs per program. Bounded because every converted
     *  region consumes fresh guard predicates from the finite p10..p15
     *  pool; exhaustion is a (counted) compile reject, not a bug. */
    unsigned hammockBudget = 4;
    /** Total loops per program. */
    unsigned loopBudget = 3;
    /** Trip counts are data-dependent in [1, tripMask+2]; tripMask must
     *  be 2^k - 1. */
    unsigned tripMask = 7;
    /** Words in the synthesized input segment (power of two). */
    unsigned dataWords = 64;
    /** Words in the writable output window (power of two). */
    unsigned outWords = 64;
    /**
     * Probability that a loop body is padded to straddle the wish-loop
     * body limit (the paper's L=30 boundary) — the padding count is
     * drawn from [L-4, L+4] so both just-convertible and just-rejected
     * bodies appear.
     */
    double bigLoopBodyChance = 0.15;
    /** Probability that a hammock arm is left empty (exercises empty
     *  fall-through paths in region discovery and wish lowering). */
    double emptyArmChance = 0.15;
};

/** Base of the synthesized read-mostly input segment. */
inline constexpr Addr kFuzzDataBase = 0x20000;
/** Base of the store target window. */
inline constexpr Addr kFuzzOutBase = 0x80000;

/** Generate one structured random program. */
IrFunction generateProgram(std::uint64_t seed,
                           const GenConfig &cfg = GenConfig{});

} // namespace wisc

#endif // WISC_FUZZ_GENERATOR_HH_
