/**
 * @file
 * CFG cleanup: merge forward single-predecessor chains.
 *
 * After full if-conversion collapses a hammock, the head typically ends
 * with an unconditional jump to a join block whose only predecessor is
 * the head. Merging such chains is what turns a loop whose body contained
 * a hammock back into a single-block self loop — a wish-loop candidate.
 */

#ifndef WISC_COMPILER_SIMPLIFY_HH_
#define WISC_COMPILER_SIMPLIFY_HH_

#include "compiler/ir.hh"

namespace wisc {

/**
 * Repeatedly merge block pairs (B, C) where B ends in an unconditional
 * Jump/Fallthrough to C, C's only predecessor is B, C is not the entry,
 * and C comes after B in layout order. Returns the number of merges.
 */
unsigned simplifyChains(IrFunction &fn);

} // namespace wisc

#endif // WISC_COMPILER_SIMPLIFY_HH_
