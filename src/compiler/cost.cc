#include "compiler/cost.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"

namespace wisc {

double
instLatency(const Instruction &inst)
{
    switch (inst.instrClass()) {
      case InstrClass::IntAlu:  return 1.0;
      case InstrClass::IntMul:  return 3.0;
      case InstrClass::IntDiv:  return 12.0;
      case InstrClass::Load:    return 2.0;  // assumes an L1 hit
      case InstrClass::Store:   return 1.0;
      case InstrClass::Branch:  return 1.0;
      case InstrClass::Other:   return 1.0;
    }
    return 1.0;
}

double
estimateSequenceCycles(const std::vector<Instruction> &insts,
                       const CostParams &params)
{
    // Dependence-height over registers and predicates: ready[x] is the
    // cycle at which resource x becomes available.
    std::map<int, double> regReady;  // key: register index
    std::map<int, double> predReady; // key: predicate index
    double height = 0.0;
    double totalLatency = 0.0;

    auto regTime = [&](RegIdx r) {
        if (r == kRegZero)
            return 0.0;
        auto it = regReady.find(r);
        return it == regReady.end() ? 0.0 : it->second;
    };
    auto predTime = [&](PredIdx p) {
        if (p == 0)
            return 0.0;
        auto it = predReady.find(p);
        return it == predReady.end() ? 0.0 : it->second;
    };

    for (const Instruction &inst : insts) {
        double start = predTime(inst.qp);
        if (inst.readsRs1())
            start = std::max(start, regTime(inst.rs1));
        if (inst.readsRs2())
            start = std::max(start, regTime(inst.rs2));
        if (inst.op == Opcode::PNot || inst.op == Opcode::PAnd ||
            inst.op == Opcode::POr)
            start = std::max(start, predTime(inst.ps));
        if (inst.op == Opcode::PAnd || inst.op == Opcode::POr)
            start = std::max(start, predTime(inst.ps2));

        double lat = instLatency(inst);
        totalLatency += lat;
        double done = start + lat;

        if (inst.writesReg())
            regReady[inst.rd] = done;
        if (inst.writesPred()) {
            if (inst.pd != kPredNone)
                predReady[inst.pd] = done;
            if (inst.pd2 != kPredNone)
                predReady[inst.pd2] = done;
        }
        height = std::max(height, done);
    }

    return std::max(height, totalLatency / params.issueWidth);
}

namespace {

/**
 * Expected cycles of the region code conditioned on the first edge out of
 * the head. Enumerates all paths from 'start' to 'join' (regions are
 * small DAGs), weighting block costs by path probabilities.
 */
double
expectedPathCycles(const IrFunction &fn, BlockId start, BlockId join,
                   const BranchStats &stats, const CostParams &params,
                   int depth = 0)
{
    if (start == join || depth > 16)
        return 0.0;

    const IrBlock &blk = fn.block(start);
    double own = estimateSequenceCycles(blk.insts, params);
    const Terminator &t = blk.term;

    switch (t.kind) {
      case TermKind::Fallthrough:
        return own + expectedPathCycles(fn, t.next, join, stats, params,
                                        depth + 1);
      case TermKind::Jump:
        return own + expectedPathCycles(fn, t.taken, join, stats, params,
                                        depth + 1);
      case TermKind::CondBr: {
        double pt = stats.taken(start);
        double ct = expectedPathCycles(fn, t.taken, join, stats, params,
                                       depth + 1);
        double cn = expectedPathCycles(fn, t.next, join, stats, params,
                                       depth + 1);
        // Inner branches carry their own misprediction exposure.
        return own + 1.0 + pt * ct + (1.0 - pt) * cn +
               params.mispredictPenalty * stats.mispredict(start);
      }
      case TermKind::Indirect:
      case TermKind::Halt:
        return own;
    }
    return own;
}

} // namespace

bool
predicationProfitable(const IrFunction &fn, BlockId head, BlockId join,
                      const std::vector<BlockId> &region,
                      const BranchStats &stats, const CostParams &params)
{
    const Terminator &t = fn.block(head).term;
    wisc_assert(t.kind == TermKind::CondBr,
                "cost model needs a conditional head");

    // Equation 4.1: branchy execution.
    double pTaken = stats.taken(head);
    double execT = expectedPathCycles(fn, t.taken, join, stats, params);
    double execN = expectedPathCycles(fn, t.next, join, stats, params);
    double execNormal = execT * pTaken + execN * (1.0 - pTaken) +
                        params.mispredictPenalty * stats.mispredict(head);

    // Equation 4.2: predicated execution runs every region instruction.
    std::vector<Instruction> merged;
    for (BlockId b : region) {
        const IrBlock &blk = fn.block(b);
        merged.insert(merged.end(), blk.insts.begin(), blk.insts.end());
    }
    double execPred = estimateSequenceCycles(merged, params);

    // Equation 4.3.
    return execPred < execNormal;
}

} // namespace wisc
