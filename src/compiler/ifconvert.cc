#include "compiler/ifconvert.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"
#include "compiler/analysis.hh"

namespace wisc {

namespace {

bool
isCompare(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU:
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
        return true;
      default:
        return false;
    }
}

bool
isPredOp(Opcode op)
{
    return op == Opcode::PNot || op == Opcode::PAnd || op == Opcode::POr;
}

/**
 * Index of the compare that defines (cond, condC) in this block: the last
 * writer of either predicate, which must be a compare producing exactly
 * that complementary pair. Returns -1 if no such compare exists.
 */
int
findDefiningCmp(const IrBlock &blk, PredIdx cond, PredIdx condC)
{
    for (int i = static_cast<int>(blk.insts.size()) - 1; i >= 0; --i) {
        const Instruction &inst = blk.insts[i];
        if (!inst.writesPred())
            continue;
        bool touches = inst.pd == cond || inst.pd2 == cond ||
                       (condC != kPredNone &&
                        (inst.pd == condC || inst.pd2 == condC));
        if (!touches)
            continue;
        if (!isCompare(inst.op))
            return -1;
        bool straight = inst.pd == cond && inst.pd2 == condC;
        bool flipped = inst.pd == condC && inst.pd2 == cond;
        return (straight || flipped) ? i : -1;
    }
    return -1;
}

/** Every edge predicate the conversion of this region would consume. */
std::set<PredIdx>
edgePredicates(const IrFunction &fn, const RegionInfo &r)
{
    std::set<PredIdx> preds;
    const Terminator &ht = fn.block(r.head).term;
    preds.insert(ht.cond);
    preds.insert(ht.condC);
    for (BlockId b : r.blocks) {
        const Terminator &t = fn.block(b).term;
        if (t.kind == TermKind::CondBr) {
            preds.insert(t.cond);
            preds.insert(t.condC);
        }
    }
    preds.erase(kPredNone);
    return preds;
}

} // namespace

std::vector<RegionInfo>
findConvertibleRegions(const IrFunction &fn, const IfConvertLimits &limits)
{
    std::vector<RegionInfo> result;
    auto ipdom = immediatePostdominators(fn);
    auto preds = fn.predecessors();

    for (BlockId head = 0; head < fn.numBlocks(); ++head) {
        const IrBlock &hb = fn.block(head);
        if (hb.dead || hb.term.kind != TermKind::CondBr ||
            hb.term.wish != WishKind::None)
            continue;
        if (hb.term.condC == kPredNone)
            continue;
        if (findDefiningCmp(hb, hb.term.cond, hb.term.condC) < 0)
            continue;

        BlockId join = ipdom[head];
        if (join == kNoBlock)
            continue;

        RegionInfo r;
        r.head = head;
        r.join = join;
        r.blocks = regionBlocks(fn, head, join);
        if (r.blocks.empty())
            continue; // degenerate (both edges to join) or escaping
        if (r.blocks.size() > limits.maxBlocks)
            continue;
        if (!isAcyclic(fn, r.blocks))
            continue;

        std::set<BlockId> member(r.blocks.begin(), r.blocks.end());
        member.insert(head);

        bool ok = true;
        for (BlockId b : r.blocks) {
            const IrBlock &blk = fn.block(b);
            r.instCount += static_cast<unsigned>(blk.insts.size());

            // No side entries.
            for (BlockId p : preds[b]) {
                if (!member.count(p)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;

            // Only plain structured terminators, each with its own
            // defining compare; no wish branches from earlier passes.
            const Terminator &t = blk.term;
            switch (t.kind) {
              case TermKind::CondBr:
                if (t.wish != WishKind::None ||
                    t.condC == kPredNone ||
                    findDefiningCmp(blk, t.cond, t.condC) < 0)
                    ok = false;
                break;
              case TermKind::Jump:
              case TermKind::Fallthrough:
                break;
              case TermKind::Indirect:
              case TermKind::Halt:
                ok = false;
                break;
            }
            if (!ok)
                break;

            // Targets stay inside the region or go to the join.
            for (BlockId s : fn.successors(b)) {
                if (s != r.join && !member.count(s)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
        }
        if (!ok || r.instCount > limits.maxInsts)
            continue;

        // The id order must be a topological order (every intra-region
        // edge goes forward); our builder lays hammocks out this way and
        // the converters rely on it.
        for (BlockId b : r.blocks) {
            if (b <= head) {
                ok = false;
                break;
            }
            for (BlockId s : fn.successors(b)) {
                if (s != r.join && s <= b) {
                    ok = false;
                    break;
                }
            }
        }
        if (!ok)
            continue;

        // Predicate-write safety: no region instruction may write a
        // predicate the conversion uses as an edge predicate, except each
        // block's own defining compare.
        auto edges = edgePredicates(fn, r);
        for (BlockId b : r.blocks) {
            const IrBlock &blk = fn.block(b);
            int defIdx = blk.term.kind == TermKind::CondBr
                             ? findDefiningCmp(blk, blk.term.cond,
                                               blk.term.condC)
                             : -1;
            for (int i = 0; i < static_cast<int>(blk.insts.size()); ++i) {
                const Instruction &inst = blk.insts[i];
                if (!inst.writesPred() || i == defIdx)
                    continue;
                if ((inst.pd != kPredNone && edges.count(inst.pd)) ||
                    (inst.pd2 != kPredNone && edges.count(inst.pd2))) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
        }
        if (!ok)
            continue;

        const Terminator &ht = hb.term;
        r.fallthroughSize =
            ht.next == r.join
                ? 0
                : static_cast<unsigned>(fn.block(ht.next).insts.size());

        result.push_back(std::move(r));
    }

    std::sort(result.begin(), result.end(),
              [](const RegionInfo &a, const RegionInfo &b) {
                  if (a.blocks.size() != b.blocks.size())
                      return a.blocks.size() < b.blocks.size();
                  return a.instCount < b.instCount;
              });
    return result;
}

bool
ifConvertRegion(IrFunction &fn, const RegionInfo &r, bool keepWishBranches)
{
    // Wish generation needs the region to be exactly the live blocks laid
    // out between head and join, so that a not-taken (low-confidence)
    // fall path really executes the predicated layout.
    if (keepWishBranches) {
        if (r.join <= r.head)
            return false;
        std::vector<BlockId> between;
        for (BlockId b = r.head + 1; b < r.join; ++b)
            if (!fn.block(b).dead)
                between.push_back(b);
        if (between != r.blocks)
            return false;
    }

    auto preds = fn.predecessors();
    const Terminator headTerm = fn.block(r.head).term;

    // Edge predicate of edge (from -> to).
    auto edgePredOf = [&](BlockId from, BlockId to) -> PredIdx {
        const Terminator &t = from == r.head ? headTerm
                                             : fn.block(from).term;
        if (t.kind == TermKind::CondBr) {
            // A CondBr may have both edges to the same target; then the
            // edge is unconditional relative to the block.
            if (t.taken == t.next)
                return fn.block(from).guard
                           ? fn.block(from).guard
                           : PredIdx(0);
            return to == t.taken ? t.cond : t.condC;
        }
        // Jump/Fallthrough edges fire whenever the block was live.
        return fn.block(from).guard;
    };

    // Pass 1: assign guards in ascending (topological) id order,
    // prepending OR-materializations where a block has several in-edges.
    struct Prepend { BlockId block; std::vector<Instruction> insts; };
    std::vector<Prepend> prepends;

    for (BlockId b : r.blocks) {
        std::vector<PredIdx> in;
        for (BlockId p : preds[b])
            in.push_back(edgePredOf(p, b));
        wisc_assert(!in.empty(), "region block with no in-edges");

        // A head edge predicate of 0 can only mean a malformed region.
        for (PredIdx e : in)
            wisc_assert(e != kPredNone, "edge predicate missing");

        if (in.size() == 1) {
            fn.block(b).guard = in[0];
        } else {
            PredIdx g = fn.allocPred();
            Prepend pre{b, {}};
            Instruction por;
            por.op = Opcode::POr;
            por.pd = g;
            por.ps = in[0];
            por.ps2 = in[1];
            pre.insts.push_back(por);
            for (std::size_t i = 2; i < in.size(); ++i) {
                Instruction more;
                more.op = Opcode::POr;
                more.pd = g;
                more.ps = g;
                more.ps2 = in[i];
                pre.insts.push_back(more);
            }
            prepends.push_back(std::move(pre));
            fn.block(b).guard = g;
        }
    }

    // Pass 2: guard instructions. Predicate combiners stay unguarded (their
    // operands are already guard-composed and read FALSE on dead paths);
    // compares become unconditional so dead-path predicates read FALSE.
    for (BlockId b : r.blocks) {
        IrBlock &blk = fn.block(b);
        for (Instruction &inst : blk.insts) {
            if (isPredOp(inst.op) && inst.qp == 0)
                continue;
            if (inst.qp == 0) {
                inst.qp = blk.guard;
                if (isCompare(inst.op))
                    inst.unc = true;
            }
        }
    }
    for (auto &pre : prepends) {
        IrBlock &blk = fn.block(pre.block);
        blk.insts.insert(blk.insts.begin(), pre.insts.begin(),
                         pre.insts.end());
    }

    if (!keepWishBranches) {
        // Full predication: merge region blocks into the head and drop
        // every internal branch (Figure 3b).
        IrBlock &hb = fn.block(r.head);
        for (BlockId b : r.blocks) {
            IrBlock &blk = fn.block(b);
            hb.insts.insert(hb.insts.end(), blk.insts.begin(),
                            blk.insts.end());
            blk.insts.clear();
            blk.dead = true;
        }
        hb.term = Terminator{};
        hb.term.kind = TermKind::Jump;
        hb.term.taken = r.join;
        return true;
    }

    // Wish jump/join generation (Figures 3c, 6c): keep the blocks, keep
    // every branch, make the fall path the predicated layout.
    {
        IrBlock &hb = fn.block(r.head);
        hb.term.wish = WishKind::Jump;
        hb.term.next = r.blocks.front();
    }
    for (std::size_t i = 0; i < r.blocks.size(); ++i) {
        BlockId b = r.blocks[i];
        BlockId follow = (i + 1 < r.blocks.size()) ? r.blocks[i + 1]
                                                   : r.join;
        IrBlock &blk = fn.block(b);
        Terminator &t = blk.term;
        switch (t.kind) {
          case TermKind::CondBr:
            t.wish = WishKind::Join;
            t.next = follow;
            break;
          case TermKind::Jump:
          case TermKind::Fallthrough: {
            BlockId target = t.kind == TermKind::Jump ? t.taken : t.next;
            if (target == follow) {
                t = Terminator{};
                t.kind = TermKind::Fallthrough;
                t.next = follow;
            } else {
                Terminator nt;
                nt.kind = TermKind::CondBr;
                nt.cond = blk.guard;
                nt.condC = kPredNone;
                nt.taken = target;
                nt.next = follow;
                nt.wish = WishKind::Join;
                t = nt;
            }
            break;
          }
          default:
            wisc_panic("unexpected terminator in wish conversion");
        }
    }
    return true;
}

} // namespace wisc
