#include "compiler/analysis.hh"

#include <algorithm>
#include <cstddef>

#include "common/log.hh"

namespace wisc {

std::vector<BlockId>
immediatePostdominators(const IrFunction &fn)
{
    // Set-based iterative postdominator computation. Our kernels have at
    // most a few hundred blocks, so O(n^2) bitsets are more than fast
    // enough and are obviously correct.
    const std::size_t n = fn.numBlocks();
    const std::size_t kExit = n; // virtual exit node

    // pdom[b] = set of blocks that postdominate b (including b itself).
    std::vector<std::vector<bool>> pdom(n + 1,
                                        std::vector<bool>(n + 1, true));
    pdom[kExit].assign(n + 1, false);
    pdom[kExit][kExit] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < n; ++b) {
            if (fn.blocks()[b].dead)
                continue;
            std::vector<BlockId> succs = fn.successors(b);
            std::vector<std::size_t> succIdx;
            if (succs.empty())
                succIdx.push_back(kExit);
            else
                for (BlockId s : succs)
                    succIdx.push_back(s);

            std::vector<bool> inter(n + 1, true);
            for (std::size_t s : succIdx)
                for (std::size_t i = 0; i <= n; ++i)
                    inter[i] = inter[i] && pdom[s][i];
            inter[b] = true;
            for (std::size_t i = 0; i <= n; ++i) {
                // Sets only shrink from the all-true initialization.
                if (pdom[b][i] && !inter[i]) {
                    pdom[b][i] = false;
                    changed = true;
                }
            }
        }
    }

    // Size of each pdom set; within the chain of strict postdominators of
    // a block, the immediate one has the largest set.
    auto setSize = [&](std::size_t d) {
        std::size_t c = 0;
        for (std::size_t i = 0; i <= n; ++i)
            if (pdom[d][i])
                ++c;
        return c;
    };

    std::vector<BlockId> ipdom(n, kNoBlock);
    for (BlockId b = 0; b < n; ++b) {
        if (fn.blocks()[b].dead)
            continue;
        std::size_t best = kExit + 1;
        std::size_t bestSize = 0;
        for (std::size_t d = 0; d < n; ++d) {
            if (d == b || !pdom[b][d])
                continue;
            if (d != kExit && fn.blocks()[d].dead)
                continue;
            std::size_t sz = setSize(d);
            if (sz > bestSize) {
                bestSize = sz;
                best = d;
            }
        }
        ipdom[b] = best <= n - 1 ? static_cast<BlockId>(best) : kNoBlock;
    }
    return ipdom;
}

std::vector<BlockId>
regionBlocks(const IrFunction &fn, BlockId head, BlockId join)
{
    std::vector<BlockId> region;
    std::vector<bool> visited(fn.numBlocks(), false);
    std::vector<BlockId> stack;

    for (BlockId s : fn.successors(head)) {
        if (s != join && !visited[s]) {
            visited[s] = true;
            stack.push_back(s);
        }
    }
    while (!stack.empty()) {
        BlockId b = stack.back();
        stack.pop_back();
        region.push_back(b);
        auto succs = fn.successors(b);
        if (succs.empty())
            return {}; // escapes through Halt/Indirect: not a region
        for (BlockId s : succs) {
            if (s == join)
                continue;
            if (s == head)
                return {}; // back edge to the head: not a region
            if (!visited[s]) {
                visited[s] = true;
                stack.push_back(s);
            }
        }
    }
    std::sort(region.begin(), region.end());
    return region;
}

bool
isAcyclic(const IrFunction &fn, const std::vector<BlockId> &blocks)
{
    // Kahn's algorithm restricted to the induced subgraph.
    std::vector<bool> inSet(fn.numBlocks(), false);
    for (BlockId b : blocks)
        inSet[b] = true;

    std::vector<unsigned> indeg(fn.numBlocks(), 0);
    for (BlockId b : blocks)
        for (BlockId s : fn.successors(b))
            if (s < fn.numBlocks() && inSet[s])
                ++indeg[s];

    std::vector<BlockId> ready;
    for (BlockId b : blocks)
        if (indeg[b] == 0)
            ready.push_back(b);

    std::size_t processed = 0;
    while (!ready.empty()) {
        BlockId b = ready.back();
        ready.pop_back();
        ++processed;
        for (BlockId s : fn.successors(b)) {
            if (s < fn.numBlocks() && inSet[s] && --indeg[s] == 0)
                ready.push_back(s);
        }
    }
    return processed == blocks.size();
}

} // namespace wisc
