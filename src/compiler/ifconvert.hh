/**
 * @file
 * Region-based if-conversion and wish jump/join generation.
 *
 * A convertible region is a single-entry single-exit acyclic subgraph
 * hanging off a conditional-branch head and rejoining at the head's
 * immediate postdominator (the join). The converter assigns every region
 * block a guard predicate (the OR of its incoming edge predicates),
 * rewrites region compares to IA-64-style unconditional compares guarded
 * by their block's guard, and guards all other instructions.
 *
 * Two output styles share that machinery:
 *  - full predication (Figure 3b): all region branches removed, blocks
 *    merged into the head;
 *  - wish jump/join code (Figures 3c, 6c): the predicated layout is kept
 *    as separate blocks and every control transfer survives as a wish
 *    branch — the head's branch becomes a wish jump, every inner branch
 *    (including unconditional jumps to the join, which become conditional
 *    on the block guard) becomes a wish join.
 */

#ifndef WISC_COMPILER_IFCONVERT_HH_
#define WISC_COMPILER_IFCONVERT_HH_

#include <vector>

#include "compiler/ir.hh"

namespace wisc {

/** A candidate region discovered by findConvertibleRegions(). */
struct RegionInfo
{
    BlockId head = kNoBlock;   ///< block ending in the conditional branch
    BlockId join = kNoBlock;   ///< immediate postdominator of head
    std::vector<BlockId> blocks; ///< member blocks, ascending id order
    unsigned instCount = 0;    ///< total instructions in member blocks
    /** Instructions in the head's fall-through successor (0 if the
     *  fall-through edge goes straight to the join). This is the paper's
     *  §4.2.2 "N" heuristic input. */
    unsigned fallthroughSize = 0;
};

/** Pass limits; regions beyond these are "not suitable" (§4.2.1). */
struct IfConvertLimits
{
    unsigned maxBlocks = 8;
    unsigned maxInsts = 48;
};

/**
 * Find every currently convertible region. Suitability requires: the
 * head ends in a non-wish CondBr with a complement predicate and an
 * in-block defining compare; the join exists; the region is acyclic,
 * has no side entries, contains only plain CondBr/Jump/Fallthrough
 * terminators (each CondBr with its own defining compare), stays within
 * the limits, and writes no predicate that the conversion will use as a
 * guard. Regions are returned smallest-first so that nested hammocks
 * convert inside-out.
 */
std::vector<RegionInfo> findConvertibleRegions(
    const IrFunction &fn, const IfConvertLimits &limits = IfConvertLimits{});

/**
 * If-convert one region found by findConvertibleRegions().
 *
 * @param keepWishBranches false: full predication (region blocks merge
 *        into the head and die); true: wish jump/join generation (blocks
 *        stay, branches become wish branches). Wish generation requires
 *        the region block ids to be the contiguous, topologically ordered
 *        range between head and join (our builder lays hammocks out that
 *        way); returns false without modifying anything otherwise.
 */
bool ifConvertRegion(IrFunction &fn, const RegionInfo &region,
                     bool keepWishBranches);

} // namespace wisc

#endif // WISC_COMPILER_IFCONVERT_HH_
