/**
 * @file
 * The compile-time cost model of §4.2.1 (Equations 4.1-4.3): decides,
 * for the BASE-DEF binary, whether if-converting a region is estimated
 * to be profitable.
 *
 *   exec(normal) = exec_T * P(T) + exec_N * P(N)
 *                  + misp_penalty * P(misprediction)        (Eq 4.1)
 *   exec(pred)   = exec_pred                                 (Eq 4.2)
 *   convert iff exec(pred) < exec(normal)                    (Eq 4.3)
 *
 * Execution times are estimated with dependence-height and resource-usage
 * analysis, exactly as the paper describes: the cost of a straight-line
 * sequence is max(dependence height, total latency / issue width).
 */

#ifndef WISC_COMPILER_COST_HH_
#define WISC_COMPILER_COST_HH_

#include <vector>

#include "arch/emulator.hh"
#include "compiler/ir.hh"

namespace wisc {

/** Machine parameters the cost model assumes (paper: penalty = 30). */
struct CostParams
{
    double mispredictPenalty = 30.0;
    double issueWidth = 8.0;
};

/** Per-opcode latency weight used in estimates. */
double instLatency(const Instruction &inst);

/**
 * Estimated cycles to execute an instruction sequence: the maximum of the
 * critical dependence-chain height (through registers and predicates) and
 * the resource bound (total latency / issue width).
 */
double estimateSequenceCycles(const std::vector<Instruction> &insts,
                              const CostParams &params = CostParams{});

/** Taken-probability of each IR conditional branch, from a profile of the
 *  lowered normal-branch binary. Index = BlockId; 0.5 when unknown. */
struct BranchStats
{
    std::vector<double> takenProb;   ///< P(branch at block b taken)
    std::vector<double> mispredictRate; ///< static-predictor proxy
    std::vector<double> execWeight;  ///< executions relative to total

    double
    taken(BlockId b) const
    {
        return b < takenProb.size() ? takenProb[b] : 0.5;
    }
    double
    mispredict(BlockId b) const
    {
        return b < mispredictRate.size() ? mispredictRate[b] : 0.25;
    }
};

/**
 * Evaluate Equation 4.3 for the region hanging off 'head' joining at
 * 'join' with member blocks 'region'. Returns true iff predication is
 * estimated to be cheaper than the branchy code.
 */
bool predicationProfitable(const IrFunction &fn, BlockId head,
                           BlockId join,
                           const std::vector<BlockId> &region,
                           const BranchStats &stats,
                           const CostParams &params = CostParams{});

} // namespace wisc

#endif // WISC_COMPILER_COST_HH_
