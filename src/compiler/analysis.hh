/**
 * @file
 * CFG analyses used by if-conversion and wish-branch generation:
 * reachability, immediate postdominators, and acyclicity checks.
 */

#ifndef WISC_COMPILER_ANALYSIS_HH_
#define WISC_COMPILER_ANALYSIS_HH_

#include <vector>

#include "compiler/ir.hh"

namespace wisc {

/**
 * Immediate postdominator of every live block, or kNoBlock for blocks
 * with no postdominator (e.g. blocks that can loop forever or exit).
 * Computed with the classic iterative dataflow algorithm over the
 * reverse CFG, using a virtual exit that every Halt/Indirect block
 * reaches.
 */
std::vector<BlockId> immediatePostdominators(const IrFunction &fn);

/**
 * The set of blocks on paths from 'head' (exclusive) to 'join'
 * (exclusive), assuming join postdominates head. Returns an empty vector
 * if the region escapes (reaches a Halt or an unreachable dead end
 * without passing through join).
 */
std::vector<BlockId> regionBlocks(const IrFunction &fn, BlockId head,
                                  BlockId join);

/** True iff the subgraph induced by 'blocks' contains no cycle. */
bool isAcyclic(const IrFunction &fn, const std::vector<BlockId> &blocks);

} // namespace wisc

#endif // WISC_COMPILER_ANALYSIS_HH_
