/**
 * @file
 * Textual serialization of IrFunction — the reproducer format of the
 * differential fuzzer (src/fuzz).
 *
 * A fuzzer-found divergence must survive as a self-contained artifact:
 * the exact IR (block ids, instruction fields, terminators, data
 * segments, entry, and the user-predicate high-water mark) written to
 * disk and parsed back into a function that compiles bit-identically.
 * irFromText(irToText(fn)) therefore lowers to a Program with the same
 * fingerprint as fn.lower() — the round-trip property the fuzz tests
 * pin.
 *
 * Format (line-based; ';' and '#' start comments, blank lines ignored):
 *
 *   wisc-ir 1
 *   entry 0
 *   maxuserpred 5
 *   data 0x20000 3 -7 12
 *   block 0 name "entry"
 *     i add rd=1 rs1=2 rs2=3
 *     i cmp.lt pd=1 pd2=2 rs1=3 rs2=4
 *     term condbr cond=1 condc=2 taken=2 next=1
 *   block 2
 *     term halt
 *
 * Block ids are preserved exactly (the passes depend on layout order
 * and region contiguity); ids absent from the text become dead blocks.
 * Instruction fields at their default value are omitted on write.
 */

#ifndef WISC_COMPILER_IR_TEXT_HH_
#define WISC_COMPILER_IR_TEXT_HH_

#include <string>

#include "compiler/ir.hh"

namespace wisc {

/** Serialize a function (live blocks only, ids preserved). */
std::string irToText(const IrFunction &fn);

/** Parse the textual form back; FatalError (with a line number) on any
 *  syntax or structural problem. The result passes validate(). */
IrFunction irFromText(const std::string &text);

} // namespace wisc

#endif // WISC_COMPILER_IR_TEXT_HH_
