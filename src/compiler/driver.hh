/**
 * @file
 * The compilation driver: produces the five binary variants of Table 3
 * from one IR function.
 *
 *   normal            — branches untouched
 *   BASE-DEF          — if-convert regions passing the Eq 4.3 cost test
 *   BASE-MAX          — if-convert every suitable region
 *   wish jump/join    — suitable regions become wish jumps/joins when the
 *                       fall-through block has more than N instructions,
 *                       otherwise they are fully predicated (§4.2.2, N=5)
 *   wish jump/join/loop — additionally convert loop branches with bodies
 *                       shorter than L instructions into wish loops (L=30)
 */

#ifndef WISC_COMPILER_DRIVER_HH_
#define WISC_COMPILER_DRIVER_HH_

#include <map>
#include <string>

#include "compiler/cost.hh"
#include "compiler/ifconvert.hh"
#include "compiler/ir.hh"

namespace wisc {

/** The five Table-3 binary flavors. */
enum class BinaryVariant
{
    Normal,
    BaseDef,
    BaseMax,
    WishJumpJoin,
    WishJumpJoinLoop,
};

/** Display name ("normal", "BASE-DEF", ...). */
const char *variantName(BinaryVariant v);

/** All five variants, in Table 3 order. */
extern const BinaryVariant kAllVariants[5];

/** Which branches become wish branches (§3.6 / §4.2.2). */
enum class WishHeuristic : std::uint8_t
{
    /** The paper's evaluated rule: every suitable region becomes a wish
     *  jump/join (fall-through > N) or is predicated. */
    SizeOnly,
    /** §3.6's refinement (future work in the paper): a branch whose
     *  profile says it is almost never mispredicted stays a normal
     *  branch — no predication overhead, no extra wish instructions. */
    ProfileAware,
};

/** Compilation heuristics (§4.2.2 defaults). */
struct CompileOptions
{
    unsigned wishFallthroughThreshold = 5; ///< N
    unsigned wishLoopBodyLimit = 30;       ///< L
    WishHeuristic wishHeuristic = WishHeuristic::SizeOnly;
    /** ProfileAware: leave branches below this estimated misprediction
     *  rate as normal branches. */
    double easyBranchThreshold = 0.02;
    IfConvertLimits limits;
    CostParams cost;
    /** Step budget for the profiling run (0 = the emulator default).
     *  The fuzzer lowers this so a non-halting random program is
     *  rejected in milliseconds instead of after 400M steps. */
    std::uint64_t profileMaxSteps = 0;
};

/** A compiled binary plus its static wish-branch statistics. */
struct CompiledBinary
{
    BinaryVariant variant = BinaryVariant::Normal;
    Program program;
    unsigned staticCondBranches = 0;
    unsigned staticWishJumps = 0;
    unsigned staticWishJoins = 0;
    unsigned staticWishLoops = 0;

    unsigned
    staticWishBranches() const
    {
        return staticWishJumps + staticWishJoins + staticWishLoops;
    }
};

/**
 * Profile the function: lower the normal-branch variant, run it on the
 * functional emulator, and map branch statistics back onto IR blocks.
 * Hard error (FatalError) if the program does not halt within maxSteps
 * (0 = the emulator's default budget) — a truncated profile would
 * silently miscompile.
 */
BranchStats profileFunction(const IrFunction &fn,
                            std::uint64_t maxSteps = 0);

/** Compile one variant. The source function is copied, not modified. */
CompiledBinary compileVariant(const IrFunction &fn, BinaryVariant v,
                              const BranchStats &stats,
                              const CompileOptions &opts = CompileOptions{});

/** Compile all five variants with a shared profile. */
std::map<BinaryVariant, CompiledBinary> compileAllVariants(
    const IrFunction &fn, const CompileOptions &opts = CompileOptions{});

/**
 * Functional cross-check: run every compiled variant on the emulator and
 * verify that result register and memory fingerprint agree with the
 * normal variant. Fatal on mismatch (a compiler bug). Returns the number
 * of variants checked.
 */
unsigned verifyVariantEquivalence(
    const std::map<BinaryVariant, CompiledBinary> &variants);

} // namespace wisc

#endif // WISC_COMPILER_DRIVER_HH_
