#include "compiler/wishloop.hh"

#include <algorithm>

#include "common/log.hh"

namespace wisc {

namespace {

bool
isCompare(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU:
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
        return true;
      default:
        return false;
    }
}

bool
isPredOp(Opcode op)
{
    return op == Opcode::PNot || op == Opcode::PAnd || op == Opcode::POr;
}

bool
writesEither(const Instruction &inst, PredIdx a, PredIdx b)
{
    if (!inst.writesPred())
        return false;
    return (inst.pd != kPredNone && (inst.pd == a || inst.pd == b)) ||
           (inst.pd2 != kPredNone && (inst.pd2 == a || inst.pd2 == b));
}

/** Guard one instruction with the loop predicate (Figure 4b style). */
void
guardInst(Instruction &inst, PredIdx p)
{
    if (isPredOp(inst.op) && inst.qp == 0)
        return; // operands are guard-composed; result is dead-safe
    if (inst.qp == 0) {
        inst.qp = p;
        if (isCompare(inst.op))
            inst.unc = true;
    }
}

bool
matchDoWhile(const IrFunction &fn,
             const std::vector<std::vector<BlockId>> &preds, BlockId x,
             unsigned maxBodyInsts, LoopInfo &out)
{
    const IrBlock &blk = fn.block(x);
    const Terminator &t = blk.term;
    if (t.kind != TermKind::CondBr || t.wish != WishKind::None ||
        t.taken != x || t.next == x || t.cond == kPredNone)
        return false;
    if (blk.insts.size() >= maxBodyInsts)
        return false;

    // The continuation predicate must be defined by exactly one compare in
    // the body, writing no complement (the complement would go stale on
    // predicated-off iterations).
    int def = -1;
    for (int i = static_cast<int>(blk.insts.size()) - 1; i >= 0; --i) {
        if (writesEither(blk.insts[i], t.cond, t.condC)) {
            def = i;
            break;
        }
    }
    if (def < 0)
        return false;
    const Instruction &cmp = blk.insts[def];
    if (!isCompare(cmp.op) || cmp.pd != t.cond || cmp.pd2 != kPredNone)
        return false;
    for (int i = 0; i < def; ++i)
        if (writesEither(blk.insts[i], t.cond, t.condC))
            return false;

    // Every outside predecessor must enter unconditionally so the pset
    // cannot clobber the predicate on a non-loop path.
    for (BlockId p : preds[x]) {
        if (p == x)
            continue;
        const Terminator &pt = fn.block(p).term;
        if (pt.kind != TermKind::Jump && pt.kind != TermKind::Fallthrough)
            return false;
    }

    out.shape = LoopInfo::Shape::DoWhile;
    out.header = x;
    out.body = x;
    out.bodySize = static_cast<unsigned>(blk.insts.size());
    return true;
}

bool
matchWhile(const IrFunction &fn,
           const std::vector<std::vector<BlockId>> &preds, BlockId h,
           unsigned maxBodyInsts, LoopInfo &out)
{
    const IrBlock &hb = fn.block(h);
    const Terminator &ht = hb.term;
    if (ht.kind != TermKind::CondBr || ht.wish != WishKind::None ||
        ht.cond == kPredNone || ht.condC == kPredNone)
        return false;

    // One successor is the single-block body that loops back to h.
    BlockId x = kNoBlock;
    if (ht.taken != h && ht.taken < fn.numBlocks()) {
        const Terminator &xt = fn.block(ht.taken).term;
        if ((xt.kind == TermKind::Jump && xt.taken == h) ||
            (xt.kind == TermKind::Fallthrough && xt.next == h))
            x = ht.taken;
    }
    if (x == kNoBlock && ht.next != h && ht.next < fn.numBlocks()) {
        const Terminator &xt = fn.block(ht.next).term;
        if ((xt.kind == TermKind::Jump && xt.taken == h) ||
            (xt.kind == TermKind::Fallthrough && xt.next == h))
            x = ht.next;
    }
    if (x == kNoBlock || x == h)
        return false;
    if (preds[x].size() != 1 || preds[x][0] != h)
        return false;

    const IrBlock &xb = fn.block(x);
    unsigned bodySize =
        static_cast<unsigned>(xb.insts.size() + hb.insts.size());
    if (bodySize >= maxBodyInsts)
        return false;

    // The header must define (cond, condC) with exactly one compare.
    int def = -1;
    for (int i = static_cast<int>(hb.insts.size()) - 1; i >= 0; --i) {
        if (writesEither(hb.insts[i], ht.cond, ht.condC)) {
            def = i;
            break;
        }
    }
    if (def < 0)
        return false;
    const Instruction &cmp = hb.insts[def];
    bool straight = cmp.pd == ht.cond && cmp.pd2 == ht.condC;
    bool flipped = cmp.pd == ht.condC && cmp.pd2 == ht.cond;
    if (!isCompare(cmp.op) || (!straight && !flipped))
        return false;
    for (int i = 0; i < def; ++i)
        if (writesEither(hb.insts[i], ht.cond, ht.condC))
            return false;
    for (const Instruction &inst : xb.insts)
        if (writesEither(inst, ht.cond, ht.condC))
            return false;

    out.shape = LoopInfo::Shape::While;
    out.header = h;
    out.body = x;
    out.bodySize = bodySize;
    return true;
}

} // namespace

std::vector<LoopInfo>
findWishLoops(const IrFunction &fn, unsigned maxBodyInsts)
{
    std::vector<LoopInfo> result;
    auto preds = fn.predecessors();
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        if (fn.block(b).dead)
            continue;
        LoopInfo info;
        if (matchDoWhile(fn, preds, b, maxBodyInsts, info) ||
            matchWhile(fn, preds, b, maxBodyInsts, info))
            result.push_back(info);
    }
    return result;
}

bool
convertWishLoop(IrFunction &fn, const LoopInfo &loop)
{
    auto preds = fn.predecessors();

    if (loop.shape == LoopInfo::Shape::DoWhile) {
        LoopInfo check;
        if (!matchDoWhile(fn, preds, loop.body, loop.bodySize + 1, check))
            return false;

        IrBlock &blk = fn.block(loop.body);
        PredIdx p = blk.term.cond;

        // Initialize the continuation predicate in every preheader
        // (Figure 4b: "mov p1, 1" in block H).
        for (BlockId pre : preds[loop.body]) {
            if (pre == loop.body)
                continue;
            Instruction pset;
            pset.op = Opcode::PSet;
            pset.pd = p;
            pset.imm = 1;
            fn.block(pre).insts.push_back(pset);
        }

        for (Instruction &inst : blk.insts)
            guardInst(inst, p);
        blk.term.wish = WishKind::Loop;
        blk.guard = p;
        return true;
    }

    // While shape: rotate the loop (Figure 5b).
    LoopInfo check;
    if (!matchWhile(fn, preds, loop.header, loop.bodySize + 1, check) ||
        check.body != loop.body)
        return false;

    IrBlock &hb = fn.block(loop.header);
    IrBlock &xb = fn.block(loop.body);
    const Terminator ht = hb.term;
    PredIdx p = ht.taken == loop.body ? ht.cond : ht.condC;
    PredIdx pc = ht.taken == loop.body ? ht.condC : ht.cond;
    BlockId exit = ht.taken == loop.body ? ht.next : ht.taken;

    // Guard the body, then append guarded copies of the header's
    // per-iteration computation (including the condition compare).
    for (Instruction &inst : xb.insts)
        guardInst(inst, p);
    for (const Instruction &orig : hb.insts) {
        Instruction copy = orig;
        guardInst(copy, p);
        // The continuation compare itself must preserve (not clear) its
        // destinations on predicated-off iterations, so that over-fetched
        // NOP iterations leave the exit predicate intact.
        if (writesEither(copy, ht.cond, ht.condC))
            copy.unc = false;
        xb.insts.push_back(copy);
    }

    Terminator nt;
    nt.kind = TermKind::CondBr;
    nt.cond = p;
    nt.condC = pc;
    nt.taken = loop.body;
    nt.next = exit;
    nt.wish = WishKind::Loop;
    xb.term = nt;
    xb.guard = p;

    hb.term = Terminator{};
    hb.term.kind = TermKind::Fallthrough;
    hb.term.next = loop.body;
    return true;
}

} // namespace wisc
