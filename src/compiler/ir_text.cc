#include "compiler/ir_text.hh"

#include <map>
#include <sstream>
#include <vector>

#include "common/log.hh"

namespace wisc {
namespace {

const char *
termKindName(TermKind k)
{
    switch (k) {
      case TermKind::Fallthrough: return "fall";
      case TermKind::Jump:        return "jump";
      case TermKind::CondBr:      return "condbr";
      case TermKind::Indirect:    return "indirect";
      case TermKind::Halt:        return "halt";
    }
    return "?";
}

const char *
wishName(WishKind w)
{
    switch (w) {
      case WishKind::None: return "none";
      case WishKind::Jump: return "jump";
      case WishKind::Join: return "join";
      case WishKind::Loop: return "loop";
    }
    return "?";
}

/** name -> Opcode, built once from the ISA's own mnemonic table. */
const std::map<std::string, Opcode> &
opcodeByName()
{
    static const std::map<std::string, Opcode> m = [] {
        std::map<std::string, Opcode> out;
        for (unsigned o = 0;
             o < static_cast<unsigned>(Opcode::NumOpcodes); ++o) {
            Opcode op = static_cast<Opcode>(o);
            out.emplace(opcodeName(op), op);
        }
        return out;
    }();
    return m;
}

void
writeInst(std::ostringstream &os, const Instruction &i)
{
    os << "  i " << opcodeName(i.op);
    auto field = [&](const char *k, std::uint64_t v, std::uint64_t dflt) {
        if (v != dflt)
            os << ' ' << k << '=' << v;
    };
    field("qp", i.qp, 0);
    field("rd", i.rd, 0);
    field("rs1", i.rs1, 0);
    field("rs2", i.rs2, 0);
    field("pd", i.pd, kPredNone);
    field("pd2", i.pd2, kPredNone);
    field("ps", i.ps, 0);
    field("ps2", i.ps2, 0);
    if (i.imm != 0)
        os << " imm=" << i.imm;
    if (i.target != kNoTarget)
        os << " tgt=" << i.target;
    if (i.wish != WishKind::None)
        os << " wish=" << wishName(i.wish);
    if (i.unc)
        os << " unc=1";
    os << '\n';
}

/** One parsed "k=v" pair ("wish" carries its value as text). */
struct Field
{
    std::string key;
    std::string value;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::istringstream is(line);
    std::string t;
    while (is >> t) {
        if (t[0] == ';' || t[0] == '#')
            break; // comment runs to end of line
        toks.push_back(t);
    }
    return toks;
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : in_(text) {}

    IrFunction
    parse()
    {
        std::string line;
        while (std::getline(in_, line)) {
            ++lineNo_;
            std::vector<std::string> toks = tokenize(line);
            if (toks.empty())
                continue;
            dispatch(toks);
        }
        finishBlocks();
        fn_.validate();
        return std::move(fn_);
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        wisc_fatal("ir_text: line ", lineNo_, ": ", what);
    }

    std::int64_t
    parseInt(const std::string &s)
    {
        try {
            std::size_t used = 0;
            long long v = std::stoll(s, &used, 0); // 0x... accepted
            if (used != s.size())
                fail("trailing junk in number '" + s + "'");
            return v;
        } catch (const std::exception &) {
            fail("bad number '" + s + "'");
        }
    }

    std::uint32_t
    parseTarget(const std::string &s)
    {
        if (s == "-")
            return kNoTarget;
        return static_cast<std::uint32_t>(parseInt(s));
    }

    WishKind
    parseWish(const std::string &s)
    {
        if (s == "none") return WishKind::None;
        if (s == "jump") return WishKind::Jump;
        if (s == "join") return WishKind::Join;
        if (s == "loop") return WishKind::Loop;
        fail("bad wish kind '" + s + "'");
    }

    std::vector<Field>
    parseFields(const std::vector<std::string> &toks, std::size_t from)
    {
        std::vector<Field> out;
        for (std::size_t i = from; i < toks.size(); ++i) {
            std::size_t eq = toks[i].find('=');
            if (eq == std::string::npos || eq == 0)
                fail("expected key=value, got '" + toks[i] + "'");
            out.push_back({toks[i].substr(0, eq), toks[i].substr(eq + 1)});
        }
        return out;
    }

    /** Ensure block ids [0, id] exist; return the (live) block. */
    IrBlock &
    touchBlock(BlockId id)
    {
        while (fn_.numBlocks() <= id)
            fn_.newBlock();
        if (id >= mentioned_.size())
            mentioned_.resize(id + 1, false);
        mentioned_[id] = true;
        return fn_.block(id);
    }

    void
    dispatch(const std::vector<std::string> &toks)
    {
        const std::string &kw = toks[0];
        if (kw == "wisc-ir") {
            if (toks.size() != 2 || toks[1] != "1")
                fail("unsupported wisc-ir version");
        } else if (kw == "entry") {
            if (toks.size() != 2)
                fail("entry takes one block id");
            entry_ = static_cast<BlockId>(parseInt(toks[1]));
            haveEntry_ = true;
        } else if (kw == "maxuserpred") {
            if (toks.size() != 2)
                fail("maxuserpred takes one value");
            fn_.setMaxUserPred(static_cast<PredIdx>(parseInt(toks[1])));
        } else if (kw == "data") {
            if (toks.size() < 2)
                fail("data needs a base address");
            Addr base = static_cast<Addr>(parseInt(toks[1]));
            std::vector<Word> words;
            for (std::size_t i = 2; i < toks.size(); ++i)
                words.push_back(parseInt(toks[i]));
            fn_.addData(base, std::move(words));
        } else if (kw == "block") {
            parseBlock(toks);
        } else if (kw == "i") {
            parseInstLine(toks);
        } else if (kw == "term") {
            parseTermLine(toks);
        } else {
            fail("unknown keyword '" + kw + "'");
        }
    }

    void
    parseBlock(const std::vector<std::string> &toks)
    {
        if (toks.size() < 2)
            fail("block needs an id");
        cur_ = static_cast<BlockId>(parseInt(toks[1]));
        IrBlock &blk = touchBlock(cur_);
        haveCur_ = true;
        for (std::size_t i = 2; i + 1 < toks.size(); i += 2) {
            if (toks[i] == "name") {
                std::string n = toks[i + 1];
                if (n.size() >= 2 && n.front() == '"' && n.back() == '"')
                    n = n.substr(1, n.size() - 2);
                blk.name = n;
            } else if (toks[i] == "guard") {
                blk.guard = static_cast<PredIdx>(parseInt(toks[i + 1]));
            } else {
                fail("unknown block attribute '" + toks[i] + "'");
            }
        }
    }

    void
    parseInstLine(const std::vector<std::string> &toks)
    {
        if (!haveCur_)
            fail("instruction outside a block");
        if (toks.size() < 2)
            fail("instruction needs an opcode");
        auto it = opcodeByName().find(toks[1]);
        if (it == opcodeByName().end())
            fail("unknown opcode '" + toks[1] + "'");
        Instruction inst;
        inst.op = it->second;
        for (const Field &f : parseFields(toks, 2)) {
            if (f.key == "qp")
                inst.qp = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "rd")
                inst.rd = static_cast<RegIdx>(parseInt(f.value));
            else if (f.key == "rs1")
                inst.rs1 = static_cast<RegIdx>(parseInt(f.value));
            else if (f.key == "rs2")
                inst.rs2 = static_cast<RegIdx>(parseInt(f.value));
            else if (f.key == "pd")
                inst.pd = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "pd2")
                inst.pd2 = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "ps")
                inst.ps = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "ps2")
                inst.ps2 = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "imm")
                inst.imm = parseInt(f.value);
            else if (f.key == "tgt")
                inst.target = parseTarget(f.value);
            else if (f.key == "wish")
                inst.wish = parseWish(f.value);
            else if (f.key == "unc")
                inst.unc = parseInt(f.value) != 0;
            else
                fail("unknown instruction field '" + f.key + "'");
        }
        fn_.block(cur_).insts.push_back(inst);
    }

    void
    parseTermLine(const std::vector<std::string> &toks)
    {
        if (!haveCur_)
            fail("terminator outside a block");
        if (toks.size() < 2)
            fail("term needs a kind");
        Terminator t;
        const std::string &kind = toks[1];
        if (kind == "fall")
            t.kind = TermKind::Fallthrough;
        else if (kind == "jump")
            t.kind = TermKind::Jump;
        else if (kind == "condbr")
            t.kind = TermKind::CondBr;
        else if (kind == "indirect")
            t.kind = TermKind::Indirect;
        else if (kind == "halt")
            t.kind = TermKind::Halt;
        else
            fail("unknown terminator kind '" + kind + "'");
        for (const Field &f : parseFields(toks, 2)) {
            if (f.key == "cond")
                t.cond = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "condc")
                t.condC = static_cast<PredIdx>(parseInt(f.value));
            else if (f.key == "taken")
                t.taken = static_cast<BlockId>(parseInt(f.value));
            else if (f.key == "next")
                t.next = static_cast<BlockId>(parseInt(f.value));
            else if (f.key == "reg")
                t.reg = static_cast<RegIdx>(parseInt(f.value));
            else if (f.key == "wish")
                t.wish = parseWish(f.value);
            else
                fail("unknown terminator field '" + f.key + "'");
        }
        // Touch forward-referenced successors so ids exist; mentioned_
        // still governs liveness (an id used only as a target without
        // its own "block" line is an error caught by validate()).
        fn_.block(cur_).term = t;
    }

    void
    finishBlocks()
    {
        if (!haveCur_)
            wisc_fatal("ir_text: no blocks in input");
        // Successor ids may exceed the highest "block" line; create them
        // (dead) so validate() reports a bad target, not an assert.
        for (BlockId b = 0; b < fn_.numBlocks(); ++b) {
            for (BlockId s : fn_.successors(b)) {
                if (s != kNoBlock)
                    while (fn_.numBlocks() <= s)
                        fn_.newBlock();
            }
        }
        for (BlockId b = 0; b < fn_.numBlocks(); ++b)
            fn_.block(b).dead =
                b >= mentioned_.size() || !mentioned_[b];
        if (haveEntry_)
            fn_.setEntry(entry_);
    }

    std::istringstream in_;
    IrFunction fn_;
    std::vector<bool> mentioned_;
    BlockId cur_ = 0;
    BlockId entry_ = 0;
    bool haveCur_ = false;
    bool haveEntry_ = false;
    unsigned lineNo_ = 0;
};

} // namespace

std::string
irToText(const IrFunction &fn)
{
    std::ostringstream os;
    os << "wisc-ir 1\n";
    os << "entry " << fn.entry() << "\n";
    if (fn.maxUserPred() != 0)
        os << "maxuserpred " << unsigned(fn.maxUserPred()) << "\n";
    for (const DataSegment &seg : fn.data()) {
        os << "data 0x" << std::hex << seg.base << std::dec;
        for (Word w : seg.words)
            os << ' ' << w;
        os << '\n';
    }
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        const IrBlock &blk = fn.block(b);
        if (blk.dead)
            continue;
        os << "block " << b;
        if (!blk.name.empty())
            os << " name \"" << blk.name << "\"";
        if (blk.guard != 0)
            os << " guard " << unsigned(blk.guard);
        os << '\n';
        for (const Instruction &inst : blk.insts)
            writeInst(os, inst);
        const Terminator &t = blk.term;
        os << "  term " << termKindName(t.kind);
        switch (t.kind) {
          case TermKind::Fallthrough:
            os << " next=" << t.next;
            break;
          case TermKind::Jump:
            os << " taken=" << t.taken;
            break;
          case TermKind::CondBr:
            os << " cond=" << unsigned(t.cond);
            if (t.condC != 0)
                os << " condc=" << unsigned(t.condC);
            os << " taken=" << t.taken << " next=" << t.next;
            if (t.wish != WishKind::None)
                os << " wish=" << wishName(t.wish);
            break;
          case TermKind::Indirect:
            os << " reg=" << unsigned(t.reg);
            break;
          case TermKind::Halt:
            break;
        }
        os << '\n';
    }
    return os.str();
}

IrFunction
irFromText(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace wisc
