#include "compiler/simplify.hh"

#include "common/log.hh"

namespace wisc {

unsigned
simplifyChains(IrFunction &fn)
{
    unsigned merges = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        auto preds = fn.predecessors();
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            IrBlock &blk = fn.block(b);
            if (blk.dead)
                continue;
            Terminator &t = blk.term;
            BlockId c = kNoBlock;
            if (t.kind == TermKind::Jump)
                c = t.taken;
            else if (t.kind == TermKind::Fallthrough)
                c = t.next;
            if (c == kNoBlock || c <= b || c == fn.entry())
                continue;
            if (preds[c].size() != 1 || preds[c][0] != b)
                continue;

            IrBlock &cb = fn.block(c);
            blk.insts.insert(blk.insts.end(), cb.insts.begin(),
                             cb.insts.end());
            blk.term = cb.term;
            cb.insts.clear();
            cb.dead = true;
            ++merges;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
    }
    return merges;
}

} // namespace wisc
