/**
 * @file
 * Wish-loop generation (§3.2, Figures 4 and 5 of the paper).
 *
 * A wish loop predicates the loop body with the loop-continuation
 * predicate and keeps the backward branch as a wish loop branch. In
 * low-confidence-mode the hardware fetches iterations as predicated code;
 * over-fetched iterations drain as NOPs (the late-exit win).
 *
 * Two source shapes are handled:
 *  - do-while: a single-block self loop (Figure 4). The preheader gains
 *    "pset p, 1" and the body is guarded by p.
 *  - while: a header computing the condition, a body jumping back
 *    (Figure 5). The loop is rotated: the header becomes the preheader
 *    (computing p once), and the body block gains guarded copies of the
 *    header's instructions followed by the backward wish loop on p.
 *
 * Nested wish loops are never generated (§3.5.4 keeps hardware simple);
 * a multi-block body is simply not a candidate.
 */

#ifndef WISC_COMPILER_WISHLOOP_HH_
#define WISC_COMPILER_WISHLOOP_HH_

#include <vector>

#include "compiler/ir.hh"

namespace wisc {

/** A wish-loop candidate. */
struct LoopInfo
{
    enum class Shape { DoWhile, While };
    Shape shape = Shape::DoWhile;
    BlockId header = kNoBlock; ///< While: condition block; DoWhile: body
    BlockId body = kNoBlock;   ///< block that will carry the wish loop
    unsigned bodySize = 0;     ///< instruction count of the would-be body
};

/**
 * Find wish-loop candidates whose body has fewer than maxBodyInsts
 * instructions (the paper's L=30 heuristic).
 */
std::vector<LoopInfo> findWishLoops(const IrFunction &fn,
                                    unsigned maxBodyInsts = 30);

/** Convert one candidate; returns false if it no longer matches. */
bool convertWishLoop(IrFunction &fn, const LoopInfo &loop);

} // namespace wisc

#endif // WISC_COMPILER_WISHLOOP_HH_
