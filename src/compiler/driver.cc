#include "compiler/driver.hh"

#include "arch/emulator.hh"
#include "arch/state_diff.hh"
#include "common/log.hh"
#include "compiler/simplify.hh"
#include "compiler/wishloop.hh"

namespace wisc {

const BinaryVariant kAllVariants[5] = {
    BinaryVariant::Normal,      BinaryVariant::BaseDef,
    BinaryVariant::BaseMax,     BinaryVariant::WishJumpJoin,
    BinaryVariant::WishJumpJoinLoop,
};

const char *
variantName(BinaryVariant v)
{
    switch (v) {
      case BinaryVariant::Normal:           return "normal";
      case BinaryVariant::BaseDef:          return "BASE-DEF";
      case BinaryVariant::BaseMax:          return "BASE-MAX";
      case BinaryVariant::WishJumpJoin:     return "wish-jump-join";
      case BinaryVariant::WishJumpJoinLoop: return "wish-jump-join-loop";
    }
    return "?";
}

BranchStats
profileFunction(const IrFunction &fn, std::uint64_t maxSteps)
{
    std::map<std::uint32_t, BlockId> brOfInst;
    Program prog = fn.lower(&brOfInst);

    Emulator emu;
    Profile profile;
    EmuResult res = emu.run(prog, &profile,
                            maxSteps ? maxSteps
                                     : Emulator::kDefaultMaxSteps);
    // A truncated profile would silently miscompile (every taken-rate is
    // garbage), so a non-halting program is a hard error, not a warning.
    if (!res.halted)
        wisc_fatal("profiling run did not terminate within ",
                   res.dynInsts, " instructions (non-halting kernel?)");

    BranchStats stats;
    stats.takenProb.assign(fn.numBlocks(), 0.5);
    stats.mispredictRate.assign(fn.numBlocks(), 0.25);
    stats.execWeight.assign(fn.numBlocks(), 0.0);

    for (const auto &kv : brOfInst) {
        std::uint32_t inst = kv.first;
        BlockId blk = kv.second;
        const InstProfile &p = profile.perInst[inst];
        if (p.execCount == 0)
            continue;
        double taken = static_cast<double>(p.takenCount) /
                       static_cast<double>(p.execCount);
        stats.takenProb[blk] = taken;
        stats.mispredictRate[blk] = taken < 1.0 - taken ? taken
                                                        : 1.0 - taken;
        stats.execWeight[blk] =
            static_cast<double>(p.execCount) /
            static_cast<double>(profile.dynInsts ? profile.dynInsts : 1);
    }
    return stats;
}

namespace {

/** Apply region conversions for one variant until fixpoint. */
void
convertRegions(IrFunction &fn, BinaryVariant v, const BranchStats &stats,
               const CompileOptions &opts)
{
    // Bounded by the region count; each iteration converts one region.
    for (unsigned iter = 0; iter < 10000; ++iter) {
        auto regions = findConvertibleRegions(fn, opts.limits);
        bool converted = false;
        for (const RegionInfo &r : regions) {
            switch (v) {
              case BinaryVariant::Normal:
                return;
              case BinaryVariant::BaseDef:
                if (!predicationProfitable(fn, r.head, r.join, r.blocks,
                                           stats, opts.cost))
                    continue;
                converted = ifConvertRegion(fn, r, false);
                break;
              case BinaryVariant::BaseMax:
                converted = ifConvertRegion(fn, r, false);
                break;
              case BinaryVariant::WishJumpJoin:
              case BinaryVariant::WishJumpJoinLoop:
                // §3.6: with the profile-aware heuristic, branches the
                // profile marks as nearly-always-correctly-predicted
                // keep their normal branch — predication could only add
                // overhead and the wish machinery is not needed.
                if (opts.wishHeuristic == WishHeuristic::ProfileAware &&
                    stats.mispredict(r.head) < opts.easyBranchThreshold)
                    continue;
                if (r.fallthroughSize > opts.wishFallthroughThreshold) {
                    converted = ifConvertRegion(fn, r, true);
                    // Regions our builder did not lay out contiguously
                    // fall back to full predication (§4.2.2 short-branch
                    // rule applies to them as well).
                    if (!converted)
                        converted = ifConvertRegion(fn, r, false);
                } else {
                    converted = ifConvertRegion(fn, r, false);
                }
                break;
            }
            if (converted)
                break; // CFG changed; rediscover regions
        }
        if (!converted)
            return;
        // Merging the chains a conversion leaves behind exposes enclosing
        // hammocks (and, later, single-block loops) to the next round.
        simplifyChains(fn);
    }
    wisc_panic("region conversion did not reach a fixpoint");
}

void
convertLoops(IrFunction &fn, const CompileOptions &opts)
{
    for (unsigned iter = 0; iter < 10000; ++iter) {
        auto loops = findWishLoops(fn, opts.wishLoopBodyLimit);
        bool converted = false;
        for (const LoopInfo &l : loops) {
            if (convertWishLoop(fn, l)) {
                converted = true;
                break;
            }
        }
        if (!converted)
            return;
    }
    wisc_panic("wish-loop conversion did not reach a fixpoint");
}

} // namespace

CompiledBinary
compileVariant(const IrFunction &fn, BinaryVariant v,
               const BranchStats &stats, const CompileOptions &opts)
{
    IrFunction work = fn; // value copy; conversions are destructive

    convertRegions(work, v, stats, opts);
    if (v == BinaryVariant::WishJumpJoinLoop)
        convertLoops(work, opts);

    CompiledBinary out;
    out.variant = v;
    out.program = work.lower();

    for (const Instruction &inst : out.program.code()) {
        if (inst.op != Opcode::Br)
            continue;
        ++out.staticCondBranches;
        switch (inst.wish) {
          case WishKind::Jump: ++out.staticWishJumps; break;
          case WishKind::Join: ++out.staticWishJoins; break;
          case WishKind::Loop: ++out.staticWishLoops; break;
          case WishKind::None: break;
        }
    }
    return out;
}

std::map<BinaryVariant, CompiledBinary>
compileAllVariants(const IrFunction &fn, const CompileOptions &opts)
{
    BranchStats stats = profileFunction(fn, opts.profileMaxSteps);
    std::map<BinaryVariant, CompiledBinary> out;
    for (BinaryVariant v : kAllVariants)
        out.emplace(v, compileVariant(fn, v, stats, opts));
    return out;
}

unsigned
verifyVariantEquivalence(
    const std::map<BinaryVariant, CompiledBinary> &variants)
{
    auto ref = variants.find(BinaryVariant::Normal);
    if (ref == variants.end()) {
        std::string have;
        for (const auto &kv : variants) {
            if (!have.empty())
                have += ", ";
            have += variantName(kv.first);
        }
        wisc_fatal("verifyVariantEquivalence: the reference 'normal' "
                   "variant is missing (have: ",
                   have.empty() ? "none" : have, ")");
    }

    Emulator refEmu;
    EmuResult refRes = refEmu.run(ref->second.program);
    if (!refRes.halted)
        wisc_fatal("verifyVariantEquivalence: the normal reference "
                   "variant did not halt within ",
                   refRes.dynInsts, " instructions; refusing to compare "
                   "against a truncated fingerprint");

    unsigned checked = 0;
    for (const auto &kv : variants) {
        Emulator emu;
        EmuResult res = emu.run(kv.second.program);
        if (!res.halted)
            wisc_fatal(variantName(kv.first),
                       " variant did not halt within ", res.dynInsts,
                       " instructions (normal variant halted after ",
                       refRes.dynInsts, ")");
        if (res.resultReg != refRes.resultReg ||
            res.memFingerprint != refRes.memFingerprint) {
            // Name the first differing state word so a divergence is
            // triageable (the fuzzer's shrinker keys off this too).
            StateDiff d = firstStateDiff(refEmu.state(), emu.state());
            wisc_fatal(variantName(kv.first),
                       " variant diverged from normal: ", d.describe(),
                       " (result ", res.resultReg, " vs ",
                       refRes.resultReg, ")");
        }
        ++checked;
    }
    return checked;
}

} // namespace wisc
