/**
 * @file
 * The compiler's intermediate representation: a control-flow graph of
 * basic blocks over WISC instructions.
 *
 * Straight-line instructions reuse the ISA's Instruction struct (their
 * 'target' field is unused); control flow lives exclusively in each
 * block's Terminator. Conditional terminators name the predicate register
 * holding the branch condition *and* its complement, both of which must be
 * written by a compare in the same block — this is what lets if-conversion
 * and wish-branch generation guard either arm of a hammock.
 */

#ifndef WISC_COMPILER_IR_HH_
#define WISC_COMPILER_IR_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace wisc {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = 0xffffffff;

/** How a basic block ends. */
enum class TermKind : std::uint8_t
{
    Fallthrough, ///< continue to 'next'
    Jump,        ///< unconditional to 'taken'
    CondBr,      ///< to 'taken' iff predicate 'cond', else 'next'
    Indirect,    ///< computed jump through register 'reg'
    Halt,        ///< program end
};

/** Basic-block terminator. */
struct Terminator
{
    TermKind kind = TermKind::Halt;
    PredIdx cond = 0;   ///< branch-condition predicate (CondBr)
    PredIdx condC = 0;  ///< its complement (CondBr); 0 if unavailable
    BlockId taken = kNoBlock; ///< CondBr taken target / Jump target
    BlockId next = kNoBlock;  ///< fallthrough successor
    RegIdx reg = 0;     ///< Indirect: register holding the target address
    WishKind wish = WishKind::None; ///< set by wish-branch generation
};

/** One IR basic block. */
struct IrBlock
{
    std::string name;
    std::vector<Instruction> insts;
    Terminator term;
    bool dead = false; ///< tombstone set when merged away by a pass

    /** Static guard predicate assigned by if-conversion (0 = none). */
    PredIdx guard = 0;
};

/**
 * A single-function IR unit: the CFG plus initial data segments.
 *
 * Blocks are referenced by stable BlockId (index into blocks()); passes
 * that remove blocks mark them dead rather than erasing.
 */
class IrFunction
{
  public:
    /** Create a new empty block; returns its id. */
    BlockId newBlock(const std::string &name = "");

    IrBlock &block(BlockId id);
    const IrBlock &block(BlockId id) const;

    std::vector<IrBlock> &blocks() { return blocks_; }
    const std::vector<IrBlock> &blocks() const { return blocks_; }
    std::size_t numBlocks() const { return blocks_.size(); }

    BlockId entry() const { return entry_; }
    void setEntry(BlockId e) { entry_ = e; }

    void addData(Addr base, std::vector<Word> words);
    const std::vector<DataSegment> &data() const { return data_; }

    /** Successor block ids of a block (0, 1, or 2 entries). */
    std::vector<BlockId> successors(BlockId id) const;

    /** Predecessor lists for all live blocks. */
    std::vector<std::vector<BlockId>> predecessors() const;

    /**
     * Allocate a fresh predicate register for pass-generated guards.
     * Allocation grows down from p15 and never reuses, so guards from
     * different regions cannot clobber each other. Fatal when the
     * function runs out (regions are required to be small).
     */
    PredIdx allocPred();

    /** Highest predicate index the builder used (fresh allocation must
     *  stay above this). */
    void setMaxUserPred(PredIdx p);

    /** Highest user predicate recorded so far (serialized by the IR
     *  text round-trip so a reparsed function compiles identically). */
    PredIdx maxUserPred() const { return maxUserPred_; }

    /** Structural sanity checks; fatal on violation. */
    void validate() const;

    /**
     * Lower the live blocks, in id order, to an executable Program.
     * Fallthrough edges to non-adjacent blocks become explicit jumps.
     *
     * @param branchOfInst if non-null, receives (program instruction
     *        index -> source BlockId) for every lowered conditional
     *        branch, used to map run-time profiles back onto the IR.
     */
    Program lower(std::map<std::uint32_t, BlockId> *branchOfInst =
                      nullptr) const;

    /** Human-readable CFG dump. */
    std::string dump() const;

  private:
    std::vector<IrBlock> blocks_;
    std::vector<DataSegment> data_;
    BlockId entry_ = 0;
    PredIdx nextFresh_ = 15;
    PredIdx maxUserPred_ = 0;
};

} // namespace wisc

#endif // WISC_COMPILER_IR_HH_
