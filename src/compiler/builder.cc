#include "compiler/builder.hh"

#include "common/log.hh"

namespace wisc {

KernelBuilder::KernelBuilder()
{
    cur_ = fn_.newBlock("entry");
    fn_.setEntry(cur_);
}

void
KernelBuilder::notePred(PredIdx p)
{
    if (p != 0)
        fn_.setMaxUserPred(p);
}

void
KernelBuilder::emit(const Instruction &inst)
{
    wisc_assert(!finished_, "emit after finish()");
    notePred(inst.qp);
    notePred(inst.pd);
    notePred(inst.pd2);
    notePred(inst.ps);
    notePred(inst.ps2);
    cur().insts.push_back(inst);
}

void
KernelBuilder::op3(Opcode op, RegIdx rd, RegIdx rs1, RegIdx rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    emit(i);
}

void
KernelBuilder::opImm(Opcode op, RegIdx rd, RegIdx rs1, Word imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    emit(i);
}

void
KernelBuilder::li(RegIdx rd, Word imm)
{
    Instruction i;
    i.op = Opcode::Li;
    i.rd = rd;
    i.imm = imm;
    emit(i);
}

void
KernelBuilder::cmp(Opcode op, PredIdx pd, PredIdx pdC, RegIdx a, RegIdx b)
{
    Instruction i;
    i.op = op;
    i.pd = pd;
    i.pd2 = pdC;
    i.rs1 = a;
    i.rs2 = b;
    emit(i);
}

void
KernelBuilder::cmpi(Opcode op, PredIdx pd, PredIdx pdC, RegIdx a, Word imm)
{
    Instruction i;
    i.op = op;
    i.pd = pd;
    i.pd2 = pdC;
    i.rs1 = a;
    i.imm = imm;
    emit(i);
}

void
KernelBuilder::ld(RegIdx rd, RegIdx base, Word off)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.rd = rd;
    i.rs1 = base;
    i.imm = off;
    emit(i);
}

void
KernelBuilder::ld1(RegIdx rd, RegIdx base, Word off)
{
    Instruction i;
    i.op = Opcode::Ld1;
    i.rd = rd;
    i.rs1 = base;
    i.imm = off;
    emit(i);
}

void
KernelBuilder::st(RegIdx val, RegIdx base, Word off)
{
    Instruction i;
    i.op = Opcode::St;
    i.rs2 = val;
    i.rs1 = base;
    i.imm = off;
    emit(i);
}

void
KernelBuilder::st1(RegIdx val, RegIdx base, Word off)
{
    Instruction i;
    i.op = Opcode::St1;
    i.rs2 = val;
    i.rs1 = base;
    i.imm = off;
    emit(i);
}

void
KernelBuilder::pset(PredIdx pd, bool v)
{
    Instruction i;
    i.op = Opcode::PSet;
    i.pd = pd;
    i.imm = v ? 1 : 0;
    emit(i);
}

void
KernelBuilder::pnot(PredIdx pd, PredIdx ps)
{
    Instruction i;
    i.op = Opcode::PNot;
    i.pd = pd;
    i.ps = ps;
    emit(i);
}

void
KernelBuilder::leaBlock(RegIdx rd, BlockId target)
{
    Instruction i;
    i.op = Opcode::Li;
    i.rd = rd;
    i.target = target; // resolved to the block's byte address at lowering
    emit(i);
}

void
KernelBuilder::ifThen(PredIdx cond, PredIdx condC, const BodyFn &thenBody)
{
    wisc_assert(cond != 0 && condC != 0,
                "ifThen needs a predicate pair from a compare");
    BlockId head = cur_;
    BlockId thenB = fn_.newBlock();

    cur_ = thenB;
    thenBody();
    BlockId thenEnd = cur_;
    // The join is created only now so that any blocks the arm opened get
    // ids inside the region, keeping it contiguous for wish generation.
    BlockId join = fn_.newBlock();

    // Branch *around* the then-arm when the condition is false.
    Terminator t;
    t.kind = TermKind::CondBr;
    t.cond = condC;
    t.condC = cond;
    t.taken = join;
    t.next = thenB;
    fn_.block(head).term = t;

    Terminator ft;
    ft.kind = TermKind::Fallthrough;
    ft.next = join;
    fn_.block(thenEnd).term = ft;

    cur_ = join;
}

void
KernelBuilder::ifThenElse(PredIdx cond, PredIdx condC,
                          const BodyFn &thenBody, const BodyFn &elseBody)
{
    wisc_assert(cond != 0 && condC != 0,
                "ifThenElse needs a predicate pair from a compare");
    BlockId head = cur_;
    BlockId elseB = fn_.newBlock(); // Figure 3 layout: else falls through

    cur_ = elseB;
    elseBody();
    BlockId elseEnd = cur_;

    BlockId thenB = fn_.newBlock();
    cur_ = thenB;
    thenBody();
    BlockId thenEnd = cur_;

    // Created last so nested blocks stay inside the region (contiguity).
    BlockId join = fn_.newBlock();

    Terminator t;
    t.kind = TermKind::CondBr;
    t.cond = cond;
    t.condC = condC;
    t.taken = thenB;
    t.next = elseB;
    fn_.block(head).term = t;

    Terminator jt;
    jt.kind = TermKind::Jump;
    jt.taken = join;
    fn_.block(elseEnd).term = jt;

    Terminator ft;
    ft.kind = TermKind::Fallthrough;
    ft.next = join;
    fn_.block(thenEnd).term = ft;

    cur_ = join;
}

void
KernelBuilder::doWhileLoop(PredIdx contPred, const BodyFn &body)
{
    wisc_assert(contPred != 0, "doWhileLoop needs a continuation pred");
    BlockId pre = cur_;
    BlockId loop = fn_.newBlock();

    Terminator pt;
    pt.kind = TermKind::Fallthrough;
    pt.next = loop;
    fn_.block(pre).term = pt;

    cur_ = loop;
    body();
    // The body may open nested hammocks (cur_ then ends in their join
    // block); the backward branch goes on the last body block. Such a
    // loop only becomes a wish-loop candidate after if-conversion merges
    // the body back into one block. The exit block is created last so
    // nested hammock blocks keep contiguous ids.
    BlockId exit = fn_.newBlock();
    Terminator lt;
    lt.kind = TermKind::CondBr;
    lt.cond = contPred;
    lt.condC = 0;
    lt.taken = loop;
    lt.next = exit;
    cur().term = lt;

    cur_ = exit;
    notePred(contPred);
}

void
KernelBuilder::whileLoop(const BodyFn &header, PredIdx contPred,
                         PredIdx exitPred, const BodyFn &body)
{
    wisc_assert(contPred != 0 && exitPred != 0,
                "whileLoop needs (continue, exit) predicates");
    BlockId pre = cur_;
    BlockId head = fn_.newBlock();

    Terminator pt;
    pt.kind = TermKind::Fallthrough;
    pt.next = head;
    fn_.block(pre).term = pt;

    cur_ = head;
    header();
    wisc_assert(cur_ == head, "whileLoop header must stay in one block");

    BlockId bodyB = fn_.newBlock();
    cur_ = bodyB;
    body();
    BlockId bodyEnd = cur_;

    BlockId exit = fn_.newBlock();

    Terminator ht;
    ht.kind = TermKind::CondBr;
    ht.cond = exitPred;
    ht.condC = contPred;
    ht.taken = exit;
    ht.next = bodyB;
    fn_.block(head).term = ht;

    Terminator bt;
    bt.kind = TermKind::Jump;
    bt.taken = head;
    fn_.block(bodyEnd).term = bt;

    cur_ = exit;
    notePred(contPred);
    notePred(exitPred);
}

void
KernelBuilder::data(Addr base, std::vector<Word> words)
{
    fn_.addData(base, std::move(words));
}

IrFunction
KernelBuilder::finish()
{
    wisc_assert(!finished_, "finish() called twice");
    finished_ = true;
    cur().term = Terminator{}; // Halt
    fn_.validate();
    return std::move(fn_);
}

} // namespace wisc
