/**
 * @file
 * KernelBuilder: a structured front end over the IR.
 *
 * Workload kernels are written against this API. It lays hammocks out in
 * the contiguous, topologically ordered block order the wish converter
 * expects (head, else-side, then-side, join — exactly the layout of the
 * paper's Figure 3), and keeps track of the highest user predicate so
 * pass-generated guards never collide.
 *
 * Conventions the passes rely on (enforced here where cheap):
 *  - every conditional branch's predicate pair comes from a compare in
 *    the same block (use cmp()/cmpi() immediately before the construct);
 *  - do-while loop bodies compute the continuation predicate with a
 *    compare writing no complement;
 *  - predicates defined inside an if-arm are not read after the join.
 */

#ifndef WISC_COMPILER_BUILDER_HH_
#define WISC_COMPILER_BUILDER_HH_

#include <functional>

#include "compiler/ir.hh"

namespace wisc {

class KernelBuilder
{
  public:
    using BodyFn = std::function<void()>;

    KernelBuilder();

    // --- straight-line emission into the current block ----------------
    void emit(const Instruction &inst);

    void op3(Opcode op, RegIdx rd, RegIdx rs1, RegIdx rs2);
    void opImm(Opcode op, RegIdx rd, RegIdx rs1, Word imm);

    void add(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Add, rd, a, b); }
    void sub(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Sub, rd, a, b); }
    void and_(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::And, rd, a, b); }
    void or_(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Or, rd, a, b); }
    void xor_(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Xor, rd, a, b); }
    void mul(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Mul, rd, a, b); }
    void div(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Div, rd, a, b); }
    void rem(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Rem, rd, a, b); }
    void shl(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Shl, rd, a, b); }
    void shr(RegIdx rd, RegIdx a, RegIdx b) { op3(Opcode::Shr, rd, a, b); }

    void addi(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::AddI, rd, a, i); }
    void andi(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::AndI, rd, a, i); }
    void ori(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::OrI, rd, a, i); }
    void xori(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::XorI, rd, a, i); }
    void shli(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::ShlI, rd, a, i); }
    void shri(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::ShrI, rd, a, i); }
    void srai(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::SraI, rd, a, i); }
    void muli(RegIdx rd, RegIdx a, Word i) { opImm(Opcode::MulI, rd, a, i); }

    void li(RegIdx rd, Word imm);
    void mov(RegIdx rd, RegIdx rs) { addi(rd, rs, 0); }

    /** Register-register compare writing pd (and the complement to pdC;
     *  pass 0 for none). */
    void cmp(Opcode op, PredIdx pd, PredIdx pdC, RegIdx a, RegIdx b);
    /** Register-immediate compare. */
    void cmpi(Opcode op, PredIdx pd, PredIdx pdC, RegIdx a, Word imm);

    void ld(RegIdx rd, RegIdx base, Word off);
    void ld1(RegIdx rd, RegIdx base, Word off);
    void st(RegIdx val, RegIdx base, Word off);
    void st1(RegIdx val, RegIdx base, Word off);

    void pset(PredIdx pd, bool v);
    void pnot(PredIdx pd, PredIdx ps);

    /** Load the byte address of an IR block (for indirect dispatch). */
    void leaBlock(RegIdx rd, BlockId target);

    // --- structured control -------------------------------------------
    /**
     * if (cond) { then }. 'cond' and 'condC' must have just been written
     * by a compare in the current block.
     */
    void ifThen(PredIdx cond, PredIdx condC, const BodyFn &thenBody);

    /** if (cond) { then } else { else }. */
    void ifThenElse(PredIdx cond, PredIdx condC, const BodyFn &thenBody,
                    const BodyFn &elseBody);

    /**
     * do { body } while (contPred). The body must end with a compare
     * writing contPred (complement 0). Entered unconditionally.
     */
    void doWhileLoop(PredIdx contPred, const BodyFn &body);

    /**
     * while (contPred) { body }. The header computes (contPred, exitPred)
     * each iteration; the body runs while contPred holds.
     */
    void whileLoop(const BodyFn &header, PredIdx contPred,
                   PredIdx exitPred, const BodyFn &body);

    /**
     * Indirect dispatch: jump through 'reg'; 'targets' are the blocks the
     * register may hold (created eagerly; use withBlock() to fill them).
     * Execution resumes at join() once a target falls through.
     */

    // --- data and finalization ----------------------------------------
    void data(Addr base, std::vector<Word> words);

    /** Append Halt and hand over the finished function. */
    IrFunction finish();

    /** Direct access for advanced shapes the helpers do not cover. */
    IrFunction &fn() { return fn_; }
    BlockId currentBlock() const { return cur_; }
    void switchTo(BlockId b) { cur_ = b; }

  private:
    void notePred(PredIdx p);
    IrBlock &cur() { return fn_.block(cur_); }

    IrFunction fn_;
    BlockId cur_;
    bool finished_ = false;
};

} // namespace wisc

#endif // WISC_COMPILER_BUILDER_HH_
