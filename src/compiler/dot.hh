/**
 * @file
 * Graphviz export of the compiler IR — a debugging aid for inspecting
 * what if-conversion and wish generation did to a function.
 */

#ifndef WISC_COMPILER_DOT_HH_
#define WISC_COMPILER_DOT_HH_

#include <string>

#include "compiler/ir.hh"

namespace wisc {

/**
 * Render the live CFG as a Graphviz digraph. Wish branches are colored
 * (jump = blue, join = green, loop = red); guarded blocks show their
 * guard predicate.
 */
std::string toDot(const IrFunction &fn, const std::string &name = "fn");

} // namespace wisc

#endif // WISC_COMPILER_DOT_HH_
