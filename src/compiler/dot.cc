#include "compiler/dot.hh"

#include <sstream>

namespace wisc {

namespace {

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\l";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

const char *
wishColor(WishKind w)
{
    switch (w) {
      case WishKind::Jump: return "blue";
      case WishKind::Join: return "darkgreen";
      case WishKind::Loop: return "red";
      case WishKind::None: break;
    }
    return "black";
}

} // namespace

std::string
toDot(const IrFunction &fn, const std::string &name)
{
    std::ostringstream os;
    os << "digraph \"" << escape(name) << "\" {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";

    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        const IrBlock &blk = fn.block(b);
        if (blk.dead)
            continue;

        std::ostringstream label;
        label << "B" << b;
        if (!blk.name.empty())
            label << " (" << blk.name << ")";
        if (blk.guard)
            label << " [guard p" << unsigned(blk.guard) << "]";
        label << "\n";
        for (const Instruction &inst : blk.insts)
            label << disassemble(inst) << "\n";

        os << "  b" << b << " [label=\"" << escape(label.str()) << "\"";
        if (b == fn.entry())
            os << ", style=bold";
        os << "];\n";

        const Terminator &t = blk.term;
        switch (t.kind) {
          case TermKind::Fallthrough:
            os << "  b" << b << " -> b" << t.next
               << " [style=dashed];\n";
            break;
          case TermKind::Jump:
            os << "  b" << b << " -> b" << t.taken << ";\n";
            break;
          case TermKind::CondBr:
            os << "  b" << b << " -> b" << t.taken << " [label=\"p"
               << unsigned(t.cond);
            if (t.wish != WishKind::None)
                os << " " << wishKindName(t.wish);
            os << "\", color=" << wishColor(t.wish) << "];\n";
            os << "  b" << b << " -> b" << t.next
               << " [style=dashed, color=" << wishColor(t.wish)
               << "];\n";
            break;
          case TermKind::Indirect:
            os << "  b" << b << " -> indirect" << b
               << " [style=dotted];\n";
            break;
          case TermKind::Halt:
            os << "  b" << b << " -> exit [style=dotted];\n";
            break;
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace wisc
