#include "compiler/ir.hh"

#include <sstream>

#include "common/log.hh"

namespace wisc {

BlockId
IrFunction::newBlock(const std::string &name)
{
    blocks_.push_back(IrBlock{});
    blocks_.back().name = name;
    return static_cast<BlockId>(blocks_.size() - 1);
}

IrBlock &
IrFunction::block(BlockId id)
{
    wisc_assert(id < blocks_.size(), "bad block id ", id);
    return blocks_[id];
}

const IrBlock &
IrFunction::block(BlockId id) const
{
    wisc_assert(id < blocks_.size(), "bad block id ", id);
    return blocks_[id];
}

void
IrFunction::addData(Addr base, std::vector<Word> words)
{
    data_.push_back({base, std::move(words)});
}

std::vector<BlockId>
IrFunction::successors(BlockId id) const
{
    const Terminator &t = block(id).term;
    switch (t.kind) {
      case TermKind::Fallthrough:
        return {t.next};
      case TermKind::Jump:
        return {t.taken};
      case TermKind::CondBr:
        return {t.taken, t.next};
      case TermKind::Indirect:
      case TermKind::Halt:
        return {};
    }
    return {};
}

std::vector<std::vector<BlockId>>
IrFunction::predecessors() const
{
    std::vector<std::vector<BlockId>> preds(blocks_.size());
    for (BlockId b = 0; b < blocks_.size(); ++b) {
        if (blocks_[b].dead)
            continue;
        for (BlockId s : successors(b))
            preds[s].push_back(b);
    }
    return preds;
}

PredIdx
IrFunction::allocPred()
{
    if (nextFresh_ <= maxUserPred_)
        wisc_fatal("out of predicate registers for pass-generated guards");
    return nextFresh_--;
}

void
IrFunction::setMaxUserPred(PredIdx p)
{
    if (p > maxUserPred_)
        maxUserPred_ = p;
    if (maxUserPred_ >= nextFresh_)
        wisc_fatal("user predicates collide with fresh-guard pool");
}

void
IrFunction::validate() const
{
    wisc_assert(!blocks_.empty(), "empty IR function");
    wisc_assert(entry_ < blocks_.size() && !blocks_[entry_].dead,
                "bad IR entry block");
    for (BlockId b = 0; b < blocks_.size(); ++b) {
        const IrBlock &blk = blocks_[b];
        if (blk.dead)
            continue;
        for (const Instruction &inst : blk.insts) {
            if (inst.isControl())
                wisc_fatal("block ", b,
                           " contains a control instruction in its body");
        }
        const Terminator &t = blk.term;
        auto check_target = [&](BlockId tgt, const char *what) {
            if (tgt == kNoBlock || tgt >= blocks_.size() ||
                blocks_[tgt].dead)
                wisc_fatal("block ", b, " has bad ", what, " target");
        };
        switch (t.kind) {
          case TermKind::Fallthrough:
            check_target(t.next, "fallthrough");
            break;
          case TermKind::Jump:
            check_target(t.taken, "jump");
            break;
          case TermKind::CondBr:
            check_target(t.taken, "taken");
            check_target(t.next, "not-taken");
            if (t.cond == 0)
                wisc_fatal("block ", b, " branches on p0");
            break;
          case TermKind::Indirect:
          case TermKind::Halt:
            break;
        }
    }
}

Program
IrFunction::lower(std::map<std::uint32_t, BlockId> *branchOfInst) const
{
    validate();

    // Layout: live blocks in id order.
    std::vector<BlockId> order;
    for (BlockId b = 0; b < blocks_.size(); ++b) {
        if (!blocks_[b].dead)
            order.push_back(b);
    }

    Program prog;
    for (const auto &seg : data_)
        prog.addData(seg.base, seg.words);

    // (instruction index, target block) pairs resolved after emission
    std::vector<std::pair<std::uint32_t, BlockId>> fixups;
    std::vector<std::pair<std::uint32_t, BlockId>> leaFixups;

    auto labelOf = [&](BlockId b) {
        const std::string &n = blocks_[b].name;
        return n.empty() ? "B" + std::to_string(b) : n;
    };

    for (std::size_t i = 0; i < order.size(); ++i) {
        BlockId b = order[i];
        const IrBlock &blk = blocks_[b];
        prog.defineLabel(labelOf(b));
        if (b == entry_)
            prog.setEntry(static_cast<std::uint32_t>(prog.size()));

        for (const Instruction &inst : blk.insts) {
            if (inst.op == Opcode::Li && inst.target != kNoTarget) {
                // leaBlock: materialize the target block's byte address.
                Instruction li = inst;
                leaFixups.push_back({static_cast<std::uint32_t>(
                                         prog.size()),
                                     li.target});
                li.target = kNoTarget;
                prog.append(li);
            } else {
                prog.append(inst);
            }
        }

        const Terminator &t = blk.term;
        const bool has_next_slot = i + 1 < order.size();
        auto isAdjacent = [&](BlockId tgt) {
            return has_next_slot && order[i + 1] == tgt;
        };

        switch (t.kind) {
          case TermKind::Fallthrough:
            if (!isAdjacent(t.next)) {
                Instruction j;
                j.op = Opcode::Jmp;
                j.target = 0; // fixed up below via label map
                prog.append(j);
                fixups.push_back({static_cast<std::uint32_t>(
                                      prog.size() - 1),
                                  t.next});
            }
            break;
          case TermKind::Jump:
            if (!isAdjacent(t.taken)) {
                Instruction j;
                j.op = Opcode::Jmp;
                prog.append(j);
                fixups.push_back({static_cast<std::uint32_t>(
                                      prog.size() - 1),
                                  t.taken});
            }
            break;
          case TermKind::CondBr: {
            Instruction br;
            br.op = Opcode::Br;
            br.qp = t.cond;
            br.wish = t.wish;
            if (branchOfInst)
                (*branchOfInst)[static_cast<std::uint32_t>(prog.size())] =
                    b;
            prog.append(br);
            fixups.push_back({static_cast<std::uint32_t>(prog.size() - 1),
                              t.taken});
            if (!isAdjacent(t.next)) {
                Instruction j;
                j.op = Opcode::Jmp;
                prog.append(j);
                fixups.push_back({static_cast<std::uint32_t>(
                                      prog.size() - 1),
                                  t.next});
            }
            break;
          }
          case TermKind::Indirect: {
            Instruction j;
            j.op = Opcode::JmpR;
            j.rs1 = t.reg;
            prog.append(j);
            break;
          }
          case TermKind::Halt: {
            Instruction h;
            h.op = Opcode::Halt;
            prog.append(h);
            break;
          }
        }
    }

    // Resolve block targets now that every label's index is known.
    for (const auto &f : fixups)
        prog.code()[f.first].target = prog.label(labelOf(f.second));
    for (const auto &f : leaFixups)
        prog.code()[f.first].imm =
            static_cast<Word>(instAddr(prog.label(labelOf(f.second))));

    prog.validate();
    return prog;
}

std::string
IrFunction::dump() const
{
    std::ostringstream os;
    for (BlockId b = 0; b < blocks_.size(); ++b) {
        const IrBlock &blk = blocks_[b];
        if (blk.dead)
            continue;
        os << "block " << b;
        if (!blk.name.empty())
            os << " (" << blk.name << ")";
        if (blk.guard)
            os << " guard=p" << unsigned(blk.guard);
        os << ":\n";
        for (const Instruction &inst : blk.insts)
            os << "    " << disassemble(inst) << "\n";
        const Terminator &t = blk.term;
        switch (t.kind) {
          case TermKind::Fallthrough:
            os << "    -> " << t.next << "\n";
            break;
          case TermKind::Jump:
            os << "    jmp " << t.taken << "\n";
            break;
          case TermKind::CondBr:
            os << "    br";
            if (t.wish != WishKind::None)
                os << "[" << wishKindName(t.wish) << "]";
            os << " p" << unsigned(t.cond) << " -> " << t.taken
               << " else " << t.next << "\n";
            break;
          case TermKind::Indirect:
            os << "    jmpr r" << unsigned(t.reg) << "\n";
            break;
          case TermKind::Halt:
            os << "    halt\n";
            break;
        }
    }
    return os.str();
}

} // namespace wisc
