/**
 * @file
 * parser analogue: token scanning with variable-length words.
 *
 * Behavioral profile reproduced: a short inner loop whose trip count is
 * the current token's length — a loop branch that a global predictor
 * cannot capture when lengths vary (input A), making it the prime wish
 * loop beneficiary (late exits). A hash-test hammock supplies the
 * forward wish branches. Input C has constant-length tokens (the loop
 * becomes perfectly predictable).
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kLens = kDataBase;            // 4096 words
constexpr Addr kChars = kDataBase + 0x10000; // 4096 bytes
constexpr int kNumToks = 4096;

} // namespace

IrFunction
buildParser()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = lens, r13 = chars, r4 = checksum.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.li(12, static_cast<Word>(kLens));
    b.li(13, static_cast<Word>(kChars));
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.andi(30, 10, kNumToks - 1);
        b.shli(31, 30, 3);
        b.add(31, 31, 12);
        b.ld(20, 31, 0); // len (1..12)

        // Scan the token: trip count = len.
        b.li(21, 0);  // j
        b.li(22, 0);  // h
        b.doWhileLoop(3, [&] {
            b.add(32, 30, 21);
            b.andi(32, 32, kNumToks - 1);
            b.add(32, 32, 13);
            b.ld1(33, 32, 0);
            b.add(22, 22, 33);
            b.addi(21, 21, 1);
            b.cmp(Opcode::CmpLt, 3, 0, 21, 20);
        });

        // Dictionary-hash test.
        b.muli(22, 22, 31);
        b.add(22, 22, 20);
        b.andi(34, 22, 7);
        b.cmpi(Opcode::CmpEqI, 1, 2, 34, 0);
        b.ifThenElse(
            1, 2,
            [&] { // hit
                b.add(4, 4, 22);
                b.xori(4, 4, 0x11);
                b.addi(4, 4, 3);
                b.shli(35, 22, 1);
                b.add(4, 4, 35);
                b.addi(4, 4, 1);
            },
            [&] { // miss
                b.sub(4, 4, 20);
                b.xori(4, 4, 0x22);
                b.addi(4, 4, 5);
                b.shri(35, 22, 2);
                b.add(4, 4, 35);
                b.addi(4, 4, 2);
            });

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputParser(InputSet s)
{
    Rng rng(s == InputSet::A ? 61 : s == InputSet::B ? 62 : 63);
    std::vector<Word> lens(kNumToks);
    for (Word &l : lens) {
        switch (s) {
          case InputSet::A: // uniform 1..12: unpredictable exits
            l = rng.range(1, 12);
            break;
          case InputSet::B: // clustered 3..6
            l = 3 + rng.range(0, 3);
            break;
          case InputSet::C: // constant: perfectly predictable
            l = 4;
            break;
        }
    }
    std::vector<std::uint8_t> chars(kNumToks);
    for (auto &c : chars)
        c = static_cast<std::uint8_t>(rng.below(26) + 'a');

    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {7000}});
    segs.push_back({kLens, lens});
    segs.push_back({kChars, packBytes(chars)});
    return segs;
}

} // namespace kernels
} // namespace wisc
