/**
 * @file
 * vpr analogue: simulated-annealing move evaluation.
 *
 * Behavioral profile reproduced: an accept/reject branch on a random
 * cost delta against a temperature threshold — the hard-to-predict
 * branch that dominates vpr's placement loop — plus a short per-move
 * update loop. The threshold (an input parameter) sets the branch bias:
 * input A evaluates near the 50% acceptance point (hard), input C at
 * high acceptance (easy).
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kCosts = kDataBase; // 4096 words
constexpr int kNumCosts = 4096;

} // namespace

IrFunction
buildVpr()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = cost base, r13 = out base, r14 = lcg,
    // r15 = accepted-delta accumulator, r16 = threshold, r4 = checksum.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.ld(16, 36, 8);
    b.li(12, static_cast<Word>(kCosts));
    b.li(13, static_cast<Word>(kOutBase));
    b.li(14, 12345);
    b.li(15, 0);
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.muli(14, 14, 1103515245);
        b.addi(14, 14, 12345);
        b.shri(30, 14, 16);
        b.andi(30, 30, kNumCosts - 1);
        b.shli(31, 30, 3);
        b.add(31, 31, 12);
        b.ld(32, 31, 0); // delta

        // Accept the move when delta < threshold.
        b.cmp(Opcode::CmpLt, 1, 2, 32, 16);
        b.ifThenElse(
            1, 2,
            [&] { // accept
                b.add(15, 15, 32);
                b.muli(33, 15, 3);
                b.add(4, 4, 33);
                b.xor_(4, 4, 30);
                b.addi(4, 4, 1);
                b.shli(34, 30, 3);
                b.add(34, 34, 13);
                b.st(4, 34, 0);
            },
            [&] { // reject
                b.addi(17, 17, 1);
                b.shli(33, 30, 1);
                b.add(4, 4, 33);
                b.xori(4, 4, 3);
                b.addi(4, 4, 1);
                b.addi(4, 4, 2);
            });

        // Per-move net update loop: 2..3 trips (mildly variable; vpr's
        // dominant misprediction source stays the accept branch).
        b.andi(35, 30, 1);
        b.addi(35, 35, 2);
        b.li(37, 0);
        b.doWhileLoop(3, [&] {
            b.add(4, 4, 37);
            b.addi(37, 37, 1);
            b.cmp(Opcode::CmpLt, 3, 0, 37, 35);
        });

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputVpr(InputSet s)
{
    Word threshold;
    std::uint64_t seed;
    switch (s) {
      case InputSet::A: threshold = 0;   seed = 101; break;
      case InputSet::B: threshold = 64;  seed = 202; break;
      case InputSet::C: threshold = 112; seed = 303; break;
      default: threshold = 0; seed = 1; break;
    }
    Rng rng(seed);
    std::vector<Word> costs(kNumCosts);
    for (Word &c : costs)
        c = rng.range(-128, 127);

    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {7000, threshold}});
    segs.push_back({kCosts, costs});
    return segs;
}

} // namespace kernels
} // namespace wisc
