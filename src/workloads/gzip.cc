/**
 * @file
 * gzip analogue: LZ-style run detection over a byte stream.
 *
 * Behavioral profile reproduced: a data-dependent match/literal branch
 * whose predictability tracks the compressibility of the input, plus a
 * short variable-trip run-measuring loop (a natural wish loop). Input A
 * is near-incompressible (hard branch, short runs), input C is highly
 * repetitive (easy branch, long runs), B sits between.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kSrc = kDataBase;        // 4096 bytes
constexpr int kSrcLen = 4096;
constexpr int kMaxRun = 11;             // generator-enforced bound

std::vector<std::uint8_t>
makeStream(double repeatProb, unsigned alphabet, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> bytes(kSrcLen);
    std::uint8_t cur = 1;
    int run = 1;
    for (int i = 0; i < kSrcLen; ++i) {
        if (i == 0 || run >= kMaxRun || !rng.chance(repeatProb)) {
            std::uint8_t next;
            do {
                next = static_cast<std::uint8_t>(1 + rng.below(alphabet));
            } while (next == cur);
            cur = next;
            run = 1;
        } else {
            ++run;
        }
        bytes[i] = cur;
    }
    return bytes;
}

} // namespace

IrFunction
buildGzip()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = src, r13 = out, r20 = pos, r21 = len,
    // r22 = current byte, r4 = checksum.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.li(12, static_cast<Word>(kSrc));
    b.li(13, static_cast<Word>(kOutBase));
    b.li(10, 0);
    b.li(4, 0);
    b.li(20, 0);

    b.doWhileLoop(7, [&] {
        // Pseudo-random walk over the stream.
        b.addi(20, 20, 17);
        b.andi(20, 20, kSrcLen - 1);
        b.add(30, 12, 20);
        b.ld1(22, 30, 0);

        // Measure the run of equal bytes (trip count 1..kMaxRun).
        b.li(21, 1);
        b.doWhileLoop(3, [&] {
            b.add(30, 20, 21);
            b.andi(30, 30, kSrcLen - 1);
            b.add(30, 30, 12);
            b.ld1(31, 30, 0);
            b.xor_(32, 31, 22);
            b.addi(21, 21, 1);
            b.cmpi(Opcode::CmpEqI, 3, 0, 32, 0);
        });

        // Match (run >= 3) vs literal: the compressibility branch.
        b.cmpi(Opcode::CmpGeI, 1, 2, 21, 3);
        b.ifThenElse(
            1, 2,
            [&] { // match
                b.muli(33, 21, 3);
                b.add(4, 4, 33);
                b.xor_(4, 4, 20);
                b.addi(4, 4, 7);
                b.shli(33, 21, 2);
                b.add(4, 4, 33);
            },
            [&] { // literal
                b.add(4, 4, 22);
                b.muli(33, 22, 5);
                b.add(4, 4, 33);
                b.xori(4, 4, 0x55);
                b.addi(4, 4, 1);
                b.addi(4, 4, 2);
            });

        // Emit one output byte.
        b.andi(34, 4, 255);
        b.add(35, 13, 20);
        b.st1(34, 35, 0);

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputGzip(InputSet s)
{
    double repeat;
    unsigned alphabet;
    std::uint64_t seed;
    switch (s) {
      case InputSet::A: repeat = 0.55; alphabet = 24; seed = 11; break;
      case InputSet::B: repeat = 0.70; alphabet = 12; seed = 22; break;
      case InputSet::C: repeat = 0.88; alphabet = 4;  seed = 33; break;
      default: repeat = 0.5; alphabet = 8; seed = 1; break;
    }
    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {6000}}); // n
    segs.push_back({kSrc, packBytes(makeStream(repeat, alphabet, seed))});
    return segs;
}

} // namespace kernels
} // namespace wisc
