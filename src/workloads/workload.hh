/**
 * @file
 * The workload suite: nine synthetic kernels modeled on the branch and
 * memory behavior of the SPEC INT 2000 benchmarks the paper evaluates
 * (gzip, vpr, mcf, crafty, parser, gap, vortex, bzip2, twolf), each with
 * three input sets (A/B/C) whose branch statistics differ the way
 * different SPEC inputs do.
 *
 * Kernel *code* is input-independent; an input set is pure data (a
 * parameter block at kParamBase plus data arrays). Binaries are compiled
 * once against the B ("train") input profile and can then be run on any
 * input — which is exactly the setup behind the paper's Figure 1
 * input-sensitivity experiment.
 */

#ifndef WISC_WORKLOADS_WORKLOAD_HH_
#define WISC_WORKLOADS_WORKLOAD_HH_

#include <map>
#include <string>
#include <vector>

#include "compiler/driver.hh"

namespace wisc {

/** The three input sets of Figure 1. */
enum class InputSet { A, B, C };

const char *inputSetName(InputSet s);

/** Memory layout conventions shared by all kernels. */
inline constexpr Addr kParamBase = 0x18000; ///< word[0] = outer trip etc.
inline constexpr Addr kDataBase = 0x20000;  ///< first input array
inline constexpr Addr kOutBase = 0x80000;   ///< kernel output area

/** All nine benchmark names, in the paper's order. */
const std::vector<std::string> &workloadNames();

/** Build a kernel's IR (code only, no input data attached). */
IrFunction buildWorkloadFn(const std::string &name);

/** The data segments of one input set. */
std::vector<DataSegment> workloadInput(const std::string &name,
                                       InputSet input);

/** A kernel compiled into all five Table-3 binary variants. */
struct CompiledWorkload
{
    std::string name;
    std::map<BinaryVariant, CompiledBinary> variants;
};

/**
 * Compile all five variants of a kernel, profiling against the B
 * ("train") input.
 */
CompiledWorkload compileWorkload(const std::string &name,
                                 const CompileOptions &opts =
                                     CompileOptions{});

/** A runnable program: the chosen variant with the chosen input data. */
Program programFor(const CompiledWorkload &w, BinaryVariant v,
                   InputSet input);

/**
 * Same, with the kernel's outer trip count multiplied by `tripScale`
 * (>= 1): a long-running variant of the same workload, with identical
 * code and identical per-iteration branch/memory statistics. All
 * kernels index their data through power-of-two wrap masks, so scaled
 * runs stay within the input arrays. Used by sampled-simulation
 * validation, which needs runs long enough that the cold-start
 * transient is a negligible fraction of total cycles (the regime
 * sampling — and the paper's own SPEC methodology — assumes).
 */
Program programFor(const CompiledWorkload &w, BinaryVariant v,
                   InputSet input, std::uint64_t tripScale);

} // namespace wisc

#endif // WISC_WORKLOADS_WORKLOAD_HH_
