/**
 * @file
 * twolf analogue: standard-cell placement cost evaluation.
 *
 * Behavioral profile reproduced: a near-balanced cost comparison between
 * two candidate positions (hard to predict when costs are close — the
 * input's bias parameter moves the balance), arms containing multiplies
 * and a divide (so predicate dependences are expensive), and a
 * predictable boundary check that stays predicated. twolf shows the
 * largest wish-branch win over predication in Figure 10.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kGrid = kDataBase; // 4096 words
constexpr int kGridLen = 4096;

} // namespace

IrFunction
buildTwolf()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = grid, r14 = lcg, r16 = bias.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.ld(16, 36, 8);
    b.li(12, static_cast<Word>(kGrid));
    b.li(14, 31337);
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.muli(14, 14, 69069);
        b.addi(14, 14, 5);
        b.shri(30, 14, 16);
        b.andi(30, 30, kGridLen - 1);

        b.shli(31, 30, 3);
        b.add(31, 31, 12);
        b.ld(20, 31, 0); // cost1
        b.addi(32, 30, 64);
        b.andi(32, 32, kGridLen - 1);
        b.shli(32, 32, 3);
        b.add(32, 32, 12);
        b.ld(21, 32, 0); // cost2

        // Wire-cost comparison: near-balanced unless biased.
        b.muli(22, 20, 3);
        b.add(22, 22, 16);
        b.muli(23, 21, 3);
        b.cmp(Opcode::CmpLt, 1, 2, 22, 23);
        b.ifThenElse(
            1, 2,
            [&] { // accept the move
                b.sub(24, 23, 22);
                b.muli(25, 24, 5);
                b.add(4, 4, 25);
                b.li(26, 7);
                b.div(27, 24, 26);
                b.add(4, 4, 27);
                b.xori(4, 4, 0x61);
                b.addi(4, 4, 1);
            },
            [&] { // reject
                b.sub(24, 22, 23);
                b.muli(25, 24, 2);
                b.add(4, 4, 25);
                b.li(26, 5);
                b.div(27, 24, 26);
                b.sub(4, 4, 27);
                b.xori(4, 4, 0x62);
                b.addi(4, 4, 2);
            });

        // Row-boundary check: rare, predictable, stays predicated.
        b.andi(28, 30, 63);
        b.cmpi(Opcode::CmpLtI, 3, 5, 28, 2);
        b.ifThen(3, 5, [&] {
            b.addi(4, 4, 9);
            b.xori(4, 4, 0x70);
        });

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputTwolf(InputSet s)
{
    Word bias;
    std::uint64_t seed;
    switch (s) {
      case InputSet::A: bias = 0;    seed = 95; break; // 50/50: hard
      case InputSet::B: bias = 150;  seed = 96; break;
      case InputSet::C: bias = 900;  seed = 97; break; // strongly biased
      default: bias = 0; seed = 1; break;
    }
    Rng rng(seed);
    std::vector<Word> grid(kGridLen);
    for (Word &g : grid)
        g = rng.range(0, 200);

    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {7000, bias}});
    segs.push_back({kGrid, grid});
    return segs;
}

} // namespace kernels
} // namespace wisc
