#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/kernels.hh"

namespace wisc {

const char *
inputSetName(InputSet s)
{
    switch (s) {
      case InputSet::A: return "input-A";
      case InputSet::B: return "input-B";
      case InputSet::C: return "input-C";
    }
    return "?";
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "gzip", "vpr", "mcf", "crafty", "parser",
        "gap",  "vortex", "bzip2", "twolf",
    };
    return names;
}

IrFunction
buildWorkloadFn(const std::string &name)
{
    using namespace kernels;
    if (name == "gzip") return buildGzip();
    if (name == "vpr") return buildVpr();
    if (name == "mcf") return buildMcf();
    if (name == "crafty") return buildCrafty();
    if (name == "parser") return buildParser();
    if (name == "gap") return buildGap();
    if (name == "vortex") return buildVortex();
    if (name == "bzip2") return buildBzip2();
    if (name == "twolf") return buildTwolf();
    wisc_fatal("unknown workload '", name, "'");
}

std::vector<DataSegment>
workloadInput(const std::string &name, InputSet input)
{
    using namespace kernels;
    if (name == "gzip") return inputGzip(input);
    if (name == "vpr") return inputVpr(input);
    if (name == "mcf") return inputMcf(input);
    if (name == "crafty") return inputCrafty(input);
    if (name == "parser") return inputParser(input);
    if (name == "gap") return inputGap(input);
    if (name == "vortex") return inputVortex(input);
    if (name == "bzip2") return inputBzip2(input);
    if (name == "twolf") return inputTwolf(input);
    wisc_fatal("unknown workload '", name, "'");
}

CompiledWorkload
compileWorkload(const std::string &name, const CompileOptions &opts)
{
    IrFunction fn = buildWorkloadFn(name);
    // Profile against the B ("train") input, like a profile-guided
    // compiler would.
    for (const DataSegment &seg : workloadInput(name, InputSet::B))
        fn.addData(seg.base, seg.words);

    CompiledWorkload w;
    w.name = name;
    w.variants = compileAllVariants(fn, opts);
    return w;
}

Program
programFor(const CompiledWorkload &w, BinaryVariant v, InputSet input)
{
    Program p = w.variants.at(v).program;
    p.setData(workloadInput(w.name, input));
    return p;
}

Program
programFor(const CompiledWorkload &w, BinaryVariant v, InputSet input,
           std::uint64_t tripScale)
{
    wisc_assert(tripScale > 0, "tripScale must be at least 1");
    Program p = w.variants.at(v).program;
    std::vector<DataSegment> segs = workloadInput(w.name, input);
    // Every kernel reads its outer trip count (mcf: pass count) from
    // word[0] of the parameter block, and every kernel wraps its data
    // indices with a power-of-two mask, so multiplying the trip count
    // lengthens the run without ever walking off the input arrays.
    // Branch/memory *statistics* are unchanged; only the run length
    // (and thus the weight of the cold-start transient) scales.
    bool scaled = false;
    for (DataSegment &seg : segs) {
        if (seg.base == kParamBase) {
            wisc_assert(!seg.words.empty(), "empty parameter block");
            seg.words[0] = static_cast<Word>(
                static_cast<UWord>(seg.words[0]) * tripScale);
            scaled = true;
        }
    }
    wisc_assert(scaled, "workload '", w.name, "' has no parameter block");
    p.setData(segs);
    return p;
}

namespace kernels {

std::vector<Word>
packBytes(const std::vector<std::uint8_t> &bytes)
{
    std::vector<Word> words((bytes.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        words[i / 8] |= static_cast<Word>(
            static_cast<UWord>(bytes[i]) << (8 * (i % 8)));
    return words;
}

} // namespace kernels
} // namespace wisc
