/**
 * @file
 * gap analogue: guarded vector arithmetic.
 *
 * Behavioral profile reproduced: highly-biased guards over vector
 * elements (gap's branches are the most predictable in the suite —
 * 1.0 mispredicts per 1K µops in Table 4), so wish branches should run
 * almost entirely in high-confidence-mode and recover the predication
 * overhead. Includes a rotated while loop so the While-shape wish-loop
 * conversion is exercised by a real workload.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kVec = kDataBase; // 4096 words
constexpr int kVecLen = 4096;

} // namespace

IrFunction
buildGap()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = vec, r14 = lcg.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.li(12, static_cast<Word>(kVec));
    b.li(14, 98765);
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.muli(14, 14, 69069);
        b.addi(14, 14, 1);
        b.shri(30, 14, 16);
        b.andi(30, 30, kVecLen - 1);
        b.shli(31, 30, 3);
        b.add(31, 31, 12);
        b.ld(20, 31, 0); // x

        // Guard: x != 0 (bias set by the input's zero density).
        b.cmpi(Opcode::CmpNeI, 1, 2, 20, 0);
        b.li(40, 0);
        b.ifThen(1, 2, [&] {
            b.muli(40, 20, 13);
            b.shri(22, 20, 3);
            b.xor_(40, 40, 22);
            b.addi(40, 40, 1);
            b.shli(23, 20, 1);
            b.add(40, 40, 23);
            b.addi(40, 40, 2);
        });
        b.add(4, 4, 40);

        // Sign split: also biased.
        b.cmpi(Opcode::CmpGtI, 3, 4, 20, 0);
        b.ifThenElse(
            3, 4,
            [&] {
                b.addi(41, 20, 0);
                b.xori(41, 41, 0x7);
                b.addi(41, 41, 1);
                b.shli(24, 20, 2);
                b.add(41, 41, 24);
                b.addi(41, 41, 3);
            },
            [&] {
                b.sub(41, 0, 20);
                b.xori(41, 41, 0x9);
                b.addi(41, 41, 2);
                b.shri(24, 20, 1);
                b.add(41, 41, 24);
                b.addi(41, 41, 4);
            });
        b.add(4, 4, 41);

        // while (k > 0) { sum += k; --k; }  — a rotated wish loop.
        // Trips are 3, with a periodic 4 every 16th move: predictable,
        // matching gap's very low misprediction rate (Table 4: 1.0 per
        // 1K µops).
        b.andi(26, 10, 15);
        b.cmpi(Opcode::CmpEqI, 1, 2, 26, 0);
        b.li(25, 3);
        {
            Instruction bump;
            bump.op = Opcode::AddI;
            bump.qp = 1;
            bump.rd = 25;
            bump.rs1 = 25;
            bump.imm = 1;
            b.emit(bump);
        }
        b.whileLoop(
            [&] { b.cmpi(Opcode::CmpGtI, 5, 6, 25, 0); }, 5, 6,
            [&] {
                b.add(4, 4, 25);
                b.addi(25, 25, -1);
            });

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputGap(InputSet s)
{
    double zeroProb, negProb;
    std::uint64_t seed;
    switch (s) {
      case InputSet::A: zeroProb = 0.005; negProb = 0.01; seed = 71; break;
      case InputSet::B: zeroProb = 0.03;  negProb = 0.05; seed = 72; break;
      case InputSet::C: zeroProb = 0.20;  negProb = 0.30; seed = 73; break;
      default: zeroProb = 0.05; negProb = 0.05; seed = 1; break;
    }
    Rng rng(seed);
    std::vector<Word> vec(kVecLen);
    for (Word &x : vec) {
        if (rng.chance(zeroProb))
            x = 0;
        else if (rng.chance(negProb))
            x = -rng.range(1, 1000);
        else
            x = rng.range(1, 1000);
    }
    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {8000}});
    segs.push_back({kVec, vec});
    return segs;
}

} // namespace kernels
} // namespace wisc
