/**
 * @file
 * Internal declarations: one builder and one input generator per kernel.
 * See each kernel's .cc for the behavioral profile it reproduces.
 */

#ifndef WISC_WORKLOADS_KERNELS_HH_
#define WISC_WORKLOADS_KERNELS_HH_

#include "workloads/workload.hh"

namespace wisc {
namespace kernels {

IrFunction buildGzip();
std::vector<DataSegment> inputGzip(InputSet s);

IrFunction buildVpr();
std::vector<DataSegment> inputVpr(InputSet s);

IrFunction buildMcf();
std::vector<DataSegment> inputMcf(InputSet s);

IrFunction buildCrafty();
std::vector<DataSegment> inputCrafty(InputSet s);

IrFunction buildParser();
std::vector<DataSegment> inputParser(InputSet s);

IrFunction buildGap();
std::vector<DataSegment> inputGap(InputSet s);

IrFunction buildVortex();
std::vector<DataSegment> inputVortex(InputSet s);

IrFunction buildBzip2();
std::vector<DataSegment> inputBzip2(InputSet s);

IrFunction buildTwolf();
std::vector<DataSegment> inputTwolf(InputSet s);

/** Pack a byte array into the 8-byte words a DataSegment holds. */
std::vector<Word> packBytes(const std::vector<std::uint8_t> &bytes);

} // namespace kernels
} // namespace wisc

#endif // WISC_WORKLOADS_KERNELS_HH_
