/**
 * @file
 * crafty analogue: bitboard evaluation.
 *
 * Behavioral profile reproduced: register-heavy 64-bit bit manipulation
 * with high ILP, a moderately biased branch on extracted board bits
 * (bias controlled by the input's bit density), and a small nested
 * hammock that every binary predicates (its arm is under the N=5 wish
 * threshold). Cache-resident: crafty is core-bound, not memory-bound.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kBoards = kDataBase; // 1024 words
constexpr int kNumBoards = 1024;

} // namespace

IrFunction
buildCrafty()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = boards, r16 = nested-test mask.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.ld(16, 36, 8);
    b.li(12, static_cast<Word>(kBoards));
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.andi(30, 10, kNumBoards - 1);
        b.shli(30, 30, 3);
        b.add(30, 30, 12);
        b.ld(20, 30, 0); // board

        // Parallel-prefix style mixing (high ILP straight-line code).
        b.shri(21, 20, 32);
        b.xor_(21, 21, 20);
        b.shri(22, 21, 16);
        b.xor_(22, 22, 21);
        b.shri(23, 22, 8);
        b.xor_(23, 23, 22);
        b.andi(24, 23, 255);

        // Attack-pattern test: bias follows the input's bit density.
        b.andi(25, 20, 0x88);
        b.cmpi(Opcode::CmpEqI, 1, 2, 25, 0);
        b.ifThenElse(
            1, 2,
            [&] {
                b.shli(26, 24, 2);
                b.add(4, 4, 26);
                b.xor_(4, 4, 21);
                b.addi(4, 4, 9);
                b.muli(27, 24, 7);
                b.add(4, 4, 27);
            },
            [&] {
                b.shri(26, 24, 1);
                b.add(4, 4, 26);
                b.xor_(4, 4, 22);
                b.addi(4, 4, 5);
                b.muli(27, 24, 3);
                b.sub(4, 4, 27);
            });

        // Small nested test: always predicated (arm of 3 < N).
        b.and_(28, 20, 16);
        b.cmpi(Opcode::CmpNeI, 3, 4, 28, 0);
        b.ifThen(3, 4, [&] {
            b.addi(4, 4, 1);
            b.xori(4, 4, 0x0f);
            b.addi(4, 4, 2);
        });

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputCrafty(InputSet s)
{
    // Bit density controls the (board & 0x88) == 0 bias.
    double bitProb;
    std::uint64_t seed;
    switch (s) {
      case InputSet::A: bitProb = 0.50; seed = 51; break;
      case InputSet::B: bitProb = 0.25; seed = 52; break;
      case InputSet::C: bitProb = 0.06; seed = 53; break;
      default: bitProb = 0.3; seed = 1; break;
    }
    Rng rng(seed);
    std::vector<Word> boards(kNumBoards, 0);
    for (Word &w : boards) {
        UWord v = 0;
        for (int bit = 0; bit < 64; ++bit)
            if (rng.chance(bitProb))
                v |= UWord(1) << bit;
        w = static_cast<Word>(v);
    }
    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {9000, 0x700}});
    segs.push_back({kBoards, boards});
    return segs;
}

} // namespace kernels
} // namespace wisc
