/**
 * @file
 * bzip2 analogue: block-sort compare-and-swap sweeps.
 *
 * Behavioral profile reproduced: an element-comparison branch whose
 * predictability depends on how sorted the data already is — the
 * input-sensitivity that makes predicated bzip2 16% slower on one input
 * and marginally faster on another (Figure 1) — plus a run-detection
 * loop (wish loop). The swap arm stores through, so the array gets more
 * sorted as the kernel runs, drifting the branch bias like a real sort.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kBuf = kDataBase; // 8192 bytes
constexpr int kBufLen = 8192;
constexpr int kMaxRun = 11;

} // namespace

IrFunction
buildBzip2()
{
    KernelBuilder b;

    // r10 = i, r11 = n, r12 = buf, r14 = lcg.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.li(12, static_cast<Word>(kBuf));
    b.li(14, 555);
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.muli(14, 14, 1103515245);
        b.addi(14, 14, 12345);
        b.shri(30, 14, 16);
        b.andi(30, 30, kBufLen - 2);
        b.add(31, 30, 12);
        b.ld1(20, 31, 0); // x
        b.ld1(21, 31, 1); // y

        // Out-of-order pair? swap (drifts toward sorted).
        b.cmp(Opcode::CmpGt, 1, 2, 20, 21);
        b.ifThenElse(
            1, 2,
            [&] { // swap
                b.st1(21, 31, 0);
                b.st1(20, 31, 1);
                b.add(4, 4, 20);
                b.xori(4, 4, 0x13);
                b.addi(4, 4, 1);
                b.sub(22, 20, 21);
                b.add(4, 4, 22);
            },
            [&] { // in order
                b.add(4, 4, 21);
                b.xori(4, 4, 0x29);
                b.addi(4, 4, 2);
                b.sub(22, 21, 20);
                b.add(4, 4, 22);
                b.addi(4, 4, 1);
            });

        // Run detection (1..kMaxRun trips).
        b.li(23, 1);
        b.doWhileLoop(3, [&] {
            b.add(32, 30, 23);
            b.andi(32, 32, kBufLen - 1);
            b.add(32, 32, 12);
            b.ld1(33, 32, 0);
            b.xor_(34, 33, 20);
            b.addi(23, 23, 1);
            b.cmpi(Opcode::CmpEqI, 3, 0, 34, 0);
        });
        b.add(4, 4, 23);

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputBzip2(InputSet s)
{
    Rng rng(s == InputSet::A ? 91 : s == InputSet::B ? 92 : 93);
    std::vector<std::uint8_t> buf(kBufLen);

    // A: random bytes (hard compares, short runs).
    // B: blockwise sorted-ish. C: almost sorted (easy compares).
    int prev = 0;
    int run = 1;
    for (int i = 0; i < kBufLen; ++i) {
        int v;
        switch (s) {
          case InputSet::A:
            v = static_cast<int>(rng.below(200)) + 1;
            break;
          case InputSet::B:
            v = ((i / 64) * 3 + static_cast<int>(rng.below(24))) % 200 + 1;
            break;
          case InputSet::C:
          default:
            // Nearly sorted with mostly-distinct values, so equal-byte
            // runs stay short even after the kernel finishes sorting.
            v = (i / 4 + static_cast<int>(rng.below(2))) % 250 + 1;
            break;
        }
        // Cap equal-byte runs so the run loop terminates.
        if (i > 0 && v == prev) {
            if (++run >= kMaxRun) {
                v = (v % 200) + 2;
                run = 1;
            }
        } else {
            run = 1;
        }
        buf[i] = static_cast<std::uint8_t>(v);
        prev = v;
    }

    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {7000}});
    segs.push_back({kBuf, packBytes(buf)});
    return segs;
}

} // namespace kernels
} // namespace wisc
