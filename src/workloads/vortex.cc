/**
 * @file
 * vortex analogue: object-database record validation and dispatch.
 *
 * Behavioral profile reproduced: long chains of *extremely* predictable
 * branches (status checks that almost never fail, a type dispatch
 * dominated by one class — Table 4 shows vortex at 0.8 mispredicts per
 * 1K µops), so predication is nearly pure overhead and wish branches
 * should recover it. The nested type dispatch builds the Figure-6-style
 * multi-level region. Working set is L1-resident.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kRecs = kDataBase; // 1024 records x 4 words
constexpr int kNumRecs = 1024;

} // namespace

IrFunction
buildVortex()
{
    KernelBuilder b;

    // Record: [type, a, b, status]. r10 = i, r11 = n, r12 = recs.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.li(12, static_cast<Word>(kRecs));
    b.li(13, static_cast<Word>(kOutBase));
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.andi(30, 10, kNumRecs - 1);
        b.shli(31, 30, 5);
        b.add(31, 31, 12);
        b.ld(20, 31, 0);  // type
        b.ld(21, 31, 8);  // a
        b.ld(22, 31, 24); // status

        // Validity check: ~99.9% pass. The arm computes into a private
        // temporary so predicated execution does not serialize through
        // the checksum accumulator.
        b.cmpi(Opcode::CmpEqI, 1, 2, 22, 0);
        b.li(40, 0);
        b.ifThen(1, 2, [&] {
            b.add(40, 21, 30);
            b.xori(40, 40, 0x5);
            b.addi(40, 40, 1);
            b.shli(32, 21, 1);
            b.add(40, 40, 32);
            b.addi(40, 40, 2);
        });
        b.add(4, 4, 40);

        // Type dispatch: type 0 dominates; 1 and 2 nest in the else arm
        // (the complex-control-flow shape of Figure 6).
        // Each arm owns a zero-initialized temporary so the predicated
        // arms do not chain through a shared destination register.
        b.cmpi(Opcode::CmpEqI, 3, 4, 20, 0);
        b.li(41, 0);
        b.li(42, 0);
        b.li(43, 0);
        b.ifThenElse(
            3, 4,
            [&] { // type 0 (common)
                b.muli(41, 21, 3);
                b.addi(41, 41, 7);
                b.xori(41, 41, 0x21);
                b.shri(34, 21, 2);
                b.add(41, 41, 34);
                b.addi(41, 41, 1);
            },
            [&] { // rare types
                b.cmpi(Opcode::CmpEqI, 5, 6, 20, 1);
                b.ifThenElse(
                    5, 6,
                    [&] { // type 1
                        b.muli(42, 21, 5);
                        b.addi(42, 42, 11);
                        b.xori(42, 42, 0x31);
                        b.shri(34, 21, 1);
                        b.add(42, 42, 34);
                        b.addi(42, 42, 2);
                    },
                    [&] { // type 2
                        b.muli(43, 21, 7);
                        b.addi(43, 43, 13);
                        b.xori(43, 43, 0x41);
                        b.shli(34, 21, 2);
                        b.add(43, 43, 34);
                        b.addi(43, 43, 3);
                    });
            });
        b.add(4, 4, 41);
        b.add(4, 4, 42);
        b.add(4, 4, 43);

        // Commit the transaction result.
        b.andi(35, 30, 511);
        b.shli(35, 35, 3);
        b.add(35, 35, 13);
        b.st(4, 35, 0);

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputVortex(InputSet s)
{
    double failProb, rareProb;
    std::uint64_t seed;
    switch (s) {
      case InputSet::A: failProb = 0.001; rareProb = 0.04; seed = 81; break;
      case InputSet::B: failProb = 0.005; rareProb = 0.10; seed = 82; break;
      case InputSet::C: failProb = 0.02;  rareProb = 0.30; seed = 83; break;
      default: failProb = 0.01; rareProb = 0.1; seed = 1; break;
    }
    Rng rng(seed);
    std::vector<Word> recs;
    recs.reserve(kNumRecs * 4);
    for (int i = 0; i < kNumRecs; ++i) {
        Word type = 0;
        if (rng.chance(rareProb))
            type = 1 + static_cast<Word>(rng.below(2));
        recs.push_back(type);
        recs.push_back(rng.range(1, 5000)); // a
        recs.push_back(rng.range(1, 5000)); // b
        recs.push_back(rng.chance(failProb) ? 1 : 0);
    }
    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {9000}});
    segs.push_back({kRecs, recs});
    return segs;
}

} // namespace kernels
} // namespace wisc
