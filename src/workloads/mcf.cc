/**
 * @file
 * mcf analogue: network-simplex tree traversal.
 *
 * Behavioral profile reproduced: a pointer chase through a structure far
 * larger than the L2 where the *next pointer is selected by a
 * data-dependent condition*. With branch prediction the chase load
 * issues speculatively; if-converted code serializes it behind the
 * value load and compare — §5.1's "serialization of many critical load
 * instructions", which makes BASE-MAX catastrophically slow on mcf.
 * The selection bias is the input: input A is heavily biased (almost
 * always correctly predicted, so predication only hurts), input C is
 * nearly random.
 *
 * Node layout at base + i*stride: pointers at +0/+8, the value at +64
 * (a different cache line, as in mcf where the orientation field and
 * arc pointers live in different structures). One pass over 3000 nodes:
 * every node is a compulsory miss, like the always-thrashing real mcf.
 */

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "workloads/kernels.hh"

namespace wisc {
namespace kernels {

namespace {

constexpr Addr kNodes = 0x200000;
constexpr int kNumNodes = 3000;
constexpr Word kStride = 136; // pointers and value on adjacent lines

} // namespace

IrFunction
buildMcf()
{
    KernelBuilder b;

    // r6 = node pointer, r10 = pass counter, r11 = passes, r12 = head.
    b.li(36, static_cast<Word>(kParamBase));
    b.ld(11, 36, 0);
    b.li(12, static_cast<Word>(kNodes));
    b.li(10, 0);
    b.li(4, 0);

    b.doWhileLoop(7, [&] {
        b.addi(6, 12, 0); // restart at the head
        b.doWhileLoop(5, [&] {
            b.ld(7, 6, 64); // value (misses; a different line)
            b.cmpi(Opcode::CmpGtI, 1, 2, 7, 0);
            b.ifThenElse(
                1, 2,
                [&] { // common direction
                    b.ld(6, 6, 0);
                    b.addi(4, 4, 1);
                    b.add(4, 4, 7);
                    b.xori(4, 4, 1);
                    b.addi(4, 4, 3);
                    b.shli(30, 7, 1);
                },
                [&] { // rare direction
                    b.ld(6, 6, 8);
                    b.addi(4, 4, 2);
                    b.sub(4, 4, 7);
                    b.xori(4, 4, 2);
                    b.addi(4, 4, 5);
                    b.shli(31, 7, 1);
                });
            b.cmpi(Opcode::CmpNeI, 5, 0, 6, 0);
        });
        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });

    return b.finish();
}

std::vector<DataSegment>
inputMcf(InputSet s)
{
    double rareProb;
    std::uint64_t seed;
    Word passes;
    switch (s) {
      // A is the paper's "reduced input": the selection is almost always
      // predicted correctly, so predication only adds serialization.
      // B (the train input) is hard enough that the profile-driven
      // BASE-DEF compiler chooses to predicate — the compile-time "bad
      // decision" wish branches exist to undo.
      case InputSet::A: rareProb = 0.01; seed = 41; passes = 1; break;
      case InputSet::B: rareProb = 0.10; seed = 42; passes = 1; break;
      case InputSet::C: rareProb = 0.45; seed = 43; passes = 1; break;
      default: rareProb = 0.1; seed = 1; passes = 1; break;
    }
    Rng rng(seed);

    std::vector<DataSegment> segs;
    segs.push_back({kParamBase, {passes}});
    for (int i = 0; i < kNumNodes; ++i) {
        Addr a = kNodes + static_cast<Addr>(i) * kStride;
        Word next = (i + 1 < kNumNodes)
                        ? static_cast<Word>(a + kStride)
                        : 0;
        Word val = rng.chance(rareProb) ? -(1 + rng.range(0, 20))
                                        : 1 + rng.range(0, 20);
        segs.push_back({a, {next, next}});
        segs.push_back({a + 64, {val}});
    }
    return segs;
}

} // namespace kernels
} // namespace wisc
