/**
 * @file
 * The cheap classic points of the predictor zoo: a Smith bimodal
 * predictor (per-PC 2-bit counters, no history) and a standalone GAs
 * two-level predictor (one global history register whose low bits are
 * concatenated with low PC bits to index a shared pattern table).
 * Both still maintain the 64-bit global history register via
 * BranchPredictorBase — the core feeds it to the confidence estimator
 * and the indirect target cache regardless of the direction predictor.
 */

#ifndef WISC_UARCH_SIMPLE_BPRED_HH_
#define WISC_UARCH_SIMPLE_BPRED_HH_

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/params.hh"

namespace wisc {

/** Smith bimodal: table of per-PC 2-bit saturating counters. */
class BimodalPredictor final : public BranchPredictorBase
{
  public:
    BimodalPredictor(const SimParams &params, StatSet &stats);

    bool predict(std::uint32_t pc, BpredCheckpoint &ckpt) override;
    void train(std::uint32_t pc, bool taken,
               const BpredCheckpoint &ckpt) override;

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    std::vector<std::uint8_t> ctrs_;
};

/** GAs two-level: global history ++ low PC bits -> pattern table. */
class TwoLevelPredictor final : public BranchPredictorBase
{
  public:
    TwoLevelPredictor(const SimParams &params, StatSet &stats);

    bool predict(std::uint32_t pc, BpredCheckpoint &ckpt) override;
    void train(std::uint32_t pc, bool taken,
               const BpredCheckpoint &ckpt) override;

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    std::size_t indexOf(std::uint32_t pc, std::uint64_t hist) const;

    unsigned histBits_;
    std::vector<std::uint8_t> ctrs_;
};

} // namespace wisc

#endif // WISC_UARCH_SIMPLE_BPRED_HH_
