/**
 * @file
 * The Table-2 branch prediction stack: a 64K-entry gshare and a PAs
 * two-level predictor combined by a 64K-entry selector (McFarling-style
 * hybrid), plus a 4K-entry 4-way BTB extended with wish-branch type bits
 * (§3.5.1), a 64-entry return address stack, and an indirect target
 * cache.
 *
 * The global history register is updated speculatively at fetch and
 * restored from per-branch checkpoints on a flush. Pattern tables and
 * the selector train at retirement.
 */

#ifndef WISC_UARCH_BPRED_HH_
#define WISC_UARCH_BPRED_HH_

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"
#include "uarch/params.hh"

namespace wisc {

/** Snapshot of speculative predictor state taken at each branch fetch,
 *  used to repair the predictor on a pipeline flush. */
struct BpredCheckpoint
{
    std::uint64_t globalHistory = 0;
    std::uint16_t localHistory = 0; ///< prior PAs history of this branch
};

/** Direction predictor: gshare + PAs + selector. */
class HybridPredictor
{
  public:
    HybridPredictor(const SimParams &params, StatSet &stats);

    /** Predict the branch at 'pc' (instruction index). Also returns the
     *  checkpoint the caller must keep for recovery. */
    bool predict(std::uint32_t pc, BpredCheckpoint &ckpt) const;

    /** Speculatively shift the predicted direction into the histories. */
    void updateSpeculative(std::uint32_t pc, bool predTaken);

    /** Train counters with the true outcome (at retirement). */
    void train(std::uint32_t pc, bool taken, const BpredCheckpoint &ckpt);

    /** Restore speculative history from a checkpoint after a flush; the
     *  resolved branch's true outcome is shifted in. */
    void recover(std::uint32_t pc, bool actualTaken,
                 const BpredCheckpoint &ckpt);

    std::uint64_t globalHistory() const { return globalHistory_; }

  private:
    std::size_t gshareIndex(std::uint32_t pc, std::uint64_t hist) const;
    std::size_t pasHistIndex(std::uint32_t pc) const;
    std::size_t pasPatternIndex(std::uint32_t pc,
                                std::uint16_t hist) const;
    std::size_t selectorIndex(std::uint32_t pc) const;

    SimParams params_;
    std::vector<std::uint8_t> gshare_;   ///< 2-bit counters
    std::vector<std::uint16_t> pasHist_; ///< per-address history regs
    std::vector<std::uint8_t> pasPattern_;
    std::vector<std::uint8_t> selector_; ///< 2-bit: >=2 prefers gshare
    std::uint64_t globalHistory_ = 0;
};

/** One BTB entry (with the §3.5.1 wish extension). */
struct BtbEntry
{
    bool valid = false;
    std::uint32_t pc = 0;
    std::uint32_t target = 0;
    WishKind wish = WishKind::None;
    bool isConditional = false;
    std::uint64_t lastUse = 0;
};

/** Branch target buffer, set-associative with LRU. */
class Btb
{
  public:
    Btb(const SimParams &params, StatSet &stats);

    const BtbEntry *lookup(std::uint32_t pc);
    void insert(std::uint32_t pc, std::uint32_t target, WishKind wish,
                bool isConditional);
    void reset();

  private:
    std::size_t setOf(std::uint32_t pc) const;

    unsigned sets_;
    unsigned ways_;
    std::vector<BtbEntry> entries_;
    std::uint64_t useClock_ = 0;
    Counter *hits_;
    Counter *misses_;
};

/** Return address stack with simple overwrite-on-overflow semantics. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries);

    void push(std::uint32_t returnPc);
    std::uint32_t pop(); ///< returns 0 when empty

    /** Checkpoint/restore the top-of-stack pointer (cheap repair). */
    unsigned top() const { return top_; }
    void restore(unsigned top) { top_ = top; }

  private:
    std::vector<std::uint32_t> stack_;
    unsigned top_ = 0; ///< number of valid entries
};

/** Tagless indirect target cache indexed by pc ^ global history. */
class IndirectTargetCache
{
  public:
    IndirectTargetCache(unsigned entries, StatSet &stats);

    std::uint32_t predict(std::uint32_t pc, std::uint64_t hist) const;
    void update(std::uint32_t pc, std::uint64_t hist,
                std::uint32_t target);

  private:
    std::size_t index(std::uint32_t pc, std::uint64_t hist) const;
    std::vector<std::uint32_t> targets_;
};

} // namespace wisc

#endif // WISC_UARCH_BPRED_HH_
