/**
 * @file
 * The Table-2 branch prediction stack: a 64K-entry gshare and a PAs
 * two-level predictor combined by a 64K-entry selector (McFarling-style
 * hybrid), plus a 4K-entry 4-way BTB extended with wish-branch type bits
 * (§3.5.1), a 64-entry return address stack, and an indirect target
 * cache.
 *
 * The global history register is updated speculatively at fetch and
 * restored from per-branch checkpoints on a flush. Pattern tables and
 * the selector train at retirement.
 */

#ifndef WISC_UARCH_BPRED_HH_
#define WISC_UARCH_BPRED_HH_

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/params.hh"

namespace wisc {

/** Direction predictor: gshare + PAs + selector. */
class HybridPredictor final : public BranchPredictorBase
{
  public:
    HybridPredictor(const SimParams &params, StatSet &stats);

    /** Predict the branch at 'pc' (instruction index). Also returns the
     *  checkpoint the caller must keep for recovery. */
    bool predict(std::uint32_t pc, BpredCheckpoint &ckpt) override;

    /** Speculatively shift the predicted direction into the histories. */
    void updateSpeculative(std::uint32_t pc, bool predTaken) override;

    /** Train counters with the true outcome (at retirement). */
    void train(std::uint32_t pc, bool taken,
               const BpredCheckpoint &ckpt) override;

    /** Restore speculative history from a checkpoint after a flush; the
     *  resolved branch's true outcome is shifted in. */
    void recover(std::uint32_t pc, bool actualTaken,
                 const BpredCheckpoint &ckpt) override;

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    std::size_t gshareIndex(std::uint32_t pc, std::uint64_t hist) const;
    std::size_t pasHistIndex(std::uint32_t pc) const;
    std::size_t pasPatternIndex(std::uint32_t pc,
                                std::uint16_t hist) const;
    std::size_t selectorIndex(std::uint32_t pc) const;

    SimParams params_;
    std::vector<std::uint8_t> gshare_;   ///< 2-bit counters
    std::vector<std::uint16_t> pasHist_; ///< per-address history regs
    std::vector<std::uint8_t> pasPattern_;
    std::vector<std::uint8_t> selector_; ///< 2-bit: >=2 prefers gshare
};

/** One BTB entry (with the §3.5.1 wish extension). */
struct BtbEntry
{
    bool valid = false;
    std::uint32_t pc = 0;
    std::uint32_t target = 0;
    WishKind wish = WishKind::None;
    bool isConditional = false;
    std::uint64_t lastUse = 0;
};

/** Branch target buffer, set-associative with LRU. */
class Btb
{
  public:
    Btb(const SimParams &params, StatSet &stats);

    const BtbEntry *lookup(std::uint32_t pc);
    void insert(std::uint32_t pc, std::uint32_t target, WishKind wish,
                bool isConditional);
    void reset();

    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    std::size_t setOf(std::uint32_t pc) const;

    unsigned sets_;
    unsigned ways_;
    std::vector<BtbEntry> entries_;
    std::uint64_t useClock_ = 0;
    Counter *hits_;
    Counter *misses_;
};

/** Per-branch RAS repair state: top-of-stack pointer plus the value it
 *  held at fetch (standard TOS-value repair). The value matters when a
 *  flush spans an overflow: wrap-around pushes overwrite the slot the
 *  checkpointed pointer still names, so restoring the index alone would
 *  silently restore a younger wrong-path return target. */
struct RasCheckpoint
{
    unsigned tos = 0;           ///< slot index of the top entry
    unsigned count = 0;         ///< number of valid entries
    std::uint32_t topValue = 0; ///< stack_[tos] at checkpoint time
};

/** Return address stack: circular buffer, overwrite-oldest on
 *  overflow, checkpointed with TOS-value repair. Entries deeper than
 *  the repaired top that were clobbered by a wrapping wrong-path push
 *  stay clobbered — exactly the compromise hardware RAS repair makes. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries);

    void push(std::uint32_t returnPc);
    std::uint32_t pop(); ///< returns 0 when empty

    RasCheckpoint checkpoint() const;
    void restore(const RasCheckpoint &ckpt);

    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    std::vector<std::uint32_t> stack_;
    unsigned tos_;       ///< slot of the top entry (valid if count_ > 0)
    unsigned count_ = 0; ///< number of valid entries
};

/** Tagless indirect target cache indexed by pc ^ (masked) global
 *  history. The history register itself is an unbounded shift
 *  register; the cache hashes only its low `histBits` bits, so the
 *  index function is a pure function of fingerprinted state. */
class IndirectTargetCache
{
  public:
    IndirectTargetCache(unsigned entries, unsigned histBits,
                        StatSet &stats);

    std::uint32_t predict(std::uint32_t pc, std::uint64_t hist) const;
    void update(std::uint32_t pc, std::uint64_t hist,
                std::uint32_t target);

    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    std::size_t index(std::uint32_t pc, std::uint64_t hist) const;
    std::vector<std::uint32_t> targets_;
    std::uint64_t histMask_;
};

} // namespace wisc

#endif // WISC_UARCH_BPRED_HH_
