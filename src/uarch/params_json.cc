#include "uarch/params_json.hh"

#include <vector>

#include "common/log.hh"

namespace wisc {

namespace {

// ---- enum name tables -------------------------------------------------

struct EnumName
{
    std::uint8_t value;
    const char *name;
};

constexpr EnumName kPredictorNames[] = {
    {static_cast<std::uint8_t>(PredictorKind::Hybrid), "Hybrid"},
    {static_cast<std::uint8_t>(PredictorKind::Bimodal), "Bimodal"},
    {static_cast<std::uint8_t>(PredictorKind::TwoLevel), "TwoLevel"},
    {static_cast<std::uint8_t>(PredictorKind::Tage), "Tage"},
};

constexpr EnumName kConfKindNames[] = {
    {static_cast<std::uint8_t>(ConfKind::Jrs), "Jrs"},
    {static_cast<std::uint8_t>(ConfKind::UpDown), "UpDown"},
    {static_cast<std::uint8_t>(ConfKind::Tage), "Tage"},
};

constexpr EnumName kPredMechNames[] = {
    {static_cast<std::uint8_t>(PredMechanism::CStyle), "CStyle"},
    {static_cast<std::uint8_t>(PredMechanism::SelectUop), "SelectUop"},
};

constexpr EnumName kDynPredNames[] = {
    {static_cast<std::uint8_t>(DynPredMode::Off), "Off"},
    {static_cast<std::uint8_t>(DynPredMode::MergePoint), "MergePoint"},
    {static_cast<std::uint8_t>(DynPredMode::FetchGate), "FetchGate"},
};

template <std::size_t N>
const char *
enumName(const EnumName (&table)[N], std::uint8_t v)
{
    for (const EnumName &e : table)
        if (e.value == v)
            return e.name;
    wisc_fatal("SimParams JSON: enum value ", unsigned(v),
               " has no name (table out of date?)");
}

template <std::size_t N>
std::uint8_t
enumValue(const EnumName (&table)[N], const std::string &name,
          const char *field)
{
    for (const EnumName &e : table)
        if (name == e.name)
            return e.value;
    wisc_fatal("SimParams JSON: '", name, "' is not a valid ", field);
}

// ---- strict object reader ---------------------------------------------

/** Wraps one JSON object; every member must be consumed exactly once.
 *  Missing fields and leftover (unknown) keys are fatal, so a document
 *  produced by a build with a different SimParams shape cannot decode
 *  into the wrong machine silently. */
class ObjReader
{
  public:
    ObjReader(const json::Value &v, const char *what) : v_(v), what_(what)
    {
        if (!v.isObject())
            wisc_fatal("SimParams JSON: ", what, " is not an object");
    }

    const json::Value &
    take(const char *key)
    {
        const json::Value *m = v_.find(key);
        if (!m)
            wisc_fatal("SimParams JSON: ", what_, " is missing field '",
                       key, "' (version-skewed document?)");
        taken_.push_back(key);
        return *m;
    }

    unsigned u(const char *key) // NOLINT: u32-sized fields
    {
        return static_cast<unsigned>(take(key).asUint());
    }
    std::uint64_t u64(const char *key) { return take(key).asUint(); }
    bool b(const char *key) { return take(key).asBool(); }
    std::string str(const char *key) { return take(key).asString(); }

    /** Call after every field was taken; leftover keys are fatal. */
    void
    finish() const
    {
        if (taken_.size() == v_.size())
            return;
        for (const auto &kv : v_.members()) {
            bool seen = false;
            for (const char *k : taken_)
                if (kv.first == k)
                    seen = true;
            if (!seen)
                wisc_fatal("SimParams JSON: ", what_,
                           " has unknown field '", kv.first,
                           "' (version-skewed document?)");
        }
    }

  private:
    const json::Value &v_;
    const char *what_;
    std::vector<const char *> taken_;
};

json::Value
cacheToJson(const CacheParams &c)
{
    json::Value v = json::Value::object();
    v["sizeBytes"] = c.sizeBytes;
    v["ways"] = c.ways;
    v["lineBytes"] = c.lineBytes;
    v["hitLatency"] = c.hitLatency;
    return v;
}

CacheParams
cacheFromJson(const json::Value &v, const char *what)
{
    ObjReader r(v, what);
    CacheParams c;
    c.sizeBytes = r.u("sizeBytes");
    c.ways = r.u("ways");
    c.lineBytes = r.u("lineBytes");
    c.hitLatency = r.u("hitLatency");
    r.finish();
    return c;
}

} // namespace

json::Value
simParamsToJson(const SimParams &p)
{
    // The same growth guards fingerprint() carries: adding a field to
    // any of these structs trips the assert until this codec (and the
    // round-trip test) learns about it.
    static_assert(sizeof(CacheParams) == 16,
                  "CacheParams changed: extend simParamsToJson/FromJson "
                  "and the JSON round-trip test");
    static_assert(sizeof(SimParams::SamplingParams) == 40,
                  "SamplingParams changed: extend simParamsToJson/"
                  "FromJson and the JSON round-trip test");
    static_assert(sizeof(OracleKnobs) == 4,
                  "OracleKnobs changed: extend simParamsToJson/FromJson "
                  "and the JSON round-trip test");
    static_assert(sizeof(SimParams) == 344,
                  "SimParams changed: extend simParamsToJson/FromJson "
                  "and the JSON round-trip test");

    json::Value v = json::Value::object();
    v["fetchWidth"] = p.fetchWidth;
    v["decodeWidth"] = p.decodeWidth;
    v["issueWidth"] = p.issueWidth;
    v["retireWidth"] = p.retireWidth;
    v["maxCondBrPerFetch"] = p.maxCondBrPerFetch;
    v["memPortsPerCycle"] = p.memPortsPerCycle;

    v["robSize"] = p.robSize;
    v["iqSize"] = p.iqSize;
    v["lsqSize"] = p.lsqSize;
    v["pipelineStages"] = p.pipelineStages;

    v["il1"] = cacheToJson(p.il1);
    v["dl1"] = cacheToJson(p.dl1);
    v["l2"] = cacheToJson(p.l2);
    v["memLatency"] = p.memLatency;
    v["maxOutstandingMisses"] = p.maxOutstandingMisses;

    v["gshareEntries"] = p.gshareEntries;
    v["pasHistEntries"] = p.pasHistEntries;
    v["pasPatternEntries"] = p.pasPatternEntries;
    v["pasHistBits"] = p.pasHistBits;
    v["selectorEntries"] = p.selectorEntries;
    v["btbSets"] = p.btbSets;
    v["btbWays"] = p.btbWays;
    v["rasEntries"] = p.rasEntries;
    v["indirectEntries"] = p.indirectEntries;
    v["indirectHistBits"] = p.indirectHistBits;

    v["predictor"] =
        enumName(kPredictorNames,
                 static_cast<std::uint8_t>(p.predictor));
    v["bimodalEntries"] = p.bimodalEntries;
    v["twoLevelEntries"] = p.twoLevelEntries;
    v["twoLevelHistBits"] = p.twoLevelHistBits;
    v["tageTables"] = p.tageTables;
    v["tageEntriesLog2"] = p.tageEntriesLog2;
    v["tageTagBits"] = p.tageTagBits;
    v["tageMinHist"] = p.tageMinHist;
    v["tageMaxHist"] = p.tageMaxHist;
    v["tageBaseEntriesLog2"] = p.tageBaseEntriesLog2;
    v["tageUsefulBits"] = p.tageUsefulBits;
    v["tageResetPeriod"] = p.tageResetPeriod;

    v["confSets"] = p.confSets;
    v["confWays"] = p.confWays;
    v["confHistBits"] = p.confHistBits;
    v["confCtrBits"] = p.confCtrBits;
    v["confThreshold"] = p.confThreshold;
    v["confTagBits"] = p.confTagBits;
    v["confMissIsHigh"] = p.confMissIsHigh;

    v["confKind"] =
        enumName(kConfKindNames, static_cast<std::uint8_t>(p.confKind));
    v["udConfEntries"] = p.udConfEntries;
    v["udConfHistBits"] = p.udConfHistBits;
    v["udConfMax"] = p.udConfMax;
    v["udConfThreshold"] = p.udConfThreshold;
    v["udConfDownStep"] = p.udConfDownStep;

    v["latAlu"] = p.latAlu;
    v["latMul"] = p.latMul;
    v["latDiv"] = p.latDiv;
    v["latBranch"] = p.latBranch;
    v["latStoreForward"] = p.latStoreForward;

    v["predMech"] =
        enumName(kPredMechNames, static_cast<std::uint8_t>(p.predMech));
    v["wishEnabled"] = p.wishEnabled;
    v["wishLoopBias"] = p.wishLoopBias;

    v["dynPred"] =
        enumName(kDynPredNames, static_cast<std::uint8_t>(p.dynPred));
    v["dynFetchGateCycles"] = p.dynFetchGateCycles;
    v["dynMergeEntries"] = p.dynMergeEntries;
    v["dynMergeMinConf"] = p.dynMergeMinConf;
    v["dynMaxRegionUops"] = p.dynMaxRegionUops;
    v["dynMergeTrackUops"] = p.dynMergeTrackUops;

    json::Value oracle = json::Value::object();
    oracle["noDepend"] = p.oracle.noDepend;
    oracle["noFetch"] = p.oracle.noFetch;
    oracle["perfectCBP"] = p.oracle.perfectCBP;
    oracle["perfectConfidence"] = p.oracle.perfectConfidence;
    v["oracle"] = std::move(oracle);

    json::Value sampling = json::Value::object();
    sampling["enabled"] = p.sampling.enabled;
    sampling["periodUops"] = p.sampling.periodUops;
    sampling["warmupUops"] = p.sampling.warmupUops;
    sampling["measureUops"] = p.sampling.measureUops;
    sampling["prefixUops"] = p.sampling.prefixUops;
    v["sampling"] = std::move(sampling);

    v["maxCycles"] = p.maxCycles;
    v["maxRetired"] = p.maxRetired;
    v["checkFinalState"] = p.checkFinalState;
    v["collectAttribution"] = p.collectAttribution;
    v["collectBranchProfile"] = p.collectBranchProfile;
    v["pollScheduler"] = p.pollScheduler;
    return v;
}

SimParams
simParamsFromJson(const json::Value &v)
{
    ObjReader r(v, "SimParams");
    SimParams p;

    p.fetchWidth = r.u("fetchWidth");
    p.decodeWidth = r.u("decodeWidth");
    p.issueWidth = r.u("issueWidth");
    p.retireWidth = r.u("retireWidth");
    p.maxCondBrPerFetch = r.u("maxCondBrPerFetch");
    p.memPortsPerCycle = r.u("memPortsPerCycle");

    p.robSize = r.u("robSize");
    p.iqSize = r.u("iqSize");
    p.lsqSize = r.u("lsqSize");
    p.pipelineStages = r.u("pipelineStages");

    p.il1 = cacheFromJson(r.take("il1"), "il1");
    p.dl1 = cacheFromJson(r.take("dl1"), "dl1");
    p.l2 = cacheFromJson(r.take("l2"), "l2");
    p.memLatency = r.u("memLatency");
    p.maxOutstandingMisses = r.u("maxOutstandingMisses");

    p.gshareEntries = r.u("gshareEntries");
    p.pasHistEntries = r.u("pasHistEntries");
    p.pasPatternEntries = r.u("pasPatternEntries");
    p.pasHistBits = r.u("pasHistBits");
    p.selectorEntries = r.u("selectorEntries");
    p.btbSets = r.u("btbSets");
    p.btbWays = r.u("btbWays");
    p.rasEntries = r.u("rasEntries");
    p.indirectEntries = r.u("indirectEntries");
    p.indirectHistBits = r.u("indirectHistBits");

    p.predictor = static_cast<PredictorKind>(
        enumValue(kPredictorNames, r.str("predictor"), "predictor"));
    p.bimodalEntries = r.u("bimodalEntries");
    p.twoLevelEntries = r.u("twoLevelEntries");
    p.twoLevelHistBits = r.u("twoLevelHistBits");
    p.tageTables = r.u("tageTables");
    p.tageEntriesLog2 = r.u("tageEntriesLog2");
    p.tageTagBits = r.u("tageTagBits");
    p.tageMinHist = r.u("tageMinHist");
    p.tageMaxHist = r.u("tageMaxHist");
    p.tageBaseEntriesLog2 = r.u("tageBaseEntriesLog2");
    p.tageUsefulBits = r.u("tageUsefulBits");
    p.tageResetPeriod = r.u("tageResetPeriod");

    p.confSets = r.u("confSets");
    p.confWays = r.u("confWays");
    p.confHistBits = r.u("confHistBits");
    p.confCtrBits = r.u("confCtrBits");
    p.confThreshold = r.u("confThreshold");
    p.confTagBits = r.u("confTagBits");
    p.confMissIsHigh = r.b("confMissIsHigh");

    p.confKind = static_cast<ConfKind>(
        enumValue(kConfKindNames, r.str("confKind"), "confKind"));
    p.udConfEntries = r.u("udConfEntries");
    p.udConfHistBits = r.u("udConfHistBits");
    p.udConfMax = r.u("udConfMax");
    p.udConfThreshold = r.u("udConfThreshold");
    p.udConfDownStep = r.u("udConfDownStep");

    p.latAlu = r.u("latAlu");
    p.latMul = r.u("latMul");
    p.latDiv = r.u("latDiv");
    p.latBranch = r.u("latBranch");
    p.latStoreForward = r.u("latStoreForward");

    p.predMech = static_cast<PredMechanism>(
        enumValue(kPredMechNames, r.str("predMech"), "predMech"));
    p.wishEnabled = r.b("wishEnabled");
    p.wishLoopBias = r.b("wishLoopBias");

    p.dynPred = static_cast<DynPredMode>(
        enumValue(kDynPredNames, r.str("dynPred"), "dynPred"));
    p.dynFetchGateCycles = r.u("dynFetchGateCycles");
    p.dynMergeEntries = r.u("dynMergeEntries");
    p.dynMergeMinConf = r.u("dynMergeMinConf");
    p.dynMaxRegionUops = r.u("dynMaxRegionUops");
    p.dynMergeTrackUops = r.u("dynMergeTrackUops");

    {
        ObjReader ro(r.take("oracle"), "oracle");
        p.oracle.noDepend = ro.b("noDepend");
        p.oracle.noFetch = ro.b("noFetch");
        p.oracle.perfectCBP = ro.b("perfectCBP");
        p.oracle.perfectConfidence = ro.b("perfectConfidence");
        ro.finish();
    }
    {
        ObjReader rs(r.take("sampling"), "sampling");
        p.sampling.enabled = rs.b("enabled");
        p.sampling.periodUops = rs.u64("periodUops");
        p.sampling.warmupUops = rs.u64("warmupUops");
        p.sampling.measureUops = rs.u64("measureUops");
        p.sampling.prefixUops = rs.u64("prefixUops");
        rs.finish();
    }

    p.maxCycles = r.u64("maxCycles");
    p.maxRetired = r.u64("maxRetired");
    p.checkFinalState = r.b("checkFinalState");
    p.collectAttribution = r.b("collectAttribution");
    p.collectBranchProfile = r.b("collectBranchProfile");
    p.pollScheduler = r.b("pollScheduler");

    r.finish();
    return p;
}

} // namespace wisc
