#include "uarch/confidence.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace wisc {

JrsConfidenceEstimator::JrsConfidenceEstimator(const SimParams &params,
                                               StatSet &stats)
    : sets_(params.confSets),
      ways_(params.confWays),
      histBits_(params.confHistBits),
      ctrMax_(static_cast<unsigned>(maskBits(params.confCtrBits))),
      threshold_(params.confThreshold),
      tagBits_(params.confTagBits),
      missIsHigh_(params.confMissIsHigh)
{
    wisc_assert(isPow2(sets_), "confidence sets must be a power of two");
    wisc_assert(threshold_ <= ctrMax_,
                "confidence threshold exceeds counter range");
    entries_.assign(static_cast<std::size_t>(sets_) * ways_, Entry{});
    queries_ = &stats.counter("conf.queries");
    highs_ = &stats.counter("conf.high_estimates");
}

std::size_t
JrsConfidenceEstimator::setOf(std::uint32_t pc, std::uint64_t hist) const
{
    std::uint64_t h = hist & maskBits(histBits_);
    return (pc ^ h) & (sets_ - 1);
}

std::uint16_t
JrsConfidenceEstimator::tagOf(std::uint32_t pc, std::uint64_t hist) const
{
    std::uint64_t h = hist & maskBits(histBits_);
    return static_cast<std::uint16_t>(mixHash(pc ^ (h << 20)) &
                                      maskBits(tagBits_));
}

bool
JrsConfidenceEstimator::estimate(std::uint32_t pc,
                                 std::uint64_t hist) const
{
    ++*queries_;
    const Entry *base = &entries_[setOf(pc, hist) * ways_];
    std::uint16_t tag = tagOf(pc, hist);
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            bool high = base[w].ctr >= threshold_;
            if (high)
                ++*highs_;
            return high;
        }
    }
    if (missIsHigh_)
        ++*highs_;
    return missIsHigh_;
}

void
JrsConfidenceEstimator::update(std::uint32_t pc, std::uint64_t hist,
                               bool correct)
{
    Entry *base = &entries_[setOf(pc, hist) * ways_];
    std::uint16_t tag = tagOf(pc, hist);
    ++useClock_;

    Entry *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            if (correct)
                satIncrement(e.ctr, 8); // saturate at ctrMax_ below
            else
                e.ctr = 0;
            if (e.ctr > ctrMax_)
                e.ctr = static_cast<std::uint8_t>(ctrMax_);
            e.lastUse = useClock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    // Optimistic policy: only a misprediction allocates an entry, so
    // stably-predicted branches keep their high-confidence default and
    // the table holds only the troublemakers.
    if (missIsHigh_ && correct)
        return;
    victim->valid = true;
    victim->tag = tag;
    victim->ctr = correct ? 1 : 0;
    victim->lastUse = useClock_;
}

void
JrsConfidenceEstimator::reset()
{
    entries_.assign(entries_.size(), Entry{});
    useClock_ = 0;
}

void
JrsConfidenceEstimator::saveState(ByteWriter &w) const
{
    w.u64(useClock_);
    w.vec(entries_);
}

void
JrsConfidenceEstimator::restoreState(ByteReader &r)
{
    useClock_ = r.u64();
    r.vec(entries_);
}

} // namespace wisc
