/**
 * @file
 * Simulator configuration. Defaults reproduce the baseline processor of
 * Table 2: 8-wide fetch/decode/rename/execute/retire, 512-entry reorder
 * buffer, 64 KB 4-way 2-cycle L1 caches, 1 MB 8-way 6-cycle L2, 300-cycle
 * memory, a 64K-entry gshare/PAs hybrid with 64K-entry selector, 4K-entry
 * BTB, 64-entry RAS, and a 1 KB tagged 4-way 16-bit-history JRS
 * confidence estimator. The minimum branch misprediction penalty is
 * ~30 cycles at the default 30-stage pipeline depth.
 */

#ifndef WISC_UARCH_PARAMS_HH_
#define WISC_UARCH_PARAMS_HH_

#include <cstdint>

namespace wisc {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitLatency = 2;
};

/** Which confidence estimator drives wish-branch decisions. */
enum class ConfKind : std::uint8_t
{
    Jrs,    ///< Table 2's tagged miss-distance-counter estimator
    UpDown, ///< per-PC asymmetric up/down rate estimator (§7 extension)
    Tage,   ///< TAGE provider strength/usefulness (requires a TAGE
            ///< direction predictor; the estimate is free)
};

/** Which direction predictor drives the front end (IBranchPredictor
 *  implementations, uarch/bpred_iface.hh). */
enum class PredictorKind : std::uint8_t
{
    Hybrid,   ///< Table 2's gshare + PAs + selector (McFarling)
    Bimodal,  ///< per-PC 2-bit saturating counters (Smith)
    TwoLevel, ///< GAs: global history ++ PC bits -> shared pattern table
    Tage,     ///< geometric-history tagged predictor (Seznec & Michaud)
};

/** How the rename stage handles predicated instructions (§2.1, §5.3.3). */
enum class PredMechanism : std::uint8_t
{
    CStyle,    ///< C-style conditional expressions: 1 µop, 4 sources
    SelectUop, ///< compute µop + select µop (Wang et al.)
};

/**
 * Hardware-only adaptive predication for *normal* branches — the
 * compiler never marked them, the frontend decides alone
 * (DESIGN.md: dynamic predication).
 */
enum class DynPredMode : std::uint8_t
{
    Off,        ///< baseline: only compiler wish branches adapt
    MergePoint, ///< predicate low-confidence branches up to a merge
                ///< point learned in hardware (Dynamic Merge Point
                ///< Prediction, Pruett & Patt)
    FetchGate,  ///< stall fetch for a fixed penalty on low-confidence
                ///< branches instead of predicating (Variable
                ///< Instruction Fetch Rate)
};

/** Idealization switches used by the Figure 2/10/12 experiments. */
struct OracleKnobs
{
    /** NO-DEPEND: predicate values known at rename; predicate and
     *  old-destination dependences vanish. */
    bool noDepend = false;
    /** NO-FETCH: predicated-FALSE instructions cost no fetch/execute
     *  bandwidth (unconditional compares keep their clearing writes). */
    bool noFetch = false;
    /** PERFECT-CBP: every branch (and indirect target) predicted with
     *  oracle information. */
    bool perfectCBP = false;
    /** Perfect confidence estimation for wish branches. */
    bool perfectConfidence = false;
};

/** Full machine configuration. */
struct SimParams
{
    // Widths (Table 2: 8-wide everywhere).
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;
    unsigned issueWidth = 8;
    unsigned retireWidth = 8;
    unsigned maxCondBrPerFetch = 3; ///< fetch ends at the first taken br
    unsigned memPortsPerCycle = 4;

    // Window (Table 2: 512-entry ROB; Figure 14 sweeps 128/256/512).
    unsigned robSize = 512;
    unsigned iqSize = 128;  ///< unified scheduler entries
    unsigned lsqSize = 256;

    /** Pipeline depth in stages (Figure 15 sweeps 10/20/30). The
     *  fetch-to-rename delay is depth-4, which yields a minimum branch
     *  misprediction penalty of roughly the stage count. */
    unsigned pipelineStages = 30;

    unsigned
    frontEndDelay() const
    {
        return pipelineStages > 4 ? pipelineStages - 4 : 1;
    }

    // Caches (Table 2) and memory.
    CacheParams il1{64 * 1024, 4, 64, 2};
    CacheParams dl1{64 * 1024, 4, 64, 2};
    CacheParams l2{1024 * 1024, 8, 64, 6};
    unsigned memLatency = 300;
    /** Maximum outstanding L1D misses (MSHRs); further missing loads
     *  wait at issue. */
    unsigned maxOutstandingMisses = 16;

    // Branch predictors (Table 2).
    unsigned gshareEntries = 64 * 1024;
    unsigned pasHistEntries = 4 * 1024; ///< per-address history registers
    unsigned pasPatternEntries = 64 * 1024;
    unsigned pasHistBits = 10;
    unsigned selectorEntries = 64 * 1024;
    unsigned btbSets = 1024; ///< x4 ways = 4K entries
    unsigned btbWays = 4;
    unsigned rasEntries = 64;
    unsigned indirectEntries = 4 * 1024;
    /** History bits feeding the indirect target cache index. The raw
     *  history register is unbounded (64-bit shift register); a real
     *  target cache indexes with a fixed slice of it, and the width is
     *  fingerprinted so fingerprint-equal machines hash identically. */
    unsigned indirectHistBits = 16;

    /** Direction-predictor selection (the zoo; Hybrid is Table 2). */
    PredictorKind predictor = PredictorKind::Hybrid;

    // Bimodal / standalone two-level zoo points.
    unsigned bimodalEntries = 16 * 1024;
    unsigned twoLevelEntries = 64 * 1024;  ///< pattern-table counters
    unsigned twoLevelHistBits = 8;         ///< global history register

    // TAGE (DESIGN.md: predictor zoo). A bimodal base table T0 plus
    // `tageTables` tagged tables whose history lengths grow
    // geometrically from tageMinHist to tageMaxHist (capped at 64: the
    // history register checkpointed per branch is one 64-bit word).
    unsigned tageTables = 5;
    unsigned tageEntriesLog2 = 10; ///< entries per tagged table (log2)
    unsigned tageTagBits = 9;
    unsigned tageMinHist = 4;
    unsigned tageMaxHist = 64;
    unsigned tageBaseEntriesLog2 = 12;
    unsigned tageUsefulBits = 2;
    /** Usefulness counters are halved every this many trains (pow2). */
    unsigned tageResetPeriod = 256 * 1024;

    // JRS confidence estimator (Table 2: 1 KB, tagged 4-way). The paper
    // quotes a 16-bit history; with a 512-entry table we found 16 bits
    // of history dilutes contexts so badly the estimator becomes a
    // constant, so the default uses 8 history bits and a threshold of 8
    // (bench/ablation_confidence sweeps both).
    unsigned confSets = 128;
    unsigned confWays = 4;
    unsigned confHistBits = 8;
    unsigned confCtrBits = 4;
    unsigned confThreshold = 8;
    unsigned confTagBits = 8;
    /** Policy for a confidence-table miss: true = optimistic (high
     *  confidence; entries are allocated on a misprediction), false =
     *  conservative (low confidence; allocate on every update). */
    bool confMissIsHigh = false;

    /** Estimator selection plus the up/down extension's knobs. */
    ConfKind confKind = ConfKind::Jrs;
    unsigned udConfEntries = 512;
    unsigned udConfHistBits = 4;
    unsigned udConfMax = 64;
    unsigned udConfThreshold = 24;
    unsigned udConfDownStep = 16;

    // Execution latencies (cycles).
    unsigned latAlu = 1;
    unsigned latMul = 3;
    unsigned latDiv = 12;
    unsigned latBranch = 1;
    unsigned latStoreForward = 2; ///< store-to-load forwarding

    // Predication support.
    PredMechanism predMech = PredMechanism::CStyle;

    /** Hardware wish-branch support; when false the hint bits are
     *  ignored and wish branches behave as normal branches (§3.4). */
    bool wishEnabled = true;

    /** The specialized wish-loop predictor §3.2 suggests: bias
     *  low-confidence wish-loop predictions to overestimate the trip
     *  count, making late exits (no flush) more common than early exits
     *  (flush). Disable to use the plain hybrid predictor alone. */
    bool wishLoopBias = true;

    /**
     * Dynamic predication for normal branches. Off is bit-identical to
     * the historical machine (no confidence estimates or updates for
     * normal branches, no merge-point table). MergePoint fetches a
     * low-confidence branch's hammock linearly up to the merge point
     * predicted by the hardware merge-point table (uarch/mergepoint.hh),
     * nullifying the not-taken-path µops; FetchGate stalls fetch for
     * dynFetchGateCycles instead. Sampled simulation requires Off (the
     * warm-state replica does not replay region decisions).
     */
    DynPredMode dynPred = DynPredMode::Off;
    /** FetchGate: cycles fetch stalls after a low-confidence branch. */
    unsigned dynFetchGateCycles = 6;
    /** Merge-point table entries (direct-mapped, pow2). */
    unsigned dynMergeEntries = 512;
    /** Confirmations (retired path reached the predicted merge point
     *  with no farther jump) required before an entry may trigger. */
    unsigned dynMergeMinConf = 2;
    /** Hard cap on a dynamically predicated region, in static
     *  instructions (also bounded by machine capacity at run time so a
     *  region can never wedge fetch against a full window). */
    unsigned dynMaxRegionUops = 48;
    /** Retired µops the table keeps watching past a branch for the
     *  reconvergence point before giving up. */
    unsigned dynMergeTrackUops = 96;

    OracleKnobs oracle;

    /**
     * Sampled-simulation (SMARTS-style) configuration, consumed by the
     * harness's SampledRunner — the Core itself never reads it. When
     * enabled, a run is executed as functional fast-forward with
     * µarchitectural warming plus periodic detailed windows, and the
     * RunOutcome holds statistical estimates instead of exact counts
     * (architectural results — retired µops, result register, memory
     * fingerprint — stay exact). Fingerprinted like every other field,
     * so sampled and full runs never alias in the run cache.
     */
    struct SamplingParams
    {
        bool enabled = false;
        /** Distance between consecutive window *starts*, in retired
         *  µops of the whole-program instruction stream. */
        std::uint64_t periodUops = 250'000;
        /** Detailed-warmup µops per window: executed cycle-accurately
         *  to fill pipeline-adjacent state the checkpoint cold-starts,
         *  excluded from the CPI estimate. */
        std::uint64_t warmupUops = 2'000;
        /** Measured µops per window. */
        std::uint64_t measureUops = 8'000;
        /**
         * Detailed prefix: the first prefixUops retired µops are
         * simulated cycle-accurately from reset and counted *exactly*
         * (stratified sampling at a 100% rate); periodic windows then
         * sample only the remainder, starting half a period past the
         * prefix. A program's cold-start transient — compulsory misses
         * over its whole working set, with a steeply decaying CPI — is
         * a fixed cycle cost that a handful of windows cannot estimate;
         * measuring it exactly removes the dominant bias term for
         * runs that are not astronomically long. Zero means pure
         * periodic sampling.
         */
        std::uint64_t prefixUops = 0;
    };
    SamplingParams sampling;

    // Safety limits.
    std::uint64_t maxCycles = 2'000'000'000ull;
    std::uint64_t maxRetired = 2'000'000'000ull;

    /** Cross-check the final architectural state against the reference
     *  functional emulator at halt (cheap, on by default). */
    bool checkFinalState = true;

    /**
     * Observability: attach the cycle-attribution engine for this run.
     * Emits the attrib.* CPI-stack counters (uarch/attribution.hh) that
     * charge every cycle to one cause and sum exactly to core.cycles.
     * Pure observation — core.* and wish.* statistics are bit-identical
     * either way — but part of the fingerprint, because the set of
     * emitted statistics (and hence the cached RunOutcome) differs.
     */
    bool collectAttribution = false;

    /** Observability: collect the per-static-branch profile table
     *  (core.branch_profile: per-PC dynamic count, mispredicts,
     *  confidence outcomes, flush cycles charged). */
    bool collectBranchProfile = false;

    /**
     * Verification knob: select the O(window²) poll-based issue loop
     * (rescan every scheduler entry and re-evaluate every producer
     * dependence each cycle) instead of the event-driven wakeup
     * scheduler. Both must produce bit-identical statistics; the
     * property tests cross-check them against each other. Never enable
     * this for experiments — it only exists to keep the fast scheduler
     * honest.
     */
    bool pollScheduler = false;

    /**
     * Canonical content fingerprint over *every* field above (including
     * pollScheduler: it must not alias the event path in the run
     * cache even though the statistics are required to match). Two
     * SimParams with equal fingerprints configure identical machines.
     * params.cc carries a sizeof static_assert so a new field cannot be
     * added without extending the hash, and the cache tests perturb
     * each field individually to prove it lands in the digest.
     */
    std::uint64_t fingerprint() const;
};

} // namespace wisc

#endif // WISC_UARCH_PARAMS_HH_
