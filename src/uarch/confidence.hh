/**
 * @file
 * The JRS confidence estimator (Jacobsen, Rotenberg & Smith, MICRO-29),
 * as configured in Table 2: a 1 KB, tagged, 4-way table of miss distance
 * counters indexed by (pc ^ 16-bit global branch history).
 *
 * A prediction is high-confidence when the entry's saturating counter
 * has reached the threshold: the counter increments on each correct
 * prediction and resets to zero on a misprediction, so "high confidence"
 * means at least `threshold` consecutive correct predictions in this
 * (pc, history) context. A lookup miss is low confidence (the estimator
 * is dedicated to wish branches, §3.5.5, so cold entries are rare and
 * conservative predication is the safe default).
 */

#ifndef WISC_UARCH_CONFIDENCE_HH_
#define WISC_UARCH_CONFIDENCE_HH_

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/params.hh"

namespace wisc {

class JrsConfidenceEstimator final : public IConfidence
{
  public:
    JrsConfidenceEstimator(const SimParams &params, StatSet &stats);

    /** True = high confidence for the branch at 'pc' under 'hist'. */
    bool estimate(std::uint32_t pc, std::uint64_t hist) const override;

    /** Train with the prediction outcome (call at retirement). */
    void update(std::uint32_t pc, std::uint64_t hist,
                bool correct) override;

    void reset() override;

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint8_t ctr = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t setOf(std::uint32_t pc, std::uint64_t hist) const;
    std::uint16_t tagOf(std::uint32_t pc, std::uint64_t hist) const;

    unsigned sets_;
    unsigned ways_;
    unsigned histBits_;
    unsigned ctrMax_;
    unsigned threshold_;
    unsigned tagBits_;
    bool missIsHigh_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;

    Counter *queries_;
    Counter *highs_;
};

} // namespace wisc

#endif // WISC_UARCH_CONFIDENCE_HH_
