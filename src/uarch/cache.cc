#include "uarch/cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace wisc {

Cache::Cache(const CacheParams &params, const std::string &name,
             StatSet &stats)
    : params_(params)
{
    wisc_assert(params_.lineBytes > 0 && params_.ways > 0, "bad cache");
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.ways);
    wisc_assert(numSets_ > 0, "cache too small for its geometry");
    lines_.assign(numSets_ * params_.ways, Line{});
    hits_ = &stats.counter(name + ".hits", "cache hits");
    misses_ = &stats.counter(name + ".misses", "cache misses");
}

bool
Cache::access(Addr addr)
{
    Addr line = lineAddr(addr);
    std::size_t set = setOf(line);
    Line *base = &lines_[set * params_.ways];
    ++useClock_;

    Line *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == line) {
            l.lastUse = useClock_;
            ++*hits_;
            return true;
        }
        if (!l.valid || l.lastUse < victim->lastUse ||
            (victim->valid && !l.valid))
            victim = &l;
    }
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = useClock_;
    ++*misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    Addr line = lineAddr(addr);
    std::size_t set = setOf(line);
    const Line *base = &lines_[set * params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

void
Cache::reset()
{
    lines_.assign(lines_.size(), Line{});
    useClock_ = 0;
}

void
Cache::saveState(ByteWriter &w) const
{
    w.u64(useClock_);
    w.vec(lines_);
}

void
Cache::restoreState(ByteReader &r)
{
    useClock_ = r.u64();
    r.vec(lines_);
}

MemorySystem::MemorySystem(const SimParams &params, StatSet &stats)
    : params_(params),
      il1_(params.il1, "mem.il1", stats),
      dl1_(params.dl1, "mem.dl1", stats),
      l2_(params.l2, "mem.l2", stats)
{
}

unsigned
MemorySystem::fetchAccess(Addr addr)
{
    if (il1_.access(addr))
        return il1_.hitLatency();
    if (l2_.access(addr))
        return il1_.hitLatency() + l2_.hitLatency();
    return il1_.hitLatency() + l2_.hitLatency() + params_.memLatency;
}

unsigned
MemorySystem::loadAccess(Addr addr, Cycle now)
{
    Addr line = addr / params_.dl1.lineBytes;

    // A line whose fill is still outstanding costs the remaining time.
    auto it = fillsInFlight_.find(line);
    if (it != fillsInFlight_.end()) {
        if (it->second > now) {
            dl1_.access(addr); // keep LRU/tag state coherent
            return static_cast<unsigned>(it->second - now) +
                   dl1_.hitLatency();
        }
        fillsInFlight_.erase(it);
    }

    unsigned lat;
    if (dl1_.access(addr)) {
        lat = dl1_.hitLatency();
    } else if (l2_.access(addr)) {
        lat = dl1_.hitLatency() + l2_.hitLatency();
    } else {
        lat = dl1_.hitLatency() + l2_.hitLatency() + params_.memLatency;
    }
    if (lat > dl1_.hitLatency()) {
        fillsInFlight_[line] = now + lat;
        // Bound the map: drop expired fills opportunistically.
        if (fillsInFlight_.size() > 4096) {
            for (auto fit = fillsInFlight_.begin();
                 fit != fillsInFlight_.end();) {
                if (fit->second <= now)
                    fit = fillsInFlight_.erase(fit);
                else
                    ++fit;
            }
        }
    }
    return lat;
}

void
MemorySystem::storeAccess(Addr addr)
{
    if (!dl1_.access(addr))
        l2_.access(addr);
}

bool
MemorySystem::loadWouldHitL1(Addr addr) const
{
    return dl1_.probe(addr);
}

void
MemorySystem::warmText(Addr base, Addr bytes)
{
    for (Addr a = base; a < base + bytes; a += il1_.lineBytes()) {
        il1_.access(a);
        l2_.access(a);
    }
}

void
MemorySystem::warmLoad(Addr addr)
{
    if (!dl1_.access(addr))
        l2_.access(addr);
}

void
MemorySystem::warmStore(Addr addr)
{
    storeAccess(addr);
}

void
MemorySystem::saveState(ByteWriter &w) const
{
    il1_.saveState(w);
    dl1_.saveState(w);
    l2_.saveState(w);
    w.u64(fillsInFlight_.size());
    for (const auto &kv : fillsInFlight_) {
        w.u64(kv.first);
        w.u64(kv.second);
    }
}

void
MemorySystem::restoreState(ByteReader &r)
{
    il1_.restoreState(r);
    dl1_.restoreState(r);
    l2_.restoreState(r);
    fillsInFlight_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr line = r.u64();
        fillsInFlight_[line] = r.u64();
    }
}

unsigned
MemorySystem::l1dHitLatency() const
{
    return dl1_.hitLatency();
}

void
MemorySystem::reset()
{
    il1_.reset();
    dl1_.reset();
    l2_.reset();
    fillsInFlight_.clear();
}

} // namespace wisc
