/**
 * @file
 * The cycle-level out-of-order core (Table 2 baseline).
 *
 * Execution model: execute-at-fetch with undo-log rollback. Every
 * fetched µop is functionally executed against the speculative
 * architectural state the moment it is fetched, recording undo entries;
 * a pipeline flush rolls the state back to just after the mispredicted
 * branch. This models wrong-path execution (including wrong-path cache
 * pollution) exactly, and lets late-exit wish-loop iterations retire as
 * predicated NOPs precisely as §3.2 describes.
 *
 * Timing model: cycle-driven. Fetch follows predictions (8-wide, at most
 * 3 conditional branches, ends at the first predicted-taken branch, one
 * I-cache line per cycle); µops traverse a configurable-depth front end,
 * rename into a 512-entry ROB + unified scheduler, issue oldest-first up
 * to 8 per cycle (4 memory ports) when their producers have completed,
 * and retire 8-wide in order. Branches resolve at execute; recovery
 * follows the wish-branch rules of §3.5.4.
 */

#ifndef WISC_UARCH_CORE_HH_
#define WISC_UARCH_CORE_HH_

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "arch/executor.hh"
#include "arch/state.hh"
#include "common/stats.hh"
#include "isa/program.hh"
#include "uarch/bpred.hh"
#include "uarch/cache.hh"
#include "uarch/confidence.hh"
#include "uarch/updown_conf.hh"
#include "uarch/params.hh"
#include "uarch/pipetrace.hh"
#include "uarch/wish.hh"

namespace wisc {

/** Wish-loop misprediction classes (§3.2). */
enum class LoopOutcome : std::uint8_t
{
    NotApplicable,
    Correct,
    EarlyExit,
    LateExit,
    NoExit,
};

/** One in-flight µop. */
struct DynInst
{
    SeqNum seq = 0;
    /** Unique id, never reused (seq numbers are reused after a flush);
     *  completion events are validated against it. */
    std::uint64_t uid = 0;
    std::uint32_t pc = 0;
    Instruction si;

    // Functional (execute-at-fetch) results.
    StepResult step;
    UndoLog::Mark undoStart = 0;
    UndoLog::Mark undoEnd = 0;

    // Branch prediction state.
    bool isCtrl = false;
    bool predictorTaken = false; ///< raw predictor output
    bool predictedTaken = false; ///< effective front-end direction
    std::uint32_t predictedTarget = 0;
    bool highConf = false;
    FrontEndMode fetchMode = FrontEndMode::Normal;
    BpredCheckpoint ckpt;
    unsigned rasTop = 0;
    LoopOutcome loopOutcome = LoopOutcome::NotApplicable;
    std::uint32_t loopInstance = 0; ///< wish-loop instance at fetch
    bool mispredicted = false; ///< raw prediction was wrong (stats)

    // Select-µop expansion: 1 = compute half, 2 = select half.
    std::uint8_t selectPart = 0;

    // Predicate prediction captured at fetch (§3.5.3 buffer hit).
    bool hasPredQp = false;
    bool predQpVal = false;

    // Dependence tracking.
    std::vector<SeqNum> deps;
    SeqNum prevRegProducer = 0;
    RegIdx claimedReg = 0;
    bool claimsReg = false;
    SeqNum prevPredProducer[2] = {0, 0};
    PredIdx claimedPred[2] = {kPredNone, kPredNone};

    // Timing.
    Cycle fetchCycle = 0;
    Cycle renameReady = 0; ///< fetch cycle + front-end delay
    bool inIQ = false;
    bool issued = false;
    bool completed = false;
    Cycle completeCycle = 0;

    // Memory.
    bool isMemOp = false;
    bool memSkipped = false; ///< predicated-off: no access
    Addr memAddr = 0;
    std::uint8_t memSize = 0;
};

/** Summary of one simulation run. */
struct SimResult
{
    bool halted = false;
    Cycle cycles = 0;
    std::uint64_t retiredUops = 0;
    Word resultReg = 0;
    std::uint64_t memFingerprint = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retiredUops) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

class Core
{
  public:
    Core(const SimParams &params, StatSet &stats);

    /** Run the program to completion (Halt retired) or a safety limit.
     *  Set the WISC_TRACE environment variable for a per-cycle occupancy
     *  trace on stderr (debugging aid). */
    SimResult run(const Program &prog);

    /** Attach a pipeline tracer (optional; may be null). The tracer
     *  must outlive the run. */
    void setTracer(PipeTracer *t) { tracer_ = t; }

  private:
    // Pipeline stages (called once per cycle, back to front).
    void stageRetire();
    void stageComplete();
    void stageIssue();
    void stageRename();
    void stageFetch();

    // Helpers.
    void fetchOne(std::uint32_t idx);
    void processControl(DynInst &di);
    void resolveBranch(DynInst &di);
    void flushAfter(const DynInst &branch, std::uint32_t redirectPc,
                    bool recoverBpred);
    void computeDeps(DynInst &di);
    bool depsReady(const DynInst &di) const;
    DynInst *findInst(SeqNum seq);
    const DynInst *findInst(SeqNum seq) const;
    bool producerDone(SeqNum seq) const;
    void claimProducers(DynInst &di);
    unsigned loadLatency(const DynInst &di);
    void retireWishStats(const DynInst &di);

    SimParams params_;
    StatSet &stats_;

    // Substrates.
    MemorySystem memsys_;
    HybridPredictor bpred_;
    Btb btb_;
    ReturnAddressStack ras_;
    IndirectTargetCache itc_;
    JrsConfidenceEstimator conf_;
    UpDownConfidenceEstimator udConf_;
    WishEngine wish_;

    bool estimateConfidence(std::uint32_t pc, std::uint64_t hist) const;
    void updateConfidence(std::uint32_t pc, std::uint64_t hist,
                          bool correct);

    // Program and speculative architectural state.
    const Program *prog_ = nullptr;
    std::uint32_t codeSize_ = 0;
    ArchState state_;
    UndoLog undo_;

    // Front end.
    std::uint32_t fetchPc_ = 0;
    bool fetchHalted_ = false;
    Cycle fetchStallUntil_ = 0;
    std::deque<DynInst> fetchQueue_;
    unsigned fetchQueueCap_ = 0;

    // Back end. rob_ holds renamed in-flight µops in order.
    std::deque<DynInst> rob_;
    SeqNum nextSeq_ = 1;
    std::uint64_t nextUid_ = 1;
    std::vector<SeqNum> iq_;  ///< seqnums in the scheduler

    /** Completion events: (cycle, seq, uid), earliest first. */
    struct Event
    {
        Cycle cycle;
        SeqNum seq;
        std::uint64_t uid;
        bool operator>(const Event &o) const { return cycle > o.cycle; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    SeqNum regProducer_[kNumIntRegs] = {};
    SeqNum predProducer_[kNumPredRegs] = {};

    PipeTracer *tracer_ = nullptr;

    Cycle now_ = 0;
    bool haltRetired_ = false;
    /** Completion cycles of outstanding L1D misses (MSHR occupancy). */
    std::vector<Cycle> outstandingMisses_;
    /** Seqnums of in-flight (renamed, unretired) stores, ascending. */
    std::vector<SeqNum> storeSeqs_;
    std::uint64_t retiredUops_ = 0;

    // Statistics handles.
    Counter *cCycles_;
    Counter *cRetired_;
    Counter *cRetiredNops_;
    Counter *cFetched_;
    Counter *cCondBranches_;
    Counter *cMispredicts_;
    Counter *cFlushes_;
    Histogram *hFetchWidth_;
    Histogram *hFlushSquash_;
};

/** Convenience: simulate a program with the given configuration. */
SimResult simulate(const Program &prog, const SimParams &params,
                   StatSet &stats);

} // namespace wisc

#endif // WISC_UARCH_CORE_HH_
