/**
 * @file
 * The cycle-level out-of-order core (Table 2 baseline).
 *
 * Execution model: execute-at-fetch with undo-log rollback. Every
 * fetched µop is functionally executed against the speculative
 * architectural state the moment it is fetched, recording undo entries;
 * a pipeline flush rolls the state back to just after the mispredicted
 * branch. This models wrong-path execution (including wrong-path cache
 * pollution) exactly, and lets late-exit wish-loop iterations retire as
 * predicated NOPs precisely as §3.2 describes.
 *
 * Timing model: cycle-driven. Fetch follows predictions (8-wide, at most
 * 3 conditional branches, ends at the first predicted-taken branch, one
 * I-cache line per cycle); µops traverse a configurable-depth front end,
 * rename into a 512-entry ROB + unified scheduler, issue oldest-first up
 * to 8 per cycle (4 memory ports) when their producers have completed,
 * and retire 8-wide in order. Branches resolve at execute; recovery
 * follows the wish-branch rules of §3.5.4.
 *
 * Scheduling is event-driven (DESIGN.md §7): a renamed µop waits on one
 * outstanding producer at a time via an intrusive doubly-linked wait
 * chain; when a producer completes it walks its chain, and consumers
 * whose remaining producers are all complete move to a ready list that
 * issue drains oldest-first. The poll-based issue loop is retained
 * behind SimParams::pollScheduler purely as a verification reference.
 * µops live in fixed ring buffers, reference the immutable Program
 * image by pointer, and carry a bounded inline dependence array — the
 * per-cycle hot path performs no heap allocation.
 */

#ifndef WISC_UARCH_CORE_HH_
#define WISC_UARCH_CORE_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "arch/executor.hh"
#include "arch/state.hh"
#include "common/ring.hh"
#include "common/stats.hh"
#include "isa/program.hh"
#include "uarch/attribution.hh"
#include "uarch/bpred.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/cache.hh"
#include "uarch/checkpoint.hh"
#include "uarch/mergepoint.hh"
#include "uarch/params.hh"
#include "uarch/probe.hh"
#include "uarch/wish.hh"

namespace wisc {

/** Wish-loop misprediction classes (§3.2). */
enum class LoopOutcome : std::uint8_t
{
    NotApplicable,
    Correct,
    EarlyExit,
    LateExit,
    NoExit,
};

/** Maximum producers of one µop: two register sources, the qualifying
 *  predicate, the old destination (register or two predicate targets),
 *  two predicate sources, and the select-half link. The C-style shapes
 *  computeDeps() emits never exceed 6; 8 leaves slack and keeps the
 *  array pow2-sized. Exceeding it is a hard error (wisc_assert). */
inline constexpr unsigned kMaxDeps = 8;

/** One in-flight µop. Flat (no heap-owning members): ring-buffer slots
 *  are reused in place and DynInst moves are plain field copies. */
struct DynInst
{
    SeqNum seq = 0;
    /** Unique id, never reused (seq numbers are reused after a flush);
     *  completion events are validated against it. */
    std::uint64_t uid = 0;
    std::uint32_t pc = 0;
    /** The static instruction, aliasing the immutable Program image. */
    const Instruction *inst = nullptr;
    /** Predecoded PreFlag mask for *inst (computed once per static
     *  instruction per run, not per fetch). */
    std::uint16_t pre = 0;
    /** Predecoded non-memory execute latency (cycles). */
    std::uint8_t exLat = 1;

    // Functional (execute-at-fetch) results.
    StepResult step;
    UndoLog::Mark undoStart = 0;
    UndoLog::Mark undoEnd = 0;

    // Branch prediction state.
    bool predictorTaken = false; ///< raw predictor output
    bool predictedTaken = false; ///< effective front-end direction
    std::uint32_t predictedTarget = 0;
    bool highConf = false;
    FrontEndMode fetchMode = FrontEndMode::Normal;
    BpredCheckpoint ckpt;
    RasCheckpoint rasCkpt;
    LoopOutcome loopOutcome = LoopOutcome::NotApplicable;
    std::uint32_t loopInstance = 0; ///< wish-loop instance at fetch
    bool mispredicted = false; ///< raw prediction was wrong (stats)

    // Select-µop expansion: 1 = compute half, 2 = select half.
    std::uint8_t selectPart = 0;

    // Dynamic predication (DynPredMode::MergePoint).
    /** Low-confidence normal branch that opened a dynamically
     *  predicated region (the hardware analog of a wish jump). */
    bool dynPredTrigger = false;
    /** Fetched inside a dynamically predicated region: guarded by the
     *  trigger, never redirects fetch, never flushes. */
    bool dynRegion = false;
    /** Region µop off the real path: retires as a predicated NOP. */
    bool dynNullified = false;
    /** Region fetch reached the merge point; dynPredFailed is valid. */
    bool dynOutcomeKnown = false;
    /** Real control flow never reconverged at the predicted merge
     *  point: the trigger must flush like a plain misprediction. */
    bool dynPredFailed = false;

    // Predicate prediction captured at fetch (§3.5.3 buffer hit).
    bool hasPredQp = false;
    bool predQpVal = false;

    // Dependence tracking: bounded inline producer list.
    std::uint8_t numDeps = 0;
    SeqNum deps[kMaxDeps] = {};
    /** Bit i set iff deps[i] is predication-induced — the qualifying
     *  predicate or the old destination value, exactly the dependences
     *  the NO-DEPEND oracle removes. Feeds cycle attribution only. */
    std::uint8_t predDepMask = 0;

    // Wakeup state. A waiting µop is linked into exactly one producer's
    // wait chain (the first still-outstanding producer); when that
    // producer completes the consumer re-scans its remaining producers
    // and either re-links or becomes ready. Links are seq numbers (0 =
    // none) resolved through the dense ROB, and chains are repaired
    // eagerly on squash, so they never contain dead entries.
    SeqNum waitingOn = 0;  ///< producer this µop is linked under
    /** The dependence this µop most recently waited under was
     *  predication-induced, directly or transitively through the
     *  producer it waited on (attribution head classification). */
    bool lastWaitPred = false;
    SeqNum chainPrev = 0;  ///< older neighbor (0 = chain head)
    SeqNum chainNext = 0;  ///< next consumer in the same chain
    SeqNum wakeHead = 0;   ///< head of this µop's own consumer chain

    // Rename bookkeeping (undone newest-first on flush).
    SeqNum prevRegProducer = 0;
    RegIdx claimedReg = 0;
    bool claimsReg = false;
    SeqNum prevPredProducer[2] = {0, 0};
    PredIdx claimedPred[2] = {kPredNone, kPredNone};

    // Timing.
    Cycle fetchCycle = 0;
    Cycle renameReady = 0; ///< fetch cycle + front-end delay
    bool inIQ = false;
    bool issued = false;
    bool completed = false;
    bool l1Missed = false; ///< issued load missed in the L1D
    Cycle completeCycle = 0;

    // Memory.
    bool memSkipped = false; ///< predicated-off: no access
    Addr memAddr = 0;
    std::uint8_t memSize = 0;

    bool isCtrl() const { return pre & kPreCtrl; }
    bool isCondBr() const { return pre & kPreCondBr; }
    bool isLoadOp() const { return pre & kPreLoad; }
    bool isStoreOp() const { return pre & kPreStore; }
    bool isMemOp() const { return pre & kPreMem; }
    bool writesReg() const { return pre & kPreWritesReg; }
    bool writesPred() const { return pre & kPreWritesPred; }
    bool readsRs1() const { return pre & kPreReadsRs1; }
    bool readsRs2() const { return pre & kPreReadsRs2; }
};

/** Summary of one simulation run. */
struct SimResult
{
    bool halted = false;
    Cycle cycles = 0;
    std::uint64_t retiredUops = 0;
    Word resultReg = 0;
    std::uint64_t memFingerprint = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retiredUops) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

class Core
{
  public:
    Core(const SimParams &params, StatSet &stats);

    /** Run the program to completion (Halt retired) or a safety limit.
     *  Set the WISC_TRACE environment variable for a per-cycle occupancy
     *  trace on stderr (debugging aid). Exactly equivalent to
     *  beginRun(prog) + advance(UINT64_MAX) + finishRun(). */
    SimResult run(const Program &prog);

    // --- incremental driving (sampled simulation, checkpointing) -------
    //
    // run() is the one-shot form; the sampled runner and the checkpoint
    // round-trip tests drive the same machinery in pieces:
    //
    //   beginRun(prog [, ckpt]);   // reset (or restore) machine state
    //   advance(target);           // cycle until `target` retired µops
    //   checkpoint(out);           // optional, at a drained boundary
    //   SimResult r = finishRun(); // publish attribution, final checks

    /** Predecode the program, reset every piece of machine state, warm
     *  the text image, and attach the attribution engine if the params
     *  ask for one. Pair with finishRun(). */
    void beginRun(const Program &prog);

    /** As above, then restore the warm state in 'ckpt' (produced by
     *  checkpoint() or by the functional fast-forward engine). The
     *  checkpoint's params/program fingerprints must match ours. */
    void beginRun(const Program &prog, const CoreCheckpoint &ckpt);

    /**
     * Cycle the pipeline until `targetRetired` *total* retired µops
     * (whole-run coordinate — a restored core continues the original
     * count), the program halts, or a safety limit trips. With `drain`
     * (the default), reaching the target freezes fetch and keeps
     * cycling until the ROB and fetch queue empty — a checkpointable
     * boundary; without it the loop stops at the first cycle boundary
     * at or past the target (sampled measurement windows, where the
     * core is discarded afterwards). Pass UINT64_MAX to run to
     * completion; the drain then never engages and the cycle loop is
     * bit-identical to the historical run() loop.
     */
    void advance(std::uint64_t targetRetired, bool drain = true);

    /** Publish attribution, run the optional final-state cross-check,
     *  and return the run summary. */
    SimResult finishRun();

    /** Capture a warm-state checkpoint. Hard error unless the pipeline
     *  is drained (rob and fetch queue empty — what advance() with
     *  drain leaves behind). */
    void checkpoint(CoreCheckpoint &out) const;

    // Progress accessors (valid between beginRun and finishRun).
    Cycle cycles() const { return now_; }
    std::uint64_t retired() const { return retiredUops_; }
    bool halted() const { return haltRetired_; }

    /** Maximum simultaneously attached probe sinks. */
    static constexpr unsigned kMaxSinks = 4;

    /** Attach a probe sink (uarch/probe.hh); it must outlive the run.
     *  With no sinks attached every emission site reduces to one
     *  predictable untaken branch. */
    void addSink(ProbeSink *s);

    /** Detach every sink. */
    void clearSinks() { nsinks_ = 0; }

  private:
    // Pipeline stages (called once per cycle, back to front).
    void stageRetire();
    void stageComplete();
    void stageIssue();
    void stageIssuePoll(); ///< reference scheduler (pollScheduler knob)
    void stageRename();
    void stageFetch();

    // Helpers.
    void fetchOne(std::uint32_t idx);
    void processControl(DynInst &di);
    void resolveBranch(DynInst &di);
    void flushAfter(const DynInst &branch, std::uint32_t redirectPc,
                    bool recoverBpred, FlushCause cause);
    void computeDeps(DynInst &di);
    bool depsReady(const DynInst &di) const;
    DynInst *findInst(SeqNum seq);
    const DynInst *findInst(SeqNum seq) const;
    bool producerDone(SeqNum seq) const;
    void claimProducers(DynInst &di);
    unsigned loadLatency(const DynInst &di);
    void retireWishStats(const DynInst &di);

    // Event-driven wakeup.
    void scheduleOrReady(DynInst &di);     ///< link under a producer or ready
    void wakeConsumers(DynInst &producer); ///< producer completed
    void unlinkWaiter(DynInst &di);        ///< remove from its wait chain
    /** Issue one ready µop if no structural/memory hazard blocks it. */
    bool tryIssueOne(DynInst &di, unsigned &memPorts);

    // In-flight store index (O(words-touched) instead of O(stores)).
    void indexStore(SeqNum seq, Addr addr, unsigned size);
    void unindexStore(SeqNum seq, Addr addr, unsigned size);
    /** Youngest in-flight store older than 'seq' overlapping the given
     *  range, or null. */
    const DynInst *youngestOlderStore(SeqNum seq, Addr addr,
                                      unsigned size) const;

    SimParams params_;
    StatSet &stats_;

    // Substrates. The direction predictor and confidence estimator are
    // interface-typed and factory-constructed from params.predictor /
    // params.confKind (uarch/bpred_iface.hh).
    MemorySystem memsys_;
    std::unique_ptr<IBranchPredictor> bpred_;
    Btb btb_;
    ReturnAddressStack ras_;
    IndirectTargetCache itc_;
    std::unique_ptr<IConfidence> conf_;
    WishEngine wish_;
    MergePointTable merge_;

    bool estimateConfidence(std::uint32_t pc, std::uint64_t hist) const;
    void updateConfidence(std::uint32_t pc, std::uint64_t hist,
                          bool correct);

    // Program and speculative architectural state.
    const Program *prog_ = nullptr;
    const Instruction *code_ = nullptr;
    std::uint32_t codeSize_ = 0;
    ArchState state_;
    UndoLog undo_;

    /** Per-PC predecoded metadata (PreFlag mask + execute latency),
     *  built once per run(). */
    struct PreDecode
    {
        std::uint16_t flags = 0;
        std::uint8_t exLat = 1;
    };
    std::vector<PreDecode> pre_;

    // Dynamic predication (SimParams::dynPred). While a region is being
    // fetched (dynActive_) the frontend runs linearly from the trigger's
    // fall-through to dynRegionEnd_, executing only the µop the real
    // control flow is at (dynRealPc_) and nullifying the rest. The
    // trigger's completion is deferred until the region fetch ends, so
    // its resolution — flush on reconvergence failure, nothing on
    // success — sees the region outcome.
    bool dynActive_ = false;
    std::uint32_t dynRegionEnd_ = 0;
    std::uint32_t dynRealPc_ = 0;
    /** uid of the in-flight trigger, 0 = none. Only one region may be
     *  outstanding (trigger fetched but not yet resolved/squashed). */
    std::uint64_t dynOutstandingUid_ = 0;
    /** The trigger's seq once renamed: region µops depend on it (the
     *  trigger predicate guards the whole region). */
    SeqNum dynTriggerSeq_ = 0;
    /** Runtime region-size cap: user knob clamped so an in-flight
     *  region can always rename fully into the scheduler (the trigger
     *  cannot complete before the region finishes fetching, so a region
     *  larger than the IQ would wedge the machine). */
    unsigned dynRegionCap_ = 0;

    bool dynCanTrigger(std::uint32_t idx, std::uint32_t merge) const;
    void dynEndRegion();

    // Front end.
    std::uint32_t fetchPc_ = 0;
    bool fetchHalted_ = false;
    Cycle fetchStallUntil_ = 0;
    /** Draining toward a checkpoint boundary: fetch is frozen so the
     *  in-flight window retires and the pipeline empties. */
    bool fetchFrozen_ = false;
    RingBuffer<DynInst> fetchQueue_;
    unsigned fetchQueueCap_ = 0;

    // Back end. rob_ holds renamed in-flight µops in order; seq numbers
    // are dense (rob_[i].seq == rob_.front().seq + i).
    RingBuffer<DynInst> rob_;
    SeqNum nextSeq_ = 1;
    std::uint64_t nextUid_ = 1;
    /** Scheduler occupancy (µops renamed but not yet completed); the
     *  explicit seqnum list it replaced is gone. */
    std::size_t iqCount_ = 0;

    /** Ready list: renamed, un-issued µops whose producers have all
     *  completed (or that are retrying after a structural hazard).
     *  Kept sorted by seq before each issue sweep (oldest first). */
    std::vector<SeqNum> readyList_;
    bool readySorted_ = true;

    /** Completion events: (cycle, seq, uid), earliest first. */
    struct Event
    {
        Cycle cycle;
        SeqNum seq;
        std::uint64_t uid;
        bool operator>(const Event &o) const { return cycle > o.cycle; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    SeqNum regProducer_[kNumIntRegs] = {};
    SeqNum predProducer_[kNumPredRegs] = {};

    // Probe sinks (uarch/probe.hh). Emission sites are guarded by
    // `nsinks_` so a sink-free run touches nothing but this counter.
    ProbeSink *sinks_[kMaxSinks] = {};
    unsigned nsinks_ = 0;

    void emitFetch(const DynInst &di, Cycle c);
    void emitRename(const DynInst &di);
    void emitIssue(const DynInst &di);
    void emitComplete(const DynInst &di, Cycle c);
    void emitRetire(const DynInst &di);
    void emitSquash(const DynInst &di);
    void emitFlush(const DynInst &branch, FlushCause cause);
    void emitCycle();

    /** Rename stalled on ROB/IQ capacity this cycle (attribution). */
    bool renameBlocked_ = false;
    /** Retirement stopped on an incomplete head this cycle — as
     *  opposed to exhausting its width or draining the ROB — so the
     *  head's stall reason is what limited the cycle (attribution). */
    bool retireStalledOnHead_ = false;

    Cycle now_ = 0;
    bool haltRetired_ = false;
    /** Attribution engine for the current run (beginRun..finishRun),
     *  attached as one more probe sink when the params opt in. */
    std::optional<AttributionEngine> attrib_;
    /** Sink count before the attribution engine was attached, restored
     *  by finishRun(). */
    unsigned externalSinks_ = 0;
    /** Cycle clock at beginRun — finish() receives the delta this
     *  engine observed, not the absolute clock, so a restored core's
     *  attribution still sums exactly. */
    Cycle attribStartCycle_ = 0;
    /** Completion cycles of outstanding L1D misses (MSHR occupancy),
     *  earliest first; stale heads are popped at the MSHR check instead
     *  of scanning every slot per load issue. */
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        missHeap_;
    /** Seqnums of in-flight (renamed, unretired) stores, ascending. */
    std::vector<SeqNum> storeSeqs_;
    /** Word-granular index over those stores: 8-byte-aligned word ->
     *  ascending seqnums of in-flight stores touching it. Buckets are
     *  kept allocated (cleared, not erased) across reuse. */
    std::unordered_map<Addr, std::vector<SeqNum>> storesByWord_;
    std::uint64_t retiredUops_ = 0;

    // Statistics handles.
    Counter *cCycles_;
    Counter *cRetired_;
    Counter *cRetiredNops_;
    Counter *cFetched_;
    Counter *cCondBranches_;
    Counter *cMispredicts_;
    Counter *cFlushes_;
    Histogram *hFetchWidth_;
    Histogram *hFlushSquash_;
    /** Lazily resolved wish retire-outcome counters, indexed by
     *  [kind][lowConf][outcome slot]. Lazy (not construction-time) so
     *  the set of registered counters — part of the stat output — is
     *  unchanged: a counter still appears only once its event occurs. */
    Counter *wishOutcome_[3][2][5] = {};
    Counter &wishOutcomeCounter(WishKind kind, bool low, unsigned slot);
    /** Dynamic-predication counters, registered only when
     *  params.dynPred != Off so the default stat set is unchanged. */
    Counter *dynTriggers_ = nullptr;
    Counter *dynRegionUops_ = nullptr;
    Counter *dynNullifiedUops_ = nullptr;
    Counter *dynSuccess_ = nullptr;
    Counter *dynFailed_ = nullptr;
    Counter *dynSavedFlushes_ = nullptr;
    Counter *dynFetchGates_ = nullptr;
};

/** Convenience: simulate a program with the given configuration. */
SimResult simulate(const Program &prog, const SimParams &params,
                   StatSet &stats);

/** Simulate with external probe sinks attached for the duration of the
 *  run (in addition to any sinks the params themselves imply, such as
 *  the attribution engine). */
SimResult simulate(const Program &prog, const SimParams &params,
                   StatSet &stats,
                   const std::vector<ProbeSink *> &sinks);

} // namespace wisc

#endif // WISC_UARCH_CORE_HH_
