#include "uarch/wish.hh"

#include "common/log.hh"

namespace wisc {

const char *
frontEndModeName(FrontEndMode m)
{
    switch (m) {
      case FrontEndMode::Normal:   return "normal";
      case FrontEndMode::HighConf: return "high-confidence";
      case FrontEndMode::LowConf:  return "low-confidence";
    }
    return "?";
}

WishEngine::WishEngine(StatSet &stats, bool loopBias)
    : loopBias_(loopBias)
{
    predBuffer_.fill(-1);
    complementOf_.fill(kPredNone);
    lowEntries_ = &stats.counter("wish.low_conf_entries",
                                 "times the front end entered "
                                 "low-confidence-mode");
    highEntries_ = &stats.counter("wish.high_conf_entries",
                                  "times the front end entered "
                                  "high-confidence-mode");
    biasOverrides_ = &stats.counter("wish.loop_bias_overrides",
                                    "loop predictions forced taken by "
                                    "the overestimating predictor");
}

void
WishEngine::reset()
{
    mode_ = FrontEndMode::Normal;
    lowConfFromLoop_ = false;
    pendingTarget_ = 0xffffffff;
    predBuffer_.fill(-1);
    complementOf_.fill(kPredNone);
    loopLastPred_.clear();
    loopTrips_.clear();
    loopInstanceOf_.clear();
    branchPred_ = 0;
}

void
WishEngine::saveState(ByteWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(mode_));
    w.b(lowConfFromLoop_);
    w.u32(pendingTarget_);
    for (std::int8_t v : predBuffer_)
        w.u8(static_cast<std::uint8_t>(v));
    for (PredIdx p : complementOf_)
        w.u8(p);
    w.u8(branchPred_);
    w.u64(loopLastPred_.size());
    for (const auto &kv : loopLastPred_) {
        w.u32(kv.first);
        w.b(kv.second);
    }
    w.u64(loopTrips_.size());
    for (const auto &kv : loopTrips_) {
        w.u32(kv.first);
        w.u32(kv.second.fetchIter);
        w.u32(kv.second.ewmaTrip4);
        w.b(kv.second.recordedThisInstance);
    }
    w.u64(loopInstanceOf_.size());
    for (const auto &kv : loopInstanceOf_) {
        w.u32(kv.first);
        w.u32(kv.second);
    }
}

void
WishEngine::restoreState(ByteReader &r)
{
    mode_ = static_cast<FrontEndMode>(r.u8());
    lowConfFromLoop_ = r.b();
    pendingTarget_ = r.u32();
    for (std::int8_t &v : predBuffer_)
        v = static_cast<std::int8_t>(r.u8());
    for (PredIdx &p : complementOf_)
        p = r.u8();
    branchPred_ = r.u8();
    loopLastPred_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        std::uint32_t pc = r.u32();
        loopLastPred_[pc] = r.b();
    }
    loopTrips_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        std::uint32_t pc = r.u32();
        LoopTripState &t = loopTrips_[pc];
        t.fetchIter = r.u32();
        t.ewmaTrip4 = r.u32();
        t.recordedThisInstance = r.b();
    }
    loopInstanceOf_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        std::uint32_t pc = r.u32();
        loopInstanceOf_[pc] = r.u32();
    }
}

void
WishEngine::onInstructionFetched(std::uint32_t pc)
{
    // "Target fetched" exit transition (Figure 8): the target of the
    // wish jump/join that caused the mode entry has been fetched.
    if (mode_ != FrontEndMode::Normal && !lowConfFromLoop_ &&
        pc == pendingTarget_) {
        mode_ = FrontEndMode::Normal;
    }
}

void
WishEngine::enterLowConf(std::uint32_t pc, WishKind kind,
                         std::uint32_t pendingTarget)
{
    mode_ = FrontEndMode::LowConf;
    lowConfFromLoop_ = (kind == WishKind::Loop);
    pendingTarget_ = pendingTarget;
    ++*lowEntries_;
    (void)pc;
}

void
WishEngine::armPredicateBuffer(PredIdx srcPred, bool value)
{
    if (srcPred == 0)
        return;
    predBuffer_[srcPred] = value ? 1 : 0;
    PredIdx comp = complementOf_[srcPred];
    if (comp != kPredNone)
        predBuffer_[comp] = value ? 0 : 1;
}

WishDecision
WishEngine::onWishBranch(std::uint32_t pc, WishKind kind,
                         bool predictorTaken, bool highConf,
                         std::uint32_t takenTarget)
{
    WishDecision d;
    d.highConfidence = highConf;

    if (kind == WishKind::Loop) {
        // Wish loops are always predicted by the loop/branch predictor;
        // the mode only controls whether the predicate is predicted and
        // how a misprediction recovers (§3.2).
        //
        // When the prediction is low-confidence, the specialized loop
        // predictor of §3.2 biases it to *overestimate* the trip count:
        // keep predicting taken until the decaying maximum observed trip
        // is reached. Overshooting turns would-be early exits (pipeline
        // flushes) into late exits (predicated NOPs, no flush).
        LoopTripState &lt = loopTrips_[pc];
        ++lt.fetchIter;
        // Keep predicting taken until slightly past the running average
        // trip count: a small overshoot converts early exits (flush)
        // into late exits (cheap predicated NOPs) without fetching long
        // junk tails when the trip distribution is skewed.
        const std::uint32_t target = lt.ewmaTrip4 / 4 + 2;
        if (!predictorTaken) {
            // Learn from the hybrid's *first* natural exit this
            // instance; recording suppressed re-exits would feed the
            // overshoot back into the average and make it creep.
            if (!lt.recordedThisInstance) {
                lt.ewmaTrip4 += lt.fetchIter - lt.ewmaTrip4 / 4;
                lt.recordedThisInstance = true;
            }
            if (loopBias_ && !highConf &&
                mode_ != FrontEndMode::HighConf &&
                lt.fetchIter < target) {
                predictorTaken = true;
                ++*biasOverrides_;
            } else {
                lt.fetchIter = 0;
                lt.recordedThisInstance = false;
            }
        }
        loopLastPred_[pc] = predictorTaken;
        if (!predictorTaken)
            ++loopInstanceOf_[pc]; // front end exits this loop instance
        if (mode_ == FrontEndMode::LowConf) {
            // Stay in low-confidence-mode until the loop is exited.
            d.effectiveTaken = predictorTaken;
            d.branchMode = FrontEndMode::LowConf;
            if (!predictorTaken && lowConfFromLoop_)
                mode_ = FrontEndMode::Normal; // loop exited by front end
            return d;
        }
        if (highConf) {
            mode_ = FrontEndMode::HighConf;
            lowConfFromLoop_ = true; // exit on loop exit
            ++*highEntries_;
            d.effectiveTaken = predictorTaken;
            d.branchMode = FrontEndMode::HighConf;
            // Predicate predicted: TRUE when the loop is predicted to
            // iterate again.
            armPredicateBuffer(branchPred_, predictorTaken);
            if (!predictorTaken)
                mode_ = FrontEndMode::Normal; // immediately exited
            return d;
        }
        enterLowConf(pc, kind, 0xffffffff);
        d.effectiveTaken = predictorTaken;
        d.branchMode = FrontEndMode::LowConf;
        if (!predictorTaken)
            mode_ = FrontEndMode::Normal;
        return d;
    }

    // Wish jumps and joins.
    if (mode_ == FrontEndMode::LowConf) {
        // Table 1: every wish join after a low-confidence estimation is
        // predicted not-taken.
        d.effectiveTaken = false;
        d.branchMode = FrontEndMode::LowConf;
        return d;
    }

    if (highConf) {
        mode_ = FrontEndMode::HighConf;
        lowConfFromLoop_ = false;
        pendingTarget_ = takenTarget;
        ++*highEntries_;
        d.effectiveTaken = predictorTaken;
        d.branchMode = FrontEndMode::HighConf;
        // §3.5.3: predict the branch's source predicate so predicated
        // instructions need not wait for it.
        armPredicateBuffer(branchPred_, predictorTaken);
        return d;
    }

    enterLowConf(pc, kind, takenTarget);
    d.effectiveTaken = false; // low confidence: force not-taken
    d.branchMode = FrontEndMode::LowConf;
    return d;
}

void
WishEngine::onFlush()
{
    mode_ = FrontEndMode::Normal;
    lowConfFromLoop_ = false;
    pendingTarget_ = 0xffffffff;
    predBuffer_.fill(-1);
}

void
WishEngine::noteCompare(PredIdx pd, PredIdx pd2)
{
    if (pd != kPredNone && pd2 != kPredNone) {
        complementOf_[pd] = pd2;
        complementOf_[pd2] = pd;
    }
}

void
WishEngine::notePredWrite(PredIdx pd)
{
    if (pd != kPredNone)
        predBuffer_[pd] = -1;
}

std::optional<bool>
WishEngine::predictedPredicate(PredIdx p) const
{
    const std::int8_t v = predBuffer_[p];
    if (v < 0)
        return std::nullopt;
    return v != 0;
}

bool
WishEngine::lastLoopPrediction(std::uint32_t pc) const
{
    auto it = loopLastPred_.find(pc);
    return it != loopLastPred_.end() && it->second;
}

std::uint32_t
WishEngine::loopInstance(std::uint32_t pc) const
{
    auto it = loopInstanceOf_.find(pc);
    return it == loopInstanceOf_.end() ? 0 : it->second;
}

} // namespace wisc
