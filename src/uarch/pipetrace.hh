/**
 * @file
 * Pipeline tracing: records the lifecycle of every µop (fetch, rename,
 * issue, complete, retire or squash) and renders a text pipeline
 * diagram — the classic F-R-I-C-W view — for inspection and debugging.
 *
 * PipeTracer is a ProbeSink (uarch/probe.hh): attach it to a Core via
 * addSink(), or pass it through RunRequest::sinks. The wisc-run CLI
 * exposes it as --pipeview N.
 */

#ifndef WISC_UARCH_PIPETRACE_HH_
#define WISC_UARCH_PIPETRACE_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "uarch/probe.hh"

namespace wisc {

/**
 * Lifecycle timestamps of one dynamic µop. Stage fields hold kNoCycle
 * until the stage happens — cycle 0 is a real timestamp (a µop fetched
 * on the first simulated cycle), so absence is marked out-of-band.
 */
struct PipeRecord
{
    std::uint64_t uid = 0;
    std::uint32_t pc = 0;
    std::string disasm;
    Cycle fetch = kNoCycle;
    Cycle rename = kNoCycle;   ///< kNoCycle = never renamed
    Cycle issue = kNoCycle;    ///< kNoCycle = never issued
    Cycle complete = kNoCycle; ///< kNoCycle = never completed
    Cycle retire = kNoCycle;   ///< kNoCycle = never retired
    bool squashed = false;
    bool wrongPath = false; ///< squashed before retirement
    bool predFalse = false; ///< retired as a predicated NOP
    bool mispredicted = false;
};

/**
 * Collects the first 'capacity' µops of the run (later fetches are
 * ignored) and renders them as a timeline.
 */
class PipeTracer : public ProbeSink
{
  public:
    explicit PipeTracer(std::size_t capacity = 4096)
        : capacity_(capacity)
    {
    }

    void onFetch(const FetchProbe &p) override;
    void onRename(const StageProbe &p) override;
    void onIssue(const StageProbe &p) override;
    void onComplete(const StageProbe &p) override;
    void onRetire(const RetireProbe &p) override;
    void onSquash(const SquashProbe &p) override;

    const std::vector<PipeRecord> &records() const { return records_; }

    /**
     * Render records [first, first+count) as a text pipeline diagram:
     * one row per µop, columns are cycles relative to the window start.
     *   F fetch   R rename   I issue   C complete   W retire (writeback)
     *   lowercase row = squashed (wrong path)   ~ = predicated NOP
     */
    void render(std::ostream &os, std::size_t first = 0,
                std::size_t count = 64) const;

  private:
    PipeRecord *find(std::uint64_t uid);

    std::size_t capacity_;
    std::vector<PipeRecord> records_;
};

} // namespace wisc

#endif // WISC_UARCH_PIPETRACE_HH_
