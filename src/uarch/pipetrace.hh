/**
 * @file
 * Pipeline tracing: records the lifecycle of every µop (fetch, rename,
 * issue, complete, retire or squash) and renders a text pipeline
 * diagram — the classic F-R-I-C-W view — for inspection and debugging.
 *
 * Attach a tracer to a Core via SimParams-independent setTracer(); the
 * wisc-run CLI exposes it as --pipeview N.
 */

#ifndef WISC_UARCH_PIPETRACE_HH_
#define WISC_UARCH_PIPETRACE_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace wisc {

/** Lifecycle timestamps of one dynamic µop. */
struct PipeRecord
{
    std::uint64_t uid = 0;
    std::uint32_t pc = 0;
    std::string disasm;
    Cycle fetch = 0;
    Cycle rename = 0;   ///< 0 = never renamed
    Cycle issue = 0;    ///< 0 = never issued
    Cycle complete = 0; ///< 0 = never completed
    Cycle retire = 0;   ///< 0 = never retired
    bool squashed = false;
    bool wrongPath = false; ///< squashed before retirement
    bool predFalse = false; ///< retired as a predicated NOP
    bool mispredicted = false;
};

/**
 * Collects the first 'capacity' µops of the run (later fetches are
 * ignored) and renders them as a timeline.
 */
class PipeTracer
{
  public:
    explicit PipeTracer(std::size_t capacity = 4096)
        : capacity_(capacity)
    {
    }

    /** Core hooks. */
    void onFetch(std::uint64_t uid, std::uint32_t pc,
                 const Instruction &si, Cycle c);
    void onRename(std::uint64_t uid, Cycle c);
    void onIssue(std::uint64_t uid, Cycle c);
    void onComplete(std::uint64_t uid, Cycle c);
    void onRetire(std::uint64_t uid, Cycle c, bool predFalse,
                  bool mispredicted);
    void onSquash(std::uint64_t uid);

    const std::vector<PipeRecord> &records() const { return records_; }

    /**
     * Render records [first, first+count) as a text pipeline diagram:
     * one row per µop, columns are cycles relative to the window start.
     *   F fetch   R rename   I issue   C complete   W retire (writeback)
     *   lowercase row = squashed (wrong path)   ~ = predicated NOP
     */
    void render(std::ostream &os, std::size_t first = 0,
                std::size_t count = 64) const;

  private:
    PipeRecord *find(std::uint64_t uid);

    std::size_t capacity_;
    std::vector<PipeRecord> records_;
};

} // namespace wisc

#endif // WISC_UARCH_PIPETRACE_HH_
