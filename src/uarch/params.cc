#include "uarch/params.hh"

#include "common/hash.hh"

namespace wisc {

namespace {

void
hashCache(Hasher &h, const CacheParams &c)
{
    h.u32(c.sizeBytes);
    h.u32(c.ways);
    h.u32(c.lineBytes);
    h.u32(c.hitLatency);
}

} // namespace

std::uint64_t
SimParams::fingerprint() const
{
    // Keep this exhaustive: every field that can change simulation
    // behavior must land in the digest, or the run cache would replay a
    // stale result for a different machine. The static_asserts below
    // trip when SimParams/CacheParams/OracleKnobs grow, forcing whoever
    // adds a field to extend this function (and the perturbation test).
    static_assert(sizeof(CacheParams) == 16,
                  "CacheParams changed: extend SimParams::fingerprint() "
                  "and the field-perturbation test");
    static_assert(sizeof(OracleKnobs) == 4,
                  "OracleKnobs changed: extend SimParams::fingerprint() "
                  "and the field-perturbation test");
    static_assert(sizeof(SimParams) == 344,
                  "SimParams changed: extend SimParams::fingerprint() "
                  "and the field-perturbation test");

    Hasher h;
    h.str("wisc.simparams.v2");

    h.u32(fetchWidth);
    h.u32(decodeWidth);
    h.u32(issueWidth);
    h.u32(retireWidth);
    h.u32(maxCondBrPerFetch);
    h.u32(memPortsPerCycle);

    h.u32(robSize);
    h.u32(iqSize);
    h.u32(lsqSize);
    h.u32(pipelineStages);

    hashCache(h, il1);
    hashCache(h, dl1);
    hashCache(h, l2);
    h.u32(memLatency);
    h.u32(maxOutstandingMisses);

    h.u32(gshareEntries);
    h.u32(pasHistEntries);
    h.u32(pasPatternEntries);
    h.u32(pasHistBits);
    h.u32(selectorEntries);
    h.u32(btbSets);
    h.u32(btbWays);
    h.u32(rasEntries);
    h.u32(indirectEntries);
    h.u32(indirectHistBits);

    h.u8(static_cast<std::uint8_t>(predictor));
    h.u32(bimodalEntries);
    h.u32(twoLevelEntries);
    h.u32(twoLevelHistBits);
    h.u32(tageTables);
    h.u32(tageEntriesLog2);
    h.u32(tageTagBits);
    h.u32(tageMinHist);
    h.u32(tageMaxHist);
    h.u32(tageBaseEntriesLog2);
    h.u32(tageUsefulBits);
    h.u32(tageResetPeriod);

    h.u32(confSets);
    h.u32(confWays);
    h.u32(confHistBits);
    h.u32(confCtrBits);
    h.u32(confThreshold);
    h.u32(confTagBits);
    h.b(confMissIsHigh);

    h.u8(static_cast<std::uint8_t>(confKind));
    h.u32(udConfEntries);
    h.u32(udConfHistBits);
    h.u32(udConfMax);
    h.u32(udConfThreshold);
    h.u32(udConfDownStep);

    h.u32(latAlu);
    h.u32(latMul);
    h.u32(latDiv);
    h.u32(latBranch);
    h.u32(latStoreForward);

    h.u8(static_cast<std::uint8_t>(predMech));
    h.b(wishEnabled);
    h.b(wishLoopBias);

    h.u8(static_cast<std::uint8_t>(dynPred));
    h.u32(dynFetchGateCycles);
    h.u32(dynMergeEntries);
    h.u32(dynMergeMinConf);
    h.u32(dynMaxRegionUops);
    h.u32(dynMergeTrackUops);

    h.b(oracle.noDepend);
    h.b(oracle.noFetch);
    h.b(oracle.perfectCBP);
    h.b(oracle.perfectConfidence);

    h.b(sampling.enabled);
    h.u64(sampling.periodUops);
    h.u64(sampling.warmupUops);
    h.u64(sampling.measureUops);
    h.u64(sampling.prefixUops);

    h.u64(maxCycles);
    h.u64(maxRetired);
    h.b(checkFinalState);
    h.b(collectAttribution);
    h.b(collectBranchProfile);
    h.b(pollScheduler);

    return h.digest();
}

} // namespace wisc
