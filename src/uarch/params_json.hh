/**
 * @file
 * Canonical JSON encoding of SimParams — the one serialization shared
 * by the wisc-serve wire schema, experiment JSON emission, and tooling
 * that needs to reconstruct a machine configuration outside the process
 * that built it.
 *
 * Keys are the C++ field names, nested exactly like the struct
 * (il1/dl1/l2, oracle, sampling), enums as their symbolic names
 * ("Hybrid", "Jrs", "CStyle", ...). The decoder is strict both ways:
 * every field must be present (a document from a build whose SimParams
 * lost a field fails loudly) and unknown keys are fatal (a document
 * from a build that *grew* a field cannot be silently truncated into a
 * different machine). Like fingerprint(), the encoder carries sizeof
 * static_asserts so SimParams cannot grow a field without this codec
 * being extended, and the round-trip test pins
 * fingerprint(decode(encode(p))) == fingerprint(p) per perturbed field.
 */

#ifndef WISC_UARCH_PARAMS_JSON_HH_
#define WISC_UARCH_PARAMS_JSON_HH_

#include "common/json.hh"
#include "uarch/params.hh"

namespace wisc {

/** Encode every fingerprinted field. */
json::Value simParamsToJson(const SimParams &p);

/** Strict inverse; FatalError on a missing field, an unknown key, an
 *  out-of-range enum name, or a kind mismatch. */
SimParams simParamsFromJson(const json::Value &v);

} // namespace wisc

#endif // WISC_UARCH_PARAMS_JSON_HH_
