/**
 * @file
 * Factories mapping SimParams::predictor / SimParams::confKind to
 * concrete IBranchPredictor / IConfidence instances. Kept out of
 * core.cc so the core depends only on the interfaces.
 */

#include "uarch/bpred_iface.hh"

#include "common/log.hh"
#include "uarch/bpred.hh"
#include "uarch/confidence.hh"
#include "uarch/simple_bpred.hh"
#include "uarch/tage.hh"
#include "uarch/updown_conf.hh"

namespace wisc {

std::unique_ptr<IBranchPredictor>
makeBranchPredictor(const SimParams &params, StatSet &stats)
{
    switch (params.predictor) {
      case PredictorKind::Hybrid:
        return std::make_unique<HybridPredictor>(params, stats);
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(params, stats);
      case PredictorKind::TwoLevel:
        return std::make_unique<TwoLevelPredictor>(params, stats);
      case PredictorKind::Tage:
        return std::make_unique<TagePredictor>(params, stats);
    }
    wisc_panic("unknown PredictorKind");
}

std::unique_ptr<IConfidence>
makeConfidenceEstimator(const SimParams &params, StatSet &stats,
                        const IBranchPredictor &bpred)
{
    switch (params.confKind) {
      case ConfKind::Jrs:
        return std::make_unique<JrsConfidenceEstimator>(params, stats);
      case ConfKind::UpDown:
        return std::make_unique<UpDownConfidenceEstimator>(params,
                                                           stats);
      case ConfKind::Tage: {
        auto *tage = dynamic_cast<const TagePredictor *>(&bpred);
        if (!tage)
            wisc_fatal("ConfKind::Tage requires SimParams::predictor "
                       "== PredictorKind::Tage");
        return std::make_unique<TageConfidence>(*tage, stats);
      }
    }
    wisc_panic("unknown ConfKind");
}

} // namespace wisc
