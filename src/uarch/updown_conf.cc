#include "uarch/updown_conf.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace wisc {

UpDownConfidenceEstimator::UpDownConfidenceEstimator(
    const SimParams &params, StatSet &stats)
    : entries_(params.udConfEntries),
      histBits_(params.udConfHistBits),
      max_(params.udConfMax),
      threshold_(params.udConfThreshold),
      downStep_(params.udConfDownStep)
{
    wisc_assert(isPow2(entries_), "up/down table must be a power of two");
    wisc_assert(threshold_ <= max_, "bad up/down threshold");
    ctrs_.assign(entries_, 0);
    queries_ = &stats.counter("conf.queries");
    highs_ = &stats.counter("conf.high_estimates");
}

std::size_t
UpDownConfidenceEstimator::index(std::uint32_t pc,
                                 std::uint64_t hist) const
{
    std::uint64_t h = hist & maskBits(histBits_);
    return (pc ^ (h * 0x9e3779b1u)) & (entries_ - 1);
}

bool
UpDownConfidenceEstimator::estimate(std::uint32_t pc,
                                    std::uint64_t hist) const
{
    ++*queries_;
    bool high = ctrs_[index(pc, hist)] >= threshold_;
    if (high)
        ++*highs_;
    return high;
}

void
UpDownConfidenceEstimator::update(std::uint32_t pc, std::uint64_t hist,
                                  bool correct)
{
    std::uint16_t &c = ctrs_[index(pc, hist)];
    if (correct) {
        if (c < max_)
            ++c;
    } else {
        c = c > downStep_ ? static_cast<std::uint16_t>(c - downStep_)
                          : 0;
    }
}

void
UpDownConfidenceEstimator::reset()
{
    ctrs_.assign(ctrs_.size(), 0);
}

void
UpDownConfidenceEstimator::saveState(ByteWriter &w) const
{
    w.vec(ctrs_);
}

void
UpDownConfidenceEstimator::restoreState(ByteReader &r)
{
    r.vec(ctrs_);
}

} // namespace wisc
