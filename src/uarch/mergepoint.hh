/**
 * @file
 * Hardware merge-point predictor for dynamic predication.
 *
 * A direct-mapped, tagged table of static conditional branches that
 * learns each branch's control-flow reconvergence (merge) point from
 * the *retired* instruction stream, in the spirit of dynamic merge
 * point prediction (Pruett & Patt) / diverge-merge processors. The
 * core consults it when a normal (compiler-unmarked) conditional
 * branch gets a low-confidence estimate: if the table has a confident
 * merge-point prediction, the frontend predicates the hammock on the
 * fly instead of gambling on the predictor (SimParams::dynPred ==
 * DynPredMode::MergePoint).
 *
 * Learning walks the retired stream with a single tracking slot: when
 * a forward conditional branch retires, its taken target becomes the
 * initial merge estimate (the end of the not-taken block — exact for
 * if-then, a first guess for if-then-else). While tracking, retiring
 * *at* the estimate confirms it; retiring a forward jump *past* the
 * estimate (the then-block's jump over the else-block) moves the
 * estimate to that jump's target; leaving the region backwards or
 * running out of the tracking budget abandons the sample. This learns
 * if-then, if-then-else, and nested-hammock shapes with one 32-bit
 * comparator, and mislearned entries are killed by the usefulness
 * counter trained from dynamic-predication outcomes.
 */

#ifndef WISC_UARCH_MERGEPOINT_HH_
#define WISC_UARCH_MERGEPOINT_HH_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hh"

namespace wisc {

class MergePointTable
{
  public:
    /** 'entries' is rounded up to a power of two; 'trackUops' bounds
     *  the retired-µop window a merge estimate may span. */
    MergePointTable(unsigned entries, unsigned trackUops);

    /** Confident merge-point prediction for the static branch at 'pc',
     *  or nullopt when unknown / not yet confirmed enough times /
     *  trained useless. 'minConf' is SimParams::dynMergeMinConf. */
    std::optional<std::uint32_t> predict(std::uint32_t pc,
                                         unsigned minConf) const;

    /**
     * Feed one retired instruction. 'pc' is its index, 'nextPc' the
     * retired-stream successor (the *actual* next retired pc),
     * 'isCondBr' whether it is a conditional branch and 'takenTarget'
     * that branch's taken target. The core must skip µops fetched
     * inside a dynamically predicated region: their retired pc stream
     * is linear regardless of the real control flow and would poison
     * the merge estimates.
     */
    void onRetire(std::uint32_t pc, std::uint32_t nextPc, bool isCondBr,
                  std::uint32_t takenTarget);

    /**
     * Outcome feedback for a dynamic-predication trigger at 'pc'.
     * 'failed' means real control flow never reached the predicted
     * merge point (region wasted, pipeline flushed); 'mispredicted'
     * whether the branch predictor got the trigger branch wrong (i.e.
     * predication would have saved a flush).
     */
    void noteOutcome(std::uint32_t pc, bool failed, bool mispredicted);

    /** Forget everything (cold table; used by Core::beginRun). */
    void reset();

    /** Checkpoint/restore the full table + tracking slot. */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t pc = 0;      ///< full-tag static branch index
        std::uint32_t merge = 0;   ///< predicted reconvergence index
        std::uint32_t conf = 0;    ///< consecutive confirmations
        std::int8_t useful = 0;    ///< outcome-trained usefulness
    };

    Entry &entryFor(std::uint32_t pc);
    const Entry &entryFor(std::uint32_t pc) const;

    std::vector<Entry> table_;
    std::uint32_t mask_;
    unsigned trackUops_;

    /** Single-slot retired-stream tracker. */
    bool tracking_ = false;
    std::uint32_t trackPc_ = 0;   ///< branch being tracked
    std::uint32_t uopsLeft_ = 0;  ///< tracking budget remaining
};

} // namespace wisc

#endif // WISC_UARCH_MERGEPOINT_HH_
