/**
 * @file
 * Warm-state checkpoint for sampled simulation (DESIGN.md: sampling).
 *
 * A CoreCheckpoint captures everything a detailed window needs to
 * resume simulation at a *drained* boundary — the reorder buffer and
 * fetch queue are empty, so no in-flight µop state exists and the
 * checkpoint reduces to:
 *
 *   - architectural state (registers, predicates, memory pages);
 *   - µarchitectural warm state: cache tags/LRU across all three
 *     levels plus the outstanding-fill ledger, direction predictor,
 *     confidence estimator, BTB, return address stack, indirect target
 *     cache, and the wish-engine mode machine / predicate buffer /
 *     loop-trip tables;
 *   - a handful of core scalars: cycle clock, retired-µop count, fetch
 *     PC/halt/stall, the seq/uid allocators (sequence numbers must
 *     stay monotone across the boundary — retirement ordering and the
 *     attribution flush shadow compare them), and optionally the
 *     attribution engine's cross-cycle flush-shadow state.
 *
 * Producer tables, store indices, completion events, and wait chains
 * are deliberately absent: at a drained boundary every allocated seq
 * number is retired, and the core treats any stale producer entry
 * whose µop is no longer in the ROB as "complete" — the tables are
 * inert and are simply reset on restore.
 *
 * The blob is an in-process byte buffer (common/bytes.hh), never
 * persisted to disk; fingerprints guard against restoring into a core
 * with a different machine configuration or program image.
 */

#ifndef WISC_UARCH_CHECKPOINT_HH_
#define WISC_UARCH_CHECKPOINT_HH_

#include <cstdint>

#include "common/bytes.hh"
#include "common/types.hh"

namespace wisc {

struct CoreCheckpoint
{
    /** Cycle clock at the boundary. The memory system's fill ledger
     *  stores absolute ready cycles, so the clock restores with it. */
    Cycle now = 0;
    /** Retired µops up to the boundary (whole-run coordinate). */
    std::uint64_t retiredUops = 0;

    // Front-end scalars.
    std::uint32_t fetchPc = 0;
    bool fetchHalted = false;
    Cycle fetchStallUntil = 0;

    // Allocators (never reset across the boundary; see file comment).
    SeqNum nextSeq = 1;
    std::uint64_t nextUid = 1;

    /** The serialized substrate: ArchState, MemorySystem, predictor,
     *  confidence, BTB, RAS, ITC, wish engine (when hasWish), and the
     *  attribution shadow (when hasAttribShadow). */
    ByteBuffer bytes;
    /** The wish-engine section is present (checkpoints produced by the
     *  functional fast-forward engine cold-start it instead). */
    bool hasWish = false;
    /** The attribution flush-shadow section is present. */
    bool hasAttribShadow = false;

    /** Guards: a checkpoint only restores into a core built from
     *  fingerprint-identical SimParams running the same program. */
    std::uint64_t paramsFingerprint = 0;
    std::uint64_t progFingerprint = 0;
};

} // namespace wisc

#endif // WISC_UARCH_CHECKPOINT_HH_
