#include "uarch/tage.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/hash.hh"
#include "common/log.hh"

namespace wisc {

namespace {

/** 3-bit saturating direction counter update. */
void
train3bit(std::uint8_t &ctr, bool taken)
{
    if (taken)
        satIncrement(ctr, 3);
    else
        satDecrement(ctr);
}

/** 2-bit saturating counter update (base table). */
void
train2bit(std::uint8_t &ctr, bool taken)
{
    if (taken)
        satIncrement(ctr, 2);
    else
        satDecrement(ctr);
}

} // namespace

TagePredictor::TagePredictor(const SimParams &params, StatSet &stats)
    : numTables_(params.tageTables),
      entriesLog2_(params.tageEntriesLog2),
      tagBits_(params.tageTagBits),
      uBits_(params.tageUsefulBits),
      resetMask_(params.tageResetPeriod - 1)
{
    wisc_assert(numTables_ >= 1, "TAGE needs at least one tagged table");
    wisc_assert(params.tageMaxHist <= 64,
                "TAGE history is capped at the 64-bit checkpoint word");
    wisc_assert(params.tageMinHist >= 1 &&
                    params.tageMinHist <= params.tageMaxHist,
                "TAGE history lengths must satisfy 1 <= min <= max");
    wisc_assert(isPow2(params.tageResetPeriod),
                "tageResetPeriod must be a power of two");
    wisc_assert(tagBits_ >= 1 && tagBits_ <= 16,
                "TAGE tags are stored in 16 bits");

    // Geometric history series L(t) = minHist * (maxHist/minHist)^(t/(N-1)),
    // rounded and forced strictly increasing.
    histLen_.resize(numTables_);
    for (unsigned t = 0; t < numTables_; ++t) {
        double frac = numTables_ > 1
                          ? static_cast<double>(t) / (numTables_ - 1)
                          : 1.0;
        double len = params.tageMinHist *
                     std::pow(static_cast<double>(params.tageMaxHist) /
                                  params.tageMinHist,
                              frac);
        unsigned l = static_cast<unsigned>(std::lround(len));
        if (t > 0 && l <= histLen_[t - 1])
            l = histLen_[t - 1] + 1;
        histLen_[t] = l < 64 ? l : 64;
    }

    tables_.assign(numTables_,
                   std::vector<Entry>(1ull << entriesLog2_));
    base_.assign(1ull << params.tageBaseEntriesLog2, 2); // weakly taken

    providerHits_ = &stats.counter("bpred.tage.provider_hits",
                                   "predictions served by a tagged table");
    altOverrides_ = &stats.counter(
        "bpred.tage.alt_overrides",
        "unproven weak provider overridden by the alternate");
    allocs_ = &stats.counter("bpred.tage.allocs",
                             "tagged entries allocated on mispredicts");
    allocFails_ = &stats.counter(
        "bpred.tage.alloc_fails",
        "allocation attempts that only aged usefulness counters");
}

std::uint64_t
TagePredictor::hashOf(unsigned t, std::uint32_t pc,
                      std::uint64_t hist) const
{
    // One well-mixed 64-bit word per (table, pc, history-slice); the
    // index and tag are disjoint bit ranges of it.
    std::uint64_t h = hist & maskBits(histLen_[t]);
    return Hasher::mix(h + 0x9e3779b97f4a7c15ull * (t + 1)) ^
           Hasher::mix(pc ^ (static_cast<std::uint64_t>(t + 1) << 40));
}

std::size_t
TagePredictor::indexOf(unsigned t, std::uint32_t pc,
                       std::uint64_t hist) const
{
    return hashOf(t, pc, hist) & maskBits(entriesLog2_);
}

std::uint16_t
TagePredictor::tagOf(unsigned t, std::uint32_t pc,
                     std::uint64_t hist) const
{
    // Tags come from bits above the index so tag and index are
    // decorrelated; tag 0 is reserved-free (entries carry a valid bit).
    return static_cast<std::uint16_t>(
        (hashOf(t, pc, hist) >> entriesLog2_) & maskBits(tagBits_));
}

std::size_t
TagePredictor::baseIndex(std::uint32_t pc) const
{
    return pc & (base_.size() - 1);
}

TagePredictor::Entry &
TagePredictor::at(unsigned t, std::uint32_t pc, std::uint64_t hist)
{
    return tables_[t][indexOf(t, pc, hist)];
}

TagePredictor::Lookup
TagePredictor::lookup(std::uint32_t pc, std::uint64_t hist) const
{
    Lookup r;
    bool basePred = base_[baseIndex(pc)] >= 2;
    r.altTaken = basePred;

    for (int t = static_cast<int>(numTables_) - 1; t >= 0; --t) {
        const Entry &e = tables_[t][indexOf(t, pc, hist)];
        if (!e.valid || e.tag != tagOf(t, pc, hist))
            continue;
        if (r.provider < 0) {
            r.provider = t;
            r.providerTaken = e.ctr >= 4;
            r.providerCtr = e.ctr;
            r.providerU = e.u;
            r.weak = e.ctr == 3 || e.ctr == 4;
        } else {
            r.alt = t;
            r.altTaken = e.ctr >= 4;
            break;
        }
    }

    if (r.provider < 0) {
        r.taken = basePred;
    } else if (r.weak && r.providerU == 0) {
        // Newly allocated (unproven) entries start weak with u == 0;
        // trust the alternate until the provider proves itself
        // ("use alt on newly allocated", simplified).
        r.taken = r.altTaken;
    } else {
        r.taken = r.providerTaken;
    }
    return r;
}

bool
TagePredictor::predict(std::uint32_t pc, BpredCheckpoint &ckpt)
{
    ckpt.globalHistory = hist_;
    Lookup r = lookup(pc, hist_);
    if (r.provider >= 0) {
        ++*providerHits_;
        if (r.taken != r.providerTaken)
            ++*altOverrides_;
    }
    return r.taken;
}

bool
TagePredictor::confident(std::uint32_t pc, std::uint64_t hist) const
{
    Lookup r = lookup(pc, hist);
    if (r.provider >= 0)
        return (r.providerCtr <= 1 || r.providerCtr >= 6) &&
               !(r.weak && r.providerU == 0);
    std::uint8_t b = base_[baseIndex(pc)];
    return b == 0 || b == 3;
}

void
TagePredictor::train(std::uint32_t pc, bool taken,
                     const BpredCheckpoint &ckpt)
{
    // Reconstruct the fetch-time table walk from the checkpointed
    // history (the live hist_ has younger speculative bits).
    const std::uint64_t hist = ckpt.globalHistory;
    Lookup r = lookup(pc, hist);

    // Usefulness: the provider earns credit only where it disagreed
    // with the alternate and was right (agreement teaches nothing
    // about which entry deserves to stay).
    if (r.provider >= 0 && r.providerTaken != r.altTaken) {
        Entry &p = at(r.provider, pc, hist);
        if (r.providerTaken == taken)
            satIncrement(p.u, uBits_);
        else
            satDecrement(p.u);
    }

    // Direction counters.
    if (r.provider >= 0) {
        train3bit(at(r.provider, pc, hist).ctr, taken);
        // While the provider is unproven the alternate made the actual
        // prediction — keep training it too.
        if (r.weak && r.providerU == 0) {
            if (r.alt >= 0)
                train3bit(at(r.alt, pc, hist).ctr, taken);
            else
                train2bit(base_[baseIndex(pc)], taken);
        }
    } else {
        train2bit(base_[baseIndex(pc)], taken);
    }

    // Allocate a longer-history entry on a misprediction of the final
    // prediction. First u == 0 victim wins (deterministic); with no
    // victim, age every candidate so the next mispredict finds one.
    if (r.taken != taken &&
        r.provider < static_cast<int>(numTables_) - 1) {
        int victim = -1;
        for (unsigned t = r.provider + 1; t < numTables_; ++t) {
            if (at(t, pc, hist).u == 0) {
                victim = static_cast<int>(t);
                break;
            }
        }
        if (victim >= 0) {
            Entry &e = at(victim, pc, hist);
            e.valid = true;
            e.tag = tagOf(victim, pc, hist);
            e.ctr = taken ? 4 : 3; // weak, agreeing with the outcome
            e.u = 0;
            ++*allocs_;
        } else {
            for (unsigned t = r.provider + 1; t < numTables_; ++t)
                satDecrement(at(t, pc, hist).u);
            ++*allocFails_;
        }
    }

    // Graceful aging: halve every usefulness counter periodically so
    // dead entries eventually become allocation victims.
    if ((++trains_ & resetMask_) == 0)
        for (auto &table : tables_)
            for (Entry &e : table)
                e.u >>= 1;
}

TageConfidence::TageConfidence(const TagePredictor &pred, StatSet &stats)
    : pred_(pred)
{
    queries_ = &stats.counter("conf.queries");
    highs_ = &stats.counter("conf.high_estimates");
}

bool
TageConfidence::estimate(std::uint32_t pc, std::uint64_t hist) const
{
    ++*queries_;
    bool high = pred_.confident(pc, hist);
    if (high)
        ++*highs_;
    return high;
}

void
TagePredictor::saveState(ByteWriter &w) const
{
    w.u64(hist_);
    w.u64(trains_);
    w.vec(base_);
    for (const auto &t : tables_)
        w.vec(t);
}

void
TagePredictor::restoreState(ByteReader &r)
{
    hist_ = r.u64();
    trains_ = r.u64();
    r.vec(base_);
    for (auto &t : tables_)
        r.vec(t);
}

} // namespace wisc
