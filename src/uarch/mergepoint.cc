#include "uarch/mergepoint.hh"

namespace wisc {

namespace {

std::uint32_t
roundUpPow2(unsigned v)
{
    std::uint32_t p = 1;
    while (p < v && p < (1u << 30))
        p <<= 1;
    return p;
}

} // namespace

MergePointTable::MergePointTable(unsigned entries, unsigned trackUops)
    : table_(roundUpPow2(entries ? entries : 1)),
      mask_(static_cast<std::uint32_t>(table_.size()) - 1),
      trackUops_(trackUops)
{
}

MergePointTable::Entry &
MergePointTable::entryFor(std::uint32_t pc)
{
    return table_[pc & mask_];
}

const MergePointTable::Entry &
MergePointTable::entryFor(std::uint32_t pc) const
{
    return table_[pc & mask_];
}

std::optional<std::uint32_t>
MergePointTable::predict(std::uint32_t pc, unsigned minConf) const
{
    const Entry &e = entryFor(pc);
    if (!e.valid || e.pc != pc)
        return std::nullopt;
    if (e.conf < minConf || e.useful < 0)
        return std::nullopt;
    return e.merge;
}

void
MergePointTable::onRetire(std::uint32_t pc, std::uint32_t nextPc,
                          bool isCondBr, std::uint32_t takenTarget)
{
    if (tracking_) {
        Entry &e = entryFor(trackPc_);
        if (!e.valid || e.pc != trackPc_) {
            tracking_ = false; // entry evicted under us
        } else if (pc == e.merge) {
            // Real control flow reconverged at the estimate.
            ++e.conf;
            tracking_ = false;
        } else if (nextPc > e.merge && nextPc > pc) {
            // A forward jump past the estimate: classic if-then-else
            // shape, where the then-block ends with a jump over the
            // else-block. The jump target is the better merge estimate.
            e.merge = nextPc;
            e.conf = 0;
        } else if (nextPc < trackPc_) {
            // Control flow left the region backwards (loop back edge,
            // return into earlier code): no forward reconvergence.
            tracking_ = false;
        } else if (uopsLeft_ == 0) {
            tracking_ = false; // budget exhausted, abandon the sample
        } else {
            --uopsLeft_;
        }
    }

    // Start tracking forward conditional branches (hammock heads). Only
    // one slot: a new candidate while tracking is ignored, which biases
    // learning toward outer hammocks first — inner ones get their turn
    // once the outer entry confirms.
    if (!tracking_ && isCondBr && takenTarget > pc) {
        Entry &e = entryFor(pc);
        if (!e.valid || e.pc != pc) {
            e.valid = true;
            e.pc = pc;
            e.merge = takenTarget;
            e.conf = 0;
            e.useful = 1;
        }
        tracking_ = true;
        trackPc_ = pc;
        uopsLeft_ = trackUops_;
    }
}

void
MergePointTable::noteOutcome(std::uint32_t pc, bool failed,
                             bool mispredicted)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.pc != pc)
        return;
    int u = e.useful;
    if (failed) {
        // Region never reached the merge point: either the merge
        // estimate is wrong or the hammock has side exits. Punish hard.
        u -= 2;
    } else if (mispredicted) {
        // Predication saved a pipeline flush: the payoff case.
        u += 2;
    } else {
        // Predictor was right anyway; the region cost off-path µops for
        // nothing. Mild decay so persistently-predictable branches stop
        // triggering.
        u -= 1;
    }
    e.useful = static_cast<std::int8_t>(u < -8 ? -8 : (u > 7 ? 7 : u));
}

void
MergePointTable::reset()
{
    for (Entry &e : table_)
        e = Entry{};
    tracking_ = false;
    trackPc_ = 0;
    uopsLeft_ = 0;
}

void
MergePointTable::saveState(ByteWriter &w) const
{
    w.u64(table_.size());
    for (const Entry &e : table_) {
        w.b(e.valid);
        w.u32(e.pc);
        w.u32(e.merge);
        w.u32(e.conf);
        w.u8(static_cast<std::uint8_t>(e.useful));
    }
    w.b(tracking_);
    w.u32(trackPc_);
    w.u32(uopsLeft_);
}

void
MergePointTable::restoreState(ByteReader &r)
{
    const std::uint64_t n = r.u64();
    table_.assign(static_cast<std::size_t>(n), Entry{});
    mask_ = static_cast<std::uint32_t>(table_.size()) - 1;
    for (Entry &e : table_) {
        e.valid = r.b();
        e.pc = r.u32();
        e.merge = r.u32();
        e.conf = r.u32();
        e.useful = static_cast<std::int8_t>(r.u8());
    }
    tracking_ = r.b();
    trackPc_ = r.u32();
    uopsLeft_ = r.u32();
}

} // namespace wisc
