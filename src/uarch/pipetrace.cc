#include "uarch/pipetrace.hh"

#include <algorithm>
#include <iomanip>

namespace wisc {

PipeRecord *
PipeTracer::find(std::uint64_t uid)
{
    // Records arrive roughly in uid order; search from the back.
    for (auto it = records_.rbegin(); it != records_.rend(); ++it)
        if (it->uid == uid)
            return &*it;
    return nullptr;
}

void
PipeTracer::onFetch(std::uint64_t uid, std::uint32_t pc,
                    const Instruction &si, Cycle c)
{
    if (records_.size() >= capacity_)
        return; // keep the first 'capacity_' µops of the run
    PipeRecord r;
    r.uid = uid;
    r.pc = pc;
    r.disasm = disassemble(si);
    r.fetch = c;
    records_.push_back(std::move(r));
}

void
PipeTracer::onRename(std::uint64_t uid, Cycle c)
{
    if (PipeRecord *r = find(uid))
        r->rename = c;
}

void
PipeTracer::onIssue(std::uint64_t uid, Cycle c)
{
    if (PipeRecord *r = find(uid))
        r->issue = c;
}

void
PipeTracer::onComplete(std::uint64_t uid, Cycle c)
{
    if (PipeRecord *r = find(uid))
        r->complete = c;
}

void
PipeTracer::onRetire(std::uint64_t uid, Cycle c, bool predFalse,
                     bool mispredicted)
{
    if (PipeRecord *r = find(uid)) {
        r->retire = c;
        r->predFalse = predFalse;
        r->mispredicted = mispredicted;
    }
}

void
PipeTracer::onSquash(std::uint64_t uid)
{
    if (PipeRecord *r = find(uid)) {
        r->squashed = true;
        r->wrongPath = true;
    }
}

void
PipeTracer::render(std::ostream &os, std::size_t first,
                   std::size_t count) const
{
    if (records_.empty() || first >= records_.size())
        return;
    std::size_t last = std::min(records_.size(), first + count);

    Cycle base = records_[first].fetch;
    Cycle horizon = base;
    for (std::size_t i = first; i < last; ++i) {
        const PipeRecord &r = records_[i];
        horizon = std::max({horizon, r.fetch, r.rename, r.issue,
                            r.complete, r.retire});
    }
    const unsigned width =
        static_cast<unsigned>(std::min<Cycle>(horizon - base + 1, 120));

    os << "cycle base " << base << "; F=fetch R=rename I=issue "
          "C=complete W=retire; '~'=predicated NOP, lowercase=squashed\n";
    for (std::size_t i = first; i < last; ++i) {
        const PipeRecord &r = records_[i];
        std::string lane(width, '.');
        auto put = [&](Cycle c, char ch) {
            if (c == 0 && ch != 'F')
                return;
            if (c < base)
                return;
            Cycle off = c - base;
            if (off < width)
                lane[static_cast<std::size_t>(off)] =
                    r.squashed
                        ? static_cast<char>(std::tolower(ch))
                        : ch;
        };
        put(r.fetch, 'F');
        put(r.rename, 'R');
        put(r.issue, 'I');
        put(r.complete, 'C');
        put(r.retire, 'W');

        os << std::setw(6) << r.uid << " " << std::setw(5) << r.pc
           << " " << lane << " ";
        if (r.predFalse)
            os << "~ ";
        if (r.mispredicted)
            os << "MISP ";
        if (r.squashed)
            os << "SQUASHED ";
        os << r.disasm << "\n";
    }
}

} // namespace wisc
