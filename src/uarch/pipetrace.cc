#include "uarch/pipetrace.hh"

#include <algorithm>
#include <iomanip>

namespace wisc {

PipeRecord *
PipeTracer::find(std::uint64_t uid)
{
    // Records arrive roughly in uid order; search from the back.
    for (auto it = records_.rbegin(); it != records_.rend(); ++it)
        if (it->uid == uid)
            return &*it;
    return nullptr;
}

void
PipeTracer::onFetch(const FetchProbe &p)
{
    if (records_.size() >= capacity_)
        return; // keep the first 'capacity_' µops of the run
    PipeRecord r;
    r.uid = p.uid;
    r.pc = p.pc;
    r.disasm = disassemble(*p.inst);
    r.fetch = p.cycle;
    records_.push_back(std::move(r));
}

void
PipeTracer::onRename(const StageProbe &p)
{
    if (PipeRecord *r = find(p.uid))
        r->rename = p.cycle;
}

void
PipeTracer::onIssue(const StageProbe &p)
{
    if (PipeRecord *r = find(p.uid))
        r->issue = p.cycle;
}

void
PipeTracer::onComplete(const StageProbe &p)
{
    if (PipeRecord *r = find(p.uid))
        r->complete = p.cycle;
}

void
PipeTracer::onRetire(const RetireProbe &p)
{
    if (PipeRecord *r = find(p.uid)) {
        r->retire = p.cycle;
        r->predFalse = p.predFalse;
        r->mispredicted = p.mispredicted;
    }
}

void
PipeTracer::onSquash(const SquashProbe &p)
{
    if (PipeRecord *r = find(p.uid)) {
        r->squashed = true;
        r->wrongPath = true;
    }
}

void
PipeTracer::render(std::ostream &os, std::size_t first,
                   std::size_t count) const
{
    if (records_.empty() || first >= records_.size())
        return;
    std::size_t last = std::min(records_.size(), first + count);

    Cycle base = records_[first].fetch;
    Cycle horizon = base;
    for (std::size_t i = first; i < last; ++i) {
        const PipeRecord &r = records_[i];
        for (Cycle c : {r.fetch, r.rename, r.issue, r.complete, r.retire})
            if (c != kNoCycle)
                horizon = std::max(horizon, c);
    }
    const unsigned width =
        static_cast<unsigned>(std::min<Cycle>(horizon - base + 1, 120));

    os << "cycle base " << base << "; F=fetch R=rename I=issue "
          "C=complete W=retire; '~'=predicated NOP, lowercase=squashed\n";
    for (std::size_t i = first; i < last; ++i) {
        const PipeRecord &r = records_[i];
        std::string lane(width, '.');
        auto put = [&](Cycle c, char ch) {
            if (c == kNoCycle || c < base)
                return;
            Cycle off = c - base;
            if (off < width)
                lane[static_cast<std::size_t>(off)] =
                    r.squashed
                        ? static_cast<char>(std::tolower(ch))
                        : ch;
        };
        put(r.fetch, 'F');
        put(r.rename, 'R');
        put(r.issue, 'I');
        put(r.complete, 'C');
        put(r.retire, 'W');

        os << std::setw(6) << r.uid << " " << std::setw(5) << r.pc
           << " " << lane << " ";
        if (r.predFalse)
            os << "~ ";
        if (r.mispredicted)
            os << "MISP ";
        if (r.squashed)
            os << "SQUASHED ";
        os << r.disasm << "\n";
    }
}

} // namespace wisc
