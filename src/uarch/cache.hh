/**
 * @file
 * Timing-only set-associative cache with LRU replacement, and the
 * two-level hierarchy (L1I / L1D over a unified L2 over memory) of
 * Table 2. Caches track tags only — data correctness lives in the
 * architectural memory — so speculative (wrong-path) accesses can probe
 * and allocate freely, which models wrong-path cache pollution.
 */

#ifndef WISC_UARCH_CACHE_HH_
#define WISC_UARCH_CACHE_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "uarch/params.hh"

namespace wisc {

/** One set-associative tag array with true-LRU replacement. */
class Cache
{
  public:
    Cache(const CacheParams &params, const std::string &name,
          StatSet &stats);

    /**
     * Probe-and-allocate: returns true on hit. On miss the line is
     * allocated (victim evicted by LRU). The caller charges latency.
     */
    bool access(Addr addr);

    /** Probe without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /** Invalidate everything (used between benchmark runs). */
    void reset();

    /** Serialize tag/LRU state for a warm-state checkpoint. */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

    std::uint32_t lineBytes() const { return params_.lineBytes; }
    std::uint32_t hitLatency() const { return params_.hitLatency; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr a) const { return a / params_.lineBytes; }
    std::size_t setOf(Addr line) const { return line % numSets_; }

    CacheParams params_;
    std::size_t numSets_;
    std::vector<Line> lines_; ///< numSets_ x ways, row-major
    std::uint64_t useClock_ = 0;

    Counter *hits_;
    Counter *misses_;
};

/**
 * The memory hierarchy: returns the access latency for an address at
 * each entry point, updating cache state along the way.
 */
class MemorySystem
{
  public:
    MemorySystem(const SimParams &params, StatSet &stats);

    /** Instruction fetch: L1I -> L2 -> memory. */
    unsigned fetchAccess(Addr addr);

    /** Data load: L1D -> L2 -> memory. 'now' lets a second access to a
     *  line whose fill is still in flight pay the remaining fill time
     *  instead of hitting instantly. */
    unsigned loadAccess(Addr addr, Cycle now);

    /** Data store at retirement: updates tag state; latency is absorbed
     *  by the store buffer and not returned. */
    void storeAccess(Addr addr);

    /** Would a load of this address hit in the L1D right now? */
    bool loadWouldHitL1(Addr addr) const;

    /** Pre-touch a text range into L1I/L2 (warm instruction image). */
    void warmText(Addr base, Addr bytes);

    /** Functional-warming accesses (sampled fast-forward): identical
     *  tag/LRU effect to loadAccess/storeAccess but with no fill-timing
     *  bookkeeping — the functional engine has no cycle clock, and a
     *  checkpoint taken from it starts the window with no fills in
     *  flight. */
    void warmLoad(Addr addr);
    void warmStore(Addr addr);

    /** Serialize tag/LRU state of all three caches plus the in-flight
     *  fill ledger (ready cycles are absolute, so a restore must also
     *  restore the cycle clock they were recorded under). */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

    unsigned l1dHitLatency() const;

    void reset();

  private:
    SimParams params_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    /** Data lines currently being filled: line address -> ready cycle. */
    std::map<Addr, Cycle> fillsInFlight_;
};

} // namespace wisc

#endif // WISC_UARCH_CACHE_HH_
