#include "uarch/simple_bpred.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace wisc {

namespace {

void
train2bit(std::uint8_t &ctr, bool taken)
{
    if (taken)
        satIncrement(ctr, 2);
    else
        satDecrement(ctr);
}

} // namespace

BimodalPredictor::BimodalPredictor(const SimParams &params,
                                   StatSet &stats)
{
    wisc_assert(isPow2(params.bimodalEntries),
                "bimodal table must be a power of two");
    ctrs_.assign(params.bimodalEntries, 2); // weakly taken
    (void)stats;
}

bool
BimodalPredictor::predict(std::uint32_t pc, BpredCheckpoint &ckpt)
{
    ckpt.globalHistory = hist_;
    return ctrs_[pc & (ctrs_.size() - 1)] >= 2;
}

void
BimodalPredictor::train(std::uint32_t pc, bool taken,
                        const BpredCheckpoint &)
{
    train2bit(ctrs_[pc & (ctrs_.size() - 1)], taken);
}

TwoLevelPredictor::TwoLevelPredictor(const SimParams &params,
                                     StatSet &stats)
    : histBits_(params.twoLevelHistBits)
{
    wisc_assert(isPow2(params.twoLevelEntries),
                "two-level pattern table must be a power of two");
    wisc_assert(histBits_ <= log2i(params.twoLevelEntries),
                "two-level history must fit in the pattern-table index");
    ctrs_.assign(params.twoLevelEntries, 2); // weakly taken
    (void)stats;
}

std::size_t
TwoLevelPredictor::indexOf(std::uint32_t pc, std::uint64_t hist) const
{
    std::size_t idx = ((hist & maskBits(histBits_)) <<
                       (log2i(ctrs_.size()) - histBits_)) |
                      (pc & maskBits(log2i(ctrs_.size()) - histBits_));
    return idx & (ctrs_.size() - 1);
}

bool
TwoLevelPredictor::predict(std::uint32_t pc, BpredCheckpoint &ckpt)
{
    ckpt.globalHistory = hist_;
    return ctrs_[indexOf(pc, hist_)] >= 2;
}

void
TwoLevelPredictor::train(std::uint32_t pc, bool taken,
                         const BpredCheckpoint &ckpt)
{
    // Train the entry the fetch-time history selected, not whatever
    // the (younger) speculative history now points at.
    train2bit(ctrs_[indexOf(pc, ckpt.globalHistory)], taken);
}

void
BimodalPredictor::saveState(ByteWriter &w) const
{
    w.u64(hist_);
    w.vec(ctrs_);
}

void
BimodalPredictor::restoreState(ByteReader &r)
{
    hist_ = r.u64();
    r.vec(ctrs_);
}

void
TwoLevelPredictor::saveState(ByteWriter &w) const
{
    w.u64(hist_);
    w.vec(ctrs_);
}

void
TwoLevelPredictor::restoreState(ByteReader &r)
{
    hist_ = r.u64();
    r.vec(ctrs_);
}

} // namespace wisc
