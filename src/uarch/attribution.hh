/**
 * @file
 * Cycle-attribution engine: a ProbeSink that charges every simulated
 * cycle to exactly one cause, producing a CPI stack that sums — by hard
 * assertion — to core.cycles, plus an optional per-static-branch
 * profile table.
 *
 * The paper's whole argument is an accounting argument: Figure 2
 * decomposes predication's cost into predicate-dependence and fetch
 * overhead by *re-running with features disabled*. The attribution
 * engine produces the same decomposition *inside one run*, the way
 * counter-based studies reason about real hardware. The taxonomy
 * (attrib.* counters):
 *
 *   base         cycles that retired at least one useful µop, plus
 *                no-retire cycles not claimed by a more specific cause
 *                (execution latency of the ROB head)
 *   pred_nop     cycles whose every retired µop was a predicated-FALSE
 *                NOP — predication's fetch/retire-bandwidth overhead
 *                (the NO-FETCH axis of Figure 2)
 *   pred_wait    no-retire cycles where the ROB head is un-issued and
 *                last waited on a predication-induced dependence
 *                (qualifying predicate or old destination value — the
 *                dependences the NO-DEPEND oracle removes; Figure 2's
 *                predicate-dependence axis)
 *   flush_normal, flush_wish_high, flush_loop_early, flush_loop_noexit
 *                no-retire cycles in the shadow of a pipeline flush,
 *                split by the §3.5.4 recovery cause
 *   cache_miss   no-retire cycles where the ROB head is a load with an
 *                outstanding L1D miss (or blocked at issue by the
 *                memory system)
 *   fetch_stall  no-retire cycles with an empty ROB (front end owes
 *                the machine work; I-cache misses, BTB bubbles, and
 *                post-flush refill beyond the flush shadow)
 *   rob_iq_full  no-retire cycles where rename stalled on ROB/IQ
 *                capacity and no older cause applies
 *
 * Causes are tested in the order above (a no-retire cycle in a flush
 * shadow with a missing head load is a flush cycle: the flush is the
 * older, controlling event). One cycle, one cause — the CPI stack is a
 * partition, not a co-occurrence matrix, which is what lets it sum
 * exactly to core.cycles.
 *
 * The attrib.* counters and the core.branch_profile table are
 * registered only when the engine runs (SimParams::collectAttribution /
 * collectBranchProfile), so default runs keep the golden stat set
 * bit-identical.
 */

#ifndef WISC_UARCH_ATTRIBUTION_HH_
#define WISC_UARCH_ATTRIBUTION_HH_

#include <cstdint>
#include <map>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "uarch/probe.hh"

namespace wisc {

/** Column order of the core.branch_profile StatTable. */
enum BranchProfileCol : std::size_t
{
    kBpCount = 0,   ///< dynamic retired executions
    kBpMispred,     ///< raw-predictor wrong at retire
    kBpHiCorrect,   ///< estimated high-confidence, predicted right
    kBpHiWrong,     ///< estimated high-confidence, predicted wrong
    kBpLoCorrect,   ///< estimated low-confidence, predicted right
    kBpLoWrong,     ///< estimated low-confidence, predicted wrong
    kBpFlushCycles, ///< flush-shadow cycles charged to this PC
    kBpNumCols,
};

class AttributionEngine : public ProbeSink
{
  public:
    /** Accumulates internally; nothing is registered in 'stats' until
     *  finish(), so an engine that never runs leaves no trace. */
    AttributionEngine(StatSet &stats, bool cpiStack, bool branchProfile);

    void onRetire(const RetireProbe &p) override;
    void onFlush(const FlushProbe &p) override;
    void onCycle(const CycleProbe &p) override;

    /**
     * Publish results into the StatSet and assert the invariant: the
     * CPI stack sums exactly to 'totalCycles'. Call once, after the
     * run loop, with the number of cycles *this engine observed* — for
     * a run resumed from a checkpoint that is the cycle delta, not the
     * absolute clock. Publication is additive (counters and table rows
     * use +=), so an engine covering each leg of a split run sums to
     * the uninterrupted stack.
     */
    void finish(Cycle totalCycles);

    /**
     * Checkpoint/restore the cross-cycle flush-shadow state. A flush
     * whose redirected work has not reached retirement can span a
     * drained checkpoint boundary (the squashing branch itself retired,
     * but nothing younger has); the resuming engine must keep charging
     * those cycles to the same flush cause. Accumulated counters are
     * deliberately *not* serialized — each leg publishes its own via
     * finish(). Sequence numbers in the shadow stay comparable because
     * the core checkpoints its seq allocator.
     */
    void saveShadow(ByteWriter &w) const;
    void restoreShadow(ByteReader &r);

  private:
    enum Cause : unsigned
    {
        kBase = 0,
        kPredNop,
        kPredWait,
        kFlushNormal,
        kFlushWishHigh,
        kFlushLoopEarly,
        kFlushLoopNoExit,
        kCacheMiss,
        kFetchStall,
        kRobIqFull,
        kNumCauses,
    };

    static Cause flushCauseSlot(FlushCause c);

    StatSet &stats_;
    bool cpiStack_;
    bool branchProfile_;

    std::uint64_t cycles_[kNumCauses] = {};
    std::uint64_t classified_ = 0;

    // Per-cycle retire accumulation (reset at each CycleProbe).
    unsigned retiredThisCycle_ = 0;
    unsigned retiredNopsThisCycle_ = 0;

    // Flush shadow: the newest flush whose redirected work has not yet
    // reached retirement. Cleared when a µop younger than the flushing
    // branch retires.
    bool inFlushShadow_ = false;
    FlushCause shadowCause_ = FlushCause::Normal;
    SeqNum shadowSeq_ = 0;
    std::uint32_t shadowPc_ = 0;

    struct Profile
    {
        std::uint64_t cols[kBpNumCols] = {};
    };
    std::map<std::uint32_t, Profile> profiles_;
};

} // namespace wisc

#endif // WISC_UARCH_ATTRIBUTION_HH_
