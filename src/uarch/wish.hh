/**
 * @file
 * Front-end wish-branch hardware (§3.5):
 *
 *  - the mode state machine of Figure 8 (normal / high-confidence /
 *    low-confidence), including the "target fetched" and "loop exited"
 *    exit transitions;
 *  - the predicate dependency elimination buffer (§3.5.3), extended with
 *    a decode-maintained complement map so that the complement predicate
 *    written by the same compare is predicted too (IA-64 compares write
 *    complementary pairs; Figure 3c relies on (!p1) instructions
 *    executing early when the jump is predicted not-taken);
 *  - the per-static-wish-loop last-prediction buffer used by the
 *    misprediction recovery module (§3.5.4) to distinguish early-exit,
 *    late-exit, and no-exit.
 */

#ifndef WISC_UARCH_WISH_HH_
#define WISC_UARCH_WISH_HH_

#include <array>
#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace wisc {

/** Figure 8 front-end modes. */
enum class FrontEndMode : std::uint8_t
{
    Normal,
    HighConf,
    LowConf,
};

const char *frontEndModeName(FrontEndMode m);

/** Decision returned to the fetch stage for a fetched wish branch. */
struct WishDecision
{
    /** Direction the front end should follow. */
    bool effectiveTaken = false;
    /** Mode recorded for this branch (drives recovery, §3.5.4 footnote:
     *  the mode when the branch was *fetched*). */
    FrontEndMode branchMode = FrontEndMode::Normal;
    /** Confidence estimate that produced the decision. */
    bool highConfidence = false;
};

class WishEngine
{
  public:
    WishEngine(StatSet &stats, bool loopBias);

    FrontEndMode mode() const { return mode_; }

    /** Fetch calls this for every instruction before decoding it, so the
     *  "target fetched" mode exit fires at the right point. */
    void onInstructionFetched(std::uint32_t pc);

    /**
     * Fetch calls this for each wish branch. 'predictorTaken' is the raw
     * branch predictor output, 'highConf' the confidence estimate for
     * it, and 'takenTarget' the branch's taken target.
     */
    WishDecision onWishBranch(std::uint32_t pc, WishKind kind,
                              bool predictorTaken, bool highConf,
                              std::uint32_t takenTarget);

    /** Any pipeline flush returns the front end to normal mode and
     *  clears the predicate prediction buffer. */
    void onFlush();

    /** Return every piece of engine state to its construction value
     *  (cold front end; counters are untouched). */
    void reset();

    /** Checkpoint/restore all value state: mode machine, predicate
     *  buffer, complement map, and the per-static-loop prediction /
     *  trip-count / instance tables. */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

    // --- predicate dependency elimination buffer (§3.5.3) -------------

    /** Decode notes every compare so the complement pairing is known. */
    void noteCompare(PredIdx pd, PredIdx pd2);

    /** Decode notes every predicate write; a write to a buffered
     *  predicate invalidates its entry. */
    void notePredWrite(PredIdx pd);

    /** Predicted value for a source predicate, if buffered. */
    std::optional<bool> predictedPredicate(PredIdx p) const;

    // --- wish loop last-prediction buffer (§3.5.4) ---------------------

    /** Latest front-end prediction for the static wish loop at 'pc'
     *  (false if never recorded). */
    bool lastLoopPrediction(std::uint32_t pc) const;

    /**
     * Front-end loop-instance counter: bumped every time the front end
     * predicts an exit from the static wish loop at 'pc'. The recovery
     * module compares a mispredicted branch's fetch-time instance with
     * the current one: a difference proves the front end exited the loop
     * after that branch was fetched (late exit, no flush needed). This
     * refines the paper's last-prediction buffer and fixes the footnote-8
     * exit-then-reenter misclassification, which our short kernels would
     * otherwise hit constantly.
     */
    std::uint32_t loopInstance(std::uint32_t pc) const;

  private:
    void enterLowConf(std::uint32_t pc, WishKind kind,
                      std::uint32_t pendingTarget);
    void armPredicateBuffer(PredIdx srcPred, bool value);

    FrontEndMode mode_ = FrontEndMode::Normal;
    bool lowConfFromLoop_ = false;
    std::uint32_t pendingTarget_ = 0xffffffff;

    /** Predicted value per predicate register, -1 = not buffered (the
     *  §3.5.3 special buffer). Queried for every fetched µop, so it is
     *  a flat array rather than a map. */
    std::array<std::int8_t, kNumPredRegs> predBuffer_;
    /** Complement written by the same compare, kPredNone = unknown. */
    std::array<PredIdx, kNumPredRegs> complementOf_;
    /** static wish loop pc -> last front-end prediction. */
    std::map<std::uint32_t, bool> loopLastPred_;

    /** Overestimating loop predictor state (§3.2): per static loop. */
    struct LoopTripState
    {
        std::uint32_t fetchIter = 0; ///< iterations fetched this entry
        std::uint32_t ewmaTrip4 = 0; ///< EWMA of observed trips, x4 fixed
        /** The EWMA trains on the hybrid's *first* natural exit per loop
         *  instance; suppressed exits must not feed back into it. */
        bool recordedThisInstance = false;
    };
    std::map<std::uint32_t, LoopTripState> loopTrips_;
    std::map<std::uint32_t, std::uint32_t> loopInstanceOf_;
    bool loopBias_;
    Counter *biasOverrides_;

    Counter *lowEntries_;
    Counter *highEntries_;
    /** The branch's own qp, needed when arming the buffer. Set by fetch
     *  via setBranchPredicate() before onWishBranch(). */
    PredIdx branchPred_ = 0;

  public:
    /** Fetch provides the wish branch's source predicate register just
     *  before calling onWishBranch(). */
    void setBranchPredicate(PredIdx p) { branchPred_ = p; }
};

} // namespace wisc

#endif // WISC_UARCH_WISH_HH_
