/**
 * @file
 * Probe/Sink instrumentation API: the one channel through which the
 * cycle-level core exposes microarchitectural events to observers.
 *
 * The Core emits a fixed set of probe events — µop lifecycle (fetch,
 * rename, issue, complete, retire, squash), pipeline flushes with their
 * cause, and one end-of-cycle summary — to every attached ProbeSink.
 * Sinks are pure observers: they must not mutate simulator state, so a
 * run with any combination of sinks attached produces bit-identical
 * statistics to a run with none (the golden-stat regression enforces
 * this for the detached case, tests/attribution_test for the attached
 * one).
 *
 * With no sinks attached the hot path reduces to one predictable
 * branch per event site (`if (nsinks_)`), so detached runs pay
 * essentially nothing — bench/micro_simspeed guards the budget.
 *
 * Current sinks: PipeTracer (F/R/I/C/W pipeline diagrams,
 * uarch/pipetrace.hh) and AttributionEngine (CPI stacks and per-branch
 * profiles, uarch/attribution.hh).
 */

#ifndef WISC_UARCH_PROBE_HH_
#define WISC_UARCH_PROBE_HH_

#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"
#include "uarch/wish.hh"

namespace wisc {

/** Why a pipeline flush happened (the §3.5.4 recovery taxonomy). */
enum class FlushCause : std::uint8_t
{
    /** Conventional misprediction: a normal branch, an indirect
     *  jump/return, or a wish branch the hardware treated as a normal
     *  branch (wishEnabled off never reaches the probe as wish). */
    Normal,
    /** A wish branch fetched in high-confidence (normal-branch) mode
     *  whose prediction was wrong. */
    WishHighConf,
    /** Low-confidence wish loop predicted not-taken that had to iterate
     *  again (early exit, §3.2). */
    WishLoopEarly,
    /** Low-confidence wish loop whose front end never exited the loop
     *  instance (no exit, §3.2). */
    WishLoopNoExit,
};

const char *flushCauseName(FlushCause c);

/** A µop entering the pipe (fetch, or select-half creation at rename). */
struct FetchProbe
{
    std::uint64_t uid = 0;
    std::uint32_t pc = 0;
    const Instruction *inst = nullptr;
    Cycle cycle = 0;
};

/** One µop passing a simple pipeline stage (rename/issue/complete). */
struct StageProbe
{
    std::uint64_t uid = 0;
    Cycle cycle = 0;
};

/** A µop retiring (in order). */
struct RetireProbe
{
    std::uint64_t uid = 0;
    SeqNum seq = 0;
    std::uint32_t pc = 0;
    Cycle cycle = 0;
    bool predFalse = false;    ///< retired as a predicated-FALSE NOP
    bool isCondBr = false;     ///< a retired conditional branch
    bool mispredicted = false; ///< raw predictor direction was wrong
    /** Confidence fields are valid for wish branches and, when dynamic
     *  predication is on (SimParams::dynPred != Off), for normal
     *  conditional branches outside hardware-predicated regions — the
     *  branches the hardware runs through a confidence estimator. */
    bool confValid = false;
    bool highConf = false;
    WishKind wishKind = WishKind::None;
};

/** A µop squashed on the wrong path. */
struct SquashProbe
{
    std::uint64_t uid = 0;
};

/** A pipeline flush, emitted before the squash probes of its victims. */
struct FlushProbe
{
    std::uint32_t pc = 0;  ///< the flushing branch
    SeqNum seq = 0;        ///< its sequence number (refill watermark)
    Cycle cycle = 0;
    FlushCause cause = FlushCause::Normal;
};

/**
 * End-of-cycle summary, emitted once per simulated cycle after every
 * stage has run. Retire counts are not repeated here — a sink that
 * needs them accumulates RetireProbes and treats CycleProbe as the
 * cycle boundary (AttributionEngine does exactly that).
 */
struct CycleProbe
{
    Cycle cycle = 0;
    bool robEmpty = false;      ///< nothing in flight past rename
    bool renameBlocked = false; ///< rename stalled on ROB/IQ capacity
    /** The head facts below are reported only on cycles where the
     *  retire stage stopped on an incomplete head (rather than
     *  exhausting its width or draining the ROB) — only then is the
     *  head's stall reason what limited the cycle's progress. */

    /** ROB head is an incomplete load with an outstanding L1D miss (or
     *  a load blocked at issue by memory-system congestion). */
    bool headLoadMiss = false;
    /** ROB head is incomplete and the last producer its issue waited
     *  on was a predication-induced dependence (qualifying predicate or
     *  old-destination value — exactly the dependences the NO-DEPEND
     *  oracle removes). Independent of headLoadMiss: both hold for a
     *  predicate-delayed load that then missed, and a sink chooses
     *  which cause to charge. */
    bool headPredWait = false;
};

/**
 * Observer interface. Default implementations are empty, so a sink
 * overrides only the events it cares about. Sinks must not throw and
 * must not touch simulator state; they may be attached to at most one
 * Core at a time and must outlive the run.
 */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;

    virtual void onFetch(const FetchProbe &) {}
    virtual void onRename(const StageProbe &) {}
    virtual void onIssue(const StageProbe &) {}
    virtual void onComplete(const StageProbe &) {}
    virtual void onRetire(const RetireProbe &) {}
    virtual void onSquash(const SquashProbe &) {}
    virtual void onFlush(const FlushProbe &) {}
    virtual void onCycle(const CycleProbe &) {}
};

} // namespace wisc

#endif // WISC_UARCH_PROBE_HH_
