#include "uarch/bpred.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace wisc {

namespace {

/** 2-bit saturating counter update. */
void
train2bit(std::uint8_t &ctr, bool taken)
{
    if (taken)
        satIncrement(ctr, 2);
    else
        satDecrement(ctr);
}

} // namespace

HybridPredictor::HybridPredictor(const SimParams &params, StatSet &stats)
    : params_(params)
{
    wisc_assert(isPow2(params.gshareEntries) &&
                    isPow2(params.pasHistEntries) &&
                    isPow2(params.pasPatternEntries) &&
                    isPow2(params.selectorEntries),
                "predictor tables must be powers of two");
    gshare_.assign(params.gshareEntries, 2); // weakly taken
    pasHist_.assign(params.pasHistEntries, 0);
    pasPattern_.assign(params.pasPatternEntries, 2);
    selector_.assign(params.selectorEntries, 2); // weakly prefer gshare
    (void)stats;
}

std::size_t
HybridPredictor::gshareIndex(std::uint32_t pc, std::uint64_t hist) const
{
    return (pc ^ hist) & (gshare_.size() - 1);
}

std::size_t
HybridPredictor::pasHistIndex(std::uint32_t pc) const
{
    return pc & (pasHist_.size() - 1);
}

std::size_t
HybridPredictor::pasPatternIndex(std::uint32_t pc,
                                 std::uint16_t hist) const
{
    // Concatenate local history with low pc bits (PAs: per-address
    // history, shared pattern tables).
    std::size_t idx = (static_cast<std::size_t>(hist) << 6) ^ (pc * 7);
    return idx & (pasPattern_.size() - 1);
}

std::size_t
HybridPredictor::selectorIndex(std::uint32_t pc) const
{
    return pc & (selector_.size() - 1);
}

bool
HybridPredictor::predict(std::uint32_t pc, BpredCheckpoint &ckpt)
{
    ckpt.globalHistory = hist_;
    ckpt.localHistory = pasHist_[pasHistIndex(pc)];

    bool g = gshare_[gshareIndex(pc, hist_)] >= 2;
    bool l = pasPattern_[pasPatternIndex(pc, ckpt.localHistory)] >= 2;
    ckpt.gshareTaken = g;
    ckpt.pasTaken = l;
    bool useGshare = selector_[selectorIndex(pc)] >= 2;
    return useGshare ? g : l;
}

void
HybridPredictor::updateSpeculative(std::uint32_t pc, bool predTaken)
{
    BranchPredictorBase::updateSpeculative(pc, predTaken);
    std::uint16_t &lh = pasHist_[pasHistIndex(pc)];
    lh = static_cast<std::uint16_t>(
        ((lh << 1) | (predTaken ? 1 : 0)) & maskBits(params_.pasHistBits));
}

void
HybridPredictor::train(std::uint32_t pc, bool taken,
                       const BpredCheckpoint &ckpt)
{
    // Train both components against the state they predicted with. The
    // selector is judged on the fetch-time predictions recorded in the
    // checkpoint: retires of other branches aliasing the same counters
    // have mutated them since, so (g >= 2) here is not in general the
    // prediction gshare made for this branch.
    std::uint8_t &g = gshare_[gshareIndex(pc, ckpt.globalHistory)];
    std::uint8_t &l =
        pasPattern_[pasPatternIndex(pc, ckpt.localHistory)];
    bool gCorrect = ckpt.gshareTaken == taken;
    bool lCorrect = ckpt.pasTaken == taken;

    std::uint8_t &sel = selector_[selectorIndex(pc)];
    if (gCorrect && !lCorrect)
        satIncrement(sel, 2);
    else if (!gCorrect && lCorrect)
        satDecrement(sel);

    train2bit(g, taken);
    train2bit(l, taken);
}

void
HybridPredictor::recover(std::uint32_t pc, bool actualTaken,
                         const BpredCheckpoint &ckpt)
{
    BranchPredictorBase::recover(pc, actualTaken, ckpt);
    std::uint16_t &lh = pasHist_[pasHistIndex(pc)];
    lh = static_cast<std::uint16_t>(
        ((ckpt.localHistory << 1) | (actualTaken ? 1 : 0)) &
        maskBits(params_.pasHistBits));
}

Btb::Btb(const SimParams &params, StatSet &stats)
    : sets_(params.btbSets), ways_(params.btbWays)
{
    wisc_assert(isPow2(sets_), "BTB sets must be a power of two");
    entries_.assign(static_cast<std::size_t>(sets_) * ways_, BtbEntry{});
    hits_ = &stats.counter("bpred.btb.hits");
    misses_ = &stats.counter("bpred.btb.misses");
}

std::size_t
Btb::setOf(std::uint32_t pc) const
{
    return pc & (sets_ - 1);
}

const BtbEntry *
Btb::lookup(std::uint32_t pc)
{
    BtbEntry *base = &entries_[setOf(pc) * ways_];
    ++useClock_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            base[w].lastUse = useClock_;
            ++*hits_;
            return &base[w];
        }
    }
    ++*misses_;
    return nullptr;
}

void
Btb::insert(std::uint32_t pc, std::uint32_t target, WishKind wish,
            bool isConditional)
{
    BtbEntry *base = &entries_[setOf(pc) * ways_];
    ++useClock_;
    BtbEntry *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.pc == pc) {
            victim = &e;
            break;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->wish = wish;
    victim->isConditional = isConditional;
    victim->lastUse = useClock_;
}

void
Btb::reset()
{
    entries_.assign(entries_.size(), BtbEntry{});
    useClock_ = 0;
}

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : stack_(entries, 0), tos_(entries - 1)
{
    wisc_assert(entries > 0, "RAS needs at least one entry");
}

void
ReturnAddressStack::push(std::uint32_t returnPc)
{
    // Circular: an overflowing push overwrites the oldest entry in
    // place (O(1), and — unlike a shift — slot indices stay stable, so
    // the checkpointed TOS index still names the right slot).
    tos_ = tos_ + 1 < stack_.size() ? tos_ + 1 : 0;
    stack_[tos_] = returnPc;
    if (count_ < stack_.size())
        ++count_;
}

std::uint32_t
ReturnAddressStack::pop()
{
    if (count_ == 0)
        return 0;
    std::uint32_t v = stack_[tos_];
    tos_ = tos_ > 0 ? tos_ - 1 : static_cast<unsigned>(stack_.size()) - 1;
    --count_;
    return v;
}

RasCheckpoint
ReturnAddressStack::checkpoint() const
{
    return {tos_, count_, stack_[tos_]};
}

void
ReturnAddressStack::restore(const RasCheckpoint &ckpt)
{
    tos_ = ckpt.tos;
    count_ = ckpt.count;
    // TOS-value repair: wrong-path pushes that wrapped the buffer may
    // have overwritten the checkpointed top slot.
    stack_[tos_] = ckpt.topValue;
}

IndirectTargetCache::IndirectTargetCache(unsigned entries,
                                         unsigned histBits,
                                         StatSet &stats)
    : histMask_(maskBits(histBits))
{
    wisc_assert(isPow2(entries), "indirect cache must be a power of two");
    targets_.assign(entries, 0);
    (void)stats;
}

std::size_t
IndirectTargetCache::index(std::uint32_t pc, std::uint64_t hist) const
{
    return (pc ^ ((hist & histMask_) * 0x9e3779b1u)) &
           (targets_.size() - 1);
}

std::uint32_t
IndirectTargetCache::predict(std::uint32_t pc, std::uint64_t hist) const
{
    return targets_[index(pc, hist)];
}

void
IndirectTargetCache::update(std::uint32_t pc, std::uint64_t hist,
                            std::uint32_t target)
{
    targets_[index(pc, hist)] = target;
}

// ---------------------------------------------------------------------
// Warm-state checkpointing
// ---------------------------------------------------------------------

void
HybridPredictor::saveState(ByteWriter &w) const
{
    w.u64(hist_);
    w.vec(gshare_);
    w.vec(pasHist_);
    w.vec(pasPattern_);
    w.vec(selector_);
}

void
HybridPredictor::restoreState(ByteReader &r)
{
    hist_ = r.u64();
    r.vec(gshare_);
    r.vec(pasHist_);
    r.vec(pasPattern_);
    r.vec(selector_);
}

void
Btb::saveState(ByteWriter &w) const
{
    w.u64(useClock_);
    w.vec(entries_);
}

void
Btb::restoreState(ByteReader &r)
{
    useClock_ = r.u64();
    r.vec(entries_);
}

void
ReturnAddressStack::saveState(ByteWriter &w) const
{
    w.u32(tos_);
    w.u32(count_);
    w.vec(stack_);
}

void
ReturnAddressStack::restoreState(ByteReader &r)
{
    tos_ = r.u32();
    count_ = r.u32();
    r.vec(stack_);
}

void
IndirectTargetCache::saveState(ByteWriter &w) const
{
    w.vec(targets_);
}

void
IndirectTargetCache::restoreState(ByteReader &r)
{
    r.vec(targets_);
}

} // namespace wisc
