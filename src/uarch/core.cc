#include "uarch/core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "arch/emulator.hh"
#include "common/log.hh"

namespace wisc {

namespace {

bool
isCompareOp(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU:
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
        return true;
      default:
        return false;
    }
}

bool
rangesOverlap(Addr a, unsigned asz, Addr b, unsigned bsz)
{
    return a < b + bsz && b < a + asz;
}

} // namespace

Core::Core(const SimParams &params, StatSet &stats)
    : params_(params),
      stats_(stats),
      memsys_(params, stats),
      bpred_(params, stats),
      btb_(params, stats),
      ras_(params.rasEntries),
      itc_(params.indirectEntries, stats),
      conf_(params, stats),
      udConf_(params, stats),
      wish_(stats, params.wishLoopBias)
{
    // The fetch queue models the front-end pipe itself, so it must hold
    // frontEndDelay() stages' worth of fetched µops plus a small decode
    // buffer — otherwise back-pressure would artificially restart the
    // pipe latency.
    fetchQueueCap_ = params.frontEndDelay() * params.fetchWidth +
                     2 * params.fetchWidth;

    cCycles_ = &stats.counter("core.cycles", "simulated cycles");
    cRetired_ = &stats.counter("core.retired_uops", "retired µops");
    cRetiredNops_ = &stats.counter("core.retired_pred_false",
                                   "retired with FALSE qualifying pred");
    cFetched_ = &stats.counter("core.fetched_uops",
                               "µops fetched (incl. wrong path)");
    cCondBranches_ = &stats.counter("core.cond_branches",
                                    "retired conditional branches");
    cMispredicts_ = &stats.counter("core.branch_mispredicts",
                                   "retired cond. branches whose "
                                   "prediction was wrong");
    cFlushes_ = &stats.counter("core.flushes", "pipeline flushes");
    hFetchWidth_ = &stats.histogram("core.fetch_width", params.fetchWidth,
                                    "µops delivered per fetching cycle");
    hFlushSquash_ = &stats.histogram("core.flush_squash", 64,
                                     "µops squashed per pipeline flush");
}

// ---------------------------------------------------------------------
// Dependence bookkeeping
// ---------------------------------------------------------------------

bool
Core::estimateConfidence(std::uint32_t pc, std::uint64_t hist) const
{
    return params_.confKind == ConfKind::UpDown
               ? udConf_.estimate(pc, hist)
               : conf_.estimate(pc, hist);
}

void
Core::updateConfidence(std::uint32_t pc, std::uint64_t hist, bool correct)
{
    if (params_.confKind == ConfKind::UpDown)
        udConf_.update(pc, hist, correct);
    else
        conf_.update(pc, hist, correct);
}

DynInst *
Core::findInst(SeqNum seq)
{
    if (rob_.empty() || seq == 0)
        return nullptr;
    SeqNum base = rob_.front().seq;
    if (seq < base || seq >= base + rob_.size())
        return nullptr;
    return &rob_[static_cast<std::size_t>(seq - base)];
}

const DynInst *
Core::findInst(SeqNum seq) const
{
    return const_cast<Core *>(this)->findInst(seq);
}

bool
Core::producerDone(SeqNum seq) const
{
    if (seq == 0)
        return true;
    const DynInst *p = findInst(seq);
    if (!p)
        return true; // already retired
    return p->completed && p->completeCycle <= now_;
}

/**
 * Build the dependence list and claim producer slots for a renamed µop,
 * implementing the predication mechanisms of §2.1 / §5.3.3 and the
 * NO-DEPEND oracle. Select-µop expansion is handled by the caller; this
 * models the C-style single-µop shape (selectPart == 0) or the two
 * halves (1 = compute, 2 = select).
 */
void
Core::computeDeps(DynInst &di)
{
    const Instruction &si = di.si;
    const bool noDep = params_.oracle.noDepend;
    const bool predPredicted = di.hasPredQp && si.qp != 0 && !si.isBranch();

    auto dep = [&](SeqNum s) {
        if (s != 0)
            di.deps.push_back(s);
    };
    auto depReg = [&](RegIdx r) {
        if (r != kRegZero)
            dep(regProducer_[r]);
    };
    auto depPred = [&](PredIdx p) {
        if (p != 0)
            dep(predProducer_[p]);
    };

    const bool writesReg = si.writesReg();
    const bool writesPred = si.writesPred();

    if (di.selectPart == 2) {
        // Select half: depends on the compute half (previous seq), the
        // old destination, and the predicate.
        dep(di.seq - 1);
        depReg(si.rd);
        depPred(si.qp);
        claimProducers(di);
        return;
    }

    if (si.isBranch()) {
        // A branch resolves against the *real* predicate value.
        depPred(si.qp);
        return;
    }
    if (si.op == Opcode::JmpR || si.op == Opcode::Ret) {
        depReg(si.rs1);
        return;
    }
    if (si.op == Opcode::Jmp || si.op == Opcode::Call ||
        si.op == Opcode::Halt || si.op == Opcode::Nop) {
        if (si.op == Opcode::Call)
            claimProducers(di);
        return;
    }

    if (noDep && si.qp != 0) {
        // NO-DEPEND oracle: the predicate value is known at rename.
        if (!di.step.qpTrue)
            return; // pure NOP: no deps, claims nothing
        if (si.readsRs1())
            depReg(si.rs1);
        if (si.readsRs2())
            depReg(si.rs2);
        if (si.op == Opcode::PNot || si.op == Opcode::PAnd ||
            si.op == Opcode::POr) {
            depPred(si.ps);
            if (si.op != Opcode::PNot)
                depPred(si.ps2);
        }
        claimProducers(di);
        return;
    }

    if (predPredicted) {
        // §3.5.3: the qualifying predicate is predicted; the µop is
        // shaped as if the predicate were already resolved.
        if (di.predQpVal) {
            if (si.readsRs1())
                depReg(si.rs1);
            if (si.readsRs2())
                depReg(si.rs2);
        } else {
            // Predicted FALSE: a register move of the old destination
            // (or an old-value pass-through for predicate writes).
            if (writesReg)
                depReg(si.rd);
            if (writesPred && !si.unc) {
                depPred(si.pd);
                depPred(si.pd2);
            }
        }
        claimProducers(di);
        return;
    }

    // Baseline C-style conditional expression (§2.1): the µop reads its
    // sources, the predicate, and — when guarded — the old destination.
    if (si.readsRs1())
        depReg(si.rs1);
    if (si.readsRs2())
        depReg(si.rs2);
    if (di.selectPart == 0)
        depPred(si.qp);
    if (si.qp != 0 && di.selectPart == 0) {
        if (writesReg)
            depReg(si.rd); // old destination value
        if (writesPred && !si.unc) {
            depPred(si.pd);
            depPred(si.pd2);
        }
    }
    if (si.op == Opcode::PNot || si.op == Opcode::PAnd ||
        si.op == Opcode::POr) {
        depPred(si.ps);
        if (si.op != Opcode::PNot)
            depPred(si.ps2);
    }

    if (di.selectPart == 1)
        return; // compute half claims nothing
    claimProducers(di);
}

void
Core::claimProducers(DynInst &di)
{
    const Instruction &si = di.si;
    if (si.writesReg() && si.rd != kRegZero) {
        di.prevRegProducer = regProducer_[si.rd];
        di.claimedReg = si.rd;
        di.claimsReg = true;
        regProducer_[si.rd] = di.seq;
    }
    if (si.writesPred()) {
        unsigned slot = 0;
        for (PredIdx p : {si.pd, si.pd2}) {
            if (p != kPredNone) {
                di.prevPredProducer[slot] = predProducer_[p];
                di.claimedPred[slot] = p;
                predProducer_[p] = di.seq;
            }
            ++slot;
        }
    }
}

bool
Core::depsReady(const DynInst &di) const
{
    for (SeqNum s : di.deps)
        if (!producerDone(s))
            return false;
    return true;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Core::fetchOne(std::uint32_t idx)
{
    wish_.onInstructionFetched(idx);

    DynInst di;
    di.pc = idx;
    di.uid = nextUid_++;
    di.fetchCycle = now_;
    di.si = prog_->code()[idx];
    di.undoStart = undo_.mark();
    di.step = executeInst(di.si, idx, codeSize_, state_, &undo_);
    di.undoEnd = undo_.mark();
    di.renameReady = now_ + params_.frontEndDelay();
    di.isCtrl = di.si.isControl();
    di.memAddr = di.step.memAddr;
    di.memSize = di.step.memSize;
    di.isMemOp = di.si.isMem();
    di.memSkipped = di.isMemOp && !di.step.qpTrue;

    // Predicate-prediction capture and buffer maintenance (decode-side
    // structures, §3.5.3), strictly in fetch order.
    if (params_.wishEnabled && di.si.qp != 0) {
        auto v = wish_.predictedPredicate(di.si.qp);
        if (v) {
            di.hasPredQp = true;
            di.predQpVal = *v;
        }
    }
    if (isCompareOp(di.si.op))
        wish_.noteCompare(di.si.pd, di.si.pd2);
    if (di.si.writesPred()) {
        wish_.notePredWrite(di.si.pd);
        wish_.notePredWrite(di.si.pd2);
    }

    if (di.isCtrl)
        processControl(di);
    else
        fetchPc_ = idx + 1;

    if (di.step.halted)
        fetchHalted_ = true;

    ++*cFetched_;
    if (tracer_)
        tracer_->onFetch(di.uid, di.pc, di.si, now_);
    fetchQueue_.push_back(std::move(di));
}

void
Core::processControl(DynInst &di)
{
    const Instruction &si = di.si;
    const std::uint32_t idx = di.pc;
    const auto &oracle = params_.oracle;

    switch (si.op) {
      case Opcode::Br: {
        bool predictorTaken = bpred_.predict(idx, di.ckpt);
        bool effective;

        if (oracle.perfectCBP) {
            predictorTaken = di.step.taken;
            effective = di.step.taken;
            di.highConf = true;
            di.fetchMode = FrontEndMode::Normal;
        } else if (params_.wishEnabled && si.wish != WishKind::None) {
            bool highConf =
                oracle.perfectConfidence
                    ? (predictorTaken == di.step.taken)
                    : estimateConfidence(idx, di.ckpt.globalHistory);
            wish_.setBranchPredicate(si.qp);
            WishDecision d = wish_.onWishBranch(idx, si.wish,
                                                predictorTaken, highConf,
                                                si.target);
            effective = d.effectiveTaken;
            di.fetchMode = d.branchMode;
            di.highConf = d.highConfidence;
        } else {
            effective = predictorTaken;
            di.fetchMode = FrontEndMode::Normal;
        }

        di.predictorTaken = predictorTaken;
        di.predictedTaken = effective;
        di.predictedTarget = effective ? si.target : idx + 1;
        if (si.wish == WishKind::Loop)
            di.loopInstance = wish_.loopInstance(idx);
        bpred_.updateSpeculative(idx, effective);

        // BTB: a predicted-taken branch that misses costs a small
        // redirect bubble (the target is unknown until decode).
        const BtbEntry *e = btb_.lookup(idx);
        if (!e && effective)
            fetchStallUntil_ = now_ + 2;
        btb_.insert(idx, si.target, si.wish, true);

        fetchPc_ = di.predictedTarget;
        break;
      }
      case Opcode::Jmp:
      case Opcode::Call: {
        di.predictedTaken = true;
        di.predictedTarget = si.target;
        if (!btb_.lookup(idx))
            fetchStallUntil_ = now_ + 2;
        btb_.insert(idx, si.target, WishKind::None, false);
        if (si.op == Opcode::Call)
            ras_.push(idx + 1);
        fetchPc_ = si.target;
        break;
      }
      case Opcode::Ret: {
        std::uint32_t tgt = ras_.pop();
        if (oracle.perfectCBP)
            tgt = di.step.nextIndex;
        if (tgt == 0 || tgt >= codeSize_)
            tgt = idx + 1;
        di.predictedTaken = true;
        di.predictedTarget = tgt;
        fetchPc_ = tgt;
        break;
      }
      case Opcode::JmpR: {
        di.ckpt.globalHistory = bpred_.globalHistory();
        std::uint32_t tgt =
            itc_.predict(idx, di.ckpt.globalHistory);
        if (oracle.perfectCBP)
            tgt = di.step.nextIndex;
        if (tgt == 0 || tgt >= codeSize_)
            tgt = idx + 1;
        di.predictedTaken = true;
        di.predictedTarget = tgt;
        fetchPc_ = tgt;
        break;
      }
      default:
        wisc_panic("processControl on non-control op");
    }

    di.rasTop = ras_.top();
}

void
Core::stageFetch()
{
    if (fetchHalted_ || now_ < fetchStallUntil_)
        return;
    if (fetchQueue_.size() >= fetchQueueCap_)
        return;
    if (fetchPc_ >= codeSize_) {
        fetchHalted_ = true; // only a flush can redirect us
        return;
    }

    // One I-cache line per cycle; a miss stalls until the fill.
    unsigned lat = memsys_.fetchAccess(instAddr(fetchPc_));
    if (lat > params_.il1.hitLatency) {
        fetchStallUntil_ = now_ + lat;
        return;
    }
    const Addr lineMask = ~(static_cast<Addr>(params_.il1.lineBytes) - 1);
    const Addr startLine = instAddr(fetchPc_) & lineMask;

    unsigned slots = params_.fetchWidth;
    unsigned condBrs = 0;
    unsigned processed = 0;

    while (slots > 0 && processed < params_.fetchWidth * 4) {
        if (fetchHalted_ || now_ < fetchStallUntil_)
            break;
        if (fetchPc_ >= codeSize_) {
            fetchHalted_ = true;
            break;
        }
        if ((instAddr(fetchPc_) & lineMask) != startLine)
            break;
        if (fetchQueue_.size() >= fetchQueueCap_)
            break;

        std::uint32_t idx = fetchPc_;
        const Instruction &si = prog_->code()[idx];
        if (si.op == Opcode::Br) {
            if (condBrs >= params_.maxCondBrPerFetch)
                break;
            ++condBrs;
        }

        ++processed;
        fetchOne(idx);
        const DynInst &di = fetchQueue_.back();

        // NO-FETCH oracle: predicated-FALSE µops cost no bandwidth and
        // are dropped from the pipe entirely (except unconditional
        // compares, whose clearing writes are architectural).
        bool elide = params_.oracle.noFetch && !di.step.qpTrue &&
                     !di.isCtrl &&
                     !(di.si.unc && di.si.writesPred());
        if (elide) {
            fetchQueue_.pop_back();
            continue;
        }

        --slots;
        // Fetch ends at the first predicted-taken control transfer.
        if (di.isCtrl && di.predictedTaken)
            break;
        if (di.step.halted)
            break;
    }
    hFetchWidth_->sample(params_.fetchWidth - slots);
}

// ---------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------

void
Core::stageRename()
{
    unsigned renamed = 0;
    while (renamed < params_.decodeWidth && !fetchQueue_.empty()) {
        DynInst &front = fetchQueue_.front();
        if (front.renameReady > now_)
            break;

        const bool expand =
            params_.predMech == PredMechanism::SelectUop &&
            front.si.qp != 0 && front.si.writesReg() &&
            !front.si.isBranch() && !params_.oracle.noDepend &&
            !front.hasPredQp;
        const unsigned need = expand ? 2 : 1;

        if (rob_.size() + need > params_.robSize ||
            iq_.size() + need > params_.iqSize)
            break;

        DynInst di = std::move(front);
        fetchQueue_.pop_front();

        if (expand) {
            // Compute half: executes the operation unconditionally into
            // a temporary; carries the memory access.
            DynInst a = di;
            a.seq = nextSeq_++;
            a.selectPart = 1;
            if (a.si.isStore() && !a.memSkipped)
                storeSeqs_.push_back(a.seq);
            a.undoEnd = a.undoStart; // effects commit with the select
            computeDeps(a);
            a.inIQ = true;
            iq_.push_back(a.seq);
            rob_.push_back(std::move(a));

            // Select half: picks new vs old value once the predicate
            // resolves; owns the architectural effects.
            DynInst b = std::move(di);
            b.seq = nextSeq_++;
            b.uid = nextUid_++; // the select half is a distinct µop
            b.selectPart = 2;
            b.isMemOp = false;
            b.memSize = 0;
            computeDeps(b);
            b.inIQ = true;
            iq_.push_back(b.seq);
            if (tracer_) {
                tracer_->onFetch(b.uid, b.pc, b.si, b.fetchCycle);
                tracer_->onRename(rob_.back().uid, now_);
                tracer_->onRename(b.uid, now_);
            }
            rob_.push_back(std::move(b));
            renamed += 2;
            continue;
        }

        di.seq = nextSeq_++;
        computeDeps(di);
        di.inIQ = true;
        if (tracer_)
            tracer_->onRename(di.uid, now_);
        if (di.si.isStore() && !di.memSkipped)
            storeSeqs_.push_back(di.seq);
        iq_.push_back(di.seq);
        rob_.push_back(std::move(di));
        ++renamed;
    }
}

// ---------------------------------------------------------------------
// Issue and execute
// ---------------------------------------------------------------------

unsigned
Core::loadLatency(const DynInst &di)
{
    // Forwarding was already decided at issue; this is a real access.
    return memsys_.loadAccess(di.memAddr, now_);
}

void
Core::stageIssue()
{
    unsigned issued = 0;
    unsigned memPorts = 0;

    for (std::size_t i = 0;
         i < iq_.size() && issued < params_.issueWidth; ++i) {
        DynInst *di = findInst(iq_[i]);
        wisc_assert(di && di->inIQ, "stale IQ entry");
        if (di->issued)
            continue;
        if (!depsReady(*di))
            continue;

        bool isLoad = di->si.isLoad() && !di->memSkipped &&
                      di->selectPart != 2;
        bool isStore = di->si.isStore() && !di->memSkipped;
        if ((isLoad || isStore) &&
            memPorts >= params_.memPortsPerCycle)
            continue;

        // Loads must wait for older overlapping stores' data, and a
        // missing load needs a free MSHR.
        bool forwarded = false;
        if (isLoad) {
            bool blocked = false;
            for (auto it = storeSeqs_.rbegin(); it != storeSeqs_.rend();
                 ++it) {
                if (*it >= di->seq)
                    continue;
                const DynInst *s = findInst(*it);
                if (!s)
                    break; // already retired: memory is up to date
                if (rangesOverlap(s->memAddr, s->memSize, di->memAddr,
                                  di->memSize)) {
                    if (!(s->completed && s->completeCycle <= now_))
                        blocked = true;
                    else
                        forwarded = true;
                    break; // youngest older overlapping store decides
                }
            }
            if (blocked)
                continue;
            if (!forwarded && !memsys_.loadWouldHitL1(di->memAddr)) {
                // MSHR check: count misses still in flight.
                unsigned inflight = 0;
                for (Cycle c : outstandingMisses_)
                    if (c > now_)
                        ++inflight;
                if (inflight >= params_.maxOutstandingMisses)
                    continue;
            }
        }

        unsigned lat;
        if (isLoad) {
            lat = forwarded ? params_.latStoreForward : loadLatency(*di);
            if (!forwarded && lat > memsys_.l1dHitLatency()) {
                // Track the miss for MSHR accounting; reuse stale slots.
                bool reused = false;
                for (Cycle &c : outstandingMisses_) {
                    if (c <= now_) {
                        c = now_ + lat;
                        reused = true;
                        break;
                    }
                }
                if (!reused)
                    outstandingMisses_.push_back(now_ + lat);
            }
            ++memPorts;
        } else if (isStore) {
            lat = params_.latAlu;
            ++memPorts;
        } else {
            switch (di->si.instrClass()) {
              case InstrClass::IntMul: lat = params_.latMul; break;
              case InstrClass::IntDiv: lat = params_.latDiv; break;
              case InstrClass::Branch: lat = params_.latBranch; break;
              case InstrClass::Load: // predicated-off load: a move
              case InstrClass::Store:
              case InstrClass::IntAlu:
              case InstrClass::Other:
              default: lat = params_.latAlu; break;
            }
        }

        di->issued = true;
        di->completeCycle = now_ + lat;
        events_.push({di->completeCycle, di->seq, di->uid});
        if (tracer_)
            tracer_->onIssue(di->uid, now_);
        ++issued;
    }
}

// ---------------------------------------------------------------------
// Completion and branch resolution
// ---------------------------------------------------------------------

void
Core::stageComplete()
{
    while (!events_.empty() && events_.top().cycle <= now_) {
        Event ev = events_.top();
        events_.pop();
        DynInst *di = findInst(ev.seq);
        if (!di || di->uid != ev.uid || !di->issued || di->completed)
            continue; // squashed (or stale event for a reused seq)
        Cycle cyc = ev.cycle;
        di->completed = true;
        di->completeCycle = cyc;
        di->inIQ = false;
        if (tracer_)
            tracer_->onComplete(di->uid, cyc);

        if (di->isCtrl)
            resolveBranch(*di);

        // A flush inside resolveBranch may have squashed younger events;
        // they are dropped lazily by the findInst check above.
    }

    // Compact the issue queue: drop completed entries.
    iq_.erase(std::remove_if(iq_.begin(), iq_.end(),
                             [&](SeqNum s) {
                                 const DynInst *p = findInst(s);
                                 return !p || p->completed;
                             }),
              iq_.end());
}

void
Core::resolveBranch(DynInst &di)
{
    const Instruction &si = di.si;

    if (si.op == Opcode::Jmp || si.op == Opcode::Call)
        return; // direct and unconditional: resolved at fetch

    if (si.op == Opcode::JmpR || si.op == Opcode::Ret) {
        std::uint32_t actual = di.step.nextIndex;
        di.mispredicted = di.predictedTarget != actual;
        if (di.mispredicted)
            flushAfter(di, actual, true);
        return;
    }

    // Conditional branch.
    const bool actual = di.step.taken;
    di.mispredicted = di.predictorTaken != actual;
    const bool effectiveWrong = di.predictedTaken != actual;
    if (!effectiveWrong) {
        if (si.wish == WishKind::Loop &&
            di.fetchMode == FrontEndMode::LowConf)
            di.loopOutcome = LoopOutcome::Correct;
        return;
    }

    const bool isWish = params_.wishEnabled && si.wish != WishKind::None;
    if (!isWish || di.fetchMode != FrontEndMode::LowConf) {
        // Normal branch, or a wish branch fetched in high-confidence
        // mode: flush, exactly like a conventional misprediction.
        flushAfter(di, di.step.nextIndex, true);
        return;
    }

    // Low-confidence wish branch mispredictions (§3.5.4).
    if (si.wish == WishKind::Jump || si.wish == WishKind::Join) {
        // The predicated fall-through path is architecturally correct:
        // no pipeline flush (the whole point of wish branches).
        return;
    }

    // Wish loop classification.
    if (actual) {
        // Predicted not-taken but the loop must iterate again.
        di.loopOutcome = LoopOutcome::EarlyExit;
        flushAfter(di, di.step.nextIndex, true);
    } else if (wish_.loopInstance(di.pc) != di.loopInstance) {
        // The front end has exited this loop instance since the branch
        // was fetched: the over-fetched iterations drain as predicated
        // NOPs. No flush.
        di.loopOutcome = LoopOutcome::LateExit;
    } else {
        // The front end is still fetching the loop body.
        di.loopOutcome = LoopOutcome::NoExit;
        flushAfter(di, di.step.nextIndex, true);
    }
}

void
Core::flushAfter(const DynInst &branch, std::uint32_t redirectPc,
                 bool recoverBpred)
{
    ++*cFlushes_;
    std::size_t squashed = fetchQueue_.size();

    // Everything in the fetch queue is younger than anything renamed.
    if (tracer_)
        for (const DynInst &di : fetchQueue_)
            tracer_->onSquash(di.uid);
    fetchQueue_.clear();

    // Squash renamed µops younger than the branch, restoring the rename
    // producer chains newest-first.
    while (!rob_.empty() && rob_.back().seq > branch.seq) {
        DynInst &di = rob_.back();
        if (tracer_)
            tracer_->onSquash(di.uid);
        if (di.claimsReg)
            regProducer_[di.claimedReg] = di.prevRegProducer;
        for (unsigned s = 0; s < 2; ++s)
            if (di.claimedPred[s] != kPredNone)
                predProducer_[di.claimedPred[s]] =
                    di.prevPredProducer[s];
        rob_.pop_back();
        ++squashed;
    }
    nextSeq_ = branch.seq + 1;
    hFlushSquash_->sample(squashed);

    iq_.erase(std::remove_if(iq_.begin(), iq_.end(),
                             [&](SeqNum s) { return s > branch.seq; }),
              iq_.end());
    storeSeqs_.erase(std::remove_if(storeSeqs_.begin(), storeSeqs_.end(),
                                    [&](SeqNum s) {
                                        return s > branch.seq;
                                    }),
                     storeSeqs_.end());

    // Roll speculative architectural state back to just after the
    // branch executed.
    undo_.rollbackTo(branch.undoEnd, state_);

    if (recoverBpred && branch.si.op == Opcode::Br)
        bpred_.recover(branch.pc, branch.step.taken, branch.ckpt);
    ras_.restore(branch.rasTop);
    wish_.onFlush();

    fetchPc_ = redirectPc;
    fetchHalted_ = false;
    fetchStallUntil_ = now_ + 1;
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

void
Core::stageRetire()
{
    unsigned retired = 0;
    while (retired < params_.retireWidth && !rob_.empty()) {
        DynInst &di = rob_.front();
        if (!di.completed || di.completeCycle > now_)
            break;

        const Instruction &si = di.si;

        if (si.op == Opcode::Br) {
            ++*cCondBranches_;
            bpred_.train(di.pc, di.step.taken, di.ckpt);
            if (di.mispredicted)
                ++*cMispredicts_;
            if (params_.wishEnabled && si.wish != WishKind::None) {
                updateConfidence(di.pc, di.ckpt.globalHistory,
                                 !di.mispredicted);
                retireWishStats(di);
            }
        } else if (si.op == Opcode::JmpR) {
            itc_.update(di.pc, di.ckpt.globalHistory,
                        di.step.nextIndex);
            if (di.mispredicted)
                ++*cMispredicts_;
        } else if (si.op == Opcode::Ret && di.mispredicted) {
            ++*cMispredicts_;
        }

        if (si.isStore() && !di.memSkipped) {
            if (di.selectPart != 1)
                memsys_.storeAccess(di.memAddr);
            if (!storeSeqs_.empty() && storeSeqs_.front() == di.seq)
                storeSeqs_.erase(storeSeqs_.begin());
        }

        undo_.commitTo(di.undoEnd);

        if (!di.step.qpTrue)
            ++*cRetiredNops_;
        ++retiredUops_;
        ++*cRetired_;

        if (tracer_)
            tracer_->onRetire(di.uid, now_, !di.step.qpTrue,
                              di.mispredicted);

        bool halt = di.step.halted;
        rob_.pop_front();
        ++retired;
        if (halt) {
            haltRetired_ = true;
            break;
        }
    }
}

void
Core::retireWishStats(const DynInst &di)
{
    const char *kind = nullptr;
    switch (di.si.wish) {
      case WishKind::Jump: kind = "jump"; break;
      case WishKind::Join: kind = "join"; break;
      case WishKind::Loop: kind = "loop"; break;
      case WishKind::None: return;
    }

    std::string base = std::string("wish.") + kind + ".";
    bool low = di.fetchMode == FrontEndMode::LowConf;
    base += low ? "low." : "high.";

    if (di.si.wish == WishKind::Loop && low) {
        switch (di.loopOutcome) {
          case LoopOutcome::Correct:
            ++stats_.counter(base + "correct");
            break;
          case LoopOutcome::EarlyExit:
            ++stats_.counter(base + "early_exit");
            break;
          case LoopOutcome::LateExit:
            ++stats_.counter(base + "late_exit");
            break;
          case LoopOutcome::NoExit:
            ++stats_.counter(base + "no_exit");
            break;
          case LoopOutcome::NotApplicable:
            // A low-confidence loop branch that resolved in the
            // predicted direction.
            ++stats_.counter(base + "correct");
            break;
        }
        return;
    }
    ++stats_.counter(base +
                     (di.mispredicted ? "mispred" : "correct"));
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

SimResult
Core::run(const Program &prog)
{
    prog.validate();
    prog_ = &prog;
    codeSize_ = static_cast<std::uint32_t>(prog.size());

    state_.reset();
    state_.loadData(prog);
    fetchPc_ = prog.entry();
    fetchHalted_ = false;
    fetchStallUntil_ = 0;
    now_ = 0;
    haltRetired_ = false;
    retiredUops_ = 0;
    fetchQueue_.clear();
    rob_.clear();
    iq_.clear();
    while (!events_.empty())
        events_.pop();
    std::fill(std::begin(regProducer_), std::end(regProducer_), 0);
    std::fill(std::begin(predProducer_), std::end(predProducer_), 0);
    outstandingMisses_.clear();
    storeSeqs_.clear();

    // Warm the instruction image: our kernels fit comfortably in the
    // 64 KB L1I, so a cold-start I-cache would only add noise.
    memsys_.warmText(kTextBase, codeSize_ * kInstBytes);

    const bool trace = getenv("WISC_TRACE") != nullptr;
    while (!haltRetired_ && now_ < params_.maxCycles &&
           retiredUops_ < params_.maxRetired) {
        stageRetire();
        if (haltRetired_)
            break;
        stageComplete();
        stageIssue();
        stageRename();
        stageFetch();
        if (trace)
            fprintf(stderr, "c%llu fq=%zu rob=%zu iq=%zu fpc=%u stall=%llu\n",
                    (unsigned long long)now_, fetchQueue_.size(), rob_.size(),
                    iq_.size(), fetchPc_, (unsigned long long)fetchStallUntil_);
        ++now_;
        ++*cCycles_;
    }

    SimResult res;
    res.halted = haltRetired_;
    res.cycles = now_;
    res.retiredUops = retiredUops_;
    res.resultReg = state_.readReg(4);
    res.memFingerprint = state_.mem().fingerprint();

    if (params_.checkFinalState && res.halted) {
        Emulator ref;
        EmuResult er = ref.run(prog);
        wisc_assert(er.halted, "reference emulation did not halt");
        wisc_assert(er.resultReg == res.resultReg,
                    "timing/functional result mismatch: ",
                    res.resultReg, " vs ", er.resultReg);
        wisc_assert(er.memFingerprint == res.memFingerprint,
                    "timing/functional memory mismatch");
    }
    return res;
}

SimResult
simulate(const Program &prog, const SimParams &params, StatSet &stats)
{
    Core core(params, stats);
    return core.run(prog);
}

} // namespace wisc
