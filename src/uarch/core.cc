#include "uarch/core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "uarch/attribution.hh"

namespace wisc {

namespace {

bool
rangesOverlap(Addr a, unsigned asz, Addr b, unsigned bsz)
{
    return a < b + bsz && b < a + asz;
}

/** First and last 8-byte-aligned word touched by [addr, addr+size). */
inline Addr
firstWord(Addr addr)
{
    return addr >> 3;
}

inline Addr
lastWord(Addr addr, unsigned size)
{
    return (addr + size - 1) >> 3;
}

} // namespace

Core::Core(const SimParams &params, StatSet &stats)
    : params_(params),
      stats_(stats),
      memsys_(params, stats),
      bpred_(makeBranchPredictor(params, stats)),
      btb_(params, stats),
      ras_(params.rasEntries),
      itc_(params.indirectEntries, params.indirectHistBits, stats),
      conf_(makeConfidenceEstimator(params, stats, *bpred_)),
      wish_(stats, params.wishLoopBias),
      merge_(params.dynMergeEntries, params.dynMergeTrackUops)
{
    // The fetch queue models the front-end pipe itself, so it must hold
    // frontEndDelay() stages' worth of fetched µops plus a small decode
    // buffer — otherwise back-pressure would artificially restart the
    // pipe latency.
    fetchQueueCap_ = params.frontEndDelay() * params.fetchWidth +
                     2 * params.fetchWidth;

    // A dynamically predicated region must be able to rename fully into
    // the scheduler: the trigger cannot complete (and thus nothing past
    // it can retire) until the region finishes fetching, so trigger +
    // region must fit in the IQ and the ROB with room to spare.
    dynRegionCap_ = params.dynMaxRegionUops;
    dynRegionCap_ = std::min(
        dynRegionCap_, params.iqSize > 2 ? params.iqSize - 2 : 1u);
    dynRegionCap_ = std::min(
        dynRegionCap_, params.robSize > 2 ? params.robSize / 2 : 1u);

    if (params.dynPred != DynPredMode::Off) {
        dynTriggers_ = &stats.counter(
            "dyn.triggers", "low-confidence branches converted to "
                            "dynamically predicated regions");
        dynRegionUops_ = &stats.counter(
            "dyn.region_uops", "µops fetched inside dynamically "
                               "predicated regions");
        dynNullifiedUops_ = &stats.counter(
            "dyn.nullified_uops", "region µops off the real path "
                                  "(retired as predicated NOPs)");
        dynSuccess_ = &stats.counter(
            "dyn.region_success", "regions whose real control flow "
                                  "reconverged at the predicted merge "
                                  "point");
        dynFailed_ = &stats.counter(
            "dyn.region_failed", "regions that missed the merge point "
                                 "and flushed like a misprediction");
        dynSavedFlushes_ = &stats.counter(
            "dyn.saved_flushes", "successful regions whose trigger was "
                                 "mispredicted (a flush predication "
                                 "avoided)");
        dynFetchGates_ = &stats.counter(
            "dyn.fetch_gates", "fetch stalls injected on "
                               "low-confidence branches (FetchGate)");
    }

    cCycles_ = &stats.counter("core.cycles", "simulated cycles");
    cRetired_ = &stats.counter("core.retired_uops", "retired µops");
    cRetiredNops_ = &stats.counter("core.retired_pred_false",
                                   "retired with FALSE qualifying pred");
    cFetched_ = &stats.counter("core.fetched_uops",
                               "µops fetched (incl. wrong path)");
    cCondBranches_ = &stats.counter("core.cond_branches",
                                    "retired conditional branches");
    cMispredicts_ = &stats.counter("core.branch_mispredicts",
                                   "retired cond. branches whose "
                                   "prediction was wrong");
    cFlushes_ = &stats.counter("core.flushes", "pipeline flushes");
    hFetchWidth_ = &stats.histogram("core.fetch_width", params.fetchWidth,
                                    "µops delivered per fetching cycle");
    hFlushSquash_ = &stats.histogram("core.flush_squash", 64,
                                     "µops squashed per pipeline flush");
}

// ---------------------------------------------------------------------
// Probe emission
// ---------------------------------------------------------------------

void
Core::addSink(ProbeSink *s)
{
    wisc_assert(s != nullptr, "addSink(nullptr)");
    wisc_assert(nsinks_ < kMaxSinks, "too many probe sinks attached");
    sinks_[nsinks_++] = s;
}

void
Core::emitFetch(const DynInst &di, Cycle c)
{
    FetchProbe p{di.uid, di.pc, di.inst, c};
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onFetch(p);
}

void
Core::emitRename(const DynInst &di)
{
    StageProbe p{di.uid, now_};
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onRename(p);
}

void
Core::emitIssue(const DynInst &di)
{
    StageProbe p{di.uid, now_};
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onIssue(p);
}

void
Core::emitComplete(const DynInst &di, Cycle c)
{
    StageProbe p{di.uid, c};
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onComplete(p);
}

void
Core::emitRetire(const DynInst &di)
{
    const Instruction &si = *di.inst;
    RetireProbe p;
    p.uid = di.uid;
    p.seq = di.seq;
    p.pc = di.pc;
    p.cycle = now_;
    p.predFalse = !di.step.qpTrue;
    p.isCondBr = si.op == Opcode::Br;
    p.mispredicted = di.mispredicted;
    p.confValid =
        p.isCondBr &&
        ((params_.wishEnabled && si.wish != WishKind::None) ||
         (params_.dynPred != DynPredMode::Off && !di.dynRegion));
    p.highConf = di.highConf;
    p.wishKind = si.wish;
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onRetire(p);
}

void
Core::emitSquash(const DynInst &di)
{
    SquashProbe p{di.uid};
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onSquash(p);
}

void
Core::emitFlush(const DynInst &branch, FlushCause cause)
{
    FlushProbe p{branch.pc, branch.seq, now_, cause};
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onFlush(p);
}

void
Core::emitCycle()
{
    CycleProbe p;
    p.cycle = now_;
    p.robEmpty = rob_.empty();
    p.renameBlocked = renameBlocked_;
    // The head facts are reported only when retirement actually
    // stopped on the head this cycle (not when it exhausted its width
    // or drained the ROB): only then is the head's stall reason what
    // limited the cycle. Retirement runs first in the cycle, so the
    // blocking µop is still rob_.front() here.
    if (retireStalledOnHead_ && !rob_.empty()) {
        const DynInst &h = rob_.front();
        const bool isLoad =
            h.isLoadOp() && !h.memSkipped && h.selectPart != 2;
        // The head's producers have all completed (they are older and
        // retirement is in order), so it is never *currently* waiting;
        // report instead whether the last producer its issue waited on
        // was a predication-induced dependence. Both facts can hold at
        // once (a predicate-delayed load that then missed) —
        // prioritizing is the sink's job.
        p.headLoadMiss = isLoad && (h.l1Missed || !h.issued);
        p.headPredWait = h.lastWaitPred;
    }
    for (unsigned i = 0; i < nsinks_; ++i)
        sinks_[i]->onCycle(p);
}

// ---------------------------------------------------------------------
// Dependence bookkeeping
// ---------------------------------------------------------------------

bool
Core::estimateConfidence(std::uint32_t pc, std::uint64_t hist) const
{
    return conf_->estimate(pc, hist);
}

void
Core::updateConfidence(std::uint32_t pc, std::uint64_t hist, bool correct)
{
    conf_->update(pc, hist, correct);
}

DynInst *
Core::findInst(SeqNum seq)
{
    if (rob_.empty() || seq == 0)
        return nullptr;
    SeqNum base = rob_.front().seq;
    if (seq < base || seq >= base + rob_.size())
        return nullptr;
    return &rob_[static_cast<std::size_t>(seq - base)];
}

const DynInst *
Core::findInst(SeqNum seq) const
{
    return const_cast<Core *>(this)->findInst(seq);
}

bool
Core::producerDone(SeqNum seq) const
{
    if (seq == 0)
        return true;
    const DynInst *p = findInst(seq);
    if (!p)
        return true; // already retired
    return p->completed && p->completeCycle <= now_;
}

/**
 * Build the dependence list and claim producer slots for a renamed µop,
 * implementing the predication mechanisms of §2.1 / §5.3.3 and the
 * NO-DEPEND oracle. Select-µop expansion is handled by the caller; this
 * models the C-style single-µop shape (selectPart == 0) or the two
 * halves (1 = compute, 2 = select).
 */
void
Core::computeDeps(DynInst &di)
{
    const Instruction &si = *di.inst;
    const bool noDep = params_.oracle.noDepend;
    const bool predPredicted = di.hasPredQp && si.qp != 0 && !di.isCondBr();

    // 'pred' marks a predication-induced dependence (qualifying
    // predicate / old destination) in predDepMask for attribution.
    auto dep = [&](SeqNum s, bool pred = false) {
        if (s != 0) {
            wisc_assert(di.numDeps < kMaxDeps,
                        "µop exceeds kMaxDeps producers");
            if (pred)
                di.predDepMask |= static_cast<std::uint8_t>(1u << di.numDeps);
            di.deps[di.numDeps++] = s;
        }
    };
    auto depReg = [&](RegIdx r, bool pred = false) {
        if (r != kRegZero)
            dep(regProducer_[r], pred);
    };
    auto depPred = [&](PredIdx p, bool pred = false) {
        if (p != 0)
            dep(predProducer_[p], pred);
    };

    const bool writesReg = di.writesReg();
    const bool writesPred = di.writesPred();

    if (di.dynRegion) {
        // Dynamically predicated region µop: the trigger branch stands
        // in for a qualifying predicate over the whole region, so every
        // region µop — on or off the real path — carries a
        // predication-induced dependence on it plus the baseline
        // C-style shape with a *forced* old-destination dependence
        // (until the trigger resolves, the hardware cannot know which
        // side of the hammock is real). If the trigger already retired
        // (it resolved while these µops sat in the fetch queue), the
        // producer lookup sees it as done, exactly like any retired
        // producer.
        dep(dynTriggerSeq_, true);
        if (di.isCondBr()) {
            depPred(si.qp);
            return; // predicated branch: resolves but never redirects
        }
        if (si.op == Opcode::Jmp || si.op == Opcode::Nop)
            return;
        if (di.readsRs1())
            depReg(si.rs1);
        if (di.readsRs2())
            depReg(si.rs2);
        depPred(si.qp, true);
        if (writesReg)
            depReg(si.rd, true); // old destination value, always
        if (writesPred && !si.unc) {
            depPred(si.pd, true);
            depPred(si.pd2, true);
        }
        if (si.op == Opcode::PNot || si.op == Opcode::PAnd ||
            si.op == Opcode::POr) {
            depPred(si.ps);
            if (si.op != Opcode::PNot)
                depPred(si.ps2);
        }
        claimProducers(di);
        return;
    }

    if (di.selectPart == 2) {
        // Select half: depends on the compute half (previous seq), the
        // old destination, and the predicate.
        dep(di.seq - 1);
        depReg(si.rd, true);
        depPred(si.qp, true);
        claimProducers(di);
        return;
    }

    if (di.isCondBr()) {
        // A branch resolves against the *real* predicate value.
        depPred(si.qp);
        return;
    }
    if (si.op == Opcode::JmpR || si.op == Opcode::Ret) {
        depReg(si.rs1);
        return;
    }
    if (si.op == Opcode::Jmp || si.op == Opcode::Call ||
        si.op == Opcode::Halt || si.op == Opcode::Nop) {
        if (si.op == Opcode::Call)
            claimProducers(di);
        return;
    }

    if (noDep && si.qp != 0) {
        // NO-DEPEND oracle: the predicate value is known at rename.
        if (!di.step.qpTrue)
            return; // pure NOP: no deps, claims nothing
        if (di.readsRs1())
            depReg(si.rs1);
        if (di.readsRs2())
            depReg(si.rs2);
        if (si.op == Opcode::PNot || si.op == Opcode::PAnd ||
            si.op == Opcode::POr) {
            depPred(si.ps);
            if (si.op != Opcode::PNot)
                depPred(si.ps2);
        }
        claimProducers(di);
        return;
    }

    if (predPredicted) {
        // §3.5.3: the qualifying predicate is predicted; the µop is
        // shaped as if the predicate were already resolved.
        if (di.predQpVal) {
            if (di.readsRs1())
                depReg(si.rs1);
            if (di.readsRs2())
                depReg(si.rs2);
        } else {
            // Predicted FALSE: a register move of the old destination
            // (or an old-value pass-through for predicate writes).
            if (writesReg)
                depReg(si.rd, true);
            if (writesPred && !si.unc) {
                depPred(si.pd, true);
                depPred(si.pd2, true);
            }
        }
        claimProducers(di);
        return;
    }

    // Baseline C-style conditional expression (§2.1): the µop reads its
    // sources, the predicate, and — when guarded — the old destination.
    if (di.readsRs1())
        depReg(si.rs1);
    if (di.readsRs2())
        depReg(si.rs2);
    if (di.selectPart == 0)
        depPred(si.qp, true);
    if (si.qp != 0 && di.selectPart == 0) {
        if (writesReg)
            depReg(si.rd, true); // old destination value
        if (writesPred && !si.unc) {
            depPred(si.pd, true);
            depPred(si.pd2, true);
        }
    }
    if (si.op == Opcode::PNot || si.op == Opcode::PAnd ||
        si.op == Opcode::POr) {
        depPred(si.ps);
        if (si.op != Opcode::PNot)
            depPred(si.ps2);
    }

    if (di.selectPart == 1)
        return; // compute half claims nothing
    claimProducers(di);
}

void
Core::claimProducers(DynInst &di)
{
    const Instruction &si = *di.inst;
    if (di.writesReg() && si.rd != kRegZero) {
        di.prevRegProducer = regProducer_[si.rd];
        di.claimedReg = si.rd;
        di.claimsReg = true;
        regProducer_[si.rd] = di.seq;
    }
    if (di.writesPred()) {
        unsigned slot = 0;
        for (PredIdx p : {si.pd, si.pd2}) {
            if (p != kPredNone) {
                di.prevPredProducer[slot] = predProducer_[p];
                di.claimedPred[slot] = p;
                predProducer_[p] = di.seq;
            }
            ++slot;
        }
    }
}

bool
Core::depsReady(const DynInst &di) const
{
    for (unsigned i = 0; i < di.numDeps; ++i)
        if (!producerDone(di.deps[i]))
            return false;
    return true;
}

// ---------------------------------------------------------------------
// Event-driven wakeup
// ---------------------------------------------------------------------

/**
 * Link the µop under its first still-outstanding producer, or move it
 * to the ready list when every producer has completed. Waiting on one
 * producer at a time is sufficient because completion is monotonic: by
 * the time the watched producer completes and the remaining producers
 * are re-scanned, any producer that completed in the meantime is seen
 * as done, and a still-outstanding one is watched next.
 */
void
Core::scheduleOrReady(DynInst &di)
{
    for (unsigned i = 0; i < di.numDeps; ++i) {
        DynInst *p = findInst(di.deps[i]);
        if (!p || p->completed)
            continue; // retired or complete: this producer is done
        di.waitingOn = p->seq;
        di.chainPrev = 0;
        di.chainNext = p->wakeHead;
        if (p->wakeHead)
            findInst(p->wakeHead)->chainPrev = di.seq;
        p->wakeHead = di.seq;
        return;
    }
    di.waitingOn = 0;
    if (params_.pollScheduler)
        return; // the reference scheduler rescans; no ready list
    if (!readyList_.empty() && readyList_.back() > di.seq)
        readySorted_ = false;
    readyList_.push_back(di.seq);
}

/** The producer completed: re-evaluate every consumer in its chain. */
void
Core::wakeConsumers(DynInst &producer)
{
    SeqNum s = producer.wakeHead;
    producer.wakeHead = 0;
    while (s != 0) {
        DynInst *c = findInst(s);
        wisc_assert(c && c->waitingOn == producer.seq,
                    "wait chain corrupt at seq ", s);
        SeqNum next = c->chainNext;
        c->waitingOn = 0;
        c->chainPrev = 0;
        c->chainNext = 0;
        // Predication-delay taint for attribution, stamped here — at
        // the producer's completion — because only then is the
        // producer's own taint final (it has issued). A consumer is
        // pred-delayed when the resolved edge itself is
        // predication-induced, or transitively when the producer was
        // (mcf's critical value load waits on an address register fed
        // by a predicated chase load — the pred edge is one hop
        // upstream). Re-linking under a later producer re-stamps, so
        // the value at issue reflects the last wait resolved; a µop
        // that never waits keeps false, which is how the taint dies
        // with the serialization chain. Pure observation, so detached
        // runs skip it.
        if (nsinks_) {
            bool edgePred = false;
            for (unsigned i = 0; i < c->numDeps; ++i)
                if (c->deps[i] == producer.seq &&
                    ((c->predDepMask >> i) & 1u) != 0)
                    edgePred = true;
            c->lastWaitPred = edgePred || producer.lastWaitPred;
        }
        scheduleOrReady(*c);
        s = next;
    }
}

/** Remove a (squashed) µop from the wait chain it is linked into, if
 *  any. Chains therefore never contain dead entries, which is what
 *  makes the seq-based links safe across flushes and seq reuse. */
void
Core::unlinkWaiter(DynInst &di)
{
    if (di.waitingOn == 0)
        return;
    if (di.chainPrev == 0) {
        DynInst *p = findInst(di.waitingOn);
        wisc_assert(p && p->wakeHead == di.seq,
                    "wait chain head mismatch at seq ", di.seq);
        p->wakeHead = di.chainNext;
    } else {
        findInst(di.chainPrev)->chainNext = di.chainNext;
    }
    if (di.chainNext)
        findInst(di.chainNext)->chainPrev = di.chainPrev;
    di.waitingOn = 0;
    di.chainPrev = 0;
    di.chainNext = 0;
}

// ---------------------------------------------------------------------
// In-flight store index
// ---------------------------------------------------------------------

void
Core::indexStore(SeqNum seq, Addr addr, unsigned size)
{
    for (Addr w = firstWord(addr); w <= lastWord(addr, size); ++w)
        storesByWord_[w].push_back(seq); // rename order: ascending
}

void
Core::unindexStore(SeqNum seq, Addr addr, unsigned size)
{
    for (Addr w = firstWord(addr); w <= lastWord(addr, size); ++w) {
        auto it = storesByWord_.find(w);
        wisc_assert(it != storesByWord_.end(), "store index miss");
        auto &v = it->second;
        auto pos = std::find(v.begin(), v.end(), seq);
        wisc_assert(pos != v.end(), "store index entry miss");
        v.erase(pos);
    }
}

const DynInst *
Core::youngestOlderStore(SeqNum seq, Addr addr, unsigned size) const
{
    const DynInst *best = nullptr;
    for (Addr w = firstWord(addr); w <= lastWord(addr, size); ++w) {
        auto it = storesByWord_.find(w);
        if (it == storesByWord_.end())
            continue;
        const auto &v = it->second;
        // Youngest-first; the first *overlapping* older store in this
        // bucket decides for this word (same-word non-overlapping byte
        // ops are skipped, exactly like the old full reverse walk).
        for (auto r = v.rbegin(); r != v.rend(); ++r) {
            if (*r >= seq)
                continue;
            const DynInst *st = findInst(*r);
            wisc_assert(st, "indexed store not in flight");
            if (!rangesOverlap(st->memAddr, st->memSize, addr, size))
                continue;
            if (!best || st->seq > best->seq)
                best = st;
            break;
        }
    }
    return best;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Core::fetchOne(std::uint32_t idx)
{
    wish_.onInstructionFetched(idx);

    DynInst &di = fetchQueue_.emplace_back();
    di.pc = idx;
    di.uid = nextUid_++;
    di.fetchCycle = now_;
    di.inst = &code_[idx];
    di.pre = pre_[idx].flags;
    di.exLat = pre_[idx].exLat;
    di.undoStart = undo_.mark();
    if (dynActive_) {
        // Dynamically predicated region: fetch runs linearly to the
        // merge point; only the µop the real control flow is at
        // executes, the rest are nullified (predicated-FALSE NOPs).
        di.dynRegion = true;
        if (idx == dynRealPc_) {
            di.step =
                executeInst(*di.inst, idx, codeSize_, state_, &undo_);
            dynRealPc_ = di.step.nextIndex;
        } else {
            di.dynNullified = true;
            di.step.qpTrue = false;
            di.step.nextIndex = idx + 1;
            ++*dynNullifiedUops_;
        }
        ++*dynRegionUops_;
    } else {
        di.step = executeInst(*di.inst, idx, codeSize_, state_, &undo_);
    }
    di.undoEnd = undo_.mark();
    di.renameReady = now_ + params_.frontEndDelay();
    di.memAddr = di.step.memAddr;
    di.memSize = di.step.memSize;
    di.memSkipped = di.isMemOp() && !di.step.qpTrue;

    // Predicate-prediction capture and buffer maintenance (decode-side
    // structures, §3.5.3), strictly in fetch order. Region µops skip
    // the capture: their dependence shape is fixed by the region
    // (guarded by the trigger), not by the §3.5.3 buffer.
    if (params_.wishEnabled && di.inst->qp != 0 && !di.dynRegion) {
        auto v = wish_.predictedPredicate(di.inst->qp);
        if (v) {
            di.hasPredQp = true;
            di.predQpVal = *v;
        }
    }
    if (di.pre & kPreCompare)
        wish_.noteCompare(di.inst->pd, di.inst->pd2);
    if (di.writesPred()) {
        wish_.notePredWrite(di.inst->pd);
        wish_.notePredWrite(di.inst->pd2);
    }

    if (di.dynRegion) {
        // Linear region fetch: control µops inside the region neither
        // redirect nor predict — they are predicated like everything
        // else and resolve against the trigger.
        fetchPc_ = idx + 1;
        if (fetchPc_ >= dynRegionEnd_)
            dynEndRegion();
    } else if (di.isCtrl()) {
        processControl(di);
    } else {
        fetchPc_ = idx + 1;
    }

    if (di.step.halted)
        fetchHalted_ = true;

    ++*cFetched_;
    if (nsinks_)
        emitFetch(di, now_);
}

/**
 * May the low-confidence normal branch at 'idx' open a dynamically
 * predicated region ending at 'merge'? Structural conditions only —
 * confidence and the merge-table prediction were already consulted.
 */
bool
Core::dynCanTrigger(std::uint32_t idx, std::uint32_t merge) const
{
    if (dynActive_ || dynOutstandingUid_ != 0)
        return false; // one region in flight at a time
    if (wish_.mode() != FrontEndMode::Normal)
        return false; // never nest into a wish-branch region
    if (merge <= idx + 1 || merge >= codeSize_)
        return false;
    if (merge - idx - 1 > dynRegionCap_)
        return false;
    // The region must be predicable: calls, returns, indirect jumps and
    // halts cannot be nullified (they move non-speculative state or end
    // the program), so their presence vetoes the trigger.
    for (std::uint32_t i = idx + 1; i < merge; ++i) {
        const Opcode op = code_[i].op;
        if (op == Opcode::Call || op == Opcode::Ret ||
            op == Opcode::JmpR || op == Opcode::Halt)
            return false;
    }
    return true;
}

/** Region fetch reached the merge point: stamp the outcome on the
 *  trigger (still in flight — only an older branch's flush could have
 *  removed it, and that resets dynActive_) and resume normal fetch. */
void
Core::dynEndRegion()
{
    const bool success = dynRealPc_ == dynRegionEnd_;
    DynInst *t = nullptr;
    for (std::size_t i = rob_.size(); i-- > 0;) {
        if (rob_[i].uid == dynOutstandingUid_) {
            t = &rob_[i];
            break;
        }
    }
    if (!t)
        for (std::size_t i = 0; i < fetchQueue_.size(); ++i)
            if (fetchQueue_[i].uid == dynOutstandingUid_) {
                t = &fetchQueue_[i];
                break;
            }
    wisc_assert(t, "dynamic-predication trigger vanished mid-region");
    t->dynOutcomeKnown = true;
    t->dynPredFailed = !success;
    dynActive_ = false;
}

void
Core::processControl(DynInst &di)
{
    const Instruction &si = *di.inst;
    const std::uint32_t idx = di.pc;
    const auto &oracle = params_.oracle;

    switch (si.op) {
      case Opcode::Br: {
        bool predictorTaken = bpred_->predict(idx, di.ckpt);
        bool effective;

        if (oracle.perfectCBP) {
            predictorTaken = di.step.taken;
            effective = di.step.taken;
            di.highConf = true;
            di.fetchMode = FrontEndMode::Normal;
        } else if (params_.wishEnabled && si.wish != WishKind::None) {
            bool highConf =
                oracle.perfectConfidence
                    ? (predictorTaken == di.step.taken)
                    : estimateConfidence(idx, di.ckpt.globalHistory);
            wish_.setBranchPredicate(si.qp);
            WishDecision d = wish_.onWishBranch(idx, si.wish,
                                                predictorTaken, highConf,
                                                si.target);
            effective = d.effectiveTaken;
            di.fetchMode = d.branchMode;
            di.highConf = d.highConfidence;
        } else {
            effective = predictorTaken;
            di.fetchMode = FrontEndMode::Normal;
            if (params_.dynPred != DynPredMode::Off) {
                // Dynamic predication: the hardware counterpart of a
                // wish branch for compiler-unmarked branches. Estimate
                // confidence exactly like the wish path would.
                const bool highConf =
                    oracle.perfectConfidence
                        ? (predictorTaken == di.step.taken)
                        : estimateConfidence(idx,
                                             di.ckpt.globalHistory);
                di.highConf = highConf;
                if (!highConf &&
                    params_.dynPred == DynPredMode::FetchGate) {
                    // Cheap fallback: throttle fetch for a few cycles
                    // instead of predicating, shrinking the wrong-path
                    // exposure of a likely misprediction.
                    fetchStallUntil_ = std::max(
                        fetchStallUntil_,
                        now_ + params_.dynFetchGateCycles);
                    ++*dynFetchGates_;
                } else if (!highConf) {
                    auto merge =
                        merge_.predict(idx, params_.dynMergeMinConf);
                    if (merge && dynCanTrigger(idx, *merge)) {
                        // Open the region: force fall-through and
                        // predicate everything up to the merge point
                        // on this branch.
                        di.dynPredTrigger = true;
                        effective = false;
                        dynActive_ = true;
                        dynRegionEnd_ = *merge;
                        dynRealPc_ = di.step.nextIndex;
                        dynOutstandingUid_ = di.uid;
                        dynTriggerSeq_ = 0;
                        ++*dynTriggers_;
                    }
                }
            }
        }

        di.predictorTaken = predictorTaken;
        di.predictedTaken = effective;
        di.predictedTarget = effective ? si.target : idx + 1;
        if (si.wish == WishKind::Loop)
            di.loopInstance = wish_.loopInstance(idx);
        bpred_->updateSpeculative(idx, effective);

        // BTB: a predicted-taken branch that misses costs a small
        // redirect bubble (the target is unknown until decode).
        const BtbEntry *e = btb_.lookup(idx);
        if (!e && effective)
            fetchStallUntil_ = now_ + 2;
        btb_.insert(idx, si.target, si.wish, true);

        fetchPc_ = di.predictedTarget;
        break;
      }
      case Opcode::Jmp:
      case Opcode::Call: {
        di.predictedTaken = true;
        di.predictedTarget = si.target;
        if (!btb_.lookup(idx))
            fetchStallUntil_ = now_ + 2;
        btb_.insert(idx, si.target, WishKind::None, false);
        if (si.op == Opcode::Call)
            ras_.push(idx + 1);
        fetchPc_ = si.target;
        break;
      }
      case Opcode::Ret: {
        std::uint32_t tgt = ras_.pop();
        if (oracle.perfectCBP)
            tgt = di.step.nextIndex;
        if (tgt == 0 || tgt >= codeSize_)
            tgt = idx + 1;
        di.predictedTaken = true;
        di.predictedTarget = tgt;
        fetchPc_ = tgt;
        break;
      }
      case Opcode::JmpR: {
        di.ckpt.globalHistory = bpred_->globalHistory();
        std::uint32_t tgt =
            itc_.predict(idx, di.ckpt.globalHistory);
        if (oracle.perfectCBP)
            tgt = di.step.nextIndex;
        if (tgt == 0 || tgt >= codeSize_)
            tgt = idx + 1;
        di.predictedTaken = true;
        di.predictedTarget = tgt;
        fetchPc_ = tgt;
        break;
      }
      default:
        wisc_panic("processControl on non-control op");
    }

    di.rasCkpt = ras_.checkpoint();
}

void
Core::stageFetch()
{
    // A freeze (drain toward a checkpoint boundary) must not interrupt
    // an open dynamically predicated region: the trigger cannot
    // complete until the region finishes fetching, so freezing
    // mid-region would deadlock the drain.
    if ((fetchFrozen_ && !dynActive_) || fetchHalted_ ||
        now_ < fetchStallUntil_)
        return;
    if (fetchQueue_.size() >= fetchQueueCap_)
        return;
    if (fetchPc_ >= codeSize_) {
        fetchHalted_ = true; // only a flush can redirect us
        return;
    }

    // One I-cache line per cycle; a miss stalls until the fill.
    unsigned lat = memsys_.fetchAccess(instAddr(fetchPc_));
    if (lat > params_.il1.hitLatency) {
        fetchStallUntil_ = now_ + lat;
        return;
    }
    const Addr lineMask = ~(static_cast<Addr>(params_.il1.lineBytes) - 1);
    const Addr startLine = instAddr(fetchPc_) & lineMask;

    unsigned slots = params_.fetchWidth;
    unsigned condBrs = 0;
    unsigned processed = 0;

    while (slots > 0 && processed < params_.fetchWidth * 4) {
        if (fetchHalted_ || now_ < fetchStallUntil_)
            break;
        if (fetchPc_ >= codeSize_) {
            fetchHalted_ = true;
            break;
        }
        if ((instAddr(fetchPc_) & lineMask) != startLine)
            break;
        if (fetchQueue_.size() >= fetchQueueCap_)
            break;

        std::uint32_t idx = fetchPc_;
        if (pre_[idx].flags & kPreCondBr) {
            if (condBrs >= params_.maxCondBrPerFetch)
                break;
            ++condBrs;
        }

        ++processed;
        fetchOne(idx);
        const DynInst &di = fetchQueue_.back();

        // NO-FETCH oracle: predicated-FALSE µops cost no bandwidth and
        // are dropped from the pipe entirely (except unconditional
        // compares, whose clearing writes are architectural).
        bool elide = params_.oracle.noFetch && !di.step.qpTrue &&
                     !di.isCtrl() &&
                     !(di.inst->unc && di.writesPred());
        if (elide) {
            fetchQueue_.pop_back();
            continue;
        }

        --slots;
        // Fetch ends at the first predicted-taken control transfer.
        if (di.isCtrl() && di.predictedTaken)
            break;
        if (di.step.halted)
            break;
    }
    hFetchWidth_->sample(params_.fetchWidth - slots);
}

// ---------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------

void
Core::stageRename()
{
    renameBlocked_ = false;
    unsigned renamed = 0;
    while (renamed < params_.decodeWidth && !fetchQueue_.empty()) {
        DynInst &front = fetchQueue_.front();
        if (front.renameReady > now_)
            break;

        const bool expand =
            params_.predMech == PredMechanism::SelectUop &&
            (front.pre & kPreSelectShape) &&
            !params_.oracle.noDepend &&
            !front.hasPredQp &&
            !front.dynRegion;
        const unsigned need = expand ? 2 : 1;

        if (rob_.size() + need > params_.robSize ||
            iqCount_ + need > params_.iqSize) {
            renameBlocked_ = true;
            break;
        }

        if (expand) {
            // Compute half: executes the operation unconditionally into
            // a temporary; carries the memory access.
            DynInst &a = rob_.emplace_back();
            a = front;
            a.seq = nextSeq_++;
            a.selectPart = 1;
            if (a.isStoreOp() && !a.memSkipped) {
                storeSeqs_.push_back(a.seq);
                indexStore(a.seq, a.memAddr, a.memSize);
            }
            a.undoEnd = a.undoStart; // effects commit with the select
            computeDeps(a);
            a.inIQ = true;
            ++iqCount_;
            scheduleOrReady(a);

            // Select half: picks new vs old value once the predicate
            // resolves; owns the architectural effects.
            DynInst &b = rob_.emplace_back();
            b = front;
            fetchQueue_.pop_front();
            b.seq = nextSeq_++;
            b.uid = nextUid_++; // the select half is a distinct µop
            b.selectPart = 2;
            b.memSize = 0;
            computeDeps(b);
            b.inIQ = true;
            ++iqCount_;
            scheduleOrReady(b);
            if (nsinks_) {
                emitFetch(b, b.fetchCycle);
                emitRename(a);
                emitRename(b);
            }
            renamed += 2;
            continue;
        }

        DynInst &di = rob_.emplace_back();
        di = front;
        fetchQueue_.pop_front();
        di.seq = nextSeq_++;
        // Region µops rename strictly after their trigger (in order),
        // so the trigger's seq is known by the time they need it.
        if (dynOutstandingUid_ != 0 && di.uid == dynOutstandingUid_)
            dynTriggerSeq_ = di.seq;
        computeDeps(di);
        di.inIQ = true;
        ++iqCount_;
        if (nsinks_)
            emitRename(di);
        if (di.isStoreOp() && !di.memSkipped) {
            storeSeqs_.push_back(di.seq);
            indexStore(di.seq, di.memAddr, di.memSize);
        }
        scheduleOrReady(di);
        ++renamed;
    }
}

// ---------------------------------------------------------------------
// Issue and execute
// ---------------------------------------------------------------------

unsigned
Core::loadLatency(const DynInst &di)
{
    // Forwarding was already decided at issue; this is a real access.
    return memsys_.loadAccess(di.memAddr, now_);
}

/**
 * Issue one µop whose producers are all complete, unless a structural
 * or memory hazard blocks it this cycle (memory port pressure, an
 * incomplete older overlapping store, or a full MSHR file). Shared
 * verbatim by the event-driven and the poll-reference schedulers so the
 * two can only diverge in *selection*, never in hazard rules.
 */
bool
Core::tryIssueOne(DynInst &di, unsigned &memPorts)
{
    bool isLoad = di.isLoadOp() && !di.memSkipped && di.selectPart != 2;
    bool isStore = di.isStoreOp() && !di.memSkipped;
    if ((isLoad || isStore) && memPorts >= params_.memPortsPerCycle)
        return false;

    // Loads must wait for older overlapping stores' data, and a
    // missing load needs a free MSHR.
    bool forwarded = false;
    if (isLoad) {
        const DynInst *st =
            youngestOlderStore(di.seq, di.memAddr, di.memSize);
        if (st) {
            // The youngest older overlapping store decides.
            if (!(st->completed && st->completeCycle <= now_))
                return false;
            forwarded = true;
        }
        if (!forwarded && !memsys_.loadWouldHitL1(di.memAddr)) {
            // MSHR check: count misses still in flight.
            while (!missHeap_.empty() && missHeap_.top() <= now_)
                missHeap_.pop();
            if (missHeap_.size() >= params_.maxOutstandingMisses)
                return false;
        }
    }

    unsigned lat;
    if (isLoad) {
        lat = forwarded ? params_.latStoreForward : loadLatency(di);
        if (!forwarded && lat > memsys_.l1dHitLatency()) {
            missHeap_.push(now_ + lat);
            di.l1Missed = true;
        }
        ++memPorts;
    } else if (isStore) {
        lat = params_.latAlu;
        ++memPorts;
    } else {
        lat = di.exLat;
    }

    di.issued = true;
    di.completeCycle = now_ + lat;
    events_.push({di.completeCycle, di.seq, di.uid});
    if (nsinks_)
        emitIssue(di);
    return true;
}

void
Core::stageIssue()
{
    if (params_.pollScheduler) {
        stageIssuePoll();
        return;
    }
    if (readyList_.empty())
        return;
    if (!readySorted_) {
        std::sort(readyList_.begin(), readyList_.end());
        readySorted_ = true;
    }

    unsigned issued = 0;
    unsigned memPorts = 0;
    std::size_t keep = 0;
    const std::size_t n = readyList_.size();
    for (std::size_t i = 0; i < n; ++i) {
        SeqNum s = readyList_[i];
        if (issued >= params_.issueWidth) {
            readyList_[keep++] = s;
            continue;
        }
        DynInst *di = findInst(s);
        wisc_assert(di && di->inIQ && !di->issued && !di->completed,
                    "stale ready-list entry ", s);
        if (tryIssueOne(*di, memPorts))
            ++issued;
        else
            readyList_[keep++] = s; // hazard: retry next cycle
    }
    readyList_.resize(keep);
}

/**
 * Reference scheduler (SimParams::pollScheduler): the original
 * O(window²) scan — every in-flight µop re-evaluates every producer
 * every cycle. Kept only to cross-check the event-driven scheduler;
 * also asserts, each cycle, that the wakeup chains agree with the
 * polled dependence state.
 */
void
Core::stageIssuePoll()
{
    unsigned issued = 0;
    unsigned memPorts = 0;
    const std::size_t n = rob_.size();
    for (std::size_t i = 0; i < n && issued < params_.issueWidth; ++i) {
        DynInst &di = rob_[i];
        if (!di.inIQ || di.issued)
            continue;
        const bool ready = depsReady(di);
        wisc_assert(ready == (di.waitingOn == 0),
                    "wakeup chain disagrees with poll scan at seq ",
                    di.seq);
        if (!ready)
            continue;
        if (tryIssueOne(di, memPorts))
            ++issued;
    }
}

// ---------------------------------------------------------------------
// Completion and branch resolution
// ---------------------------------------------------------------------

void
Core::stageComplete()
{
    while (!events_.empty() && events_.top().cycle <= now_) {
        Event ev = events_.top();
        events_.pop();
        DynInst *di = findInst(ev.seq);
        if (!di || di->uid != ev.uid || !di->issued || di->completed)
            continue; // squashed (or stale event for a reused seq)
        if (di->dynPredTrigger && dynActive_ &&
            di->uid == dynOutstandingUid_) {
            // The trigger's outcome is unknown until region fetch
            // reaches the merge point: defer its completion (the
            // modeled hardware resolves the trigger at
            // max(execute, region-fetch-end)). The region-size cap
            // guarantees the region always finishes fetching.
            events_.push({now_ + 1, ev.seq, ev.uid});
            continue;
        }
        di->completed = true;
        di->completeCycle = ev.cycle;
        di->inIQ = false;
        --iqCount_;
        if (nsinks_)
            emitComplete(*di, ev.cycle);

        wakeConsumers(*di);

        if (di->isCtrl() && !di->dynRegion)
            resolveBranch(*di);

        // A flush inside resolveBranch squashed younger µops and purged
        // them from the ready list; their stale events are dropped
        // lazily by the findInst/uid check above.
    }
}

void
Core::resolveBranch(DynInst &di)
{
    const Instruction &si = *di.inst;

    if (si.op == Opcode::Jmp || si.op == Opcode::Call)
        return; // direct and unconditional: resolved at fetch

    if (si.op == Opcode::JmpR || si.op == Opcode::Ret) {
        std::uint32_t actual = di.step.nextIndex;
        di.mispredicted = di.predictedTarget != actual;
        if (di.mispredicted)
            flushAfter(di, actual, true, FlushCause::Normal);
        return;
    }

    // Conditional branch.
    const bool actual = di.step.taken;
    di.mispredicted = di.predictorTaken != actual;

    if (di.dynPredTrigger) {
        // Dynamic-predication trigger: the region outcome — stamped by
        // dynEndRegion() before the deferred completion could fire —
        // decides between "predication worked, no flush" and "the real
        // path never reconverged, flush like a plain misprediction".
        wisc_assert(di.dynOutcomeKnown,
                    "trigger resolved before its region ended");
        merge_.noteOutcome(di.pc, di.dynPredFailed, di.mispredicted);
        if (di.uid == dynOutstandingUid_)
            dynOutstandingUid_ = 0;
        if (di.dynPredFailed) {
            ++*dynFailed_;
            flushAfter(di, di.step.nextIndex, true, FlushCause::Normal);
        } else {
            ++*dynSuccess_;
            if (di.mispredicted)
                ++*dynSavedFlushes_;
        }
        return;
    }

    const bool effectiveWrong = di.predictedTaken != actual;
    if (!effectiveWrong) {
        if (si.wish == WishKind::Loop &&
            di.fetchMode == FrontEndMode::LowConf)
            di.loopOutcome = LoopOutcome::Correct;
        return;
    }

    const bool isWish = params_.wishEnabled && si.wish != WishKind::None;
    if (!isWish || di.fetchMode != FrontEndMode::LowConf) {
        // Normal branch, or a wish branch fetched in high-confidence
        // mode: flush, exactly like a conventional misprediction.
        flushAfter(di, di.step.nextIndex, true,
                   isWish ? FlushCause::WishHighConf : FlushCause::Normal);
        return;
    }

    // Low-confidence wish branch mispredictions (§3.5.4).
    if (si.wish == WishKind::Jump || si.wish == WishKind::Join) {
        // The predicated fall-through path is architecturally correct:
        // no pipeline flush (the whole point of wish branches).
        return;
    }

    // Wish loop classification.
    if (actual) {
        // Predicted not-taken but the loop must iterate again.
        di.loopOutcome = LoopOutcome::EarlyExit;
        flushAfter(di, di.step.nextIndex, true, FlushCause::WishLoopEarly);
    } else if (wish_.loopInstance(di.pc) != di.loopInstance) {
        // The front end has exited this loop instance since the branch
        // was fetched: the over-fetched iterations drain as predicated
        // NOPs. No flush.
        di.loopOutcome = LoopOutcome::LateExit;
    } else {
        // The front end is still fetching the loop body.
        di.loopOutcome = LoopOutcome::NoExit;
        flushAfter(di, di.step.nextIndex, true, FlushCause::WishLoopNoExit);
    }
}

void
Core::flushAfter(const DynInst &branch, std::uint32_t redirectPc,
                 bool recoverBpred, FlushCause cause)
{
    ++*cFlushes_;
    std::size_t squashed = fetchQueue_.size();

    if (nsinks_)
        emitFlush(branch, cause);

    // Everything in the fetch queue is younger than anything renamed.
    if (nsinks_)
        for (std::size_t i = 0; i < fetchQueue_.size(); ++i)
            emitSquash(fetchQueue_[i]);
    fetchQueue_.clear();

    // Squash renamed µops younger than the branch, restoring the rename
    // producer chains newest-first and repairing the wakeup chains.
    while (!rob_.empty() && rob_.back().seq > branch.seq) {
        DynInst &di = rob_.back();
        if (nsinks_)
            emitSquash(di);
        unlinkWaiter(di);
        // All of this µop's waiters are younger and already unlinked.
        wisc_assert(di.wakeHead == 0,
                    "squashed producer still has waiters");
        if (di.inIQ)
            --iqCount_;
        if (di.isStoreOp() && !di.memSkipped && di.selectPart != 2)
            unindexStore(di.seq, di.memAddr, di.memSize);
        if (di.claimsReg)
            regProducer_[di.claimedReg] = di.prevRegProducer;
        for (unsigned s = 0; s < 2; ++s)
            if (di.claimedPred[s] != kPredNone)
                predProducer_[di.claimedPred[s]] =
                    di.prevPredProducer[s];
        rob_.pop_back();
        ++squashed;
    }
    nextSeq_ = branch.seq + 1;
    hFlushSquash_->sample(squashed);

    readyList_.erase(std::remove_if(readyList_.begin(), readyList_.end(),
                                    [&](SeqNum s) {
                                        return s > branch.seq;
                                    }),
                     readyList_.end());
    storeSeqs_.erase(std::remove_if(storeSeqs_.begin(), storeSeqs_.end(),
                                    [&](SeqNum s) {
                                        return s > branch.seq;
                                    }),
                     storeSeqs_.end());

#ifndef NDEBUG
    // findInst()'s O(1) contract: seq numbers stay dense base..base+size
    // across partial flushes (debug builds only; the walk is O(window)).
    for (std::size_t i = 0; i < rob_.size(); ++i)
        wisc_assert(rob_[i].seq == rob_.front().seq + i,
                    "ROB seq density violated after flush at index ", i);
#endif

    // Roll speculative architectural state back to just after the
    // branch executed.
    undo_.rollbackTo(branch.undoEnd, state_);

    if (recoverBpred && branch.inst->op == Opcode::Br)
        bpred_->recover(branch.pc, branch.step.taken, branch.ckpt);
    ras_.restore(branch.rasCkpt);
    wish_.onFlush();

    // Dynamic predication: while a region is open every possible flush
    // source is older than the trigger (region µops never flush and
    // younger µops do not exist yet), so the trigger was just squashed.
    // After the region ended the trigger survives flushes from younger
    // branches; uids are fetch-ordered, so the comparison decides.
    if (dynOutstandingUid_ != 0) {
        wisc_assert(!dynActive_ || branch.uid < dynOutstandingUid_,
                    "flush from inside an open dynamic region");
        if (branch.uid < dynOutstandingUid_) {
            dynOutstandingUid_ = 0;
            dynActive_ = false;
        }
    }

    fetchPc_ = redirectPc;
    fetchHalted_ = false;
    fetchStallUntil_ = now_ + 1;
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

void
Core::stageRetire()
{
    unsigned retired = 0;
    retireStalledOnHead_ = false;
    while (retired < params_.retireWidth && !rob_.empty()) {
        DynInst &di = rob_.front();
        if (!di.completed || di.completeCycle > now_) {
            retireStalledOnHead_ = true;
            break;
        }

        const Instruction &si = *di.inst;

        if (si.op == Opcode::Br && !di.dynRegion) {
            ++*cCondBranches_;
            bpred_->train(di.pc, di.step.taken, di.ckpt);
            if (di.mispredicted)
                ++*cMispredicts_;
            if (params_.wishEnabled && si.wish != WishKind::None) {
                updateConfidence(di.pc, di.ckpt.globalHistory,
                                 !di.mispredicted);
                retireWishStats(di);
            } else if (params_.dynPred != DynPredMode::Off) {
                // Both dynamic modes gate on the same estimator, so it
                // trains on every normal branch, with the same
                // fetch-time history the estimate used.
                updateConfidence(di.pc, di.ckpt.globalHistory,
                                 !di.mispredicted);
            }
        } else if (si.op == Opcode::JmpR) {
            itc_.update(di.pc, di.ckpt.globalHistory,
                        di.step.nextIndex);
            if (di.mispredicted)
                ++*cMispredicts_;
        } else if (si.op == Opcode::Ret && di.mispredicted) {
            ++*cMispredicts_;
        }

        // Merge-point learning from the retired control flow. Region
        // µops are excluded: their retired pc stream is linear by
        // construction and would teach the table that every branch
        // "reconverges" at the next pc.
        if (params_.dynPred == DynPredMode::MergePoint && !di.dynRegion)
            merge_.onRetire(di.pc, di.step.nextIndex, di.isCondBr(),
                            si.target);

        if (di.isStoreOp() && !di.memSkipped) {
            if (di.selectPart != 1)
                memsys_.storeAccess(di.memAddr);
            if (!storeSeqs_.empty() && storeSeqs_.front() == di.seq) {
                storeSeqs_.erase(storeSeqs_.begin());
                unindexStore(di.seq, di.memAddr, di.memSize);
            }
        }

        undo_.commitTo(di.undoEnd);

        if (!di.step.qpTrue)
            ++*cRetiredNops_;
        ++retiredUops_;
        ++*cRetired_;

        if (nsinks_)
            emitRetire(di);

        bool halt = di.step.halted;
        rob_.pop_front();
        ++retired;
        if (halt) {
            haltRetired_ = true;
            break;
        }
    }
}

Counter &
Core::wishOutcomeCounter(WishKind kind, bool low, unsigned slot)
{
    // Lazily resolved so a counter is still registered the first time
    // its event occurs — keeping the emitted stat *set* identical to
    // the original per-retire string lookup — while repeat events cost
    // one array load instead of a string build plus map search.
    const unsigned k = static_cast<unsigned>(kind) - 1;
    Counter *&c = wishOutcome_[k][low ? 1 : 0][slot];
    if (!c) {
        static const char *const kKindName[] = {"jump", "join", "loop"};
        static const char *const kSlotName[] = {
            "correct", "mispred", "early_exit", "late_exit", "no_exit"};
        c = &stats_.counter(std::string("wish.") + kKindName[k] + "." +
                            (low ? "low." : "high.") + kSlotName[slot]);
    }
    return *c;
}

void
Core::retireWishStats(const DynInst &di)
{
    const WishKind kind = di.inst->wish;
    if (kind == WishKind::None)
        return;
    const bool low = di.fetchMode == FrontEndMode::LowConf;

    unsigned slot;
    if (kind == WishKind::Loop && low) {
        switch (di.loopOutcome) {
          case LoopOutcome::EarlyExit: slot = 2; break;
          case LoopOutcome::LateExit:  slot = 3; break;
          case LoopOutcome::NoExit:    slot = 4; break;
          case LoopOutcome::Correct:
          case LoopOutcome::NotApplicable:
          default:
            // NotApplicable: a low-confidence loop branch that resolved
            // in the predicted direction.
            slot = 0;
            break;
        }
    } else {
        slot = di.mispredicted ? 1 : 0;
    }
    ++wishOutcomeCounter(kind, low, slot);
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

SimResult
Core::run(const Program &prog)
{
    beginRun(prog);
    advance(std::numeric_limits<std::uint64_t>::max());
    return finishRun();
}

void
Core::beginRun(const Program &prog)
{
    prog.validate();
    prog_ = &prog;
    code_ = prog.codeData();
    codeSize_ = static_cast<std::uint32_t>(prog.size());

    // Predecode the static image once: per-PC flags and execute
    // latencies replace per-fetch opcode-table walks.
    pre_.assign(codeSize_, PreDecode{});
    for (std::uint32_t i = 0; i < codeSize_; ++i) {
        const Instruction &si = code_[i];
        pre_[i].flags = predecodeFlags(si);
        unsigned lat;
        switch (si.instrClass()) {
          case InstrClass::IntMul: lat = params_.latMul; break;
          case InstrClass::IntDiv: lat = params_.latDiv; break;
          case InstrClass::Branch: lat = params_.latBranch; break;
          default: lat = params_.latAlu; break;
        }
        wisc_assert(lat > 0 && lat < 256, "execute latency out of range");
        pre_[i].exLat = static_cast<std::uint8_t>(lat);
    }

    state_.reset();
    state_.loadData(prog);
    fetchPc_ = prog.entry();
    fetchHalted_ = false;
    fetchStallUntil_ = 0;
    fetchFrozen_ = false;
    now_ = 0;
    haltRetired_ = false;
    retiredUops_ = 0;
    nextSeq_ = 1;
    nextUid_ = 1;
    fetchQueue_.reset(fetchQueueCap_);
    rob_.reset(params_.robSize);
    iqCount_ = 0;
    readyList_.clear();
    readySorted_ = true;
    while (!events_.empty())
        events_.pop();
    std::fill(std::begin(regProducer_), std::end(regProducer_), 0);
    std::fill(std::begin(predProducer_), std::end(predProducer_), 0);
    while (!missHeap_.empty())
        missHeap_.pop();
    storeSeqs_.clear();
    storesByWord_.clear();
    dynActive_ = false;
    dynRegionEnd_ = 0;
    dynRealPc_ = 0;
    dynOutstandingUid_ = 0;
    dynTriggerSeq_ = 0;
    merge_.reset();

    // Warm the instruction image: our kernels fit comfortably in the
    // 64 KB L1I, so a cold-start I-cache would only add noise.
    memsys_.warmText(kTextBase, codeSize_ * kInstBytes);

    // The attribution engine rides the run as one more probe sink,
    // attached only when the params opt in, so default runs register no
    // attrib.* statistics and pay no per-event cost.
    wisc_assert(!attrib_, "beginRun without a matching finishRun");
    externalSinks_ = nsinks_;
    attribStartCycle_ = 0;
    if (params_.collectAttribution || params_.collectBranchProfile) {
        attrib_.emplace(stats_, params_.collectAttribution,
                        params_.collectBranchProfile);
        addSink(&*attrib_);
    }
}

void
Core::beginRun(const Program &prog, const CoreCheckpoint &ckpt)
{
    beginRun(prog);

    wisc_assert(ckpt.paramsFingerprint == params_.fingerprint(),
                "checkpoint was taken under a different machine "
                "configuration");
    wisc_assert(ckpt.progFingerprint == prog.fingerprint(),
                "checkpoint was taken running a different program");

    now_ = ckpt.now;
    retiredUops_ = ckpt.retiredUops;
    fetchPc_ = ckpt.fetchPc;
    fetchHalted_ = ckpt.fetchHalted;
    fetchStallUntil_ = ckpt.fetchStallUntil;
    nextSeq_ = ckpt.nextSeq;
    nextUid_ = ckpt.nextUid;
    attribStartCycle_ = now_;

    ByteReader r(ckpt.bytes);
    state_.restoreState(r);
    memsys_.restoreState(r);
    bpred_->restoreState(r);
    conf_->restoreState(r);
    btb_.restoreState(r);
    ras_.restoreState(r);
    itc_.restoreState(r);
    if (ckpt.hasWish)
        wish_.restoreState(r);
    else
        wish_.reset(); // checkpoint carries no engine state: cold-start
    // The merge table is serialized only in MergePoint mode; the params
    // fingerprint guard above makes save and restore symmetric. The
    // functional fast-forward engine never writes it — runSampled
    // requires dynPred == Off, and its checkpoints assert that.
    if (params_.dynPred == DynPredMode::MergePoint)
        merge_.restoreState(r);
    if (ckpt.hasAttribShadow) {
        wisc_assert(attrib_,
                    "checkpoint carries attribution shadow state but "
                    "this run does not collect attribution");
        attrib_->restoreShadow(r);
    }
    wisc_assert(r.done(), "checkpoint has ", ckpt.bytes.size() - r.pos(),
                " trailing bytes — save/restore walk mismatch");
}

void
Core::advance(std::uint64_t targetRetired, bool drain)
{
    fetchFrozen_ = false;
    const bool trace = getenv("WISC_TRACE") != nullptr;
    while (!haltRetired_ && now_ < params_.maxCycles &&
           retiredUops_ < params_.maxRetired) {
        if (retiredUops_ >= targetRetired) {
            if (!drain)
                break;
            fetchFrozen_ = true;
        }
        if (fetchFrozen_ && rob_.empty() && fetchQueue_.empty())
            break;
        stageRetire();
        if (haltRetired_)
            break;
        stageComplete();
        stageIssue();
        stageRename();
        stageFetch();
        if (trace)
            fprintf(stderr, "c%llu fq=%zu rob=%zu iq=%zu fpc=%u stall=%llu\n",
                    (unsigned long long)now_, fetchQueue_.size(), rob_.size(),
                    iqCount_, fetchPc_, (unsigned long long)fetchStallUntil_);
        if (nsinks_)
            emitCycle();
        ++now_;
        ++*cCycles_;
    }
}

void
Core::checkpoint(CoreCheckpoint &out) const
{
    wisc_assert(rob_.empty() && fetchQueue_.empty(),
                "checkpoint requires a drained pipeline (advance() with "
                "drain, or a halted machine)");
    out.now = now_;
    out.retiredUops = retiredUops_;
    out.fetchPc = fetchPc_;
    out.fetchHalted = fetchHalted_;
    out.fetchStallUntil = fetchStallUntil_;
    out.nextSeq = nextSeq_;
    out.nextUid = nextUid_;
    out.paramsFingerprint = params_.fingerprint();
    out.progFingerprint = prog_->fingerprint();

    ByteWriter w;
    state_.saveState(w);
    memsys_.saveState(w);
    bpred_->saveState(w);
    conf_->saveState(w);
    btb_.saveState(w);
    ras_.saveState(w);
    itc_.saveState(w);
    wish_.saveState(w);
    if (params_.dynPred == DynPredMode::MergePoint)
        merge_.saveState(w);
    out.hasWish = true;
    out.hasAttribShadow = attrib_.has_value();
    if (attrib_)
        attrib_->saveShadow(w);
    out.bytes = w.take();
}

SimResult
Core::finishRun()
{
    if (attrib_) {
        attrib_->finish(now_ - attribStartCycle_);
        nsinks_ = externalSinks_;
        attrib_.reset();
    }

    SimResult res;
    res.halted = haltRetired_;
    res.cycles = now_;
    res.retiredUops = retiredUops_;
    res.resultReg = state_.readReg(4);
    res.memFingerprint = state_.mem().fingerprint();

    if (params_.checkFinalState && res.halted) {
        Emulator ref;
        // The reference must be allowed at least as many steps as the
        // core retired, or a long-but-terminating run would trip the
        // halt check on a truncated (meaningless) emulation instead of
        // comparing real final states.
        // (saturating: a run that retired ~2^64 µops must not wrap the
        // budget to zero and fail the halt assertion spuriously).
        std::uint64_t steps = std::max<std::uint64_t>(
            Emulator::kDefaultMaxSteps,
            res.retiredUops == std::numeric_limits<std::uint64_t>::max()
                ? res.retiredUops
                : res.retiredUops + 1);
        EmuResult er = ref.run(*prog_, nullptr, steps);
        wisc_assert(er.halted,
                    "reference emulation did not halt within ", steps,
                    " steps though the core retired Halt after ",
                    res.retiredUops, " uops");
        wisc_assert(er.resultReg == res.resultReg,
                    "timing/functional result mismatch: ",
                    res.resultReg, " vs ", er.resultReg);
        wisc_assert(er.memFingerprint == res.memFingerprint,
                    "timing/functional memory mismatch");
    }
    return res;
}

SimResult
simulate(const Program &prog, const SimParams &params, StatSet &stats)
{
    Core core(params, stats);
    return core.run(prog);
}

SimResult
simulate(const Program &prog, const SimParams &params, StatSet &stats,
         const std::vector<ProbeSink *> &sinks)
{
    Core core(params, stats);
    for (ProbeSink *s : sinks)
        core.addSink(s);
    return core.run(prog);
}

} // namespace wisc
