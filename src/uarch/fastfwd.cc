#include "uarch/fastfwd.hh"

#include "arch/threaded.hh"
#include "common/log.hh"

namespace wisc {

namespace {

/** Warming observer for threadedRun(): mirrors the core's correct-path
 *  updates to the predictor substrate (processControl + stageRetire),
 *  collapsed to fetch≡retire since the functional stream is in-order
 *  and never wrong-path. */
struct WarmHooks
{
    const SimParams &params;
    IBranchPredictor &bpred;
    IConfidence &conf;
    Btb &btb;
    ReturnAddressStack &ras;
    IndirectTargetCache &itc;
    MemorySystem &memsys;
    WishEngine &wish;
    const Instruction *code;
    std::uint32_t codeSize;

    void
    onInst(std::uint32_t pc, const Instruction &in, bool)
    {
        // Decode-side wish bookkeeping, exactly as Core::fetchOne():
        // the mode-exit "target fetched" check per instruction, plus
        // the predicate buffer's complement map and write invalidation.
        wish.onInstructionFetched(pc);
        if (in.op >= Opcode::CmpEq && in.op <= Opcode::CmpGeI)
            wish.noteCompare(in.pd, in.pd2);
        if (in.writesPred()) {
            wish.notePredWrite(in.pd);
            wish.notePredWrite(in.pd2);
        }
    }

    void
    onBranch(std::uint32_t pc, const Instruction &in, bool taken)
    {
        if (warmBranch(pc, in, taken))
            walkNullifiedBlock(pc, in.target);
    }

    /**
     * predict → wish decision → speculative shift → train, like the
     * core. The shifted direction must be the core's *net* history
     * convention: the effective (front-end) direction, repaired to the
     * actual outcome only where the core would flush and recover the
     * predictor. A correctly-predicated low-confidence wish jump/join
     * never flushes, so its history bit stays "fall through" even when
     * the branch was actually taken — warming with actual outcomes
     * instead would index every history-keyed table under histories
     * the core never produces, and restored windows would
     * over-predicate.
     *
     * Returns true when the branch was predicated (effective fall
     * through) but actually taken: the core's front end then fetches
     * the skipped block as nullified µops, and the caller must walk it
     * so its branches warm the same tables the core's do.
     */
    bool
    warmBranch(std::uint32_t pc, const Instruction &in, bool taken)
    {
        BpredCheckpoint ckpt;
        bool predictorTaken = bpred.predict(pc, ckpt);
        if (params.oracle.perfectCBP)
            predictorTaken = taken;

        bool effective = predictorTaken;
        FrontEndMode mode = FrontEndMode::Normal;
        const bool isWish = !params.oracle.perfectCBP &&
                            params.wishEnabled &&
                            in.wish != WishKind::None;
        std::uint32_t loopInst = 0;
        if (isWish) {
            const bool highConf =
                params.oracle.perfectConfidence
                    ? (predictorTaken == taken)
                    : conf.estimate(pc, ckpt.globalHistory);
            wish.setBranchPredicate(in.qp);
            loopInst = wish.loopInstance(pc);
            WishDecision d = wish.onWishBranch(pc, in.wish,
                                               predictorTaken, highConf,
                                               in.target);
            effective = d.effectiveTaken;
            mode = d.branchMode;
        }

        // Would the core flush this branch? (resolveBranch(), collapsed
        // to in-order resolve-at-fetch: no flush when the effective
        // direction is right, for predicated jump/join mispredictions,
        // or for a wish-loop late exit.)
        bool flush = false;
        if (effective != taken) {
            if (!isWish || mode != FrontEndMode::LowConf)
                flush = true;
            else if (in.wish == WishKind::Loop)
                flush = taken || wish.loopInstance(pc) == loopInst;
        }

        bpred.updateSpeculative(pc, flush ? taken : effective);
        bpred.train(pc, taken, ckpt);
        // lookup-then-insert keeps the BTB LRU clock in step with the
        // core's access pattern.
        btb.lookup(pc);
        btb.insert(pc, in.target, in.wish, true);
        if (params.wishEnabled && in.wish != WishKind::None)
            conf.update(pc, ckpt.globalHistory, predictorTaken == taken);
        if (flush)
            wish.onFlush();

        return isWish && in.wish != WishKind::Loop && !effective &&
               taken && !flush;
    }

    /**
     * A predicated wish jump/join that is actually taken: the
     * functional path jumps to the target, but the core's front end
     * falls through and fetches the whole skipped block as nullified
     * µops. Those fetches are not inert — every branch in the block
     * predicts, shifts the global history, trains as not-taken, and
     * updates the confidence table — so the warmed tables must see
     * them too. Walk the static image from the branch to its (forward)
     * target exactly as the core's fetch would. Nested predicated
     * skips cannot recurse: a nullified branch is never "actually
     * taken". A non-Br control op would redirect the core's fetch off
     * the linear path; the compiler never places one inside an
     * if-converted block, so simply stop there.
     */
    void
    walkNullifiedBlock(std::uint32_t from, std::uint32_t target)
    {
        for (std::uint32_t i = from + 1; i < target && i < codeSize;
             ++i) {
            const Instruction &blk = code[i];
            if (blk.isControl() && blk.op != Opcode::Br)
                break;
            onInst(i, blk, false);
            if (blk.op == Opcode::Br)
                warmBranch(i, blk, false);
        }
    }

    void
    onCtrl(std::uint32_t pc, const Instruction &in, std::uint32_t nextPc)
    {
        switch (in.op) {
          case Opcode::Jmp:
            btb.lookup(pc);
            btb.insert(pc, in.target, WishKind::None, false);
            break;
          case Opcode::Call:
            btb.lookup(pc);
            btb.insert(pc, in.target, WishKind::None, false);
            ras.push(pc + 1);
            break;
          case Opcode::Ret:
            ras.pop();
            break;
          case Opcode::JmpR:
            itc.update(pc, bpred.globalHistory(), nextPc);
            break;
          default:
            break;
        }
    }

    void
    onMem(Addr ea, unsigned, bool isStore)
    {
        if (isStore)
            memsys.warmStore(ea);
        else
            memsys.warmLoad(ea);
    }
};

} // namespace

FastForward::FastForward(const Program &prog, const SimParams &params)
    : prog_(prog),
      params_(params),
      memsys_(params_, stats_),
      bpred_(makeBranchPredictor(params_, stats_)),
      btb_(params_, stats_),
      ras_(params_.rasEntries),
      itc_(params_.indirectEntries, params_.indirectHistBits, stats_),
      conf_(makeConfidenceEstimator(params_, stats_, *bpred_)),
      wish_(stats_, params_.wishLoopBias),
      pc_(prog.entry())
{
    prog.validate();
    state_.loadData(prog);
    memsys_.warmText(kTextBase,
                     static_cast<Addr>(prog.size()) * kInstBytes);
}

void
FastForward::advanceTo(std::uint64_t targetUops)
{
    if (halted_ || targetUops <= uops_)
        return;
    WarmHooks hooks{params_,
                    *bpred_,
                    *conf_,
                    btb_,
                    ras_,
                    itc_,
                    memsys_,
                    wish_,
                    prog_.codeData(),
                    static_cast<std::uint32_t>(prog_.size())};
    ThreadedResult r =
        threadedRun(prog_, state_, pc_, targetUops - uops_, hooks);
    uops_ += r.steps;
    predFalse_ += r.predFalse;
    pc_ = r.nextPc;
    halted_ = r.halted;
}

void
FastForward::checkpoint(CoreCheckpoint &out) const
{
    out.now = 0;
    out.retiredUops = uops_;
    out.fetchPc = pc_;
    out.fetchHalted = false;
    out.fetchStallUntil = 0;
    out.nextSeq = 1;
    out.nextUid = 1;
    out.hasWish = true;
    out.hasAttribShadow = false;
    out.paramsFingerprint = params_.fingerprint();
    out.progFingerprint = prog_.fingerprint();

    ByteWriter w;
    state_.saveState(w);
    memsys_.saveState(w);
    bpred_->saveState(w);
    conf_->saveState(w);
    btb_.saveState(w);
    ras_.saveState(w);
    itc_.saveState(w);
    wish_.saveState(w);
    out.bytes = w.take();
}

} // namespace wisc
