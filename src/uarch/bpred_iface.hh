/**
 * @file
 * The pluggable direction-predictor and confidence-estimator
 * interfaces. The core owns exactly one IBranchPredictor and one
 * IConfidence, constructed by the factories below from
 * SimParams::predictor / SimParams::confKind (both fingerprinted, so
 * the run cache and fuzzer matrix key on them).
 *
 * Contract shared by every predictor:
 *  - predict() is called once per fetched conditional branch and fills
 *    a BpredCheckpoint the core keeps with the in-flight branch.
 *  - updateSpeculative() shifts the *effective front-end direction*
 *    (which for a predicated-off wish branch can differ from the raw
 *    prediction) into the speculative histories immediately after
 *    predict().
 *  - train() is called in retirement order with the checkpoint taken
 *    at fetch; implementations must reconstruct fetch-time state from
 *    the checkpoint, never from current (younger-speculation) state.
 *  - recover() repairs speculative history from the checkpoint after a
 *    flush, shifting in the resolved branch's true outcome. After
 *    recover(), globalHistory() must equal what a non-speculative
 *    machine observing only resolved outcomes would hold (the zoo
 *    property test enforces this against an oracle).
 *
 * The 64-bit global history register is maintained by every predictor
 * — even bimodal, which does not use it to predict — because the core
 * also feeds it to the confidence estimator and the indirect target
 * cache.
 */

#ifndef WISC_UARCH_BPRED_IFACE_HH_
#define WISC_UARCH_BPRED_IFACE_HH_

#include <cstdint>
#include <memory>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "uarch/params.hh"

namespace wisc {

/** Snapshot of speculative predictor state taken at each branch fetch,
 *  used to repair the predictor on a pipeline flush and to train
 *  against fetch-time (not retirement-time) state. */
struct BpredCheckpoint
{
    std::uint64_t globalHistory = 0;
    std::uint16_t localHistory = 0; ///< prior PAs history of this branch
    /** Fetch-time component predictions (hybrid). The McFarling
     *  selector must be trained against what each component actually
     *  predicted at fetch: by retirement, other branches have retrained
     *  the shared counters, so re-deriving the component predictions
     *  from them can train the selector on a prediction neither
     *  component made. */
    bool gshareTaken = false;
    bool pasTaken = false;
};

/** Direction-predictor interface (see the file comment for the
 *  predict/updateSpeculative/train/recover contract). */
class IBranchPredictor
{
  public:
    virtual ~IBranchPredictor() = default;

    /** Predict the conditional branch at 'pc' (instruction index),
     *  filling the checkpoint the caller must keep for recovery. */
    virtual bool predict(std::uint32_t pc, BpredCheckpoint &ckpt) = 0;

    /** Speculatively shift the effective direction into the histories. */
    virtual void updateSpeculative(std::uint32_t pc, bool predTaken) = 0;

    /** Train with the true outcome (retirement order). */
    virtual void train(std::uint32_t pc, bool taken,
                       const BpredCheckpoint &ckpt) = 0;

    /** Restore speculative history from a checkpoint after a flush; the
     *  resolved branch's true outcome is shifted in. */
    virtual void recover(std::uint32_t pc, bool actualTaken,
                         const BpredCheckpoint &ckpt) = 0;

    virtual std::uint64_t globalHistory() const = 0;

    /** Serialize all value state — tables, histories, use clocks — for
     *  a warm-state checkpoint. Counter handles are never serialized;
     *  statistics stay with whichever StatSet the owner runs under. */
    virtual void saveState(ByteWriter &w) const = 0;

    /** Restore state written by saveState() into an identically
     *  configured predictor (table geometry comes from SimParams and is
     *  asserted, never resized, on restore). */
    virtual void restoreState(ByteReader &r) = 0;
};

/** Common global-history plumbing. Derived predictors that keep extra
 *  speculative state (the hybrid's per-address histories) override
 *  updateSpeculative()/recover() and call these from the override. */
class BranchPredictorBase : public IBranchPredictor
{
  public:
    void
    updateSpeculative(std::uint32_t, bool predTaken) override
    {
        hist_ = (hist_ << 1) | (predTaken ? 1 : 0);
    }

    void
    recover(std::uint32_t, bool actualTaken,
            const BpredCheckpoint &ckpt) override
    {
        hist_ = (ckpt.globalHistory << 1) | (actualTaken ? 1 : 0);
    }

    std::uint64_t globalHistory() const override { return hist_; }

  protected:
    std::uint64_t hist_ = 0;
};

/** Confidence-estimator interface: drives the wish-branch
 *  predicate/branch decision (§3.5.5). */
class IConfidence
{
  public:
    virtual ~IConfidence() = default;

    /** True = high confidence for the branch at 'pc' under 'hist'. */
    virtual bool estimate(std::uint32_t pc, std::uint64_t hist) const = 0;

    /** Train with the prediction outcome (call at retirement).
     *  Estimators that piggyback on predictor state ignore this. */
    virtual void update(std::uint32_t pc, std::uint64_t hist,
                        bool correct) = 0;

    virtual void reset() = 0;

    /** Checkpoint value state (see IBranchPredictor::saveState).
     *  Stateless estimators (TAGE piggyback) serialize nothing. */
    virtual void saveState(ByteWriter &w) const = 0;
    virtual void restoreState(ByteReader &r) = 0;
};

/** Construct the direction predictor selected by params.predictor. */
std::unique_ptr<IBranchPredictor>
makeBranchPredictor(const SimParams &params, StatSet &stats);

/** Construct the confidence estimator selected by params.confKind.
 *  ConfKind::Tage reads the (live) predictor's provider state, so the
 *  predictor reference must outlive the estimator; it is a hard
 *  configuration error unless `bpred` is a TagePredictor. */
std::unique_ptr<IConfidence>
makeConfidenceEstimator(const SimParams &params, StatSet &stats,
                        const IBranchPredictor &bpred);

} // namespace wisc

#endif // WISC_UARCH_BPRED_IFACE_HH_
