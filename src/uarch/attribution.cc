#include "uarch/attribution.hh"

#include "common/log.hh"

namespace wisc {

const char *
flushCauseName(FlushCause c)
{
    switch (c) {
      case FlushCause::Normal:         return "normal";
      case FlushCause::WishHighConf:   return "wish_high";
      case FlushCause::WishLoopEarly:  return "loop_early";
      case FlushCause::WishLoopNoExit: return "loop_noexit";
    }
    return "?";
}

AttributionEngine::AttributionEngine(StatSet &stats, bool cpiStack,
                                     bool branchProfile)
    : stats_(stats), cpiStack_(cpiStack), branchProfile_(branchProfile)
{
}

AttributionEngine::Cause
AttributionEngine::flushCauseSlot(FlushCause c)
{
    switch (c) {
      case FlushCause::Normal:         return kFlushNormal;
      case FlushCause::WishHighConf:   return kFlushWishHigh;
      case FlushCause::WishLoopEarly:  return kFlushLoopEarly;
      case FlushCause::WishLoopNoExit: return kFlushLoopNoExit;
    }
    return kFlushNormal;
}

void
AttributionEngine::onRetire(const RetireProbe &p)
{
    ++retiredThisCycle_;
    if (p.predFalse)
        ++retiredNopsThisCycle_;

    // Post-redirect work reaching retirement ends the flush shadow.
    if (inFlushShadow_ && p.seq > shadowSeq_)
        inFlushShadow_ = false;

    if (branchProfile_ && p.isCondBr) {
        Profile &pr = profiles_[p.pc];
        ++pr.cols[kBpCount];
        if (p.mispredicted)
            ++pr.cols[kBpMispred];
        if (p.confValid) {
            // "Correct" here means the raw prediction the confidence
            // estimate judged — the quantity Figures 11/13 tabulate.
            std::size_t col =
                p.highConf ? (p.mispredicted ? kBpHiWrong : kBpHiCorrect)
                           : (p.mispredicted ? kBpLoWrong : kBpLoCorrect);
            ++pr.cols[col];
        }
    }
}

void
AttributionEngine::onFlush(const FlushProbe &p)
{
    // A younger flush supersedes an unresolved older one: by the time
    // the second flush fires, the first one's refill was consumed by
    // wrong-path work anyway.
    inFlushShadow_ = true;
    shadowCause_ = p.cause;
    shadowSeq_ = p.seq;
    shadowPc_ = p.pc;
}

void
AttributionEngine::onCycle(const CycleProbe &p)
{
    Cause cause;
    if (retiredThisCycle_ > 0) {
        // The machine did useful work this cycle unless everything it
        // retired was a predicated-FALSE NOP — or retirement ended the
        // cycle blocked on a predication-delayed head, in which case
        // the partial retire is the serialization showing through (the
        // probe fires after the retire stage, so the head is exactly
        // the µop that failed to retire).
        cause = retiredNopsThisCycle_ == retiredThisCycle_ ? kPredNop
                : p.headPredWait                           ? kPredWait
                                                           : kBase;
    } else if (inFlushShadow_) {
        cause = flushCauseSlot(shadowCause_);
        if (branchProfile_)
            ++profiles_[shadowPc_].cols[kBpFlushCycles];
    } else if (p.robEmpty) {
        cause = kFetchStall;
    } else if (p.headPredWait) {
        // Takes priority over a head-load miss: when the head is a
        // load whose issue was delayed by a predication dependence,
        // the dependence is what *exposed* the miss latency — with
        // NO-DEPEND the load issues early and the miss overlaps older
        // work. Charging it to the cache would hide exactly the
        // serialization Figure 2 measures.
        cause = kPredWait;
    } else if (p.headLoadMiss) {
        cause = kCacheMiss;
    } else if (p.renameBlocked) {
        cause = kRobIqFull;
    } else {
        cause = kBase; // head executing: plain computation latency
    }
    ++cycles_[cause];
    ++classified_;

    retiredThisCycle_ = 0;
    retiredNopsThisCycle_ = 0;
}

void
AttributionEngine::saveShadow(ByteWriter &w) const
{
    w.b(inFlushShadow_);
    w.u8(static_cast<std::uint8_t>(shadowCause_));
    w.u64(shadowSeq_);
    w.u32(shadowPc_);
}

void
AttributionEngine::restoreShadow(ByteReader &r)
{
    inFlushShadow_ = r.b();
    shadowCause_ = static_cast<FlushCause>(r.u8());
    shadowSeq_ = r.u64();
    shadowPc_ = r.u32();
}

void
AttributionEngine::finish(Cycle totalCycles)
{
    wisc_assert(classified_ == totalCycles,
                "attribution classified ", classified_, " cycles but the "
                "core ran ", totalCycles,
                " — a cycle escaped the CycleProbe");
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < kNumCauses; ++i)
        sum += cycles_[i];
    wisc_assert(sum == totalCycles,
                "CPI stack sums to ", sum, " cycles, core ran ",
                totalCycles, " — attribution is not a partition");

    if (cpiStack_) {
        static const char *const kName[kNumCauses] = {
            "attrib.base",
            "attrib.pred_nop",
            "attrib.pred_wait",
            "attrib.flush_normal",
            "attrib.flush_wish_high",
            "attrib.flush_loop_early",
            "attrib.flush_loop_noexit",
            "attrib.cache_miss",
            "attrib.fetch_stall",
            "attrib.rob_iq_full",
        };
        static const char *const kDesc[kNumCauses] = {
            "cycles retiring useful work or executing the ROB head",
            "cycles retiring only predicated-FALSE NOPs",
            "cycles retirement stopped on a predication-delayed head",
            "no-retire cycles: normal-branch flush shadow",
            "no-retire cycles: high-conf wish branch flush shadow",
            "no-retire cycles: wish-loop early-exit flush shadow",
            "no-retire cycles: wish-loop no-exit flush shadow",
            "no-retire cycles: head load missing in the D-cache",
            "no-retire cycles: ROB empty, front end refilling",
            "no-retire cycles: rename blocked on ROB/IQ capacity",
        };
        for (unsigned i = 0; i < kNumCauses; ++i)
            stats_.counter(kName[i], kDesc[i]) += cycles_[i];
    }

    if (branchProfile_) {
        StatTable &t = stats_.table(
            "core.branch_profile",
            {"count", "mispred", "hi_correct", "hi_wrong", "lo_correct",
             "lo_wrong", "flush_cycles"},
            "per-static-branch retire/confidence/flush profile");
        for (const auto &kv : profiles_) {
            auto &row = t.row(kv.first);
            for (std::size_t c = 0; c < kBpNumCols; ++c)
                row[c] += kv.second.cols[c];
        }
    }
}

} // namespace wisc
