/**
 * @file
 * An alternative confidence estimator (the paper's §7 calls for "more
 * accurate confidence estimation mechanisms"): an untagged per-PC table
 * of asymmetric up/down counters. Each correct prediction adds 1, each
 * misprediction subtracts `downStep` (saturating at 0); confidence is
 * high above a threshold. Unlike the streak-based JRS miss distance
 * counter, the up/down counter estimates the *rate* of mispredictions,
 * so a branch that mispredicts rarely but regularly (say 3%) can still
 * reach high confidence — which is exactly the mcf case where JRS's
 * streak reset is too pessimistic.
 */

#ifndef WISC_UARCH_UPDOWN_CONF_HH_
#define WISC_UARCH_UPDOWN_CONF_HH_

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/params.hh"

namespace wisc {

class UpDownConfidenceEstimator final : public IConfidence
{
  public:
    UpDownConfidenceEstimator(const SimParams &params, StatSet &stats);

    bool estimate(std::uint32_t pc, std::uint64_t hist) const override;
    void update(std::uint32_t pc, std::uint64_t hist,
                bool correct) override;
    void reset() override;

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    std::size_t index(std::uint32_t pc, std::uint64_t hist) const;

    unsigned entries_;
    unsigned histBits_;
    unsigned max_;
    unsigned threshold_;
    unsigned downStep_;
    std::vector<std::uint16_t> ctrs_;

    Counter *queries_;
    Counter *highs_;
};

} // namespace wisc

#endif // WISC_UARCH_UPDOWN_CONF_HH_
