/**
 * @file
 * TAGE direction predictor (Seznec & Michaud, "A case for (partially)
 * TAgged GEometric history length branch predictors", JILP 2006),
 * scaled to the zoo's needs: a bimodal base table T0 plus N tagged
 * tables T1..TN indexed by hashes of geometrically growing slices of
 * the global history. The hitting table with the longest history is
 * the *provider*; the next hit (or the base table) is the *alternate*.
 * Each tagged entry carries a 3-bit direction counter, a partial tag,
 * and a usefulness counter that arbitrates victim selection when a
 * misprediction allocates into a longer table.
 *
 * Deliberate simplifications relative to the championship versions
 * (documented in DESIGN.md): history slices are hashed whole through
 * the splitmix64 finalizer instead of folded shift registers (same
 * mixing quality, no extra speculative state to checkpoint — histories
 * are capped at 64 bits so the per-branch checkpoint stays one word),
 * allocation picks the first u==0 candidate deterministically instead
 * of pseudo-randomly, and usefulness counters age by halving every
 * tageResetPeriod trains.
 *
 * The provider state doubles as a free confidence estimator
 * (TageConfidence): a saturated provider counter on a proven entry is
 * "high confidence", which the wish-branch machinery pits against the
 * JRS and up/down estimators.
 */

#ifndef WISC_UARCH_TAGE_HH_
#define WISC_UARCH_TAGE_HH_

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/params.hh"

namespace wisc {

class TagePredictor final : public BranchPredictorBase
{
  public:
    TagePredictor(const SimParams &params, StatSet &stats);

    bool predict(std::uint32_t pc, BpredCheckpoint &ckpt) override;
    void train(std::uint32_t pc, bool taken,
               const BpredCheckpoint &ckpt) override;

    /** Result of one table walk (exposed for tests/confidence). */
    struct Lookup
    {
        int provider = -1; ///< tagged table of the provider; -1 = base
        int alt = -1;      ///< next-longest hit; -1 = base
        bool providerTaken = false;
        bool altTaken = false;
        bool taken = false; ///< final prediction
        bool weak = false;  ///< provider counter at a weak value
        std::uint8_t providerCtr = 0;
        std::uint8_t providerU = 0;
    };

    /** Pure table walk against an explicit history (predict() uses the
     *  live speculative history, train() the checkpointed one). */
    Lookup lookup(std::uint32_t pc, std::uint64_t hist) const;

    /** Free confidence signal: a provider hit with a saturated-ish
     *  counter on a proven (u > 0 or non-weak) entry, or a saturated
     *  base-table counter when no tagged table hits. */
    bool confident(std::uint32_t pc, std::uint64_t hist) const;

    /** History length of tagged table t (geometric; for tests/docs). */
    unsigned historyLength(unsigned t) const { return histLen_[t]; }

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint8_t ctr = 0; ///< 3-bit direction, taken if >= 4
        std::uint8_t u = 0;   ///< usefulness
    };

    std::uint64_t hashOf(unsigned t, std::uint32_t pc,
                         std::uint64_t hist) const;
    std::size_t indexOf(unsigned t, std::uint32_t pc,
                        std::uint64_t hist) const;
    std::uint16_t tagOf(unsigned t, std::uint32_t pc,
                        std::uint64_t hist) const;
    std::size_t baseIndex(std::uint32_t pc) const;
    Entry &at(unsigned t, std::uint32_t pc, std::uint64_t hist);

    unsigned numTables_;
    unsigned entriesLog2_;
    unsigned tagBits_;
    unsigned uBits_;
    std::uint64_t resetMask_; ///< tageResetPeriod - 1 (period is pow2)
    std::vector<unsigned> histLen_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<std::uint8_t> base_; ///< 2-bit counters
    std::uint64_t trains_ = 0;

    Counter *providerHits_;
    Counter *altOverrides_;
    Counter *allocs_;
    Counter *allocFails_;
};

/** IConfidence adapter over the TAGE provider state. Estimation is
 *  free (no dedicated table); update() is a no-op because the
 *  predictor's own training maintains the state. Registers the same
 *  conf.queries / conf.high_estimates counters as the JRS and up/down
 *  estimators, so downstream readers are estimator-agnostic. */
class TageConfidence final : public IConfidence
{
  public:
    TageConfidence(const TagePredictor &pred, StatSet &stats);

    bool estimate(std::uint32_t pc, std::uint64_t hist) const override;
    void update(std::uint32_t, std::uint64_t, bool) override {}
    void reset() override {}

    /** All state lives in the predictor; nothing to checkpoint. */
    void saveState(ByteWriter &) const override {}
    void restoreState(ByteReader &) override {}

  private:
    const TagePredictor &pred_;
    Counter *queries_;
    Counter *highs_;
};

} // namespace wisc

#endif // WISC_UARCH_TAGE_HH_
