/**
 * @file
 * Functional fast-forward engine for sampled simulation (SMARTS-style,
 * DESIGN.md: sampling).
 *
 * Drives the threaded-code functional engine (arch/threaded.hh) over
 * the architectural path while continuously warming the long-history
 * µarchitectural structures a detailed window depends on: data caches
 * (tag/LRU only, via MemorySystem::warmLoad/warmStore — no fill-timing
 * bookkeeping, so checkpoints carry an empty fill ledger and a zero
 * cycle clock), the direction predictor, the confidence estimator, the
 * BTB, the return address stack, and the indirect target cache.
 * Warming mirrors what the core's correct path does: per conditional
 * branch predict → wish decision → shift the *effective* outcome →
 * train against the fetch-time checkpoint; per control transfer the
 * BTB/RAS/ITC updates of processControl()/stageRetire().
 *
 * The wish decision is replicated, not skipped, because it decides the
 * machine's *history convention*: the core shifts the effective
 * direction into the global history and only repairs it when a flush
 * recovers the predictor — a correctly-predicated low-confidence wish
 * branch never flushes, so its history bit stays the effective (fall
 * through) direction even when the branch was architecturally taken.
 * Warming with actual outcomes instead would build predictor,
 * confidence, and indirect-target tables indexed under a history the
 * core never produces; restored windows would then mispredict more,
 * predicate more, and systematically overestimate CPI. The engine
 * therefore carries a full WishEngine replica whose state is included
 * in checkpoints, so windows resume with a warm mode machine and warm
 * per-loop trip state too.
 *
 * Truly pipeline-local state — in-flight µops, fetch stalls — is
 * re-warmed by each window's detailed-warmup prefix
 * (SamplingParams::warmupUops).
 *
 * The engine owns a private StatSet so the warming structures' counter
 * traffic never pollutes the caller's statistics.
 */

#ifndef WISC_UARCH_FASTFWD_HH_
#define WISC_UARCH_FASTFWD_HH_

#include <cstdint>
#include <memory>

#include "arch/state.hh"
#include "common/stats.hh"
#include "isa/program.hh"
#include "uarch/bpred.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/cache.hh"
#include "uarch/checkpoint.hh"
#include "uarch/params.hh"
#include "uarch/wish.hh"

namespace wisc {

class FastForward
{
  public:
    /** Binds to (and must not outlive) 'prog'. Warms the text image
     *  immediately, exactly as Core::beginRun() does. */
    FastForward(const Program &prog, const SimParams &params);

    /**
     * Execute forward until `targetUops` *total* executed instructions
     * (whole-run coordinate), or the program halts. Monotone: a target
     * at or below the current position is a no-op, so callers cannot
     * underflow the step budget. Never overshoots by even one
     * instruction (the threaded engine checks its budget before each
     * dispatch).
     */
    void advanceTo(std::uint64_t targetUops);

    /** Instructions executed so far (== retired µops of a detailed run
     *  under the C-style predication mechanism without NO-FETCH; the
     *  sampled runner asserts that equivalence). */
    std::uint64_t uops() const { return uops_; }

    /** Instructions nullified by a FALSE qualifying predicate so far. */
    std::uint64_t predFalse() const { return predFalse_; }

    bool halted() const { return halted_; }

    /** Current architectural state (exact-result extraction: result
     *  register, memory fingerprint). */
    const ArchState &archState() const { return state_; }

    /** Capture a warm-state checkpoint at the current position,
     *  restorable into a Core via beginRun(prog, ckpt). now == 0 and
     *  the fill ledger is empty (see file comment); the wish-engine
     *  replica state is included (hasWish), the attribution shadow
     *  section is absent (cold-started). */
    void checkpoint(CoreCheckpoint &out) const;

  private:
    const Program &prog_;
    SimParams params_;
    StatSet stats_; ///< private sink for warming-structure counters

    ArchState state_;
    MemorySystem memsys_;
    std::unique_ptr<IBranchPredictor> bpred_;
    Btb btb_;
    ReturnAddressStack ras_;
    IndirectTargetCache itc_;
    std::unique_ptr<IConfidence> conf_;
    WishEngine wish_;

    std::uint32_t pc_;
    std::uint64_t uops_ = 0;
    std::uint64_t predFalse_ = 0;
    bool halted_ = false;
};

} // namespace wisc

#endif // WISC_UARCH_FASTFWD_HH_
