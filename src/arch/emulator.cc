#include "arch/emulator.hh"

#include "arch/executor.hh"
#include "arch/threaded.hh"
#include "common/log.hh"

namespace wisc {

namespace {

/** threadedRun() hooks that maintain the compiler's edge profile. */
struct ProfileHooks
{
    Profile *profile;

    void onInst(std::uint32_t pc, const Instruction &, bool qpTrue)
    {
        InstProfile &p = profile->perInst[pc];
        ++p.execCount;
        if (qpTrue)
            ++p.qpTrueCount;
    }
    void onBranch(std::uint32_t pc, const Instruction &, bool taken)
    {
        if (taken)
            ++profile->perInst[pc].takenCount;
    }
    void onCtrl(std::uint32_t, const Instruction &, std::uint32_t) {}
    void onMem(Addr, unsigned, bool) {}
};

} // namespace

double
Profile::takenProb(std::uint32_t idx) const
{
    if (idx >= perInst.size() || perInst[idx].execCount == 0)
        return 0.5;
    return static_cast<double>(perInst[idx].takenCount) /
           static_cast<double>(perInst[idx].execCount);
}

double
Profile::mispredictEstimate(std::uint32_t idx) const
{
    double p = takenProb(idx);
    return p < 1.0 - p ? p : 1.0 - p;
}

EmuResult
Emulator::run(const Program &prog, Profile *profile,
              std::uint64_t maxSteps, EmuDispatch dispatch)
{
    prog.validate();

    state_.reset();
    state_.loadData(prog);

    if (profile) {
        profile->perInst.assign(prog.size(), InstProfile{});
        profile->dynInsts = 0;
    }

    EmuResult res;
    std::uint32_t pc = prog.entry();
    const auto code_size = static_cast<std::uint32_t>(prog.size());

    if (dispatch == EmuDispatch::Threaded) {
        ThreadedResult tr =
            profile ? threadedRun(prog, state_, pc, maxSteps,
                                  ProfileHooks{profile})
                    : threadedRun(prog, state_, pc, maxSteps,
                                  NullExecHooks{});
        res.dynInsts = tr.steps;
        res.predFalse = tr.predFalse;
        res.halted = tr.halted;
        if (profile)
            profile->dynInsts = res.dynInsts;
        res.resultReg = state_.readReg(4);
        res.memFingerprint = state_.mem().fingerprint();
        return res;
    }

    while (res.dynInsts < maxSteps) {
        wisc_assert(pc < code_size, "pc ", pc, " escaped the program");
        const Instruction &inst = prog.code()[pc];
        StepResult step = executeInst(inst, pc, code_size, state_, nullptr);
        wisc_assert(!step.badTarget,
                    "indirect branch to a bad target on the correct path "
                    "at instruction ", pc);

        ++res.dynInsts;
        if (!step.qpTrue)
            ++res.predFalse;

        if (profile) {
            InstProfile &p = profile->perInst[pc];
            ++p.execCount;
            if (step.qpTrue)
                ++p.qpTrueCount;
            if (inst.op == Opcode::Br && step.taken)
                ++p.takenCount;
        }

        if (step.halted) {
            res.halted = true;
            break;
        }
        pc = step.nextIndex;
    }

    if (profile)
        profile->dynInsts = res.dynInsts;

    res.resultReg = state_.readReg(4);
    res.memFingerprint = state_.mem().fingerprint();
    return res;
}

} // namespace wisc
