/**
 * @file
 * Threaded-code functional execution engine: the high-throughput
 * counterpart of the reference switch executor (arch/executor.cc).
 *
 * The switch emulator pays one StepResult round trip per instruction —
 * build the result struct, return it, reinterpret it in the caller's
 * loop. The threaded engine instead drives a computed-goto dispatch
 * loop from a per-PC handler table built once from the program's
 * static image (the same predecode idea the timing core uses): each
 * handler finishes by jumping straight to the next instruction's
 * handler, so the hot path is a single indirect branch per µop with no
 * struct traffic and no per-step function call. On compilers without
 * the GNU labels-as-values extension the same entry point falls back
 * to a loop over executeInst(), preserving semantics exactly.
 *
 * Semantics are intentionally *written twice* (flattened handlers here,
 * the switch in executor.cc) but *defined once*: all arithmetic edge
 * cases live in arch/exec_inline.hh, and the differential fuzzer's
 * dispatch mode cross-checks every architectural bit between the two
 * engines on every generated program.
 *
 * The Hooks template parameter is how the sampled-simulation fast
 * forward observes the instruction stream (branch outcomes, control
 * transfers, data addresses) without the plain emulator paying for
 * observation it does not want: with NullExecHooks every hook call
 * inlines to nothing.
 */

#ifndef WISC_ARCH_THREADED_HH_
#define WISC_ARCH_THREADED_HH_

#include <cstdint>
#include <vector>

#include "arch/exec_inline.hh"
#include "arch/executor.hh"
#include "arch/state.hh"
#include "common/log.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace wisc {

/** Outcome of one threadedRun() leg. */
struct ThreadedResult
{
    std::uint64_t steps = 0;     ///< instructions executed (incl. Halt)
    std::uint64_t predFalse = 0; ///< instructions nullified by FALSE qp
    std::uint32_t nextPc = 0;    ///< resume index (the Halt's own index
                                 ///< when halted)
    bool halted = false;         ///< a Halt with TRUE qp executed
};

/** Do-nothing observation hooks; every call compiles away. */
struct NullExecHooks
{
    void onInst(std::uint32_t, const Instruction &, bool) {}
    void onBranch(std::uint32_t, const Instruction &, bool) {}
    void onCtrl(std::uint32_t, const Instruction &, std::uint32_t) {}
    void onMem(Addr, unsigned, bool) {}
};

/**
 * Execute up to 'maxSteps' instructions of 'prog' against 'state',
 * starting at instruction index 'startPc'. Stops early when a Halt
 * with a TRUE qualifying predicate executes. Resumable: feed the
 * returned nextPc back in to continue exactly where the leg stopped.
 *
 * Hook contract (all per *executed* instruction, i.e. on the
 * architectural path):
 *   onInst(pc, inst, qpTrue)      every instruction;
 *   onBranch(pc, inst, taken)     every Br, taken == qpTrue (a FALSE
 *                                 qp is how WISC encodes not-taken);
 *   onCtrl(pc, inst, nextPc)      every taken Jmp/Call/JmpR/Ret;
 *   onMem(ea, size, isStore)      every non-nullified Ld/St/Ld1/St1.
 */
template <class Hooks>
ThreadedResult
threadedRun(const Program &prog, ArchState &state, std::uint32_t startPc,
            std::uint64_t maxSteps, Hooks &&hooks)
{
    const Instruction *const code = prog.codeData();
    const std::uint32_t codeSize = static_cast<std::uint32_t>(prog.size());

    ThreadedResult res;
    res.nextPc = startPc;
    if (maxSteps == 0)
        return res;

    std::uint32_t pc = startPc;
    std::uint64_t steps = 0;
    std::uint64_t predFalse = 0;
    const Instruction *inst = nullptr;

#if defined(__GNUC__) || defined(__clang__)
    // One handler label per opcode, in exact Opcode enum order.
    static const void *const kOp[] = {
        &&op_Add,    &&op_Sub,    &&op_And,    &&op_Or,     &&op_Xor,
        &&op_Shl,    &&op_Shr,    &&op_Sra,    &&op_Mul,    &&op_Div,
        &&op_Rem,    &&op_AddI,   &&op_AndI,   &&op_OrI,    &&op_XorI,
        &&op_ShlI,   &&op_ShrI,   &&op_SraI,   &&op_MulI,   &&op_Li,
        &&op_CmpEq,  &&op_CmpNe,  &&op_CmpLt,  &&op_CmpLe,  &&op_CmpGt,
        &&op_CmpGe,  &&op_CmpLtU, &&op_CmpGeU, &&op_CmpEqI, &&op_CmpNeI,
        &&op_CmpLtI, &&op_CmpLeI, &&op_CmpGtI, &&op_CmpGeI, &&op_PSet,
        &&op_PNot,   &&op_PAnd,   &&op_POr,    &&op_Ld,     &&op_St,
        &&op_Ld1,    &&op_St1,    &&op_Br,     &&op_Jmp,    &&op_JmpR,
        &&op_Call,   &&op_Ret,    &&op_Nop,    &&op_Halt,
    };
    static_assert(sizeof(kOp) / sizeof(kOp[0]) ==
                      static_cast<std::size_t>(Opcode::NumOpcodes),
                  "handler table must cover every opcode, in enum order");

    // Per-PC predecoded handler table: dispatching loads the handler
    // address straight from the instruction index, skipping the
    // opcode-table indirection on every step.
    std::vector<const void *> tbl(codeSize);
    for (std::uint32_t i = 0; i < codeSize; ++i)
        tbl[i] = kOp[static_cast<unsigned>(code[i].op)];

    // Budget check *before* executing, matching the reference loop's
    // `while (dynInsts < maxSteps)` — a zero budget runs nothing, and
    // a leg never overshoots by even one instruction.
#define WISC_THREADED_DISPATCH()                                          \
    do {                                                                  \
        if (steps >= maxSteps)                                            \
            goto out;                                                     \
        wisc_assert(pc < codeSize, "pc ", pc,                             \
                    " escaped the program (codeSize ", codeSize, ")");    \
        inst = &code[pc];                                                 \
        ++steps;                                                          \
        if (!state.readPred(inst->qp))                                    \
            goto qp_false;                                                \
        hooks.onInst(pc, *inst, true);                                    \
        goto *tbl[pc];                                                    \
    } while (0)

#define WISC_THREADED_NEXT()                                              \
    do {                                                                  \
        ++pc;                                                             \
        WISC_THREADED_DISPATCH();                                         \
    } while (0)

// Operand shorthands, valid inside handlers only.
#define WA state.readReg(inst->rs1)
#define WB state.readReg(inst->rs2)
#define WIM (inst->imm)
#define WWR(v) state.writeReg(inst->rd, (v))

    WISC_THREADED_DISPATCH();

qp_false:
    // Nullified: no architectural writes, branches fall through — with
    // the one exception of unconditional compares, which clear both
    // predicate destinations (IA-64 cmp.unc semantics).
    ++predFalse;
    hooks.onInst(pc, *inst, false);
    if (inst->unc && inst->writesPred()) {
        if (inst->pd != kPredNone)
            state.writePred(inst->pd, false);
        if (inst->pd2 != kPredNone)
            state.writePred(inst->pd2, false);
    }
    if (inst->op == Opcode::Br)
        hooks.onBranch(pc, *inst, false);
    WISC_THREADED_NEXT();

op_Add:  WWR(wrapAdd(WA, WB)); WISC_THREADED_NEXT();
op_Sub:  WWR(wrapSub(WA, WB)); WISC_THREADED_NEXT();
op_And:  WWR(WA & WB); WISC_THREADED_NEXT();
op_Or:   WWR(WA | WB); WISC_THREADED_NEXT();
op_Xor:  WWR(WA ^ WB); WISC_THREADED_NEXT();
op_Shl:
    WWR(static_cast<Word>(static_cast<UWord>(WA) << (WB & 63)));
    WISC_THREADED_NEXT();
op_Shr:
    WWR(static_cast<Word>(static_cast<UWord>(WA) >> (WB & 63)));
    WISC_THREADED_NEXT();
op_Sra:  WWR(WA >> (WB & 63)); WISC_THREADED_NEXT();
op_Mul:  WWR(wrapMul(WA, WB)); WISC_THREADED_NEXT();
op_Div:  WWR(safeDiv(WA, WB)); WISC_THREADED_NEXT();
op_Rem:  WWR(safeRem(WA, WB)); WISC_THREADED_NEXT();

op_AddI: WWR(wrapAdd(WA, WIM)); WISC_THREADED_NEXT();
op_AndI: WWR(WA & WIM); WISC_THREADED_NEXT();
op_OrI:  WWR(WA | WIM); WISC_THREADED_NEXT();
op_XorI: WWR(WA ^ WIM); WISC_THREADED_NEXT();
op_ShlI:
    WWR(static_cast<Word>(static_cast<UWord>(WA) << (WIM & 63)));
    WISC_THREADED_NEXT();
op_ShrI:
    WWR(static_cast<Word>(static_cast<UWord>(WA) >> (WIM & 63)));
    WISC_THREADED_NEXT();
op_SraI: WWR(WA >> (WIM & 63)); WISC_THREADED_NEXT();
op_MulI: WWR(wrapMul(WA, WIM)); WISC_THREADED_NEXT();
op_Li:   WWR(WIM); WISC_THREADED_NEXT();

op_CmpEq:  execWriteCmp(state, *inst, WA == WB); WISC_THREADED_NEXT();
op_CmpNe:  execWriteCmp(state, *inst, WA != WB); WISC_THREADED_NEXT();
op_CmpLt:  execWriteCmp(state, *inst, WA < WB); WISC_THREADED_NEXT();
op_CmpLe:  execWriteCmp(state, *inst, WA <= WB); WISC_THREADED_NEXT();
op_CmpGt:  execWriteCmp(state, *inst, WA > WB); WISC_THREADED_NEXT();
op_CmpGe:  execWriteCmp(state, *inst, WA >= WB); WISC_THREADED_NEXT();
op_CmpLtU:
    execWriteCmp(state, *inst,
                 static_cast<UWord>(WA) < static_cast<UWord>(WB));
    WISC_THREADED_NEXT();
op_CmpGeU:
    execWriteCmp(state, *inst,
                 static_cast<UWord>(WA) >= static_cast<UWord>(WB));
    WISC_THREADED_NEXT();
op_CmpEqI: execWriteCmp(state, *inst, WA == WIM); WISC_THREADED_NEXT();
op_CmpNeI: execWriteCmp(state, *inst, WA != WIM); WISC_THREADED_NEXT();
op_CmpLtI: execWriteCmp(state, *inst, WA < WIM); WISC_THREADED_NEXT();
op_CmpLeI: execWriteCmp(state, *inst, WA <= WIM); WISC_THREADED_NEXT();
op_CmpGtI: execWriteCmp(state, *inst, WA > WIM); WISC_THREADED_NEXT();
op_CmpGeI: execWriteCmp(state, *inst, WA >= WIM); WISC_THREADED_NEXT();

op_PSet:
    if (inst->pd != kPredNone)
        state.writePred(inst->pd, (WIM & 1) != 0);
    WISC_THREADED_NEXT();
op_PNot:
    if (inst->pd != kPredNone)
        state.writePred(inst->pd, !state.readPred(inst->ps));
    WISC_THREADED_NEXT();
op_PAnd:
    if (inst->pd != kPredNone)
        state.writePred(inst->pd, state.readPred(inst->ps) &&
                                      state.readPred(inst->ps2));
    WISC_THREADED_NEXT();
op_POr:
    if (inst->pd != kPredNone)
        state.writePred(inst->pd, state.readPred(inst->ps) ||
                                      state.readPred(inst->ps2));
    WISC_THREADED_NEXT();

op_Ld: {
    Addr ea = static_cast<Addr>(wrapAdd(WA, WIM));
    hooks.onMem(ea, 8, false);
    WWR(static_cast<Word>(state.mem().readWord(ea)));
    WISC_THREADED_NEXT();
}
op_St: {
    Addr ea = static_cast<Addr>(wrapAdd(WA, WIM));
    hooks.onMem(ea, 8, true);
    state.mem().writeWord(ea, static_cast<UWord>(WB));
    WISC_THREADED_NEXT();
}
op_Ld1: {
    Addr ea = static_cast<Addr>(wrapAdd(WA, WIM));
    hooks.onMem(ea, 1, false);
    WWR(static_cast<Word>(state.mem().readByte(ea)));
    WISC_THREADED_NEXT();
}
op_St1: {
    Addr ea = static_cast<Addr>(wrapAdd(WA, WIM));
    hooks.onMem(ea, 1, true);
    state.mem().writeByte(ea, static_cast<std::uint8_t>(WB));
    WISC_THREADED_NEXT();
}

op_Br:
    // The qualifying predicate *is* the branch condition; reaching
    // this handler means it was TRUE, so the branch is taken.
    hooks.onBranch(pc, *inst, true);
    pc = inst->target;
    WISC_THREADED_DISPATCH();
op_Jmp:
    hooks.onCtrl(pc, *inst, inst->target);
    pc = inst->target;
    WISC_THREADED_DISPATCH();
op_Call:
    WWR(static_cast<Word>(instAddr(pc + 1)));
    hooks.onCtrl(pc, *inst, inst->target);
    pc = inst->target;
    WISC_THREADED_DISPATCH();
op_JmpR:
op_Ret: {
    Addr t = static_cast<Addr>(WA);
    // The architectural path never decodes a bad indirect target (the
    // reference emulator asserts the same); only speculative wrong
    // paths can, and they never reach a functional engine.
    wisc_assert(t >= kTextBase && (t - kTextBase) % kInstBytes == 0 &&
                    addrToIndex(t) < codeSize,
                "indirect branch to bad target at instruction ", pc);
    std::uint32_t tgt = static_cast<std::uint32_t>(addrToIndex(t));
    hooks.onCtrl(pc, *inst, tgt);
    pc = tgt;
    WISC_THREADED_DISPATCH();
}

op_Nop:
    WISC_THREADED_NEXT();
op_Halt:
    res.halted = true;
    goto out; // pc stays on the Halt, matching the reference emulator

out:
    res.steps = steps;
    res.predFalse = predFalse;
    res.nextPc = pc;
    return res;

#undef WISC_THREADED_DISPATCH
#undef WISC_THREADED_NEXT
#undef WA
#undef WB
#undef WIM
#undef WWR

#else // !(__GNUC__ || __clang__): portable fallback over executeInst()
    while (steps < maxSteps) {
        wisc_assert(pc < codeSize, "pc ", pc,
                    " escaped the program (codeSize ", codeSize, ")");
        const Instruction &in = code[pc];
        StepResult st = executeInst(in, pc, codeSize, state, nullptr);
        wisc_assert(!st.badTarget,
                    "indirect branch to bad target at instruction ", pc);
        ++steps;
        hooks.onInst(pc, in, st.qpTrue);
        if (!st.qpTrue)
            ++predFalse;
        if (in.op == Opcode::Br)
            hooks.onBranch(pc, in, st.taken);
        else if (st.taken)
            hooks.onCtrl(pc, in, st.nextIndex);
        if (st.memSize != 0 && st.qpTrue)
            hooks.onMem(st.memAddr, st.memSize,
                        in.op == Opcode::St || in.op == Opcode::St1);
        if (st.halted) {
            res.halted = true;
            break;
        }
        pc = st.nextIndex;
    }
    res.steps = steps;
    res.predFalse = predFalse;
    res.nextPc = pc;
    return res;
#endif
}

} // namespace wisc

#endif // WISC_ARCH_THREADED_HH_
