/**
 * @file
 * Architectural state: integer registers, predicate registers, and a
 * sparse paged byte-addressable memory.
 *
 * The same state object backs both the reference functional emulator and
 * the timing core's execute-at-fetch model (with UndoLog-based rollback),
 * so the two are semantically identical by construction.
 */

#ifndef WISC_ARCH_STATE_HH_
#define WISC_ARCH_STATE_HH_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace wisc {

/** Sparse paged memory; unwritten bytes read as zero. */
class Memory
{
  public:
    static constexpr Addr kPageBits = 12;
    static constexpr Addr kPageSize = Addr(1) << kPageBits;

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    /** Little-endian 64-bit word access; may straddle pages. */
    UWord readWord(Addr a) const;
    void writeWord(Addr a, UWord v);

    /** Order-independent content hash of all touched pages
     *  (all-zero pages hash the same as untouched ones). */
    std::uint64_t fingerprint() const;

    /** Number of distinct pages ever written. */
    std::size_t numPages() const { return pages_.size(); }

    /** Base addresses of every page ever written, ascending. Lets a
     *  state-diff walk memory word-by-word (arch/state_diff.hh) without
     *  exposing page internals; untouched addresses read as zero. */
    std::vector<Addr> touchedPages() const;

    /** Serialize every touched page (checkpointing). */
    void saveState(ByteWriter &w) const;
    /** Replace the entire contents with a saved image. */
    void restoreState(ByteReader &r);

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    const Page *find(Addr a) const;
    Page &findOrCreate(Addr a);

    std::map<Addr, std::unique_ptr<Page>> pages_;
};

/** Full architectural state. */
class ArchState
{
  public:
    ArchState() { reset(); }

    void reset();

    /** Seed memory from a program's data segments. */
    void loadData(const Program &prog);

    Word
    readReg(RegIdx r) const
    {
        return r == kRegZero ? 0 : regs_[r];
    }

    void
    writeReg(RegIdx r, Word v)
    {
        if (r != kRegZero)
            regs_[r] = v;
    }

    bool
    readPred(PredIdx p) const
    {
        return p == 0 ? true : preds_[p];
    }

    void
    writePred(PredIdx p, bool v)
    {
        if (p != 0)
            preds_[p] = v;
    }

    Memory &mem() { return mem_; }
    const Memory &mem() const { return mem_; }

    /** Serialize registers, predicates, and memory (checkpointing). */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    std::array<Word, kNumIntRegs> regs_;
    std::array<bool, kNumPredRegs> preds_;
    Memory mem_;
};

/**
 * Log of architectural side effects, enabling precise rollback of
 * speculatively executed instructions. Entries are popped in LIFO order.
 */
class UndoLog
{
  public:
    /** Absolute position marker: the count of entries ever recorded at
     *  some point in time. Remains valid across commits. */
    using Mark = std::uint64_t;

    Mark mark() const { return base_ + entries_.size(); }

    void recordReg(RegIdx r, Word old);
    void recordPred(PredIdx p, bool old);
    void recordMem(Addr a, std::uint8_t size, UWord old);

    /** Undo every effect recorded after the mark. */
    void rollbackTo(Mark m, ArchState &state);

    /** Drop entries older than the mark (they can no longer be undone).
     *  Called at retirement to bound memory. */
    void commitTo(Mark m);

    std::size_t size() const { return entries_.size(); }

  private:
    enum class Kind : std::uint8_t { Reg, Pred, Mem };

    struct Entry
    {
        Kind kind;
        std::uint8_t idxOrSize;
        Addr addr;
        UWord old;
    };

    std::deque<Entry> entries_;
    Mark base_ = 0; ///< absolute index of entries_.front()
};

} // namespace wisc

#endif // WISC_ARCH_STATE_HH_
