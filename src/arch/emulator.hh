/**
 * @file
 * Reference functional emulator: runs a Program to completion, optionally
 * collecting an edge profile for the compiler's cost model, and produces a
 * result fingerprint that every binary variant of the same kernel must
 * match (the architectural-equivalence invariant).
 */

#ifndef WISC_ARCH_EMULATOR_HH_
#define WISC_ARCH_EMULATOR_HH_

#include <cstdint>
#include <vector>

#include "arch/state.hh"
#include "isa/program.hh"

namespace wisc {

/** Per-static-instruction profile counters. */
struct InstProfile
{
    std::uint64_t execCount = 0;   ///< times the instruction was reached
    std::uint64_t qpTrueCount = 0; ///< times its qp evaluated TRUE
    std::uint64_t takenCount = 0;  ///< times a Br was taken (qp TRUE)
};

/** Whole-program profile, indexed by instruction index. */
struct Profile
{
    std::vector<InstProfile> perInst;
    std::uint64_t dynInsts = 0;

    /** Estimated taken probability of the branch at 'idx'. */
    double takenProb(std::uint32_t idx) const;

    /**
     * Compile-time misprediction-rate proxy for the branch at 'idx':
     * min(P(T), P(NT)), the error of the best static prediction. The
     * real ORC heuristics are profile-based too (§4.2.1).
     */
    double mispredictEstimate(std::uint32_t idx) const;
};

/** Result of a functional run. */
struct EmuResult
{
    bool halted = false;          ///< false means the step limit was hit
    std::uint64_t dynInsts = 0;   ///< retired instructions (incl. NOPs)
    std::uint64_t predFalse = 0;  ///< retired with FALSE qualifying pred
    Word resultReg = 0;           ///< r4 at halt, the kernel's checksum
    std::uint64_t memFingerprint = 0;
};

/** Which execution engine drives a functional run. */
enum class EmuDispatch : std::uint8_t
{
    /** Reference: one executeInst() switch per instruction. */
    Switch,
    /** Computed-goto threaded dispatch (arch/threaded.hh). Bit-identical
     *  to Switch in architectural state — the fuzzer's dispatch
     *  differential proves it on every generated program. */
    Threaded,
};

/** Functional emulator. */
class Emulator
{
  public:
    /** Hard cap on steps so broken programs terminate (user-adjustable). */
    static constexpr std::uint64_t kDefaultMaxSteps = 400'000'000;

    /**
     * Run the program from its entry point until Halt.
     *
     * @param prog     validated program to run
     * @param profile  if non-null, filled with per-instruction counters
     * @param maxSteps abort (halted=false) after this many instructions
     * @param dispatch execution engine (Threaded by default; Switch is
     *                 the semantic reference the fuzzer diffs against)
     */
    EmuResult run(const Program &prog, Profile *profile = nullptr,
                  std::uint64_t maxSteps = kDefaultMaxSteps,
                  EmuDispatch dispatch = EmuDispatch::Threaded);

    /** Architectural state after the last run (for inspection in tests). */
    const ArchState &state() const { return state_; }

  private:
    ArchState state_;
};

} // namespace wisc

#endif // WISC_ARCH_EMULATOR_HH_
