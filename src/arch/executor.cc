#include "arch/executor.hh"

#include "arch/exec_inline.hh"
#include "common/log.hh"

namespace wisc {

StepResult
executeInst(const Instruction &inst, std::uint32_t index,
            std::uint32_t codeSize, ArchState &state, UndoLog *undo)
{
    StepResult res;
    res.nextIndex = index + 1;
    res.qpTrue = state.readPred(inst.qp);

    // A FALSE qualifying predicate nullifies the instruction: no register,
    // predicate, or memory write, and branches fall through. The single
    // exception is an unconditional compare (IA-64 cmp.unc semantics),
    // which clears both predicate destinations when nullified.
    if (!res.qpTrue) {
        if (inst.unc && inst.writesPred()) {
            if (inst.pd != kPredNone) {
                if (undo)
                    undo->recordPred(inst.pd, state.readPred(inst.pd));
                state.writePred(inst.pd, false);
            }
            if (inst.pd2 != kPredNone) {
                if (undo)
                    undo->recordPred(inst.pd2, state.readPred(inst.pd2));
                state.writePred(inst.pd2, false);
            }
        }
        return res;
    }

    auto writeReg = [&](RegIdx r, Word v) {
        if (undo && r != kRegZero)
            undo->recordReg(r, state.readReg(r));
        state.writeReg(r, v);
    };
    auto writePred = [&](PredIdx p, bool v) {
        if (p == kPredNone)
            return;
        if (undo)
            undo->recordPred(p, state.readPred(p));
        state.writePred(p, v);
    };
    auto writeCmp = [&](bool cond) {
        writePred(inst.pd, cond);
        writePred(inst.pd2, !cond);
    };

    const Word a = state.readReg(inst.rs1);
    const Word b = state.readReg(inst.rs2);
    const Word im = inst.imm;

    switch (inst.op) {
      case Opcode::Add:  writeReg(inst.rd, wrapAdd(a, b)); break;
      case Opcode::Sub:  writeReg(inst.rd, wrapSub(a, b)); break;
      case Opcode::And:  writeReg(inst.rd, a & b); break;
      case Opcode::Or:   writeReg(inst.rd, a | b); break;
      case Opcode::Xor:  writeReg(inst.rd, a ^ b); break;
      case Opcode::Shl:
        writeReg(inst.rd, static_cast<Word>(static_cast<UWord>(a)
                                            << (b & 63)));
        break;
      case Opcode::Shr:
        writeReg(inst.rd, static_cast<Word>(static_cast<UWord>(a)
                                            >> (b & 63)));
        break;
      case Opcode::Sra:  writeReg(inst.rd, a >> (b & 63)); break;
      case Opcode::Mul:  writeReg(inst.rd, wrapMul(a, b)); break;
      case Opcode::Div:  writeReg(inst.rd, safeDiv(a, b)); break;
      case Opcode::Rem:  writeReg(inst.rd, safeRem(a, b)); break;

      case Opcode::AddI: writeReg(inst.rd, wrapAdd(a, im)); break;
      case Opcode::AndI: writeReg(inst.rd, a & im); break;
      case Opcode::OrI:  writeReg(inst.rd, a | im); break;
      case Opcode::XorI: writeReg(inst.rd, a ^ im); break;
      case Opcode::ShlI:
        writeReg(inst.rd, static_cast<Word>(static_cast<UWord>(a)
                                            << (im & 63)));
        break;
      case Opcode::ShrI:
        writeReg(inst.rd, static_cast<Word>(static_cast<UWord>(a)
                                            >> (im & 63)));
        break;
      case Opcode::SraI: writeReg(inst.rd, a >> (im & 63)); break;
      case Opcode::MulI: writeReg(inst.rd, wrapMul(a, im)); break;
      case Opcode::Li:   writeReg(inst.rd, im); break;

      case Opcode::CmpEq:  writeCmp(a == b); break;
      case Opcode::CmpNe:  writeCmp(a != b); break;
      case Opcode::CmpLt:  writeCmp(a < b); break;
      case Opcode::CmpLe:  writeCmp(a <= b); break;
      case Opcode::CmpGt:  writeCmp(a > b); break;
      case Opcode::CmpGe:  writeCmp(a >= b); break;
      case Opcode::CmpLtU:
        writeCmp(static_cast<UWord>(a) < static_cast<UWord>(b));
        break;
      case Opcode::CmpGeU:
        writeCmp(static_cast<UWord>(a) >= static_cast<UWord>(b));
        break;
      case Opcode::CmpEqI: writeCmp(a == im); break;
      case Opcode::CmpNeI: writeCmp(a != im); break;
      case Opcode::CmpLtI: writeCmp(a < im); break;
      case Opcode::CmpLeI: writeCmp(a <= im); break;
      case Opcode::CmpGtI: writeCmp(a > im); break;
      case Opcode::CmpGeI: writeCmp(a >= im); break;

      case Opcode::PSet: writePred(inst.pd, (im & 1) != 0); break;
      case Opcode::PNot: writePred(inst.pd, !state.readPred(inst.ps)); break;
      case Opcode::PAnd:
        writePred(inst.pd,
                  state.readPred(inst.ps) && state.readPred(inst.ps2));
        break;
      case Opcode::POr:
        writePred(inst.pd,
                  state.readPred(inst.ps) || state.readPred(inst.ps2));
        break;

      case Opcode::Ld: {
        Addr ea = static_cast<Addr>(wrapAdd(a, im));
        res.memAddr = ea;
        res.memSize = 8;
        writeReg(inst.rd, static_cast<Word>(state.mem().readWord(ea)));
        break;
      }
      case Opcode::Ld1: {
        Addr ea = static_cast<Addr>(wrapAdd(a, im));
        res.memAddr = ea;
        res.memSize = 1;
        writeReg(inst.rd, static_cast<Word>(state.mem().readByte(ea)));
        break;
      }
      case Opcode::St: {
        Addr ea = static_cast<Addr>(wrapAdd(a, im));
        res.memAddr = ea;
        res.memSize = 8;
        if (undo)
            undo->recordMem(ea, 8, state.mem().readWord(ea));
        state.mem().writeWord(ea, static_cast<UWord>(b));
        break;
      }
      case Opcode::St1: {
        Addr ea = static_cast<Addr>(wrapAdd(a, im));
        res.memAddr = ea;
        res.memSize = 1;
        if (undo)
            undo->recordMem(ea, 1, state.mem().readByte(ea));
        state.mem().writeByte(ea, static_cast<std::uint8_t>(b));
        break;
      }

      case Opcode::Br:
        // The qualifying predicate *is* the branch condition; reaching
        // this point means it was TRUE, so the branch is taken.
        res.taken = true;
        res.nextIndex = inst.target;
        break;
      case Opcode::Jmp:
        res.taken = true;
        res.nextIndex = inst.target;
        break;
      case Opcode::Call:
        writeReg(inst.rd, static_cast<Word>(instAddr(index + 1)));
        res.taken = true;
        res.nextIndex = inst.target;
        break;
      case Opcode::JmpR:
      case Opcode::Ret: {
        res.taken = true;
        Addr t = static_cast<Addr>(a);
        if (t < kTextBase || (t - kTextBase) % kInstBytes != 0 ||
            addrToIndex(t) >= codeSize) {
            // Only reachable on a speculative wrong path: the caller
            // decides how to contain it (typically by fetching a NOP
            // stream until the flush arrives).
            res.badTarget = true;
            res.nextIndex = index + 1;
        } else {
            res.nextIndex = static_cast<std::uint32_t>(addrToIndex(t));
        }
        break;
      }

      case Opcode::Nop:
        break;
      case Opcode::Halt:
        res.halted = true;
        res.nextIndex = index;
        break;

      case Opcode::NumOpcodes:
        wisc_panic("executed NumOpcodes sentinel");
    }

    return res;
}

} // namespace wisc
