/**
 * @file
 * Single-instruction functional executor with optional undo recording.
 *
 * Shared by the reference emulator and the timing core. The executor
 * implements WISC's full architectural semantics including predication:
 * an instruction whose qualifying predicate evaluates FALSE performs no
 * architectural writes (it behaves as a NOP), and a branch whose qp is
 * FALSE falls through.
 */

#ifndef WISC_ARCH_EXECUTOR_HH_
#define WISC_ARCH_EXECUTOR_HH_

#include "arch/state.hh"
#include "isa/isa.hh"

namespace wisc {

/** Outcome of executing one instruction. */
struct StepResult
{
    bool qpTrue = true;      ///< value of the qualifying predicate
    bool taken = false;      ///< control transfer taken (Br/Jmp/Call/...)
    std::uint32_t nextIndex = 0; ///< index of the next instruction
    bool halted = false;     ///< a Halt with TRUE qp executed
    bool badTarget = false;  ///< indirect target decoded out of range
    Addr memAddr = 0;        ///< effective address (valid iff memSize != 0)
    std::uint8_t memSize = 0;///< 0 = no access, else 1 or 8 bytes
};

/**
 * Execute the instruction at 'index' against 'state'.
 *
 * @param inst    the instruction to execute
 * @param index   its instruction index (for fall-through / link values)
 * @param codeSize size of the owning program (for indirect-target checks)
 * @param state   architectural state to read and mutate
 * @param undo    if non-null, old values are recorded for rollback
 */
StepResult executeInst(const Instruction &inst, std::uint32_t index,
                       std::uint32_t codeSize, ArchState &state,
                       UndoLog *undo);

} // namespace wisc

#endif // WISC_ARCH_EXECUTOR_HH_
