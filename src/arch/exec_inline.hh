/**
 * @file
 * Shared architectural arithmetic, hoisted out of the switch executor
 * so the threaded-code dispatch loop (arch/threaded.hh) and the
 * reference executor (arch/executor.cc) compute every operation from
 * the same definitions. Divergence between the two execution engines
 * must only ever come from dispatch structure, never from semantics —
 * the differential fuzzer enforces that, these helpers make it cheap.
 */

#ifndef WISC_ARCH_EXEC_INLINE_HH_
#define WISC_ARCH_EXEC_INLINE_HH_

#include <limits>

#include "arch/state.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace wisc {

/** Two's-complement wrapping arithmetic without signed-overflow UB. */
inline Word
wrapAdd(Word a, Word b)
{
    return static_cast<Word>(static_cast<UWord>(a) + static_cast<UWord>(b));
}

inline Word
wrapSub(Word a, Word b)
{
    return static_cast<Word>(static_cast<UWord>(a) - static_cast<UWord>(b));
}

inline Word
wrapMul(Word a, Word b)
{
    return static_cast<Word>(static_cast<UWord>(a) * static_cast<UWord>(b));
}

/** Division: by-zero yields 0, overflow (MIN / -1) yields MIN. */
inline Word
safeDiv(Word a, Word b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<Word>::min() && b == -1)
        return a;
    return a / b;
}

inline Word
safeRem(Word a, Word b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<Word>::min() && b == -1)
        return 0;
    return a % b;
}

/** Compare result write: pd gets the condition, pd2 its complement. */
inline void
execWriteCmp(ArchState &state, const Instruction &inst, bool cond)
{
    if (inst.pd != kPredNone)
        state.writePred(inst.pd, cond);
    if (inst.pd2 != kPredNone)
        state.writePred(inst.pd2, !cond);
}

} // namespace wisc

#endif // WISC_ARCH_EXEC_INLINE_HH_
