#include "arch/state.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace wisc {

const Memory::Page *
Memory::find(Addr a) const
{
    auto it = pages_.find(a >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::findOrCreate(Addr a)
{
    auto &slot = pages_[a >> kPageBits];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint8_t
Memory::readByte(Addr a) const
{
    const Page *p = find(a);
    return p ? (*p)[a & (kPageSize - 1)] : 0;
}

void
Memory::writeByte(Addr a, std::uint8_t v)
{
    findOrCreate(a)[a & (kPageSize - 1)] = v;
}

UWord
Memory::readWord(Addr a) const
{
    // Fast path: the word lies within one page, so a single map lookup
    // serves all eight bytes (the byte loop over a contiguous buffer
    // compiles to one unaligned load). Both functional engines and the
    // timing core's execute-at-fetch path hit this on every Ld.
    const Addr off = a & (kPageSize - 1);
    if (off <= kPageSize - 8) {
        const Page *p = find(a);
        if (!p)
            return 0;
        const std::uint8_t *q = p->data() + off;
        UWord v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<UWord>(q[i]) << (8 * i);
        return v;
    }
    UWord v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<UWord>(readByte(a + i)) << (8 * i);
    return v;
}

void
Memory::writeWord(Addr a, UWord v)
{
    const Addr off = a & (kPageSize - 1);
    if (off <= kPageSize - 8) {
        std::uint8_t *q = findOrCreate(a).data() + off;
        for (unsigned i = 0; i < 8; ++i)
            q[i] = static_cast<std::uint8_t>(v >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < 8; ++i)
        writeByte(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
Memory::fingerprint() const
{
    std::uint64_t h = 0;
    for (const auto &kv : pages_) {
        // Skip all-zero pages so that a page that was written and later
        // zeroed hashes identically to one never touched.
        const Page &p = *kv.second;
        bool all_zero = std::all_of(p.begin(), p.end(),
                                    [](std::uint8_t b) { return b == 0; });
        if (all_zero)
            continue;
        std::uint64_t ph = mixHash(kv.first);
        for (std::size_t i = 0; i < kPageSize; i += 8) {
            UWord w = 0;
            for (unsigned b = 0; b < 8; ++b)
                w |= static_cast<UWord>(p[i + b]) << (8 * b);
            if (w)
                ph = mixHash(ph ^ mixHash(w + i));
        }
        h ^= ph;
    }
    return h;
}

void
Memory::saveState(ByteWriter &w) const
{
    w.u64(pages_.size());
    for (const auto &kv : pages_) {
        w.u64(kv.first);
        w.raw(kv.second->data(), kPageSize);
    }
}

void
Memory::restoreState(ByteReader &r)
{
    pages_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr idx = r.u64();
        auto page = std::make_unique<Page>();
        r.raw(page->data(), kPageSize);
        pages_.emplace(idx, std::move(page));
    }
}

std::vector<Addr>
Memory::touchedPages() const
{
    std::vector<Addr> bases;
    bases.reserve(pages_.size());
    for (const auto &kv : pages_)
        bases.push_back(kv.first << kPageBits);
    return bases;
}

void
ArchState::reset()
{
    regs_.fill(0);
    preds_.fill(false);
    // A convenient default stack pointer, far from code and data.
    regs_[kRegSp] = 0x7ff00000;
}

void
ArchState::loadData(const Program &prog)
{
    for (const auto &seg : prog.data()) {
        Addr a = seg.base;
        for (Word w : seg.words) {
            mem_.writeWord(a, static_cast<UWord>(w));
            a += 8;
        }
    }
}

void
ArchState::saveState(ByteWriter &w) const
{
    for (Word v : regs_)
        w.i64(v);
    for (bool p : preds_)
        w.b(p);
    mem_.saveState(w);
}

void
ArchState::restoreState(ByteReader &r)
{
    for (Word &v : regs_)
        v = r.i64();
    for (bool &p : preds_)
        p = r.b();
    mem_.restoreState(r);
}

void
UndoLog::recordReg(RegIdx r, Word old)
{
    entries_.push_back({Kind::Reg, r, 0, static_cast<UWord>(old)});
}

void
UndoLog::recordPred(PredIdx p, bool old)
{
    entries_.push_back({Kind::Pred, p, 0, old ? 1u : 0u});
}

void
UndoLog::recordMem(Addr a, std::uint8_t size, UWord old)
{
    entries_.push_back({Kind::Mem, size, a, old});
}

void
UndoLog::rollbackTo(Mark m, ArchState &state)
{
    wisc_assert(m >= base_, "rolling back committed state");
    wisc_assert(m <= mark(), "bad undo mark");
    while (mark() > m) {
        const Entry &e = entries_.back();
        switch (e.kind) {
          case Kind::Reg:
            state.writeReg(e.idxOrSize, static_cast<Word>(e.old));
            break;
          case Kind::Pred:
            state.writePred(e.idxOrSize, e.old != 0);
            break;
          case Kind::Mem:
            if (e.idxOrSize == 1)
                state.mem().writeByte(e.addr,
                                      static_cast<std::uint8_t>(e.old));
            else
                state.mem().writeWord(e.addr, e.old);
            break;
        }
        entries_.pop_back();
    }
}

void
UndoLog::commitTo(Mark m)
{
    wisc_assert(m <= mark(), "bad commit mark");
    while (base_ < m) {
        entries_.pop_front();
        ++base_;
    }
}

} // namespace wisc
