/**
 * @file
 * Word-level architectural-state comparison.
 *
 * The equivalence invariant ("every binary variant of a kernel produces
 * the same architectural result") is only actionable when a violation
 * names the first state word that differs — a register index or a
 * memory address, with the expected and observed values. This module
 * provides that triage primitive for verifyVariantEquivalence and for
 * the differential fuzzer.
 *
 * Predicate registers are deliberately excluded: if-conversion rewrites
 * arm compares into unconditional compares (which clear their targets
 * on a FALSE guard where the branchy binary never executes them), and
 * the passes allocate scratch guards, so predicate state legitimately
 * differs between variants. Integer registers and memory must match
 * exactly.
 */

#ifndef WISC_ARCH_STATE_DIFF_HH_
#define WISC_ARCH_STATE_DIFF_HH_

#include <string>

#include "arch/state.hh"

namespace wisc {

/** The first differing state word between two ArchStates. */
struct StateDiff
{
    enum class Kind : std::uint8_t
    {
        None,   ///< states agree
        IntReg, ///< integer register 'reg' differs
        Memory, ///< 64-bit word at 'addr' differs
    };

    Kind kind = Kind::None;
    unsigned reg = 0;  ///< differing register index (Kind::IntReg)
    Addr addr = 0;     ///< differing word address (Kind::Memory)
    UWord expected = 0;
    UWord got = 0;

    explicit operator bool() const { return kind != Kind::None; }

    /** "r7: expected 42 got 41" / "mem[0x20010]: expected ... got ..." */
    std::string describe() const;
};

/**
 * Find the first difference between two architectural states, scanning
 * integer registers in index order, then memory in address order over
 * the union of both states' touched pages. 'expected' is the reference
 * (normal-variant) state.
 */
StateDiff firstStateDiff(const ArchState &expected, const ArchState &got);

/**
 * Order-sensitive fingerprint over everything firstStateDiff compares:
 * all integer registers plus the memory content hash. Two states with
 * equal fingerprints are architecturally equivalent for the purposes of
 * the variant-equivalence invariant (predicates excluded, see above).
 */
std::uint64_t stateFingerprint(const ArchState &s);

} // namespace wisc

#endif // WISC_ARCH_STATE_DIFF_HH_
