#include "arch/state_diff.hh"

#include <algorithm>
#include <sstream>

#include "common/rng.hh"

namespace wisc {

std::string
StateDiff::describe() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::None:
        return "states agree";
      case Kind::IntReg:
        os << "r" << reg;
        break;
      case Kind::Memory:
        os << "mem[0x" << std::hex << addr << std::dec << "]";
        break;
    }
    os << ": expected " << static_cast<Word>(expected) << " got "
       << static_cast<Word>(got);
    return os.str();
}

StateDiff
firstStateDiff(const ArchState &expected, const ArchState &got)
{
    StateDiff d;
    for (unsigned r = 0; r < kNumIntRegs; ++r) {
        Word e = expected.readReg(static_cast<RegIdx>(r));
        Word g = got.readReg(static_cast<RegIdx>(r));
        if (e != g) {
            d.kind = StateDiff::Kind::IntReg;
            d.reg = r;
            d.expected = static_cast<UWord>(e);
            d.got = static_cast<UWord>(g);
            return d;
        }
    }

    // Union of touched pages, ascending; a page only one side touched
    // still diffs correctly because untouched addresses read as zero.
    std::vector<Addr> pages = expected.mem().touchedPages();
    std::vector<Addr> other = got.mem().touchedPages();
    pages.insert(pages.end(), other.begin(), other.end());
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

    for (Addr base : pages) {
        for (Addr a = base; a < base + Memory::kPageSize; a += 8) {
            UWord e = expected.mem().readWord(a);
            UWord g = got.mem().readWord(a);
            if (e != g) {
                d.kind = StateDiff::Kind::Memory;
                d.addr = a;
                d.expected = e;
                d.got = g;
                return d;
            }
        }
    }
    return d;
}

std::uint64_t
stateFingerprint(const ArchState &s)
{
    std::uint64_t h = 0;
    for (unsigned r = 0; r < kNumIntRegs; ++r)
        h = mixHash(h ^ mixHash(static_cast<UWord>(
                            s.readReg(static_cast<RegIdx>(r))) +
                        r));
    return mixHash(h ^ s.mem().fingerprint());
}

} // namespace wisc
