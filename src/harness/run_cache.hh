/**
 * @file
 * Two-layer run memoization for deterministic simulations.
 *
 * Every WISC simulation is a pure function of (Program, SimParams):
 * Programs are immutable during runs (the property the ParallelRunner
 * already relies on for read-only sharing) and the core is fully
 * deterministic. RunService exploits that purity:
 *
 *  - Layer 1, in-process dedup: requests are keyed by
 *    (Program::fingerprint(), SimParams::fingerprint()). Concurrent
 *    identical requests from ParallelRunner jobs coalesce onto one
 *    shared future, and with memoization enabled completed outcomes are
 *    retained, so each distinct simulation executes exactly once per
 *    process no matter how many experiments request it.
 *
 *  - Layer 2, persistent cache: an optional content-addressed on-disk
 *    store (`--cache DIR` on the bench binaries / WISC_CACHE_DIR /
 *    -DWISC_CACHE_DEFAULT_DIR) holding the *complete* RunOutcome —
 *    SimResult, every counter, histogram, and table — in a versioned,
 *    checksummed binary format written via tmp+rename so readers never
 *    see a partial entry. Corrupt, truncated, or version-mismatched
 *    entries are rejected (warned once each, counted) and fall back to
 *    a fresh simulation that overwrites the bad entry.
 *
 * The global() instance backs run(RunRequest). It starts as
 * a pure pass-through (no memo, no disk) so unit tests exercise real
 * simulations unless they opt in; BenchCli opts every bench binary in.
 */

#ifndef WISC_HARNESS_RUN_CACHE_HH_
#define WISC_HARNESS_RUN_CACHE_HH_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "harness/runner.hh"

namespace wisc {

/** Content-addressed identity of one simulation request. */
struct RunKey
{
    std::uint64_t prog = 0;   ///< Program::fingerprint()
    std::uint64_t params = 0; ///< SimParams::fingerprint()

    bool
    operator<(const RunKey &o) const
    {
        return prog != o.prog ? prog < o.prog : params < o.params;
    }
    bool
    operator==(const RunKey &o) const
    {
        return prog == o.prog && params == o.params;
    }
};

/** Where each served request came from. Counters only increase. */
struct RunCacheStats
{
    std::uint64_t dedupHits = 0;  ///< joined an in-flight or memoized run
    std::uint64_t diskHits = 0;   ///< replayed from the persistent store
    std::uint64_t misses = 0;     ///< simulated fresh
    std::uint64_t diskWrites = 0; ///< entries persisted
    std::uint64_t corrupt = 0;    ///< bad entries rejected (fresh fallback)
};

class RunService
{
  public:
    /** Pass-through service: no memoization, no disk store. */
    RunService() = default;

    /** Service with the persistent layer rooted at cacheDir (created on
     *  first write) and in-process memoization on. */
    explicit RunService(std::string cacheDir);

    RunService(const RunService &) = delete;
    RunService &operator=(const RunService &) = delete;

    /** Enable/disable the persistent layer; "" disables. */
    void setCacheDir(std::string dir);
    std::string cacheDir() const;

    /** Enable/disable in-process memoization. Disabling does not drop
     *  already-memoized outcomes mid-flight; it stops retaining new
     *  ones. Concurrent identical requests still coalesce whenever
     *  either layer is active. */
    void setMemoize(bool on);
    bool memoize() const;

    /**
     * Serve one simulation request. Exactly one of dedupHits, diskHits,
     * or misses is incremented per call. Exceptions from a fresh
     * simulation propagate to every coalesced waiter, and the failed
     * key is forgotten so a later request retries.
     */
    RunOutcome run(const Program &prog, const SimParams &params);

    /** Snapshot of the counters. */
    RunCacheStats stats() const;

    /** On-disk path an entry for this key would use (empty when the
     *  persistent layer is off). Exposed for tests and tooling. */
    std::string entryPath(const RunKey &key) const;

    /** The process-wide service behind run(RunRequest).
     *  Constructed on first use; picks up WISC_CACHE_DIR from the
     *  environment (memoization stays off until something — normally
     *  BenchCli — turns it on). */
    static RunService &global();

  private:
    using OutcomePtr = std::shared_ptr<const RunOutcome>;

    /** Compute (or load) the outcome for key; called by the single
     *  owner of the in-flight entry. */
    OutcomePtr produce(const RunKey &key, const Program &prog,
                       const SimParams &params);

    bool tryLoad(const RunKey &key, RunOutcome &out);
    void store(const RunKey &key, const RunOutcome &out);

    mutable std::mutex mutex_;
    std::string dir_;
    bool memoize_ = false;
    RunCacheStats stats_;
    std::map<RunKey, std::shared_future<OutcomePtr>> inflight_;
    /** Corrupt-entry paths already warned about (rate limiting). */
    std::set<std::string> warnedCorrupt_;
};

/** Serialize a RunOutcome into the versioned, checksummed cache-entry
 *  format (magic + version + key echo + payload + trailing checksum).
 *  Exposed for the corruption tests. */
std::string encodeRunOutcome(const RunKey &key, const RunOutcome &out);

/** Strict inverse of encodeRunOutcome. Returns false (and leaves out
 *  untouched) on any structural problem: short file, bad magic, version
 *  mismatch, key mismatch, checksum mismatch, or truncated payload. */
bool decodeRunOutcome(const std::string &bytes, const RunKey &key,
                      RunOutcome &out);

/** The on-disk entry format version. Part of the wisc-serve machine
 *  fingerprint: a client and daemon that would write incompatible cache
 *  entries must fail the handshake, not poison each other's replays. */
std::uint32_t runCacheFormatVersion();

} // namespace wisc

#endif // WISC_HARNESS_RUN_CACHE_HH_
