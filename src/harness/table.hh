/**
 * @file
 * Fixed-width table printing for experiment output, mirroring the
 * row/series structure of the paper's figures.
 */

#ifndef WISC_HARNESS_TABLE_HH_
#define WISC_HARNESS_TABLE_HH_

#include <ostream>
#include <string>
#include <vector>

namespace wisc {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

    void print(std::ostream &os) const;

    /** Raw cells, e.g. for JSON export. */
    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a figure/table banner. */
void printBanner(std::ostream &os, const std::string &title,
                 const std::string &subtitle = "");

} // namespace wisc

#endif // WISC_HARNESS_TABLE_HH_
