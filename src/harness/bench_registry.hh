/**
 * @file
 * Registry of experiment entry points, so each figure/table/ablation
 * lives once in bench/<name>.cc and is reachable two ways:
 *
 *  - as its own standalone binary (the historical interface): the TU is
 *    compiled with -DWISC_BENCH_STANDALONE and the WISC_BENCH_ENTRY
 *    macro emits a main() that builds a BenchCli from argv;
 *
 *  - linked into bench/run_matrix, which compiles the same TUs without
 *    the define, looks experiments up by name, and invokes them
 *    in-process with embedded BenchClis — one ParallelRunner, one
 *    RunService, so identical simulations across experiments execute
 *    once and every document lands in a single consolidated JSON.
 *
 * Usage in an experiment TU:
 *
 *   WISC_BENCH_ENTRY(fig12_wish_loops)
 *   namespace {
 *   int
 *   benchMain(BenchCli &cli)
 *   {
 *       ...experiment body (prints tables, fills cli)...
 *       return cli.finish();
 *   }
 *   } // namespace
 */

#ifndef WISC_HARNESS_BENCH_REGISTRY_HH_
#define WISC_HARNESS_BENCH_REGISTRY_HH_

#include <string>
#include <vector>

#include "harness/bench_cli.hh"

namespace wisc {

using BenchFn = int (*)(BenchCli &);

struct BenchEntry
{
    std::string name;
    BenchFn fn = nullptr;
};

/** Register one experiment (called by static initializers; the bool
 *  return lets the macro bind it to a namespace-scope constant). */
bool registerBench(const char *name, BenchFn fn);

/** Every registered experiment. Order is link order — orchestrators
 *  that need a deterministic schedule should look up by name. */
const std::vector<BenchEntry> &benchRegistry();

/** Lookup by name; nullptr when absent. */
BenchFn findBench(const std::string &name);

} // namespace wisc

#ifdef WISC_BENCH_STANDALONE
#define WISC_BENCH_MAIN_(name) \
    int main(int argc, char **argv) \
    { \
        ::wisc::BenchCli cli(argc, argv, #name); \
        return benchMain(cli); \
    }
#else
#define WISC_BENCH_MAIN_(name)
#endif

/** Declare, register, and (standalone builds) wrap one experiment's
 *  benchMain. The function itself is file-local, so every experiment TU
 *  can use the same identifier. */
#define WISC_BENCH_ENTRY(name) \
    namespace { \
    int benchMain(::wisc::BenchCli &cli); \
    [[maybe_unused]] const bool registeredBench_ = \
        ::wisc::registerBench(#name, &benchMain); \
    } \
    WISC_BENCH_MAIN_(name)

#endif // WISC_HARNESS_BENCH_REGISTRY_HH_
