#include "harness/parallel_runner.hh"

#include <cstdlib>
#include <string>

#include "common/log.hh"

namespace wisc {

unsigned
ParallelRunner::defaultJobs()
{
    if (const char *env = std::getenv("WISC_JOBS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<unsigned>(v);
        wisc_warn("ignoring invalid WISC_JOBS='", env,
                  "' (want an integer in [1, 4096])");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ParallelRunner &
ParallelRunner::shared()
{
    static ParallelRunner pool;
    return pool;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
    if (jobs_ <= 1)
        return; // inline mode: no workers, no queue
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelRunner::~ParallelRunner()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ParallelRunner::workerLoop()
{
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions are captured in the task's future
    }
}

std::future<void>
ParallelRunner::submit(std::function<void()> task)
{
    std::packaged_task<void()> pt(std::move(task));
    std::future<void> fut = pt.get_future();
    if (jobs_ <= 1) {
        pt(); // inline: run now, future carries any exception
        return fut;
    }
    {
        std::lock_guard<std::mutex> lk(mutex_);
        queue_.push_back(std::move(pt));
    }
    cv_.notify_one();
    return fut;
}

void
ParallelRunner::forEach(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs_ <= 1 || n == 1) {
        // Same semantics as the pooled path: every task runs, the
        // first failure is rethrown at the end.
        std::exception_ptr firstInline;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                body(i);
            } catch (...) {
                if (!firstInline)
                    firstInline = std::current_exception();
            }
        }
        if (firstInline)
            std::rethrow_exception(firstInline);
        return;
    }
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futs.push_back(submit([&body, i] { body(i); }));

    // Wait for everything, then rethrow the first failure so the
    // remaining tasks are never left referencing dead stack frames.
    std::exception_ptr first;
    for (std::future<void> &f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace wisc
