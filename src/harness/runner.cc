#include "harness/runner.hh"

#include "common/log.hh"
#include "harness/run_cache.hh"

namespace wisc {

namespace {

RunOutcome
capture(const Program &prog, const SimParams &params)
{
    StatSet stats;
    RunOutcome out;
    out.result = simulate(prog, params, stats);
    for (const std::string &name : stats.counterNames())
        out.stats[name] = stats.get(name);
    for (const std::string &name : stats.histogramNames()) {
        const Histogram &h = stats.requireHistogram(name);
        HistogramSnapshot snap;
        snap.count = h.count();
        snap.buckets.reserve(h.numBuckets());
        for (std::size_t i = 0; i < h.numBuckets(); ++i)
            snap.buckets.push_back(h.bucket(i));
        out.hists.emplace(name, std::move(snap));
    }
    return out;
}

} // namespace

std::uint64_t
RunOutcome::require(const std::string &name) const
{
    auto it = stats.find(name);
    if (it == stats.end())
        wisc_fatal("run produced no statistic '", name,
                   "' (misspelled name?)");
    return it->second;
}

RunOutcome
runWorkload(const CompiledWorkload &w, BinaryVariant v, InputSet input,
            const SimParams &params)
{
    return runProgram(programFor(w, v, input), params);
}

RunOutcome
runProgram(const Program &prog, const SimParams &params)
{
    return RunService::global().run(prog, params);
}

RunOutcome
runProgramFresh(const Program &prog, const SimParams &params)
{
    return capture(prog, params);
}

} // namespace wisc
