#include "harness/runner.hh"

#include "common/log.hh"
#include "harness/run_cache.hh"
#include "harness/sampled_runner.hh"

namespace wisc {

RunOutcome
captureRun(const Program &prog, const SimParams &params,
           const std::vector<ProbeSink *> &sinks)
{
    if (params.sampling.enabled) {
        wisc_assert(sinks.empty(),
                    "sampled runs cannot drive probe sinks: windows are "
                    "disjoint detailed legs, not one continuous run");
        return runSampled(prog, params);
    }
    StatSet stats;
    RunOutcome out;
    out.result = simulate(prog, params, stats, sinks);
    for (const std::string &name : stats.counterNames())
        out.stats[name] = stats.get(name);
    for (const std::string &name : stats.histogramNames()) {
        const Histogram &h = stats.require<Histogram>(name);
        HistogramSnapshot snap;
        snap.count = h.count();
        snap.buckets.reserve(h.numBuckets());
        for (std::size_t i = 0; i < h.numBuckets(); ++i)
            snap.buckets.push_back(h.bucket(i));
        out.hists.emplace(name, std::move(snap));
    }
    for (const std::string &name : stats.tableNames()) {
        const StatTable &t = stats.require<StatTable>(name);
        TableSnapshot snap;
        snap.columns = t.columns();
        snap.rows = t.rows();
        out.tables.emplace(name, std::move(snap));
    }
    return out;
}

std::uint64_t
RunOutcome::require(const std::string &name) const
{
    auto it = stats.find(name);
    if (it == stats.end()) {
        if (hists.count(name))
            wisc_fatal("run statistic '", name,
                       "' is a histogram, not a counter");
        if (tables.count(name))
            wisc_fatal("run statistic '", name,
                       "' is a table, not a counter");
        wisc_fatal("run produced no statistic '", name,
                   "' (misspelled name?)");
    }
    return it->second;
}

namespace {
RunTransport gTransport; // set before parallel phases, never during
} // namespace

void
setRunTransport(RunTransport transport)
{
    gTransport = std::move(transport);
}

bool
runTransportInstalled()
{
    return static_cast<bool>(gTransport);
}

RunOutcome
run(const RunRequest &req)
{
    wisc_assert((req.program != nullptr) != (req.workload != nullptr),
                "RunRequest needs exactly one program source");
    Program built;
    const Program *prog = req.program;
    if (!prog) {
        built = programFor(*req.workload, req.variant, req.input);
        prog = &built;
    }
    if (req.cache == RunRequest::CachePolicy::Bypass || !req.sinks.empty())
        return captureRun(*prog, req.params, req.sinks);
    if (gTransport)
        return gTransport(*prog, req.params);
    return RunService::global().run(*prog, req.params);
}

} // namespace wisc
