#include "harness/runner.hh"

namespace wisc {

namespace {

RunOutcome
capture(const Program &prog, const SimParams &params)
{
    StatSet stats;
    RunOutcome out;
    out.result = simulate(prog, params, stats);
    for (const std::string &name : stats.counterNames())
        out.stats[name] = stats.get(name);
    return out;
}

} // namespace

RunOutcome
runWorkload(const CompiledWorkload &w, BinaryVariant v, InputSet input,
            const SimParams &params)
{
    return capture(programFor(w, v, input), params);
}

RunOutcome
runProgram(const Program &prog, const SimParams &params)
{
    return capture(prog, params);
}

} // namespace wisc
