/**
 * @file
 * Thread pool for fanning independent simulations out across cores.
 *
 * Every (benchmark, series, input) simulation in an experiment is an
 * independent job with its own Core and StatSet; only the compiled
 * workloads/programs are shared, and those are read-only during runs.
 * The pool therefore needs no locking beyond its own task queue, and —
 * because each simulation is deterministic — results are bit-identical
 * no matter how many workers execute the jobs or in what order they
 * finish.
 *
 * Sizing: explicit constructor argument > WISC_JOBS environment
 * variable > std::thread::hardware_concurrency(). A size of 1 runs
 * every task inline on the caller's thread (the exact serial path, no
 * threads spawned), which is also the fallback wherever threads are
 * unavailable.
 */

#ifndef WISC_HARNESS_PARALLEL_RUNNER_HH_
#define WISC_HARNESS_PARALLEL_RUNNER_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wisc {

class ParallelRunner
{
  public:
    /** jobs == 0 resolves via WISC_JOBS, then hardware_concurrency(). */
    explicit ParallelRunner(unsigned jobs = 0);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    /** Worker count this pool was sized to (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** Enqueue one task; the future rethrows any exception it threw. */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(0) .. body(n-1) across the pool and wait for all of
     * them. Exceptions propagate: the first failing index's exception
     * is rethrown here (remaining tasks still run to completion).
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &body);

    /** The pool size a default-constructed runner would use. */
    static unsigned defaultJobs();

    /**
     * Process-wide pool, created on first use at defaultJobs() width.
     * Experiment code that just wants "the machine's cores" should use
     * this instead of constructing private pools, so a many-experiment
     * process (bench/run_matrix) fans every simulation out through one
     * set of workers.
     */
    static ParallelRunner &shared();

  private:
    void workerLoop();

    unsigned jobs_ = 1;
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace wisc

#endif // WISC_HARNESS_PARALLEL_RUNNER_HH_
