/**
 * @file
 * JSON serialization of harness results — the emission layer behind the
 * bench binaries' `--json` flag and the repo's BENCH_*.json trajectory
 * files.
 *
 * Schema (schema_version 1):
 *
 *   RunOutcome   -> { "halted": bool, "cycles": u64,
 *                     "retired_uops": u64, "ipc": double,
 *                     "result_reg": u64, "mem_fingerprint": u64,
 *                     "counters": { name: u64, ... },
 *                     "histograms": { name: { "count": u64,
 *                                             "buckets": [u64...] } },
 *                     "tables": { name: { "columns": [str...],
 *                                         "rows": [ { "key": u64,
 *                                            "values": [u64...] }...] } } }
 *
 * The "tables" member appears only when the run produced at least one
 * StatTable (e.g. --branch-profile), so older documents are unaffected.
 *
 *   NormalizedResults
 *                -> { "benchmarks": [...], "series": [...],
 *                     "rel_time": [[double...]...],
 *                     "avg": [...], "avg_nomcf": [...],
 *                     "runs": [ { "benchmark": name,
 *                                 "baseline": RunOutcome,
 *                                 "series": [RunOutcome...] } ] }
 *
 *   Table        -> { "headers": [...], "rows": [[...]...] }
 *
 * Counters and histogram buckets are emitted as JSON integers (never
 * doubles), so a round-trip through the parser reproduces them exactly.
 */

#ifndef WISC_HARNESS_JSON_WRITER_HH_
#define WISC_HARNESS_JSON_WRITER_HH_

#include <string>

#include "common/json.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

namespace wisc {

json::Value toJson(const RunOutcome &r);
json::Value toJson(const NormalizedResults &r);
json::Value toJson(const Table &t);

/**
 * Inverse of toJson(RunOutcome): reconstructs the outcome — result,
 * every counter, histogram, and table — bit-identically. This is the
 * wire decoding of the wisc-serve protocol, so client and daemon share
 * exactly the `--json` encoding rather than a third ad-hoc one.
 * Derived members ("ipc") are ignored. FatalError on a structurally
 * invalid document.
 */
RunOutcome runOutcomeFromJson(const json::Value &v);

/** Write a document to a file; FatalError if the file can't be written. */
void writeJsonFile(const std::string &path, const json::Value &doc);

} // namespace wisc

#endif // WISC_HARNESS_JSON_WRITER_HH_
