#include "harness/bench_cli.hh"

#include <cstdlib>
#include <iostream>

#include "common/log.hh"
#include "harness/json_writer.hh"
#include "harness/parallel_runner.hh"

namespace wisc {

BenchCli::BenchCli(int argc, char **argv, std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            if (i + 1 >= argc) {
                std::cerr << name_ << ": --json requires a path\n";
                std::exit(2);
            }
            path_ = argv[++i];
        } else if (a == "--help" || a == "-h") {
            std::cout << "usage: " << name_ << " [--json PATH]\n"
                      << "\n"
                      << "  --json PATH   also write the results as JSON "
                         "(WISC_RESULTS_JSON env\n"
                      << "                variable is the fallback "
                         "destination)\n"
                      << "\n"
                      << "  WISC_JOBS=N   worker threads for the "
                         "simulation sweep (default: all cores)\n";
            std::exit(0);
        } else {
            std::cerr << name_ << ": unknown option '" << a
                      << "' (try --help)\n";
            std::exit(2);
        }
    }
    if (path_.empty()) {
        if (const char *env = std::getenv("WISC_RESULTS_JSON"))
            path_ = env;
    }
    doc_["bench"] = name_;
    doc_["schema_version"] = 1u;
}

void
BenchCli::add(const std::string &key, json::Value v)
{
    doc_[key] = std::move(v);
}

void
BenchCli::addResults(const std::string &key, const NormalizedResults &r)
{
    doc_[key] = toJson(r);
}

void
BenchCli::addTable(const std::string &key, const Table &t)
{
    doc_[key] = toJson(t);
}

double
BenchCli::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

int
BenchCli::finish()
{
    if (path_.empty())
        return 0;
    doc_["jobs"] = ParallelRunner::defaultJobs();
    const double wall = elapsedSeconds();
    doc_["wall_seconds"] = wall;
    if (simUops_ > 0) {
        doc_["simulated_uops"] = simUops_;
        doc_["simulated_cycles"] = simCycles_;
        if (wall > 0) {
            doc_["uops_per_second"] = static_cast<double>(simUops_) / wall;
            doc_["cycles_per_second"] =
                static_cast<double>(simCycles_) / wall;
        }
    }
    try {
        writeJsonFile(path_, doc_);
    } catch (const FatalError &e) {
        std::cerr << name_ << ": " << e.what() << "\n";
        return 1;
    }
    std::cerr << name_ << ": wrote " << path_ << "\n";
    return 0;
}

} // namespace wisc
