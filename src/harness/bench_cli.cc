#include "harness/bench_cli.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/log.hh"
#include "harness/json_writer.hh"
#include "harness/parallel_runner.hh"

namespace wisc {

namespace {

/** One command-line flag: its spelling, argument placeholder (nullptr
 *  for plain switches), help text, and where the parsed value lands in
 *  the OutputSpec. The same table drives parsing and --help, so the
 *  two cannot disagree. */
struct FlagDesc
{
    const char *flag;
    const char *arg;  ///< placeholder name, or nullptr for a switch
    const char *help;
    std::string OutputSpec::*strField; ///< set for argument flags
    bool OutputSpec::*boolField;       ///< set for switches
};

constexpr FlagDesc kFlags[] = {
    {"--json", "PATH",
     "also write the results as JSON (WISC_RESULTS_JSON env\n"
     "variable is the fallback destination)",
     &OutputSpec::jsonPath, nullptr},
    {"--cache", "DIR",
     "persist simulation results in a content-addressed cache\n"
     "(WISC_CACHE_DIR env variable is the fallback)",
     &OutputSpec::cacheDir, nullptr},
    {"--no-cache", nullptr,
     "ignore WISC_CACHE_DIR and any compiled-in default", nullptr,
     &OutputSpec::noCache},
    {"--cpi-stack", nullptr,
     "collect the attrib.* cycle-attribution counters (CPI stack)",
     nullptr, &OutputSpec::cpiStack},
    {"--branch-profile", nullptr,
     "collect the per-static-branch core.branch_profile table", nullptr,
     &OutputSpec::branchProfile},
};

void
printUsage(const std::string &name)
{
    std::cout << "usage: " << name;
    for (const FlagDesc &f : kFlags) {
        std::cout << " [" << f.flag;
        if (f.arg)
            std::cout << ' ' << f.arg;
        std::cout << ']';
    }
    std::cout << "\n\n";
    for (const FlagDesc &f : kFlags) {
        std::string head = f.flag;
        if (f.arg)
            head += std::string(" ") + f.arg;
        std::cout << "  " << head;
        // Two-column layout: pad the head, indent continuation lines.
        const std::size_t col = 22;
        std::size_t used = 2 + head.size();
        if (used < col)
            std::cout << std::string(col - used, ' ');
        else
            std::cout << "\n" << std::string(col, ' ');
        for (const char *c = f.help; *c; ++c) {
            std::cout << *c;
            if (*c == '\n')
                std::cout << std::string(col, ' ');
        }
        std::cout << "\n";
    }
    std::cout << "\n  WISC_JOBS=N           worker threads for the "
                 "simulation sweep (default: all cores)\n";
}

/** Resolve the persistent-cache directory: flag > WISC_CACHE_DIR >
 *  compiled-in default ("" = persistent layer off). */
std::string
resolveCacheDir(const OutputSpec &spec)
{
    if (spec.noCache)
        return {};
    if (!spec.cacheDir.empty())
        return spec.cacheDir;
    if (const char *env = std::getenv("WISC_CACHE_DIR"))
        if (*env)
            return env;
#ifdef WISC_CACHE_DEFAULT_DIR
    return WISC_CACHE_DEFAULT_DIR;
#else
    return {};
#endif
}

} // namespace

OutputSpec
OutputSpec::parse(int argc, char **argv, const std::string &name)
{
    OutputSpec spec;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printUsage(name);
            std::exit(0);
        }
        const FlagDesc *match = nullptr;
        for (const FlagDesc &f : kFlags)
            if (a == f.flag)
                match = &f;
        if (!match) {
            std::cerr << name << ": unknown option '" << a
                      << "' (try --help)\n";
            std::exit(2);
        }
        if (match->strField) {
            if (i + 1 >= argc) {
                std::cerr << name << ": " << match->flag << " requires "
                          << match->arg << "\n";
                std::exit(2);
            }
            spec.*(match->strField) = argv[++i];
        } else {
            spec.*(match->boolField) = true;
        }
    }
    if (spec.jsonPath.empty())
        if (const char *env = std::getenv("WISC_RESULTS_JSON"))
            spec.jsonPath = env;
    return spec;
}

BenchCli::BenchCli(int argc, char **argv, std::string name)
    : name_(std::move(name)), spec_(OutputSpec::parse(argc, argv, name_)),
      start_(std::chrono::steady_clock::now())
{
    // Opt this process into the run cache: dedup always, persistent
    // layer when a directory is configured.
    RunService &svc = RunService::global();
    svc.setMemoize(true);
    svc.setCacheDir(resolveCacheDir(spec_));
    cacheStart_ = svc.stats();

    doc_["bench"] = name_;
    doc_["schema_version"] = 1u;
}

BenchCli::BenchCli(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
    RunService &svc = RunService::global();
    svc.setMemoize(true);
    cacheStart_ = svc.stats();

    doc_["bench"] = name_;
    doc_["schema_version"] = 1u;
}

void
BenchCli::add(const std::string &key, json::Value v)
{
    doc_[key] = std::move(v);
}

void
BenchCli::addResults(const std::string &key, const NormalizedResults &r)
{
    // Every serialized outcome counts toward the throughput figures, so
    // all normalized-experiment benches report uops_per_second.
    for (const RunOutcome &b : r.baseline)
        noteSimulated(b.result.retiredUops, b.result.cycles);
    for (const auto &row : r.outcomes)
        for (const RunOutcome &o : row)
            noteSimulated(o.result.retiredUops, o.result.cycles);
    doc_[key] = toJson(r);
}

void
BenchCli::addTable(const std::string &key, const Table &t)
{
    doc_[key] = toJson(t);
}

double
BenchCli::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
BenchCli::finalizeDoc()
{
    doc_["jobs"] = ParallelRunner::defaultJobs();
    const double wall = elapsedSeconds();
    doc_["wall_seconds"] = wall;
    if (simUops_ > 0) {
        doc_["simulated_uops"] = simUops_;
        doc_["simulated_cycles"] = simCycles_;
        if (wall > 0) {
            doc_["uops_per_second"] = static_cast<double>(simUops_) / wall;
            doc_["cycles_per_second"] =
                static_cast<double>(simCycles_) / wall;
        }
    }

    // Cache counters as deltas over this CLI's lifetime: in a
    // many-experiment process each document reports its own traffic.
    const RunCacheStats now = RunService::global().stats();
    doc_["cache_hits"] = now.diskHits - cacheStart_.diskHits;
    doc_["cache_misses"] = now.misses - cacheStart_.misses;
    doc_["dedup_hits"] = now.dedupHits - cacheStart_.dedupHits;
    doc_["cache_corrupt"] = now.corrupt - cacheStart_.corrupt;
    const std::string dir = RunService::global().cacheDir();
    if (!dir.empty())
        doc_["cache_dir"] = dir;
}

int
BenchCli::finish()
{
    finalizeDoc();
    if (spec_.jsonPath.empty())
        return 0;
    try {
        writeJsonFile(spec_.jsonPath, doc_);
    } catch (const FatalError &e) {
        std::cerr << name_ << ": " << e.what() << "\n";
        return 1;
    }
    std::cerr << name_ << ": wrote " << spec_.jsonPath << "\n";
    return 0;
}

} // namespace wisc
