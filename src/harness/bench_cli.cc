#include "harness/bench_cli.hh"

#include <cstdlib>
#include <iostream>

#include "common/log.hh"
#include "harness/json_writer.hh"
#include "harness/parallel_runner.hh"

namespace wisc {

namespace {

/** Resolve the persistent-cache directory: flag > WISC_CACHE_DIR >
 *  compiled-in default ("" = persistent layer off). */
std::string
resolveCacheDir(const std::string &flagDir, bool noCache)
{
    if (noCache)
        return {};
    if (!flagDir.empty())
        return flagDir;
    if (const char *env = std::getenv("WISC_CACHE_DIR"))
        if (*env)
            return env;
#ifdef WISC_CACHE_DEFAULT_DIR
    return WISC_CACHE_DEFAULT_DIR;
#else
    return {};
#endif
}

} // namespace

BenchCli::BenchCli(int argc, char **argv, std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
    std::string cacheDir;
    bool noCache = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            if (i + 1 >= argc) {
                std::cerr << name_ << ": --json requires a path\n";
                std::exit(2);
            }
            path_ = argv[++i];
        } else if (a == "--cache") {
            if (i + 1 >= argc) {
                std::cerr << name_ << ": --cache requires a directory\n";
                std::exit(2);
            }
            cacheDir = argv[++i];
        } else if (a == "--no-cache") {
            noCache = true;
        } else if (a == "--help" || a == "-h") {
            std::cout << "usage: " << name_
                      << " [--json PATH] [--cache DIR | --no-cache]\n"
                      << "\n"
                      << "  --json PATH   also write the results as JSON "
                         "(WISC_RESULTS_JSON env\n"
                      << "                variable is the fallback "
                         "destination)\n"
                      << "  --cache DIR   persist simulation results in a "
                         "content-addressed cache\n"
                      << "                (WISC_CACHE_DIR env variable is "
                         "the fallback)\n"
                      << "  --no-cache    ignore WISC_CACHE_DIR and any "
                         "compiled-in default\n"
                      << "\n"
                      << "  WISC_JOBS=N   worker threads for the "
                         "simulation sweep (default: all cores)\n";
            std::exit(0);
        } else {
            std::cerr << name_ << ": unknown option '" << a
                      << "' (try --help)\n";
            std::exit(2);
        }
    }
    if (path_.empty()) {
        if (const char *env = std::getenv("WISC_RESULTS_JSON"))
            path_ = env;
    }

    // Opt this process into the run cache: dedup always, persistent
    // layer when a directory is configured.
    RunService &svc = RunService::global();
    svc.setMemoize(true);
    svc.setCacheDir(resolveCacheDir(cacheDir, noCache));
    cacheStart_ = svc.stats();

    doc_["bench"] = name_;
    doc_["schema_version"] = 1u;
}

BenchCli::BenchCli(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
    RunService &svc = RunService::global();
    svc.setMemoize(true);
    cacheStart_ = svc.stats();

    doc_["bench"] = name_;
    doc_["schema_version"] = 1u;
}

void
BenchCli::add(const std::string &key, json::Value v)
{
    doc_[key] = std::move(v);
}

void
BenchCli::addResults(const std::string &key, const NormalizedResults &r)
{
    // Every serialized outcome counts toward the throughput figures, so
    // all normalized-experiment benches report uops_per_second.
    for (const RunOutcome &b : r.baseline)
        noteSimulated(b.result.retiredUops, b.result.cycles);
    for (const auto &row : r.outcomes)
        for (const RunOutcome &o : row)
            noteSimulated(o.result.retiredUops, o.result.cycles);
    doc_[key] = toJson(r);
}

void
BenchCli::addTable(const std::string &key, const Table &t)
{
    doc_[key] = toJson(t);
}

double
BenchCli::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
BenchCli::finalizeDoc()
{
    doc_["jobs"] = ParallelRunner::defaultJobs();
    const double wall = elapsedSeconds();
    doc_["wall_seconds"] = wall;
    if (simUops_ > 0) {
        doc_["simulated_uops"] = simUops_;
        doc_["simulated_cycles"] = simCycles_;
        if (wall > 0) {
            doc_["uops_per_second"] = static_cast<double>(simUops_) / wall;
            doc_["cycles_per_second"] =
                static_cast<double>(simCycles_) / wall;
        }
    }

    // Cache counters as deltas over this CLI's lifetime: in a
    // many-experiment process each document reports its own traffic.
    const RunCacheStats now = RunService::global().stats();
    doc_["cache_hits"] = now.diskHits - cacheStart_.diskHits;
    doc_["cache_misses"] = now.misses - cacheStart_.misses;
    doc_["dedup_hits"] = now.dedupHits - cacheStart_.dedupHits;
    doc_["cache_corrupt"] = now.corrupt - cacheStart_.corrupt;
    const std::string dir = RunService::global().cacheDir();
    if (!dir.empty())
        doc_["cache_dir"] = dir;
}

int
BenchCli::finish()
{
    finalizeDoc();
    if (path_.empty())
        return 0;
    try {
        writeJsonFile(path_, doc_);
    } catch (const FatalError &e) {
        std::cerr << name_ << ": " << e.what() << "\n";
        return 1;
    }
    std::cerr << name_ << ": wrote " << path_ << "\n";
    return 0;
}

} // namespace wisc
