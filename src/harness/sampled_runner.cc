#include "harness/sampled_runner.hh"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "uarch/fastfwd.hh"

namespace wisc {

namespace {

bool
isAttrib(const std::string &name)
{
    return name.rfind("attrib.", 0) == 0;
}

/** Round a non-negative rate-scaled estimate into a counter value. */
std::uint64_t
scaleCount(std::uint64_t delta, std::uint64_t whole, std::uint64_t window)
{
    if (window == 0)
        return 0;
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(delta) *
                     static_cast<double>(whole) /
                     static_cast<double>(window)));
}

} // namespace

RunOutcome
runSampled(const Program &prog, const SimParams &params)
{
    const auto &sp = params.sampling;
    wisc_assert(sp.enabled, "runSampled() without sampling.enabled");
    wisc_assert(sp.periodUops > 0 && sp.measureUops > 0,
                "sampling needs a nonzero period and measurement window");
    // The retired µop stream is *microarchitectural* on this machine: a
    // low-confidence wish branch is converted to predication, so the
    // core retires the fall-through block as nullified µops where the
    // functional reference branches over it. The execution-invariant
    // coordinate — identical across every valid path, branch-mode or
    // predicated — is the predicated-TRUE µop count, so the estimator
    // measures cycles per qp-true retire and extrapolates over the
    // functional engine's exact qp-true total. That identification
    // needs every instruction to rename to exactly one µop with
    // qp-false µops still flowing through the pipe (C-style, no
    // NO-FETCH oracle).
    wisc_assert(params.predMech == PredMechanism::CStyle &&
                    !params.oracle.noFetch,
                "sampled simulation requires the C-style predication "
                "mechanism without the NO-FETCH oracle");
    // MergePoint dynamic predication is guarded off: the warm-state
    // checkpoints come from the *functional* fast-forward engine, which
    // replays no timing and therefore cannot learn the merge-point
    // table a mid-stream core restore would need (FetchGate is fine —
    // fetch gating is pure timing with no warm state of its own).
    wisc_assert(params.dynPred != DynPredMode::MergePoint,
                "sampled simulation cannot fast-forward the "
                "merge-point table; use dynPred=Off or FetchGate");

    // The window cores and the fast-forward engine must agree on the
    // params fingerprint (the checkpoint guard), so both get the same
    // modified copy: final-state checking is off because a window that
    // happens to retire Halt must not trigger a whole-program reference
    // emulation per window — the sampled result is checked against the
    // functional engine below anyway.
    SimParams wp = params;
    wp.checkFinalState = false;

    // The functional engine gets the same hard step budget the
    // reference emulator runs under; window starts are capped at it so
    // `nextStart` arithmetic cannot overflow (period and skip are
    // params-controlled and could otherwise sum past 2^64).
    const std::uint64_t kCap = Emulator::kDefaultMaxSteps;

    FastForward ff(prog, wp);

    const std::string kPredFalse = "core.retired_pred_false";
    std::vector<double> windowCpi; // cycles per qp-true retire
    std::uint64_t measCycles = 0, measQt = 0;
    std::uint64_t windowCycles = 0, windowQt = 0; // incl. warmup
    std::map<std::string, std::uint64_t> measDelta;
    std::map<std::string, std::uint64_t> attribDelta;

    // One Core and one StatSet serve the prefix and every window:
    // re-beginRun() fully resets machine state before each restore, and
    // counter deltas are taken against per-window snapshots. This keeps
    // the per-window fixed cost to the checkpoint restore itself
    // instead of paying predictor-table and cache-array allocation per
    // window.
    StatSet ws;
    Core core(wp, ws);
    std::map<std::string, std::uint64_t> snapStart, snapMeas;

    // Stratum A: the detailed prefix, simulated cycle-accurately from
    // reset — byte-for-byte the same machine evolution as the full
    // run's own cold start, so its cycles and counters are *exact*
    // (a stratum sampled at a 100% rate). This is where the program's
    // cold-start transient lives: a fixed cycle cost with a steeply
    // decaying CPI profile that periodic windows systematically
    // mis-estimate in either direction.
    std::uint64_t prefixCycles = 0, prefixRetired = 0, prefixQt = 0;
    bool prefixHalted = false;
    std::map<std::string, std::uint64_t> prefixDelta;
    if (sp.prefixUops > 0) {
        core.beginRun(prog);
        core.advance(sp.prefixUops, /*drain=*/false);
        prefixCycles = core.cycles();
        prefixRetired = core.retired();
        prefixHalted = core.halted();
        core.finishRun(); // publishes attribution into ws
        prefixQt = prefixRetired - ws.get(kPredFalse);
        for (const std::string &name : ws.counterNames())
            prefixDelta[name] = ws.get(name);
    }

    // Stratum B: periodic detailed windows over the remainder, the
    // first one centered half a period past the prefix.
    std::uint64_t nextStart = sp.prefixUops + sp.periodUops / 2;
    while (!prefixHalted && nextStart <= kCap) {
        ff.advanceTo(nextStart);
        if (ff.halted())
            break;

        CoreCheckpoint ckpt;
        ff.checkpoint(ckpt);

        snapStart.clear();
        for (const std::string &name : ws.counterNames())
            snapStart[name] = ws.get(name);
        core.beginRun(prog, ckpt);

        const std::uint64_t base = ckpt.retiredUops;
        core.advance(base + sp.warmupUops, /*drain=*/false);

        // Post-warmup marks and counter snapshot: measurement starts
        // here. A window whose program ends inside the warmup yields
        // no measurement.
        const bool warmHalted = core.halted();
        const Cycle c0 = core.cycles();
        const std::uint64_t u0 = core.retired();
        snapMeas.clear();
        for (const std::string &name : ws.counterNames())
            snapMeas[name] = ws.get(name);

        if (!warmHalted)
            core.advance(u0 + sp.measureUops, /*drain=*/false);
        const Cycle mc = core.cycles() - c0;
        const std::uint64_t mu = core.retired() - u0;
        core.finishRun(); // publishes attribution into ws

        // Measured work in the invariant coordinate: qp-true retires
        // (total retires minus the window's nullified ones).
        const std::uint64_t mpf = ws.get(kPredFalse) - snapMeas[kPredFalse];
        wisc_assert(mpf <= mu, "pred-false retires exceed retires");
        const std::uint64_t mqt = mu - mpf;

        if (mqt > 0) {
            windowCpi.push_back(static_cast<double>(mc) /
                                static_cast<double>(mqt));
            measCycles += mc;
            measQt += mqt;
            windowCycles += core.cycles() - ckpt.now;
            windowQt += core.retired() - base -
                        (ws.get(kPredFalse) - snapStart[kPredFalse]);
            for (const std::string &name : ws.counterNames()) {
                const std::uint64_t v = ws.get(name);
                if (isAttrib(name)) {
                    // Attribution publishes only at finishRun, so its
                    // per-window exposure is the whole window.
                    auto it = snapStart.find(name);
                    attribDelta[name] +=
                        v - (it == snapStart.end() ? 0 : it->second);
                } else {
                    auto it = snapMeas.find(name);
                    measDelta[name] +=
                        v - (it == snapMeas.end() ? 0 : it->second);
                }
            }
        }

        if (core.halted())
            break; // the window covered the program's end
        if (nextStart > kCap - sp.periodUops)
            break; // next start would exceed the functional budget
        nextStart += sp.periodUops;
    }

    // Exact architectural results from the functional engine. The
    // functional qp-true count is the execution-invariant run length;
    // the functional qp-false count is NOT the core's (the core adds
    // nullified µops wherever it predicates a wish branch).
    ff.advanceTo(kCap);
    wisc_assert(ff.halted(), "program did not halt within ", kCap,
                " functionally executed instructions");
    const std::uint64_t wholeQt = ff.uops() - ff.predFalse();

    if (prefixHalted)
        wisc_assert(prefixQt == wholeQt,
                    "detailed prefix retired ", prefixQt,
                    " qp-true µops but the functional engine says ",
                    wholeQt);

    if (measQt == 0 && !prefixHalted) {
        // Too short for even one measured window: run it for real and
        // mark the fallback so consumers can tell. Sampling is switched
        // off in the copy or captureRun() would route right back here.
        SimParams fb = params;
        fb.sampling.enabled = false;
        RunOutcome out = captureRun(prog, fb);
        out.stats["sampling.fallback"] = 1;
        return out;
    }

    // Stratum B estimate: cycles per qp-true retire over the sampled
    // remainder. When the prefix swallowed the whole program the
    // remainder is empty and the "estimate" is exact.
    const std::uint64_t remQt = wholeQt - prefixQt;
    const double cpiHat =
        measQt > 0 ? static_cast<double>(measCycles) /
                         static_cast<double>(measQt)
                   : 0.0;

    RunOutcome out;
    out.result.halted = true;
    out.result.cycles =
        prefixCycles + static_cast<Cycle>(std::llround(
                           cpiHat * static_cast<double>(remQt)));
    out.result.resultReg = ff.archState().readReg(4);
    out.result.memFingerprint = ff.archState().mem().fingerprint();

    // Every counter is the exact prefix count plus its window delta
    // rate-scaled over the remainder in the qp-true coordinate; the
    // whole-run retired-µop count is then the invariant length plus
    // the (part exact, part estimated) nullified padding.
    for (const auto &kv : prefixDelta)
        out.stats[kv.first] = kv.second;
    for (const auto &kv : measDelta)
        out.stats[kv.first] += scaleCount(kv.second, remQt, measQt);
    for (const auto &kv : attribDelta)
        out.stats[kv.first] += scaleCount(kv.second, remQt, windowQt);
    out.result.retiredUops =
        wholeQt + out.stats["core.retired_pred_false"];

    // Overrides where the estimator itself is authoritative.
    out.stats["core.cycles"] = out.result.cycles;
    out.stats["core.retired_uops"] = out.result.retiredUops;

    // Per-window CPI spread -> standard error of the CPI estimate. With
    // fewer than two measurement windows (short program, large period)
    // there is no spread to divide by: the half-width is *unavailable*,
    // not zero — a silent 0 here used to read as "perfect confidence"
    // downstream, so the validity is reported explicitly and the
    // estimate itself is withheld.
    const std::size_t n = windowCpi.size();
    const bool seValid = n >= 2;
    double se = 0.0;
    if (seValid) {
        double var = 0.0;
        for (double c : windowCpi) {
            const double d = c - cpiHat;
            var += d * d;
        }
        var /= static_cast<double>(n - 1);
        se = std::sqrt(var / static_cast<double>(n));
    }

    out.stats["sampling.windows"] = n;
    out.stats["sampling.qp_true_uops"] = wholeQt;      // exact
    out.stats["sampling.functional_insts"] = ff.uops(); // exact
    out.stats["sampling.prefix_uops"] = prefixRetired;  // exact
    out.stats["sampling.prefix_cycles"] = prefixCycles; // exact
    out.stats["sampling.prefix_qp_true"] = prefixQt;    // exact
    out.stats["sampling.measured_qp_true"] = measQt;
    out.stats["sampling.measured_cycles"] = measCycles;
    out.stats["sampling.window_qp_true"] = windowQt;
    out.stats["sampling.window_cycles"] = windowCycles;
    out.stats["sampling.cpi_x1e6"] = static_cast<std::uint64_t>(
        std::llround(cpiHat * 1e6));
    out.stats["sampling.cpi_se_valid"] = seValid ? 1 : 0;
    if (seValid)
        out.stats["sampling.cpi_se_x1e6"] = static_cast<std::uint64_t>(
            std::llround(se * 1e6));
    return out;
}

} // namespace wisc
