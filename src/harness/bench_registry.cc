#include "harness/bench_registry.hh"

#include "common/log.hh"

namespace wisc {

namespace {

/** Function-local singleton: safe to use from static initializers in
 *  other TUs regardless of initialization order. */
std::vector<BenchEntry> &
mutableRegistry()
{
    static std::vector<BenchEntry> entries;
    return entries;
}

} // namespace

bool
registerBench(const char *name, BenchFn fn)
{
    wisc_assert(fn != nullptr, "null bench entry '", name, "'");
    for (const BenchEntry &e : mutableRegistry())
        wisc_assert(e.name != name, "duplicate bench entry '", name, "'");
    mutableRegistry().push_back({name, fn});
    return true;
}

const std::vector<BenchEntry> &
benchRegistry()
{
    return mutableRegistry();
}

BenchFn
findBench(const std::string &name)
{
    for (const BenchEntry &e : mutableRegistry())
        if (e.name == name)
            return e.fn;
    return nullptr;
}

} // namespace wisc
