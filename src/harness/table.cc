#include "harness/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace wisc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            if (c == 0)
                os << std::left << std::setw(static_cast<int>(widths[c]))
                   << cell;
            else
                os << "  " << std::right
                   << std::setw(static_cast<int>(widths[c])) << cell;
        }
        os << "\n";
    };

    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
}

void
printBanner(std::ostream &os, const std::string &title,
            const std::string &subtitle)
{
    os << "\n=== " << title << " ===\n";
    if (!subtitle.empty())
        os << subtitle << "\n";
    os << "\n";
}

} // namespace wisc
