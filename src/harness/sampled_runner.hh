/**
 * @file
 * Sampled-simulation orchestrator (SMARTS-style; DESIGN.md: sampling).
 *
 * Executes a run in two strata. Stratum A is an optional detailed
 * prefix (sampling.prefixUops) simulated cycle-accurately from reset —
 * identical to the full run's own cold start, so its cycles and
 * counters are exact; this is where a program's cold-start transient
 * (compulsory misses over the working set, steeply decaying CPI) is
 * measured rather than estimated. Stratum B is functional fast-forward
 * with µarchitectural warming (uarch/fastfwd.hh) punctuated by
 * periodic detailed windows: each window restores the warm checkpoint
 * into the Core, runs a detailed-warmup span that is excluded from
 * measurement, then measures SimParams::sampling.measureUops
 * cycle-accurately. Per-window measurements aggregate into whole-run
 * estimates:
 *
 * The run-length coordinate is the *qp-true* retire count, because the
 * raw retired-µop stream is microarchitectural here: a low-confidence
 * wish branch converts to predication, and the core retires the
 * fall-through block as nullified µops where the functional reference
 * branches over it. The qp-true subsequence is identical across every
 * valid execution (that is the wish-branch correctness argument), so:
 *
 *   - CPI-hat = Σ measured cycles / Σ measured qp-true retires;
 *     estimated cycles = CPI-hat × Uqt where Uqt is the *exact*
 *     whole-run qp-true count from the functional engine;
 *   - every counter statistic is rate-scaled from its measured-window
 *     delta to whole-run exposure in the same coordinate (attribution
 *     counters, published only at window finish, scale over the full
 *     window including warmup);
 *   - the result register and memory fingerprint are exact, from the
 *     functional engine; Uqt is exact and reported as
 *     sampling.qp_true_uops; the whole-run retired-µop count is an
 *     estimate (Uqt plus rate-scaled nullified padding);
 *   - the per-window CPI spread yields a standard error, reported as
 *     fixed-point sampling.* meta-statistics.
 *
 * Histograms and tables are not estimated (a sampled outcome carries
 * none); a run whose program ends before any window completes falls
 * back to full detailed simulation and says so via sampling.fallback.
 */

#ifndef WISC_HARNESS_SAMPLED_RUNNER_HH_
#define WISC_HARNESS_SAMPLED_RUNNER_HH_

#include "harness/runner.hh"

namespace wisc {

/** Execute 'prog' in sampled mode (params.sampling.enabled must be
 *  set). Requires the C-style predication mechanism without NO-FETCH,
 *  so one functional instruction is one retired µop and the qp-true
 *  subsequences of the two engines are the same coordinate system. */
RunOutcome runSampled(const Program &prog, const SimParams &params);

} // namespace wisc

#endif // WISC_HARNESS_SAMPLED_RUNNER_HH_
