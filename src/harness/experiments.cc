#include "harness/experiments.hh"

#include <map>
#include <optional>

#include "common/log.hh"
#include "harness/parallel_runner.hh"
#include "harness/table.hh"

namespace wisc {

NormalizedResults
runNormalizedExperiment(const std::vector<SeriesSpec> &series,
                        InputSet input, const SimParams &baselineParams,
                        const std::vector<std::string> &benchmarks,
                        unsigned jobs)
{
    if (benchmarks.empty())
        wisc_fatal("runNormalizedExperiment: empty benchmark list (the "
                   "AVG column would divide by zero)");

    NormalizedResults out;
    out.benchmarks = benchmarks;
    for (const auto &s : series)
        out.seriesLabels.push_back(s.label);
    out.avg.assign(series.size(), 0.0);
    out.avgNoMcf.assign(series.size(), 0.0);

    // jobs == 0 fans out through the process-wide pool, so experiments
    // sharing one process (bench/run_matrix) share one set of workers;
    // an explicit count gets a private pool of exactly that width.
    std::optional<ParallelRunner> privatePool;
    if (jobs)
        privatePool.emplace(jobs);
    ParallelRunner &pool = jobs ? *privatePool : ParallelRunner::shared();

    const std::size_t nb = benchmarks.size();
    const std::size_t runsPer = series.size() + 1; // slot 0 = baseline

    // Phase 1: compile each workload once and build each distinct
    // variant's program once. Programs are immutable during simulation,
    // so the run jobs share them read-only.
    std::vector<std::map<BinaryVariant, Program>> progs(nb);
    pool.forEach(nb, [&](std::size_t b) {
        CompiledWorkload w = compileWorkload(benchmarks[b]);
        auto &byVariant = progs[b];
        byVariant.emplace(BinaryVariant::Normal,
                          programFor(w, BinaryVariant::Normal, input));
        for (const SeriesSpec &s : series)
            if (!byVariant.count(s.variant))
                byVariant.emplace(s.variant,
                                  programFor(w, s.variant, input));
    });

    // Phase 2: every (benchmark, run) cell is an independent job with
    // its own Core and StatSet.
    std::vector<RunOutcome> runs(nb * runsPer);
    pool.forEach(nb * runsPer, [&](std::size_t k) {
        const std::size_t b = k / runsPer;
        const std::size_t r = k % runsPer;
        const BinaryVariant v =
            r == 0 ? BinaryVariant::Normal : series[r - 1].variant;
        const SimParams &p =
            r == 0 ? baselineParams : series[r - 1].params;
        runs[k] = run(RunRequest{progs[b].at(v), p});
    });

    // Reassemble in benchmark/series order: identical arithmetic to a
    // serial sweep, so the matrix is independent of the worker count.
    unsigned noMcfCount = 0;
    for (std::size_t b = 0; b < nb; ++b) {
        const std::string &name = benchmarks[b];
        RunOutcome &base = runs[b * runsPer];

        std::vector<double> row;
        std::vector<RunOutcome> rowOutcomes;
        for (std::size_t s = 0; s < series.size(); ++s) {
            RunOutcome &r = runs[b * runsPer + s + 1];
            double rel = static_cast<double>(r.result.cycles) /
                         static_cast<double>(base.result.cycles);
            row.push_back(rel);
            rowOutcomes.push_back(std::move(r));
        }
        for (std::size_t i = 0; i < row.size(); ++i) {
            out.avg[i] += row[i];
            if (name != "mcf")
                out.avgNoMcf[i] += row[i];
        }
        if (name != "mcf")
            ++noMcfCount;
        out.relTime.push_back(std::move(row));
        out.outcomes.push_back(std::move(rowOutcomes));
        out.baseline.push_back(std::move(base));
    }

    for (std::size_t i = 0; i < series.size(); ++i) {
        out.avg[i] /= static_cast<double>(benchmarks.size());
        if (noMcfCount)
            out.avgNoMcf[i] /= static_cast<double>(noMcfCount);
    }
    return out;
}

void
printNormalized(std::ostream &os, const NormalizedResults &r)
{
    std::vector<std::string> headers = {"benchmark"};
    headers.insert(headers.end(), r.seriesLabels.begin(),
                   r.seriesLabels.end());
    Table t(headers);
    for (std::size_t b = 0; b < r.benchmarks.size(); ++b) {
        std::vector<std::string> row = {r.benchmarks[b]};
        for (double v : r.relTime[b])
            row.push_back(Table::num(v));
        t.addRow(std::move(row));
    }
    std::vector<std::string> avgRow = {"AVG"};
    for (double v : r.avg)
        avgRow.push_back(Table::num(v));
    t.addRow(std::move(avgRow));
    std::vector<std::string> avgnRow = {"AVGnomcf"};
    for (double v : r.avgNoMcf)
        avgnRow.push_back(Table::num(v));
    t.addRow(std::move(avgnRow));
    t.print(os);
}

} // namespace wisc
