#include "harness/experiments.hh"

#include "harness/table.hh"

namespace wisc {

NormalizedResults
runNormalizedExperiment(const std::vector<SeriesSpec> &series,
                        InputSet input, const SimParams &baselineParams,
                        const std::vector<std::string> &benchmarks)
{
    NormalizedResults out;
    out.benchmarks = benchmarks;
    for (const auto &s : series)
        out.seriesLabels.push_back(s.label);
    out.avg.assign(series.size(), 0.0);
    out.avgNoMcf.assign(series.size(), 0.0);

    unsigned noMcfCount = 0;
    for (const std::string &name : benchmarks) {
        CompiledWorkload w = compileWorkload(name);
        RunOutcome base =
            runWorkload(w, BinaryVariant::Normal, input, baselineParams);

        std::vector<double> row;
        for (const SeriesSpec &s : series) {
            RunOutcome r = runWorkload(w, s.variant, input, s.params);
            double rel = static_cast<double>(r.result.cycles) /
                         static_cast<double>(base.result.cycles);
            row.push_back(rel);
        }
        for (std::size_t i = 0; i < row.size(); ++i) {
            out.avg[i] += row[i];
            if (name != "mcf")
                out.avgNoMcf[i] += row[i];
        }
        if (name != "mcf")
            ++noMcfCount;
        out.relTime.push_back(std::move(row));
    }

    for (std::size_t i = 0; i < series.size(); ++i) {
        out.avg[i] /= static_cast<double>(benchmarks.size());
        if (noMcfCount)
            out.avgNoMcf[i] /= static_cast<double>(noMcfCount);
    }
    return out;
}

void
printNormalized(std::ostream &os, const NormalizedResults &r)
{
    std::vector<std::string> headers = {"benchmark"};
    headers.insert(headers.end(), r.seriesLabels.begin(),
                   r.seriesLabels.end());
    Table t(headers);
    for (std::size_t b = 0; b < r.benchmarks.size(); ++b) {
        std::vector<std::string> row = {r.benchmarks[b]};
        for (double v : r.relTime[b])
            row.push_back(Table::num(v));
        t.addRow(std::move(row));
    }
    std::vector<std::string> avgRow = {"AVG"};
    for (double v : r.avg)
        avgRow.push_back(Table::num(v));
    t.addRow(std::move(avgRow));
    std::vector<std::string> avgnRow = {"AVGnomcf"};
    for (double v : r.avgNoMcf)
        avgnRow.push_back(Table::num(v));
    t.addRow(std::move(avgnRow));
    t.print(os);
}

} // namespace wisc
