#include "harness/json_writer.hh"

#include <fstream>

#include "common/log.hh"

namespace wisc {

json::Value
toJson(const RunOutcome &r)
{
    json::Value v = json::Value::object();
    v["halted"] = r.result.halted;
    v["cycles"] = static_cast<std::uint64_t>(r.result.cycles);
    v["retired_uops"] = r.result.retiredUops;
    v["ipc"] = r.result.ipc();
    v["result_reg"] = static_cast<std::uint64_t>(r.result.resultReg);
    v["mem_fingerprint"] = r.result.memFingerprint;

    json::Value counters = json::Value::object();
    for (const auto &kv : r.stats)
        counters[kv.first] = kv.second;
    v["counters"] = std::move(counters);

    json::Value hists = json::Value::object();
    for (const auto &kv : r.hists) {
        json::Value h = json::Value::object();
        h["count"] = kv.second.count;
        json::Value buckets = json::Value::array();
        for (std::uint64_t b : kv.second.buckets)
            buckets.push(b);
        h["buckets"] = std::move(buckets);
        hists[kv.first] = std::move(h);
    }
    v["histograms"] = std::move(hists);

    // Stat tables (e.g. core.branch_profile) ride along only when the
    // run produced any, so documents from table-free runs are unchanged.
    if (!r.tables.empty()) {
        json::Value tables = json::Value::object();
        for (const auto &kv : r.tables) {
            json::Value t = json::Value::object();
            json::Value cols = json::Value::array();
            for (const std::string &c : kv.second.columns)
                cols.push(c);
            t["columns"] = std::move(cols);
            json::Value rows = json::Value::array();
            for (const auto &row : kv.second.rows) {
                json::Value jr = json::Value::object();
                jr["key"] = row.first;
                json::Value vals = json::Value::array();
                for (std::uint64_t x : row.second)
                    vals.push(x);
                jr["values"] = std::move(vals);
                rows.push(std::move(jr));
            }
            t["rows"] = std::move(rows);
            tables[kv.first] = std::move(t);
        }
        v["tables"] = std::move(tables);
    }
    return v;
}

RunOutcome
runOutcomeFromJson(const json::Value &v)
{
    RunOutcome r;
    r.result.halted = v.at("halted").asBool();
    r.result.cycles = v.at("cycles").asUint();
    r.result.retiredUops = v.at("retired_uops").asUint();
    r.result.resultReg =
        static_cast<Word>(v.at("result_reg").asUint());
    r.result.memFingerprint = v.at("mem_fingerprint").asUint();

    for (const auto &kv : v.at("counters").members())
        r.stats[kv.first] = kv.second.asUint();

    for (const auto &kv : v.at("histograms").members()) {
        HistogramSnapshot snap;
        snap.count = kv.second.at("count").asUint();
        const json::Value &buckets = kv.second.at("buckets");
        snap.buckets.reserve(buckets.size());
        for (std::size_t i = 0; i < buckets.size(); ++i)
            snap.buckets.push_back(buckets.at(i).asUint());
        r.hists.emplace(kv.first, std::move(snap));
    }

    if (const json::Value *tables = v.find("tables")) {
        for (const auto &kv : tables->members()) {
            TableSnapshot snap;
            const json::Value &cols = kv.second.at("columns");
            for (std::size_t i = 0; i < cols.size(); ++i)
                snap.columns.push_back(cols.at(i).asString());
            const json::Value &rows = kv.second.at("rows");
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const json::Value &row = rows.at(i);
                std::vector<std::uint64_t> vals;
                const json::Value &jv = row.at("values");
                vals.reserve(jv.size());
                for (std::size_t c = 0; c < jv.size(); ++c)
                    vals.push_back(jv.at(c).asUint());
                snap.rows.emplace(row.at("key").asUint(),
                                  std::move(vals));
            }
            r.tables.emplace(kv.first, std::move(snap));
        }
    }
    return r;
}

json::Value
toJson(const NormalizedResults &r)
{
    json::Value v = json::Value::object();

    json::Value benchmarks = json::Value::array();
    for (const auto &b : r.benchmarks)
        benchmarks.push(b);
    v["benchmarks"] = std::move(benchmarks);

    json::Value series = json::Value::array();
    for (const auto &s : r.seriesLabels)
        series.push(s);
    v["series"] = std::move(series);

    json::Value rel = json::Value::array();
    for (const auto &row : r.relTime) {
        json::Value jrow = json::Value::array();
        for (double x : row)
            jrow.push(x);
        rel.push(std::move(jrow));
    }
    v["rel_time"] = std::move(rel);

    json::Value avg = json::Value::array();
    for (double x : r.avg)
        avg.push(x);
    v["avg"] = std::move(avg);

    json::Value avgn = json::Value::array();
    for (double x : r.avgNoMcf)
        avgn.push(x);
    v["avg_nomcf"] = std::move(avgn);

    // Raw per-run data, when the experiment captured it.
    json::Value runs = json::Value::array();
    for (std::size_t b = 0; b < r.baseline.size(); ++b) {
        json::Value entry = json::Value::object();
        entry["benchmark"] =
            b < r.benchmarks.size() ? r.benchmarks[b] : std::string();
        entry["baseline"] = toJson(r.baseline[b]);
        json::Value cells = json::Value::array();
        if (b < r.outcomes.size())
            for (const RunOutcome &o : r.outcomes[b])
                cells.push(toJson(o));
        entry["series"] = std::move(cells);
        runs.push(std::move(entry));
    }
    v["runs"] = std::move(runs);
    return v;
}

json::Value
toJson(const Table &t)
{
    json::Value v = json::Value::object();
    json::Value headers = json::Value::array();
    for (const auto &h : t.headers())
        headers.push(h);
    v["headers"] = std::move(headers);
    json::Value rows = json::Value::array();
    for (const auto &row : t.rows()) {
        json::Value jrow = json::Value::array();
        for (const auto &cell : row)
            jrow.push(cell);
        rows.push(std::move(jrow));
    }
    v["rows"] = std::move(rows);
    return v;
}

void
writeJsonFile(const std::string &path, const json::Value &doc)
{
    std::ofstream out(path);
    if (!out)
        wisc_fatal("cannot open '", path, "' for writing");
    doc.write(out, 2);
    out << "\n";
    if (!out)
        wisc_fatal("write to '", path, "' failed");
}

} // namespace wisc
