/**
 * @file
 * wisc-run: the command-line entry point of the simulator.
 *
 *   wisc-run --list
 *   wisc-run --workload mcf [--variant wish-jjl] [--input A]
 *            [--rob 512] [--stages 30] [--select-uop] [--no-wish]
 *            [--no-loop-bias] [--perfect-cbp] [--perfect-conf]
 *            [--no-depend] [--no-fetch] [--stats] [--listing] [--dot]
 *   wisc-run --asm file.s [--stats]
 *
 * Runs one simulation and prints cycles/IPC plus (optionally) the full
 * statistics dump, the binary listing, or a Graphviz CFG of the
 * compiled kernel.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "compiler/dot.hh"
#include "harness/runner.hh"
#include "uarch/pipetrace.hh"
#include "isa/assembler.hh"

namespace {

using namespace wisc;

int
usage()
{
    std::cout <<
        "usage: wisc-run --list\n"
        "       wisc-run --workload NAME [options]\n"
        "       wisc-run --asm FILE.s [options]\n"
        "\n"
        "workload options:\n"
        "  --variant V     normal | base-def | base-max | wish-jj |\n"
        "                  wish-jjl (default wish-jjl)\n"
        "  --input X       A | B | C (default A)\n"
        "  --listing       print the compiled binary\n"
        "  --dot           print the kernel CFG as Graphviz\n"
        "\n"
        "machine options:\n"
        "  --rob N         reorder buffer entries (default 512)\n"
        "  --stages N      pipeline depth (default 30)\n"
        "  --select-uop    use the select-uop predication mechanism\n"
        "  --no-wish       ignore wish hint bits\n"
        "  --no-loop-bias  disable the overestimating loop predictor\n"
        "  --dyn-pred M    dynamic predication for normal branches:\n"
        "                  off | merge-point | fetch-gate (default off)\n"
        "  --perfect-cbp / --perfect-conf / --no-depend / --no-fetch\n"
        "                  oracle knobs (Figure 2 / 10 idealizations)\n"
        "\n"
        "output options:\n"
        "  --stats         dump every statistic\n"
        "  --cpi-stack     collect the attrib.* cycle-attribution "
        "counters\n"
        "  --branch-profile\n"
        "                  collect the per-static-branch profile table\n"
        "  --pipeview N    render a pipeline diagram of the first N uops\n";
    return 2;
}

BinaryVariant
parseVariant(const std::string &v)
{
    if (v == "normal") return BinaryVariant::Normal;
    if (v == "base-def") return BinaryVariant::BaseDef;
    if (v == "base-max") return BinaryVariant::BaseMax;
    if (v == "wish-jj") return BinaryVariant::WishJumpJoin;
    if (v == "wish-jjl") return BinaryVariant::WishJumpJoinLoop;
    wisc_fatal("unknown variant '", v, "'");
}

InputSet
parseInput(const std::string &v)
{
    if (v == "A" || v == "a") return InputSet::A;
    if (v == "B" || v == "b") return InputSet::B;
    if (v == "C" || v == "c") return InputSet::C;
    wisc_fatal("unknown input set '", v, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload, asmFile;
    BinaryVariant variant = BinaryVariant::WishJumpJoinLoop;
    InputSet input = InputSet::A;
    SimParams params;
    bool dumpStats = false, listing = false, dot = false;
    std::size_t pipeview = 0;

    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            wisc_fatal("missing argument after ", argv[i]);
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--list") {
                for (const auto &n : workloadNames())
                    std::cout << n << "\n";
                return 0;
            } else if (a == "--workload") {
                workload = next(i);
            } else if (a == "--asm") {
                asmFile = next(i);
            } else if (a == "--variant") {
                variant = parseVariant(next(i));
            } else if (a == "--input") {
                input = parseInput(next(i));
            } else if (a == "--rob") {
                params.robSize =
                    static_cast<unsigned>(std::stoul(next(i)));
                params.iqSize = params.robSize / 4;
                params.lsqSize = params.robSize / 2;
            } else if (a == "--stages") {
                params.pipelineStages =
                    static_cast<unsigned>(std::stoul(next(i)));
            } else if (a == "--select-uop") {
                params.predMech = PredMechanism::SelectUop;
            } else if (a == "--no-wish") {
                params.wishEnabled = false;
            } else if (a == "--no-loop-bias") {
                params.wishLoopBias = false;
            } else if (a == "--dyn-pred") {
                const std::string m = next(i);
                if (m == "off")
                    params.dynPred = DynPredMode::Off;
                else if (m == "merge-point")
                    params.dynPred = DynPredMode::MergePoint;
                else if (m == "fetch-gate")
                    params.dynPred = DynPredMode::FetchGate;
                else
                    wisc_fatal("--dyn-pred wants off | merge-point | "
                               "fetch-gate, got '", m, "'");
            } else if (a == "--perfect-cbp") {
                params.oracle.perfectCBP = true;
            } else if (a == "--perfect-conf") {
                params.oracle.perfectConfidence = true;
            } else if (a == "--no-depend") {
                params.oracle.noDepend = true;
            } else if (a == "--no-fetch") {
                params.oracle.noFetch = true;
            } else if (a == "--stats") {
                dumpStats = true;
            } else if (a == "--cpi-stack") {
                params.collectAttribution = true;
            } else if (a == "--branch-profile") {
                params.collectBranchProfile = true;
            } else if (a == "--pipeview") {
                pipeview = std::stoul(next(i));
            } else if (a == "--listing") {
                listing = true;
            } else if (a == "--dot") {
                dot = true;
            } else if (a == "--help" || a == "-h") {
                return usage();
            } else {
                std::cerr << "unknown option: " << a << "\n";
                return usage();
            }
        }

        if (workload.empty() && asmFile.empty())
            return usage();

        Program prog;
        if (!asmFile.empty()) {
            std::ifstream in(asmFile);
            if (!in)
                wisc_fatal("cannot open ", asmFile);
            std::stringstream ss;
            ss << in.rdbuf();
            prog = assemble(ss.str());
        } else {
            if (dot) {
                IrFunction fn = buildWorkloadFn(workload);
                std::cout << toDot(fn, workload);
                return 0;
            }
            CompiledWorkload w = compileWorkload(workload);
            prog = programFor(w, variant, input);
            std::cout << "# " << workload << " / "
                      << variantName(variant) << " / "
                      << inputSetName(input) << ": "
                      << prog.size() << " instructions, "
                      << w.variants.at(variant).staticWishBranches()
                      << " static wish branches\n";
        }

        if (listing)
            std::cout << prog.listing();

        StatSet stats;
        PipeTracer tracer(pipeview ? pipeview * 4 : 4096);
        Core core(params, stats);
        if (pipeview)
            core.addSink(&tracer);
        SimResult r = core.run(prog);
        if (pipeview)
            tracer.render(std::cout, 0, pipeview);
        std::cout << "halted=" << (r.halted ? "yes" : "NO")
                  << " cycles=" << r.cycles
                  << " uops=" << r.retiredUops
                  << " IPC=" << r.ipc()
                  << " result=" << r.resultReg << "\n";
        if (dumpStats)
            stats.dump(std::cout);
        return r.halted ? 0 : 1;
    } catch (const wisc::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
