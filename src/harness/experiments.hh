/**
 * @file
 * Shared scaffolding for the figure-reproduction binaries: run a set of
 * labeled (variant, machine) configurations over the whole benchmark
 * suite and print execution time normalized to the normal-branch binary,
 * with the paper's AVG and AVGnomcf summary columns (§2.2 footnote 2).
 *
 * Every (benchmark, series) simulation is independent, so the matrix is
 * fanned out across a ParallelRunner: each benchmark is compiled once,
 * its per-variant programs are built once and shared read-only, and all
 * runs execute concurrently. Results are reassembled in benchmark/series
 * order, so the output is bit-identical to a serial execution no matter
 * how many worker threads ran the jobs (WISC_JOBS=1 forces the serial
 * path).
 */

#ifndef WISC_HARNESS_EXPERIMENTS_HH_
#define WISC_HARNESS_EXPERIMENTS_HH_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace wisc {

/** One experiment series (a bar color in the paper's figures). */
struct SeriesSpec
{
    std::string label;
    BinaryVariant variant = BinaryVariant::Normal;
    SimParams params;
};

/** Result matrix: rows = benchmarks (+AVG/AVGnomcf), cols = series. */
struct NormalizedResults
{
    std::vector<std::string> benchmarks;
    std::vector<std::string> seriesLabels;
    /** relTime[bench][series], normalized to the normal binary. */
    std::vector<std::vector<double>> relTime;
    std::vector<double> avg;
    std::vector<double> avgNoMcf;

    /** Raw baseline run per benchmark (the normalization denominator). */
    std::vector<RunOutcome> baseline;
    /** Raw run per cell: outcomes[bench][series]. */
    std::vector<std::vector<RunOutcome>> outcomes;
};

/**
 * Run every benchmark under the baseline (normal binary, default
 * machine unless baselineParams overrides) and under each series;
 * normalize. jobs == 0 sizes the worker pool from WISC_JOBS /
 * hardware_concurrency(); jobs == 1 runs serially.
 */
NormalizedResults runNormalizedExperiment(
    const std::vector<SeriesSpec> &series, InputSet input,
    const SimParams &baselineParams = SimParams{},
    const std::vector<std::string> &benchmarks = workloadNames(),
    unsigned jobs = 0);

/** Print a NormalizedResults matrix as the paper-style table. */
void printNormalized(std::ostream &os, const NormalizedResults &r);

} // namespace wisc

#endif // WISC_HARNESS_EXPERIMENTS_HH_
