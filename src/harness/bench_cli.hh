/**
 * @file
 * Shared command line for the bench/ experiment binaries.
 *
 * Every output-related option lives in one place — OutputSpec — parsed
 * from one flag table that also generates the --help text, so the
 * experiment binaries cannot drift apart:
 *
 *   --json PATH       structured results document (fallback: the
 *                     WISC_RESULTS_JSON environment variable)
 *   --cache DIR       persistent run cache (fallback: WISC_CACHE_DIR,
 *                     then the compiled-in -DWISC_CACHE_DEFAULT_DIR)
 *   --no-cache        disable the persistent layer entirely
 *   --cpi-stack       collect the attrib.* cycle-attribution CPI stack
 *   --branch-profile  collect the per-static-branch profile table
 *
 * Every bench binary prints its paper-style table to stdout exactly as
 * before; on top of that, a JSON destination writes a structured
 * document:
 *
 *   { "bench": name, "schema_version": 1, "jobs": N,
 *     "wall_seconds": t,
 *     "cache_hits": d, "cache_misses": m, "dedup_hits": h,
 *     <sections added via add()/addResults()/...> }
 *
 * cache_hits counts persistent-store replays, dedup_hits in-process
 * coalesced/memoized requests, cache_misses fresh simulations — all
 * deltas over this CLI's lifetime, so the numbers stay per-experiment
 * even when many experiments share one process (bench/run_matrix).
 *
 * Constructing a BenchCli also opts the process into the run cache:
 * in-process dedup always, and the persistent layer when a directory
 * is configured (`--no-cache` wins over everything).
 *
 * A benchmark whose results flow through addResults() — or that calls
 * noteSimulated() itself — also gets "simulated_uops",
 * "simulated_cycles", "uops_per_second", and "cycles_per_second", the
 * simulator-throughput figures of merit.
 *
 * This is what produces the repo's BENCH_*.json trajectory files.
 */

#ifndef WISC_HARNESS_BENCH_CLI_HH_
#define WISC_HARNESS_BENCH_CLI_HH_

#include <chrono>
#include <string>

#include "common/json.hh"
#include "harness/experiments.hh"
#include "harness/run_cache.hh"
#include "harness/table.hh"

namespace wisc {

/**
 * Everything the bench command line says about *outputs*: where the
 * JSON goes, how runs are cached, and which optional observability
 * sections to collect. Parsed in exactly one place (parse()), from the
 * same flag table that renders `--help`.
 */
struct OutputSpec
{
    std::string jsonPath;  ///< --json / WISC_RESULTS_JSON ("" = none)
    std::string cacheDir;  ///< --cache (before env/default resolution)
    bool noCache = false;  ///< --no-cache: kill the persistent layer
    bool cpiStack = false; ///< --cpi-stack: attrib.* CPI stack
    bool branchProfile = false; ///< --branch-profile: per-PC table

    /** Parse argv (env fallbacks applied); prints usage and exits on
     *  --help or an unknown flag. */
    static OutputSpec parse(int argc, char **argv,
                            const std::string &name);

    /** Turn the observability requests into SimParams knobs. */
    void
    applyObservation(SimParams &p) const
    {
        if (cpiStack)
            p.collectAttribution = true;
        if (branchProfile)
            p.collectBranchProfile = true;
    }
};

class BenchCli
{
  public:
    /** Parses argv via OutputSpec::parse; exits with usage on unknown
     *  flags. */
    BenchCli(int argc, char **argv, std::string name);

    /**
     * Embedded constructor (no argv): used by orchestrators like
     * bench/run_matrix that run many experiments in one process. The
     * document is built as usual but finish() never writes a file —
     * the orchestrator collects it via document().
     */
    explicit BenchCli(std::string name);

    /** The parsed output configuration. */
    const OutputSpec &output() const { return spec_; }

    /** True when a --json/WISC_RESULTS_JSON destination is set. */
    bool jsonRequested() const { return !spec_.jsonPath.empty(); }

    /** Attach a section to the emitted document. */
    void add(const std::string &key, json::Value v);
    void addResults(const std::string &key, const NormalizedResults &r);
    void addTable(const std::string &key, const Table &t);

    /** Account simulated work (retired µops and simulated cycles) so
     *  finish() can report simulator throughput next to wall_seconds.
     *  Call once per completed simulation; accumulates. addResults()
     *  calls this for every RunOutcome it serializes. */
    void
    noteSimulated(std::uint64_t uops, std::uint64_t cycles)
    {
        simUops_ += uops;
        simCycles_ += cycles;
    }

    std::uint64_t simulatedUops() const { return simUops_; }
    std::uint64_t simulatedCycles() const { return simCycles_; }

    /** Wall seconds elapsed since construction. */
    double elapsedSeconds() const;

    /** Finalize the document (timings, throughput, cache counters) and
     *  write it if a destination is set. Returns the process exit
     *  code. */
    int finish();

    /** The document built so far (complete after finish()). */
    const json::Value &document() const { return doc_; }

  private:
    void finalizeDoc();

    std::string name_;
    OutputSpec spec_;
    json::Value doc_ = json::Value::object();
    std::chrono::steady_clock::time_point start_;
    RunCacheStats cacheStart_; ///< global-service counters at start
    std::uint64_t simUops_ = 0;
    std::uint64_t simCycles_ = 0;
};

} // namespace wisc

#endif // WISC_HARNESS_BENCH_CLI_HH_
