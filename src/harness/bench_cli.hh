/**
 * @file
 * Shared command line for the bench/ experiment binaries.
 *
 * Every bench binary prints its paper-style table to stdout exactly as
 * before; on top of that, `--json PATH` (or the WISC_RESULTS_JSON
 * environment variable when the flag is absent) writes a structured
 * document:
 *
 *   { "bench": name, "schema_version": 1, "jobs": N,
 *     "wall_seconds": t,
 *     "cache_hits": d, "cache_misses": m, "dedup_hits": h,
 *     <sections added via add()/addResults()/...> }
 *
 * cache_hits counts persistent-store replays, dedup_hits in-process
 * coalesced/memoized requests, cache_misses fresh simulations — all
 * deltas over this CLI's lifetime, so the numbers stay per-experiment
 * even when many experiments share one process (bench/run_matrix).
 *
 * Constructing a BenchCli also opts the process into the run cache:
 * in-process dedup always, and the persistent layer when a directory is
 * configured via `--cache DIR`, WISC_CACHE_DIR, or the compiled-in
 * -DWISC_CACHE_DEFAULT_DIR (in that precedence order; `--no-cache`
 * wins over everything).
 *
 * A benchmark whose results flow through addResults() — or that calls
 * noteSimulated() itself — also gets "simulated_uops",
 * "simulated_cycles", "uops_per_second", and "cycles_per_second", the
 * simulator-throughput figures of merit.
 *
 * This is what produces the repo's BENCH_*.json trajectory files.
 */

#ifndef WISC_HARNESS_BENCH_CLI_HH_
#define WISC_HARNESS_BENCH_CLI_HH_

#include <chrono>
#include <string>

#include "common/json.hh"
#include "harness/experiments.hh"
#include "harness/run_cache.hh"
#include "harness/table.hh"

namespace wisc {

class BenchCli
{
  public:
    /** Parses argv; exits with usage on unknown flags. */
    BenchCli(int argc, char **argv, std::string name);

    /**
     * Embedded constructor (no argv): used by orchestrators like
     * bench/run_matrix that run many experiments in one process. The
     * document is built as usual but finish() never writes a file —
     * the orchestrator collects it via document().
     */
    explicit BenchCli(std::string name);

    /** True when a --json/WISC_RESULTS_JSON destination is set. */
    bool jsonRequested() const { return !path_.empty(); }

    /** Attach a section to the emitted document. */
    void add(const std::string &key, json::Value v);
    void addResults(const std::string &key, const NormalizedResults &r);
    void addTable(const std::string &key, const Table &t);

    /** Account simulated work (retired µops and simulated cycles) so
     *  finish() can report simulator throughput next to wall_seconds.
     *  Call once per completed simulation; accumulates. addResults()
     *  calls this for every RunOutcome it serializes. */
    void
    noteSimulated(std::uint64_t uops, std::uint64_t cycles)
    {
        simUops_ += uops;
        simCycles_ += cycles;
    }

    std::uint64_t simulatedUops() const { return simUops_; }
    std::uint64_t simulatedCycles() const { return simCycles_; }

    /** Wall seconds elapsed since construction. */
    double elapsedSeconds() const;

    /** Finalize the document (timings, throughput, cache counters) and
     *  write it if a destination is set. Returns the process exit
     *  code. */
    int finish();

    /** The document built so far (complete after finish()). */
    const json::Value &document() const { return doc_; }

  private:
    void finalizeDoc();

    std::string name_;
    std::string path_;
    json::Value doc_ = json::Value::object();
    std::chrono::steady_clock::time_point start_;
    RunCacheStats cacheStart_; ///< global-service counters at start
    std::uint64_t simUops_ = 0;
    std::uint64_t simCycles_ = 0;
};

} // namespace wisc

#endif // WISC_HARNESS_BENCH_CLI_HH_
