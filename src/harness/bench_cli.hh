/**
 * @file
 * Shared command line for the bench/ experiment binaries.
 *
 * Every bench binary prints its paper-style table to stdout exactly as
 * before; on top of that, `--json PATH` (or the WISC_RESULTS_JSON
 * environment variable when the flag is absent) writes a structured
 * document:
 *
 *   { "bench": name, "schema_version": 1, "jobs": N,
 *     "wall_seconds": t, <sections added via add()/addResults()/...> }
 *
 * This is what produces the repo's BENCH_*.json trajectory files.
 */

#ifndef WISC_HARNESS_BENCH_CLI_HH_
#define WISC_HARNESS_BENCH_CLI_HH_

#include <chrono>
#include <string>

#include "common/json.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

namespace wisc {

class BenchCli
{
  public:
    /** Parses argv; exits with usage on unknown flags. */
    BenchCli(int argc, char **argv, std::string name);

    /** True when a --json/WISC_RESULTS_JSON destination is set. */
    bool jsonRequested() const { return !path_.empty(); }

    /** Attach a section to the emitted document. */
    void add(const std::string &key, json::Value v);
    void addResults(const std::string &key, const NormalizedResults &r);
    void addTable(const std::string &key, const Table &t);

    /** Write the document if requested. Returns the process exit code. */
    int finish();

  private:
    std::string name_;
    std::string path_;
    json::Value doc_ = json::Value::object();
    std::chrono::steady_clock::time_point start_;
};

} // namespace wisc

#endif // WISC_HARNESS_BENCH_CLI_HH_
