/**
 * @file
 * Shared command line for the bench/ experiment binaries.
 *
 * Every bench binary prints its paper-style table to stdout exactly as
 * before; on top of that, `--json PATH` (or the WISC_RESULTS_JSON
 * environment variable when the flag is absent) writes a structured
 * document:
 *
 *   { "bench": name, "schema_version": 1, "jobs": N,
 *     "wall_seconds": t, <sections added via add()/addResults()/...> }
 *
 * A benchmark that accounts its simulated work via noteSimulated() also
 * gets "simulated_uops", "simulated_cycles", "uops_per_second", and
 * "cycles_per_second" — the simulator-throughput figures of merit.
 *
 * This is what produces the repo's BENCH_*.json trajectory files.
 */

#ifndef WISC_HARNESS_BENCH_CLI_HH_
#define WISC_HARNESS_BENCH_CLI_HH_

#include <chrono>
#include <string>

#include "common/json.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

namespace wisc {

class BenchCli
{
  public:
    /** Parses argv; exits with usage on unknown flags. */
    BenchCli(int argc, char **argv, std::string name);

    /** True when a --json/WISC_RESULTS_JSON destination is set. */
    bool jsonRequested() const { return !path_.empty(); }

    /** Attach a section to the emitted document. */
    void add(const std::string &key, json::Value v);
    void addResults(const std::string &key, const NormalizedResults &r);
    void addTable(const std::string &key, const Table &t);

    /** Account simulated work (retired µops and simulated cycles) so
     *  finish() can report simulator throughput next to wall_seconds.
     *  Call once per completed simulation; accumulates. */
    void
    noteSimulated(std::uint64_t uops, std::uint64_t cycles)
    {
        simUops_ += uops;
        simCycles_ += cycles;
    }

    std::uint64_t simulatedUops() const { return simUops_; }

    /** Wall seconds elapsed since construction. */
    double elapsedSeconds() const;

    /** Write the document if requested. Returns the process exit code. */
    int finish();

  private:
    std::string name_;
    std::string path_;
    json::Value doc_ = json::Value::object();
    std::chrono::steady_clock::time_point start_;
    std::uint64_t simUops_ = 0;
    std::uint64_t simCycles_ = 0;
};

} // namespace wisc

#endif // WISC_HARNESS_BENCH_CLI_HH_
