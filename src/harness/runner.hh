/**
 * @file
 * Experiment runner: executes a compiled workload variant on the timing
 * core and captures both the headline result and a snapshot of every
 * statistic — counters *and* histograms — so experiment binaries can
 * post-process freely (and the JSON emitter can serialize complete
 * runs).
 */

#ifndef WISC_HARNESS_RUNNER_HH_
#define WISC_HARNESS_RUNNER_HH_

#include <map>
#include <string>
#include <vector>

#include "uarch/core.hh"
#include "workloads/workload.hh"

namespace wisc {

/** Value snapshot of one histogram (bucket i counts value i; the last
 *  bucket is the overflow bucket). */
struct HistogramSnapshot
{
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
};

/** Everything one simulation produced. */
struct RunOutcome
{
    SimResult result;
    std::map<std::string, std::uint64_t> stats;
    std::map<std::string, HistogramSnapshot> hists;

    /**
     * Counter value, tolerant of absent names. Use only for statistics
     * that are legitimately registration-on-first-event (the per-class
     * wish.* counters); for always-present statistics use require(), so
     * a misspelled name cannot silently read as zero.
     */
    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Counter value; hard error (FatalError) if the run never
     *  registered the name. */
    std::uint64_t require(const std::string &name) const;

    /** Mispredicted conditional branches per 1000 retired µops. */
    double
    mispredictsPer1K() const
    {
        return result.retiredUops
                   ? 1000.0 * static_cast<double>(
                                  require("core.branch_mispredicts")) /
                         static_cast<double>(result.retiredUops)
                   : 0.0;
    }
};

/** Run one (workload, variant, input, machine) combination. Served
 *  through the global RunService, so identical requests dedup/replay
 *  when the run cache is enabled (pass-through otherwise). */
RunOutcome runWorkload(const CompiledWorkload &w, BinaryVariant v,
                       InputSet input,
                       const SimParams &params = SimParams{});

/** Run an arbitrary program (used by component studies). Served through
 *  the global RunService like runWorkload(). */
RunOutcome runProgram(const Program &prog,
                      const SimParams &params = SimParams{});

/** Always simulate, never consult or populate the run cache. The
 *  cache's own producer path, and the reference the cache tests compare
 *  replayed outcomes against. */
RunOutcome runProgramFresh(const Program &prog,
                           const SimParams &params = SimParams{});

} // namespace wisc

#endif // WISC_HARNESS_RUNNER_HH_
