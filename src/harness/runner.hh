/**
 * @file
 * Experiment runner: executes a compiled workload variant (or a raw
 * Program) on the timing core and captures both the headline result and
 * a snapshot of every statistic — counters, histograms, *and* tables —
 * so experiment binaries can post-process freely (and the JSON emitter
 * can serialize complete runs).
 *
 * The single entry point is run(RunRequest): the request names the
 * program (directly or as workload+variant+input), the machine
 * configuration, the cache policy, and any probe sinks to attach.
 * Cacheable requests are served through the global RunService, so
 * identical requests dedup/replay when the run cache is enabled;
 * requests carrying sinks always simulate (a replay could not feed
 * the observers). With a RunTransport installed (run_matrix --serve),
 * cacheable sink-free requests are executed by a wisc-serve daemon
 * instead of this process.
 */

#ifndef WISC_HARNESS_RUNNER_HH_
#define WISC_HARNESS_RUNNER_HH_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "uarch/core.hh"
#include "workloads/workload.hh"

namespace wisc {

/** Value snapshot of one histogram (bucket i counts value i; the last
 *  bucket is the overflow bucket). */
struct HistogramSnapshot
{
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
};

/** Value snapshot of one StatTable: the column names plus every row. */
struct TableSnapshot
{
    std::vector<std::string> columns;
    std::map<std::uint64_t, std::vector<std::uint64_t>> rows;
};

/** Everything one simulation produced. */
struct RunOutcome
{
    SimResult result;
    std::map<std::string, std::uint64_t> stats;
    std::map<std::string, HistogramSnapshot> hists;
    std::map<std::string, TableSnapshot> tables;

    /**
     * Counter value, tolerant of absent names. Use only for statistics
     * that are legitimately registration-on-first-event (the per-class
     * wish.* counters); for always-present statistics use require(), so
     * a misspelled name cannot silently read as zero.
     */
    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Counter value; hard error (FatalError) if the run never
     *  registered the name (the error names the actual kind when the
     *  name exists as a histogram or table). */
    std::uint64_t require(const std::string &name) const;

    /** Mispredicted conditional branches per 1000 retired µops. */
    double
    mispredictsPer1K() const
    {
        return result.retiredUops
                   ? 1000.0 * static_cast<double>(
                                  require("core.branch_mispredicts")) /
                         static_cast<double>(result.retiredUops)
                   : 0.0;
    }
};

/**
 * One simulation request: what to run, on which machine, how to cache
 * it, and which observers ride along. Construct from a Program or from
 * a workload triple; tweak fields before calling run().
 */
struct RunRequest
{
    enum class CachePolicy : std::uint8_t
    {
        Default, ///< serve through the global RunService
        Bypass,  ///< always simulate; never consult or populate caches
    };

    /** Program source: exactly one of 'program' or 'workload' is set. */
    const Program *program = nullptr;
    const CompiledWorkload *workload = nullptr;
    BinaryVariant variant = BinaryVariant::Normal;
    InputSet input = InputSet::B;

    SimParams params;
    CachePolicy cache = CachePolicy::Default;

    /** Probe sinks attached for the run (uarch/probe.hh). A request
     *  with sinks always simulates fresh: replayed statistics could
     *  not drive the observers. */
    std::vector<ProbeSink *> sinks;

    RunRequest(const Program &prog, SimParams p = SimParams{})
        : program(&prog), params(p)
    {
    }

    RunRequest(const CompiledWorkload &w, BinaryVariant v, InputSet in,
               SimParams p = SimParams{})
        : workload(&w), variant(v), input(in), params(p)
    {
    }
};

/** Execute one request (see RunRequest). */
RunOutcome run(const RunRequest &req);

/**
 * The always-simulate primitive beneath run(): execute the program and
 * snapshot every statistic, attaching the given sinks for the duration.
 * This is the run cache's producer path and the reference its tests
 * compare replayed outcomes against.
 */
RunOutcome captureRun(const Program &prog, const SimParams &params,
                      const std::vector<ProbeSink *> &sinks = {});

/**
 * Pluggable executor for cacheable, sink-free requests: when installed,
 * run() routes them here instead of the in-process RunService — this is
 * how `run_matrix --serve` ships every simulation to a wisc-serve
 * daemon (src/serve/client.hh installs a socket-backed transport).
 * Requests that cannot leave the process (CachePolicy::Bypass, attached
 * probe sinks) always execute locally. The transport must be
 * thread-safe: ParallelRunner workers call run() concurrently.
 */
using RunTransport =
    std::function<RunOutcome(const Program &, const SimParams &)>;

/** Install (or, with nullptr, remove) the process-wide transport. Not
 *  thread-safe against concurrent run() calls — install before fanning
 *  work out, the way run_matrix does. */
void setRunTransport(RunTransport transport);

/** True when a transport is installed (simulations leave the process). */
bool runTransportInstalled();

} // namespace wisc

#endif // WISC_HARNESS_RUNNER_HH_
