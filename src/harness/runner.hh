/**
 * @file
 * Experiment runner: executes a compiled workload variant on the timing
 * core and captures both the headline result and a snapshot of every
 * statistic, so experiment binaries can post-process freely.
 */

#ifndef WISC_HARNESS_RUNNER_HH_
#define WISC_HARNESS_RUNNER_HH_

#include <map>
#include <string>

#include "uarch/core.hh"
#include "workloads/workload.hh"

namespace wisc {

/** Everything one simulation produced. */
struct RunOutcome
{
    SimResult result;
    std::map<std::string, std::uint64_t> stats;

    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Mispredicted conditional branches per 1000 retired µops. */
    double
    mispredictsPer1K() const
    {
        return result.retiredUops
                   ? 1000.0 * static_cast<double>(
                                  stat("core.branch_mispredicts")) /
                         static_cast<double>(result.retiredUops)
                   : 0.0;
    }
};

/** Run one (workload, variant, input, machine) combination. */
RunOutcome runWorkload(const CompiledWorkload &w, BinaryVariant v,
                       InputSet input,
                       const SimParams &params = SimParams{});

/** Run an arbitrary program (used by component studies). */
RunOutcome runProgram(const Program &prog,
                      const SimParams &params = SimParams{});

} // namespace wisc

#endif // WISC_HARNESS_RUNNER_HH_
