#include "harness/run_cache.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "common/hash.hh"
#include "common/log.hh"

namespace wisc {

namespace {

constexpr char kMagic[8] = {'W', 'I', 'S', 'C', 'R', 'U', 'N', '\0'};
/** v2: appended the StatTable section (core.branch_profile etc.) after
 *  the histograms. v1 readers reject v2 entries by version (and vice
 *  versa) and fall back to a fresh simulation; entryPath() embeds the
 *  version so a mixed-version cache directory simply never collides. */
constexpr std::uint32_t kFormatVersion = 2;

// ---- little-endian primitive writers/readers --------------------------

void
putU64(std::string &buf, std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>(v >> (8 * i));
    buf.append(b, 8);
}

void
putU32(std::string &buf, std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>(v >> (8 * i));
    buf.append(b, 4);
}

void
putStr(std::string &buf, const std::string &s)
{
    putU64(buf, s.size());
    buf.append(s);
}

/** Bounds-checked sequential reader; ok_ latches false on any overrun
 *  so decode failures are detected without exceptions. */
class Reader
{
  public:
    Reader(const std::string &buf, std::size_t pos) : buf_(buf), pos_(pos)
    {
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf_[pos_ - 8 + i]))
                 << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf_[pos_ - 4 + i]))
                 << (8 * i);
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (!ok_ || n > buf_.size() - pos_) {
            ok_ = false;
            return {};
        }
        std::string s = buf_.substr(pos_, n);
        pos_ += n;
        return s;
    }

    bool ok() const { return ok_; }
    std::size_t pos() const { return pos_; }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || buf_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const std::string &buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

std::string
hexKey(std::uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        s[i] = digits[v & 0xf];
    return s;
}

/** Monotonic suffix so concurrent writers in one process never share a
 *  temp file; cross-process uniqueness comes from the pid. */
std::string
tmpSuffix()
{
    static std::atomic<std::uint64_t> counter{0};
    std::ostringstream os;
    os << ".tmp." << ::getpid() << "." << counter.fetch_add(1);
    return os.str();
}

} // namespace

std::uint32_t
runCacheFormatVersion()
{
    return kFormatVersion;
}

// ---- entry encoding ---------------------------------------------------

std::string
encodeRunOutcome(const RunKey &key, const RunOutcome &out)
{
    std::string payload;
    putU32(payload, out.result.halted ? 1 : 0);
    putU64(payload, out.result.cycles);
    putU64(payload, out.result.retiredUops);
    putU64(payload, static_cast<std::uint64_t>(out.result.resultReg));
    putU64(payload, out.result.memFingerprint);

    putU64(payload, out.stats.size());
    for (const auto &kv : out.stats) {
        putStr(payload, kv.first);
        putU64(payload, kv.second);
    }
    putU64(payload, out.hists.size());
    for (const auto &kv : out.hists) {
        putStr(payload, kv.first);
        putU64(payload, kv.second.count);
        putU64(payload, kv.second.buckets.size());
        for (std::uint64_t b : kv.second.buckets)
            putU64(payload, b);
    }
    putU64(payload, out.tables.size());
    for (const auto &kv : out.tables) {
        putStr(payload, kv.first);
        putU64(payload, kv.second.columns.size());
        for (const std::string &c : kv.second.columns)
            putStr(payload, c);
        putU64(payload, kv.second.rows.size());
        for (const auto &row : kv.second.rows) {
            putU64(payload, row.first);
            for (std::uint64_t v : row.second)
                putU64(payload, v);
        }
    }

    std::string file(kMagic, sizeof(kMagic));
    putU32(file, kFormatVersion);
    putU64(file, key.prog);
    putU64(file, key.params);
    putU64(file, payload.size());
    file += payload;
    putU64(file, hashBytes(payload.data(), payload.size()));
    return file;
}

bool
decodeRunOutcome(const std::string &bytes, const RunKey &key,
                 RunOutcome &out)
{
    // Header: magic(8) version(4) prog(8) params(8) payloadLen(8).
    constexpr std::size_t kHeader = 8 + 4 + 8 + 8 + 8;
    if (bytes.size() < kHeader + 8)
        return false;
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return false;

    Reader hdr(bytes, sizeof(kMagic));
    if (hdr.u32() != kFormatVersion)
        return false;
    if (hdr.u64() != key.prog || hdr.u64() != key.params)
        return false;
    std::uint64_t payloadLen = hdr.u64();
    if (!hdr.ok() || bytes.size() != kHeader + payloadLen + 8)
        return false;

    Reader trailer(bytes, kHeader + payloadLen);
    if (trailer.u64() !=
        hashBytes(bytes.data() + kHeader, payloadLen))
        return false;

    Reader r(bytes, kHeader);
    RunOutcome tmp;
    tmp.result.halted = r.u32() != 0;
    tmp.result.cycles = r.u64();
    tmp.result.retiredUops = r.u64();
    tmp.result.resultReg = static_cast<Word>(r.u64());
    tmp.result.memFingerprint = r.u64();

    std::uint64_t nstats = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < nstats; ++i) {
        std::string name = r.str();
        std::uint64_t value = r.u64();
        if (r.ok())
            tmp.stats.emplace(std::move(name), value);
    }
    std::uint64_t nhists = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < nhists; ++i) {
        std::string name = r.str();
        HistogramSnapshot snap;
        snap.count = r.u64();
        std::uint64_t nbuckets = r.u64();
        // A bucket costs 8 payload bytes; reject counts the payload
        // cannot hold before reserving.
        if (!r.ok() || nbuckets > payloadLen / 8)
            return false;
        snap.buckets.reserve(nbuckets);
        for (std::uint64_t b = 0; r.ok() && b < nbuckets; ++b)
            snap.buckets.push_back(r.u64());
        if (r.ok())
            tmp.hists.emplace(std::move(name), std::move(snap));
    }
    std::uint64_t ntables = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < ntables; ++i) {
        std::string name = r.str();
        TableSnapshot snap;
        std::uint64_t ncols = r.u64();
        // A column costs at least 8 payload bytes (its name length).
        if (!r.ok() || ncols == 0 || ncols > payloadLen / 8)
            return false;
        snap.columns.reserve(ncols);
        for (std::uint64_t c = 0; r.ok() && c < ncols; ++c)
            snap.columns.push_back(r.str());
        std::uint64_t nrows = r.u64();
        if (!r.ok() || nrows > payloadLen / (8 * ncols))
            return false;
        for (std::uint64_t rw = 0; r.ok() && rw < nrows; ++rw) {
            std::uint64_t rowKey = r.u64();
            std::vector<std::uint64_t> vals;
            vals.reserve(ncols);
            for (std::uint64_t c = 0; r.ok() && c < ncols; ++c)
                vals.push_back(r.u64());
            if (r.ok())
                snap.rows.emplace(rowKey, std::move(vals));
        }
        if (r.ok())
            tmp.tables.emplace(std::move(name), std::move(snap));
    }
    if (!r.ok() || r.pos() != kHeader + payloadLen)
        return false;

    out = std::move(tmp);
    return true;
}

// ---- RunService -------------------------------------------------------

RunService::RunService(std::string cacheDir) : memoize_(true)
{
    setCacheDir(std::move(cacheDir));
}

void
RunService::setCacheDir(std::string dir)
{
    std::lock_guard<std::mutex> lk(mutex_);
    dir_ = std::move(dir);
}

std::string
RunService::cacheDir() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return dir_;
}

void
RunService::setMemoize(bool on)
{
    std::lock_guard<std::mutex> lk(mutex_);
    memoize_ = on;
}

bool
RunService::memoize() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return memoize_;
}

RunCacheStats
RunService::stats() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return stats_;
}

std::string
RunService::entryPath(const RunKey &key) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    if (dir_.empty())
        return {};
    return dir_ + "/run-" + hexKey(key.prog) + "-" + hexKey(key.params) +
           ".v2.bin";
}

RunService &
RunService::global()
{
    static RunService *service = [] {
        auto *s = new RunService; // pass-through until opted in
        if (const char *env = std::getenv("WISC_CACHE_DIR"))
            if (*env)
                s->setCacheDir(env);
        return s;
    }();
    return *service;
}

RunOutcome
RunService::run(const Program &prog, const SimParams &params)
{
    bool passThrough = false;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        passThrough = !memoize_ && dir_.empty();
        if (passThrough)
            ++stats_.misses;
    }
    if (passThrough) // no key computation, no coalescing
        return captureRun(prog, params);

    const RunKey key{prog.fingerprint(), params.fingerprint()};

    std::shared_future<OutcomePtr> fut;
    std::promise<OutcomePtr> prom;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            ++stats_.dedupHits;
            fut = it->second;
        } else {
            fut = prom.get_future().share();
            inflight_.emplace(key, fut);
            owner = true;
        }
    }
    if (!owner)
        return *fut.get(); // rethrows the producer's exception, if any

    OutcomePtr out;
    try {
        out = produce(key, prog, params);
    } catch (...) {
        prom.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lk(mutex_);
        inflight_.erase(key); // let a later request retry
        throw;
    }
    prom.set_value(out);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!memoize_)
            inflight_.erase(key); // waiters already hold the future
    }
    return *out;
}

RunService::OutcomePtr
RunService::produce(const RunKey &key, const Program &prog,
                    const SimParams &params)
{
    const std::string path = entryPath(key);
    if (!path.empty()) {
        RunOutcome cached;
        if (tryLoad(key, cached)) {
            std::lock_guard<std::mutex> lk(mutex_);
            ++stats_.diskHits;
            return std::make_shared<const RunOutcome>(std::move(cached));
        }
    }

    auto out = std::make_shared<const RunOutcome>(
        captureRun(prog, params));
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++stats_.misses;
    }
    if (!path.empty())
        store(key, *out);
    return out;
}

bool
RunService::tryLoad(const RunKey &key, RunOutcome &out)
{
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false; // plain miss, not corruption
    std::ostringstream buf;
    buf << in.rdbuf();
    if (decodeRunOutcome(buf.str(), key, out))
        return true;

    // The entry exists but failed validation: corrupt, truncated, or
    // written by an incompatible format version. Fall back to a fresh
    // simulation (which overwrites it) rather than failing the run.
    // Warn once per offending path: under N sharded wisc-serve clients
    // one poisoned entry would otherwise emit a warning per request.
    bool firstSighting;
    std::uint64_t total;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++stats_.corrupt;
        total = stats_.corrupt;
        firstSighting = warnedCorrupt_.insert(path).second;
        // Bound the memory a pathological cache directory can pin.
        if (warnedCorrupt_.size() > 1024)
            warnedCorrupt_.clear();
    }
    if (firstSighting)
        wisc_warn("run cache entry '", path,
                  "' is corrupt or incompatible; re-simulating "
                  "(warning once per entry; ", total,
                  " corrupt rejection", total == 1 ? "" : "s",
                  " so far)");
    return false;
}

void
RunService::store(const RunKey &key, const RunOutcome &out)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);

    // tmp + rename: the final name only ever refers to a complete
    // entry, so a concurrent reader (or a crash mid-write) can never
    // observe a torn file. Concurrent writers of the same key race
    // benignly — both rename byte-identical content.
    const std::string tmp = path + tmpSuffix();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        const std::string bytes = encodeRunOutcome(key, out);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        if (!os) {
            wisc_warn("run cache: failed to write '", tmp,
                      "' (caching disabled for this entry)");
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        wisc_warn("run cache: failed to publish '", path, "': ",
                  ec.message());
        std::filesystem::remove(tmp, ec);
        return;
    }
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.diskWrites;
}

} // namespace wisc
