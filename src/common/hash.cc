#include "common/hash.hh"

#include <cstring>

namespace wisc {

void
Hasher::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

std::uint64_t
hashBytes(const void *data, std::size_t n)
{
    Hasher h;
    h.bytes(data, n);
    return h.digest();
}

} // namespace wisc
