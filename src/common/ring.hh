/**
 * @file
 * Fixed-capacity ring buffer used for the cycle-level core's ROB and
 * fetch queue. Unlike std::deque, slots are allocated exactly once per
 * run (reset()) and elements are constructed in place with
 * emplace_back(), so the per-µop hot path never touches the allocator
 * and never moves elements between chunks.
 *
 * Indexing is logical: operator[](0) is the oldest element (front),
 * operator[](size()-1) the youngest (back).
 */

#ifndef WISC_COMMON_RING_HH_
#define WISC_COMMON_RING_HH_

#include <cstddef>
#include <vector>

#include "common/log.hh"

namespace wisc {

template <typename T>
class RingBuffer
{
  public:
    /** Drop all contents and (re)allocate for exactly 'capacity'
     *  elements. Called once per simulation run. */
    void
    reset(std::size_t capacity)
    {
        wisc_assert(capacity > 0, "ring buffer needs a capacity");
        slots_.assign(capacity, T{});
        head_ = 0;
        count_ = 0;
    }

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return slots_.size(); }
    bool empty() const { return count_ == 0; }

    /** Reinitialize the slot past the back to T{} and return it. */
    T &
    emplace_back()
    {
        wisc_assert(count_ < slots_.size(), "ring buffer overflow");
        T &slot = slots_[wrap(head_ + count_)];
        slot = T{};
        ++count_;
        return slot;
    }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }
    T &back() { return slots_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return slots_[wrap(head_ + count_ - 1)]; }

    T &operator[](std::size_t i) { return slots_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return slots_[wrap(head_ + i)];
    }

    void
    pop_front()
    {
        wisc_assert(count_ > 0, "pop_front on empty ring");
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    pop_back()
    {
        wisc_assert(count_ > 0, "pop_back on empty ring");
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        // Capacity is rarely a power of two, so avoid '%': i is always
        // < 2 * capacity here.
        return i >= slots_.size() ? i - slots_.size() : i;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace wisc

#endif // WISC_COMMON_RING_HH_
