/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            throws FatalError so tests can assert on misconfiguration.
 * warn()   — something is suspicious but simulation can continue.
 */

#ifndef WISC_COMMON_LOG_HH_
#define WISC_COMMON_LOG_HH_

#include <sstream>
#include <stdexcept>
#include <string>

namespace wisc {

/** Exception thrown by fatal(): a user-level configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);

/** Build a message string from stream-formattable pieces. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace wisc

/** Abort with a message: simulator invariant violated. */
#define wisc_panic(...) \
    ::wisc::detail::panicImpl(__FILE__, __LINE__, \
                              ::wisc::detail::format(__VA_ARGS__))

/** Throw FatalError: user configuration error. */
#define wisc_fatal(...) \
    ::wisc::detail::fatalImpl(::wisc::detail::format(__VA_ARGS__))

/** Print a warning to stderr and continue. */
#define wisc_warn(...) \
    ::wisc::detail::warnImpl(::wisc::detail::format(__VA_ARGS__))

/** panic() unless the given invariant holds. */
#define wisc_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::wisc::detail::panicImpl(__FILE__, __LINE__, \
                ::wisc::detail::format("assertion '" #cond "' failed: ", \
                                       ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // WISC_COMMON_LOG_HH_
