/**
 * @file
 * Unix-domain stream sockets plus length-prefixed message framing — the
 * byte-transport layer beneath the wisc-serve wire protocol
 * (src/serve/wire.hh).
 *
 * A frame is a 4-byte little-endian payload length followed by exactly
 * that many payload bytes (the payload is JSON at the protocol layer,
 * but this layer never looks inside). recvFrame() is strict: a length
 * above kMaxFrameBytes, or EOF mid-length/mid-payload, is reported
 * distinctly so the server can answer garbage with a clean error frame
 * instead of crashing or hanging.
 *
 * All functions return errors by value (no exceptions): the server must
 * survive any sequence of bytes a client throws at it, and the client
 * turns failures into FatalError at its own layer.
 */

#ifndef WISC_COMMON_SOCKIO_HH_
#define WISC_COMMON_SOCKIO_HH_

#include <cstdint>
#include <string>

namespace wisc {

/** Largest frame either side accepts. Big enough for any workload
 *  program image plus its input data serialized as JSON; small enough
 *  that a garbage length prefix cannot make a peer allocate gigabytes. */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Result of one frame receive. */
enum class FrameStatus
{
    Ok,        ///< payload filled in
    Eof,       ///< orderly close before any length byte
    Truncated, ///< EOF mid-length or mid-payload
    Oversized, ///< length prefix exceeded kMaxFrameBytes
    Error,     ///< read(2) failed
};

/** Owning socket fd with close-on-destruct move semantics. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket &
    operator=(Socket &&o) noexcept
    {
        if (this != &o) {
            close();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /** shutdown(2) both directions — async-signal-safe way to kick a
     *  thread out of a blocking accept()/read(). */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Bind + listen on a unix socket path (an existing socket file is
 *  unlinked first). Invalid Socket and a message in *error on failure. */
Socket listenUnix(const std::string &path, std::string *error);

/** Accept one connection; invalid Socket when the listener was shut
 *  down or accept failed. */
Socket acceptConn(const Socket &listener);

/** Connect to a unix socket path. Invalid Socket on failure (message in
 *  *error when non-null). */
Socket connectUnix(const std::string &path, std::string *error);

/** Write one length-prefixed frame; false on any short write. SIGPIPE
 *  is suppressed (MSG_NOSIGNAL) so a vanished peer is an error return,
 *  not a process kill. */
bool sendFrame(const Socket &sock, const std::string &payload);

/** Read one length-prefixed frame into payload. */
FrameStatus recvFrame(const Socket &sock, std::string &payload);

} // namespace wisc

#endif // WISC_COMMON_SOCKIO_HH_
