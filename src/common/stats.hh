/**
 * @file
 * Minimal statistics package in the spirit of gem5's Stats.
 *
 * Components register named counters/histograms in a StatSet. The harness
 * reads them by name after a simulation run and the StatSet can dump itself
 * in a human-readable form. Counters are plain uint64 values; formulas
 * (ratios such as IPC) are computed by the reader.
 *
 * Readers have two lookup flavors: get() tolerates unknown names (for
 * statistics that are only registered when the event occurs, such as the
 * per-class wish-branch counters), while require() treats an unknown name
 * as a hard configuration error — use it for statistics the simulator
 * always registers, so a misspelled name cannot silently read as zero.
 */

#ifndef WISC_COMMON_STATS_HH_
#define WISC_COMMON_STATS_HH_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace wisc {

/** A named event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A bounded histogram with an overflow bucket.
 *
 * Geometry is fixed at construction: `buckets` regular buckets for the
 * values 0..buckets-1 plus one overflow bucket. Constructing with zero
 * buckets is a hard error — a zero-bucket histogram would collapse every
 * sample into the overflow bucket and read as plausible-but-meaningless
 * data. The default constructor exists only so Histogram can live in
 * containers; sampling an unconfigured histogram panics.
 */
class Histogram
{
  public:
    /** An unconfigured histogram; sample() panics until it is replaced
     *  by one with real geometry. */
    Histogram() = default;

    explicit Histogram(std::size_t buckets) : buckets_(buckets + 1)
    {
        if (buckets == 0)
            wisc_fatal("histogram constructed with zero buckets; "
                       "give it explicit geometry");
    }

    /** Record one sample; samples >= bucket count land in the last bucket. */
    void
    sample(std::size_t v)
    {
        wisc_assert(!buckets_.empty(),
                    "sample() on an unconfigured histogram");
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++count_;
    }

    void reset() { buckets_.assign(buckets_.size(), 0); count_ = 0; }

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const
    {
        return i < buckets_.size() ? buckets_[i] : 0;
    }
    std::size_t numBuckets() const { return buckets_.size(); }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/**
 * Registry of named statistics. Names are hierarchical by convention
 * ("core.fetch.uops"). Registration returns a stable reference; the StatSet
 * must outlive all users.
 */
class StatSet
{
  public:
    StatSet() = default;
    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Register (or look up) a counter with a description. */
    Counter &counter(const std::string &name, const std::string &desc = "");

    /** Register (or look up) a histogram. buckets must be nonzero. */
    Histogram &histogram(const std::string &name, std::size_t buckets,
                         const std::string &desc = "");

    /** Value of a counter by name; 0 if never registered. */
    std::uint64_t get(const std::string &name) const;

    /** Value of a counter by name; hard error if never registered. */
    std::uint64_t require(const std::string &name) const;

    /** True iff a counter with this name exists. */
    bool has(const std::string &name) const;

    /** Read access to a registered histogram; hard error if unknown. */
    const Histogram &requireHistogram(const std::string &name) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /** Dump all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /** All counter names (sorted), e.g. for introspection in tests. */
    std::vector<std::string> counterNames() const;

    /** All histogram names (sorted). */
    std::vector<std::string> histogramNames() const;

  private:
    struct Entry
    {
        std::string desc;
        Counter counter;
    };

    struct HistEntry
    {
        std::string desc;
        Histogram hist;
    };

    std::map<std::string, Entry> counters_;
    std::map<std::string, HistEntry> histograms_;
};

} // namespace wisc

#endif // WISC_COMMON_STATS_HH_
