/**
 * @file
 * Minimal statistics package in the spirit of gem5's Stats.
 *
 * Components register named counters/histograms in a StatSet. The harness
 * reads them by name after a simulation run and the StatSet can dump itself
 * in a human-readable form. Counters are plain uint64 values; formulas
 * (ratios such as IPC) are computed by the reader.
 */

#ifndef WISC_COMMON_STATS_HH_
#define WISC_COMMON_STATS_HH_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace wisc {

/** A named event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A bounded histogram with an overflow bucket. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 0) : buckets_(buckets + 1) {}

    /** Record one sample; samples >= bucket count land in the last bucket. */
    void
    sample(std::size_t v)
    {
        if (buckets_.empty())
            buckets_.resize(1);
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++count_;
    }

    void reset() { buckets_.assign(buckets_.size(), 0); count_ = 0; }

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const
    {
        return i < buckets_.size() ? buckets_[i] : 0;
    }
    std::size_t numBuckets() const { return buckets_.size(); }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/**
 * Registry of named statistics. Names are hierarchical by convention
 * ("core.fetch.uops"). Registration returns a stable reference; the StatSet
 * must outlive all users.
 */
class StatSet
{
  public:
    StatSet() = default;
    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Register (or look up) a counter with a description. */
    Counter &counter(const std::string &name, const std::string &desc = "");

    /** Register (or look up) a histogram. */
    Histogram &histogram(const std::string &name, std::size_t buckets,
                         const std::string &desc = "");

    /** Value of a counter by name; 0 if never registered. */
    std::uint64_t get(const std::string &name) const;

    /** True iff a counter with this name exists. */
    bool has(const std::string &name) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /** Dump all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /** All counter names (sorted), e.g. for introspection in tests. */
    std::vector<std::string> counterNames() const;

  private:
    struct Entry
    {
        std::string desc;
        Counter counter;
    };

    struct HistEntry
    {
        std::string desc;
        Histogram hist;
    };

    std::map<std::string, Entry> counters_;
    std::map<std::string, HistEntry> histograms_;
};

} // namespace wisc

#endif // WISC_COMMON_STATS_HH_
