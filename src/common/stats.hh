/**
 * @file
 * Minimal statistics package in the spirit of gem5's Stats.
 *
 * Components register named counters/histograms/tables in a StatSet. The
 * harness reads them by name after a simulation run and the StatSet can
 * dump itself in a human-readable form. Counters are plain uint64 values;
 * formulas (ratios such as IPC) are computed by the reader.
 *
 * Readers have two lookup flavors: get() tolerates unknown names (for
 * statistics that are only registered when the event occurs, such as the
 * per-class wish-branch counters), while require<T>() treats an unknown
 * name — or a name registered as a different kind of statistic — as a
 * hard configuration error. Use it for statistics the simulator always
 * registers, so a misspelled name cannot silently read as zero.
 */

#ifndef WISC_COMMON_STATS_HH_
#define WISC_COMMON_STATS_HH_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace wisc {

/** A named event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A bounded histogram with an overflow bucket.
 *
 * Geometry is fixed at construction: `buckets` regular buckets for the
 * values 0..buckets-1 plus one overflow bucket. Constructing with zero
 * buckets is a hard error — a zero-bucket histogram would collapse every
 * sample into the overflow bucket and read as plausible-but-meaningless
 * data. The default constructor exists only so Histogram can live in
 * containers; sampling an unconfigured histogram panics.
 */
class Histogram
{
  public:
    /** An unconfigured histogram; sample() panics until it is replaced
     *  by one with real geometry. */
    Histogram() = default;

    explicit Histogram(std::size_t buckets) : buckets_(buckets + 1)
    {
        if (buckets == 0)
            wisc_fatal("histogram constructed with zero buckets; "
                       "give it explicit geometry");
    }

    /** Record one sample; samples >= bucket count land in the last bucket. */
    void
    sample(std::size_t v)
    {
        wisc_assert(!buckets_.empty(),
                    "sample() on an unconfigured histogram");
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++count_;
    }

    void reset() { buckets_.assign(buckets_.size(), 0); count_ = 0; }

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const
    {
        return i < buckets_.size() ? buckets_[i] : 0;
    }
    std::size_t numBuckets() const { return buckets_.size(); }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/**
 * A keyed table of uint64 columns — one row per key, column layout fixed
 * at registration. The per-static-branch profile is the canonical use:
 * key = branch PC, columns = dynamic count / mispredicts / confidence
 * outcomes / flush cycles. Rows materialize on first touch, zero-filled.
 *
 * The default constructor exists only so StatTable can live in
 * containers; touching a row of an unconfigured table panics.
 */
class StatTable
{
  public:
    StatTable() = default;

    explicit StatTable(std::vector<std::string> columns)
        : columns_(std::move(columns))
    {
        if (columns_.empty())
            wisc_fatal("stat table constructed with zero columns");
    }

    /** The row for `key`, created zero-filled on first access. */
    std::vector<std::uint64_t> &
    row(std::uint64_t key)
    {
        wisc_assert(!columns_.empty(), "row() on an unconfigured table");
        auto it = rows_.find(key);
        if (it == rows_.end())
            it = rows_.emplace(key,
                               std::vector<std::uint64_t>(columns_.size()))
                     .first;
        return it->second;
    }

    void reset() { rows_.clear(); }

    const std::vector<std::string> &columns() const { return columns_; }
    const std::map<std::uint64_t, std::vector<std::uint64_t>> &
    rows() const { return rows_; }
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> columns_;
    std::map<std::uint64_t, std::vector<std::uint64_t>> rows_;
};

/**
 * Registry of named statistics. Names are hierarchical by convention
 * ("core.fetch.uops"). Registration returns a stable reference; the StatSet
 * must outlive all users. A name identifies exactly one statistic of
 * exactly one kind — registering or reading it as another kind is a hard
 * error, not a shadowed second entry.
 */
class StatSet
{
  public:
    StatSet() = default;
    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Register (or look up) a counter with a description. */
    Counter &counter(const std::string &name, const std::string &desc = "");

    /** Register (or look up) a histogram. buckets must be nonzero. */
    Histogram &histogram(const std::string &name, std::size_t buckets,
                         const std::string &desc = "");

    /** Register (or look up) a keyed table with the given column names. */
    StatTable &table(const std::string &name,
                     std::vector<std::string> columns,
                     const std::string &desc = "");

    /** Value of a counter by name; 0 if never registered. */
    std::uint64_t get(const std::string &name) const;

    /** True iff a counter with this name exists. */
    bool has(const std::string &name) const;

    /**
     * Typed lookup: require<Counter>("core.cycles"),
     * require<Histogram>("core.fetch_width"),
     * require<StatTable>("core.branch_profile"). Hard error if the name
     * was never registered, or was registered as a different kind —
     * the error names the actual kind so a reader that asks for the
     * wrong one is told what it found, not just "unknown".
     */
    template <typename T>
    const T &require(const std::string &name) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /** Dump all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /** All counter names (sorted), e.g. for introspection in tests. */
    std::vector<std::string> counterNames() const;

    /** All histogram names (sorted). */
    std::vector<std::string> histogramNames() const;

    /** All table names (sorted). */
    std::vector<std::string> tableNames() const;

  private:
    struct Entry
    {
        std::string desc;
        Counter counter;
    };

    struct HistEntry
    {
        std::string desc;
        Histogram hist;
    };

    struct TableEntry
    {
        std::string desc;
        StatTable table;
    };

    /** The kind a name is registered under, for mismatch diagnostics;
     *  nullptr if the name is unknown. */
    const char *kindOf(const std::string &name) const;

    std::map<std::string, Entry> counters_;
    std::map<std::string, HistEntry> histograms_;
    std::map<std::string, TableEntry> tables_;
};

template <> const Counter &
StatSet::require<Counter>(const std::string &name) const;
template <> const Histogram &
StatSet::require<Histogram>(const std::string &name) const;
template <> const StatTable &
StatSet::require<StatTable>(const std::string &name) const;

} // namespace wisc

#endif // WISC_COMMON_STATS_HH_
