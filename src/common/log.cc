#include "common/log.hh"

#include <cstdlib>
#include <iostream>

namespace wisc {
namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

} // namespace detail
} // namespace wisc
