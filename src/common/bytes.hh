/**
 * @file
 * Flat byte-buffer serialization for warm-state checkpoints.
 *
 * A checkpoint is a value snapshot of every piece of machine state that
 * carries *history* — architectural registers and memory, cache tags,
 * predictor tables, return-address stack — written as one append-only
 * byte stream and read back in the same order. The format is private
 * to a single process run (checkpoints move between a FastForward
 * engine and a Core, or between two Cores in a round-trip test; they
 * are never written to disk), so structs may be copied raw; scalars
 * still go through explicit little-endian accessors so saves and
 * restores cannot disagree on width.
 *
 * Every read is bounds-checked by hard assertion: truncation or a
 * save/restore ordering mismatch dies loudly instead of silently
 * deserializing garbage into a predictor table.
 */

#ifndef WISC_COMMON_BYTES_HH_
#define WISC_COMMON_BYTES_HH_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/log.hh"

namespace wisc {

/** The serialized form: what ByteWriter builds and ByteReader walks. */
using ByteBuffer = std::vector<std::uint8_t>;

/** Append-only little-endian byte stream. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    raw(const void *p, std::size_t n)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), bytes, bytes + n);
    }

    /** Length-prefixed raw dump of a vector of trivially copyable
     *  elements (predictor tables, cache line arrays). */
    template <class T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "vec() requires raw-copyable elements");
        u64(v.size());
        if (!v.empty())
            raw(v.data(), v.size() * sizeof(T));
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential reader over a ByteWriter's buffer. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<std::uint8_t> &buf) : buf_(&buf) {}

    std::uint8_t
    u8()
    {
        need(1);
        return (*buf_)[pos_++];
    }

    bool
    b()
    {
        return u8() != 0;
    }

    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (std::uint16_t(u8()) << 8));
    }

    std::uint32_t
    u32()
    {
        std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    void
    raw(void *p, std::size_t n)
    {
        need(n);
        std::memcpy(p, buf_->data() + pos_, n);
        pos_ += n;
    }

    /** Restore a vec()-written vector. The element count must match
     *  what the current configuration sized the table to: geometry is
     *  a function of SimParams, never of the checkpoint. */
    template <class T>
    void
    vec(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "vec() requires raw-copyable elements");
        std::uint64_t n = u64();
        wisc_assert(n == v.size(), "checkpoint table has ", n,
                    " entries, machine is configured for ", v.size());
        if (n != 0)
            raw(v.data(), n * sizeof(T));
    }

    /** All bytes consumed — the save and restore walked the same
     *  structure list. */
    bool done() const { return pos_ == buf_->size(); }

    std::size_t pos() const { return pos_; }

  private:
    void
    need(std::size_t n)
    {
        wisc_assert(pos_ + n <= buf_->size(),
                    "checkpoint stream truncated: need ", n, " bytes at ",
                    pos_, " of ", buf_->size());
    }

    const std::vector<std::uint8_t> *buf_;
    std::size_t pos_ = 0;
};

} // namespace wisc

#endif // WISC_COMMON_BYTES_HH_
