#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/log.hh"

namespace wisc {
namespace json {

namespace {

const char *
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Null: return "null";
      case Value::Kind::Bool: return "bool";
      case Value::Kind::Uint: return "uint";
      case Value::Kind::Int: return "int";
      case Value::Kind::Double: return "double";
      case Value::Kind::String: return "string";
      case Value::Kind::Array: return "array";
      case Value::Kind::Object: return "object";
    }
    return "?";
}

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c; // UTF-8 passes through verbatim
            }
        }
    }
    os << '"';
}

void
writeDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        os << "null";
        return;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

/** Recursive-descent parser over a string view of the input. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        wisc_fatal("JSON parse error at offset ", pos_, ": ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue(int depth)
    {
        if (depth > 200)
            fail("nesting too deep");
        skipWs();
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return Value(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    Value
    parseObject(int depth)
    {
        expect('{');
        Value v = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v[key] = parseValue(depth + 1);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray(int depth)
    {
        expect('[');
        Value v = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.push(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("bad escape");
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        auto hex4 = [&]() -> unsigned {
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
                char c = peek();
                ++pos_;
                v <<= 4;
                if (c >= '0' && c <= '9')
                    v |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    v |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    v |= static_cast<unsigned>(c - 'A' + 10);
                else
                    fail("bad \\u escape");
            }
            return v;
        };
        std::uint32_t cp = hex4();
        if (cp >= 0xd800 && cp <= 0xdbff) {
            // Surrogate pair.
            if (!consumeLiteral("\\u"))
                fail("unpaired surrogate");
            std::uint32_t lo = hex4();
            if (lo < 0xdc00 || lo > 0xdfff)
                fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        }
        // Encode as UTF-8.
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
        return out;
    }

    Value
    parseNumber()
    {
        std::size_t start = pos_;
        bool neg = false, isFloat = false;
        if (peek() == '-') {
            neg = true;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isFloat = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start + (neg ? 1u : 0u))
            fail("bad number");
        std::string tok = text_.substr(start, pos_ - start);
        if (!isFloat) {
            // Integers keep full 64-bit precision.
            if (neg) {
                std::int64_t v = 0;
                auto res = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (res.ec != std::errc() ||
                    res.ptr != tok.data() + tok.size())
                    fail("bad integer");
                return Value(v);
            }
            std::uint64_t v = 0;
            auto res =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (res.ec != std::errc() ||
                res.ptr != tok.data() + tok.size())
                fail("bad integer");
            return Value(v);
        }
        double d = 0.0;
        auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
            fail("bad number");
        return Value(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        wisc_fatal("JSON value is ", kindName(kind_), ", not bool");
    return bool_;
}

std::uint64_t
Value::asUint() const
{
    if (kind_ == Kind::Uint)
        return uint_;
    if (kind_ == Kind::Int && int_ >= 0)
        return static_cast<std::uint64_t>(int_);
    wisc_fatal("JSON value is ", kindName(kind_), ", not uint");
}

std::int64_t
Value::asInt() const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Uint &&
        uint_ <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max()))
        return static_cast<std::int64_t>(uint_);
    wisc_fatal("JSON value is ", kindName(kind_), ", not int");
}

double
Value::asDouble() const
{
    switch (kind_) {
      case Kind::Double: return double_;
      case Kind::Uint: return static_cast<double>(uint_);
      case Kind::Int: return static_cast<double>(int_);
      default:
        wisc_fatal("JSON value is ", kindName(kind_), ", not numeric");
    }
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        wisc_fatal("JSON value is ", kindName(kind_), ", not string");
    return str_;
}

Value &
Value::push(Value v)
{
    if (kind_ != Kind::Array)
        wisc_fatal("push() on JSON ", kindName(kind_));
    arr_.push_back(std::move(v));
    return arr_.back();
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    wisc_fatal("size() on JSON ", kindName(kind_));
}

const Value &
Value::at(std::size_t i) const
{
    if (kind_ != Kind::Array)
        wisc_fatal("at(index) on JSON ", kindName(kind_));
    if (i >= arr_.size())
        wisc_fatal("JSON array index ", i, " out of range (size ",
                   arr_.size(), ")");
    return arr_[i];
}

Value &
Value::operator[](const std::string &key)
{
    if (kind_ != Kind::Object)
        wisc_fatal("operator[] on JSON ", kindName(kind_));
    for (auto &kv : obj_)
        if (kv.first == key)
            return kv.second;
    obj_.emplace_back(key, Value());
    return obj_.back().second;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        wisc_fatal("find() on JSON ", kindName(kind_));
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        wisc_fatal("JSON object has no member '", key, "'");
    return *v;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::Object)
        wisc_fatal("members() on JSON ", kindName(kind_));
    return obj_;
}

void
Value::writeImpl(std::ostream &os, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        os << '\n';
        for (int i = 0; i < d * indent; ++i)
            os << ' ';
    };

    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Uint:
        os << uint_;
        break;
      case Kind::Int:
        os << int_;
        break;
      case Kind::Double:
        writeDouble(os, double_);
        break;
      case Kind::String:
        writeEscaped(os, str_);
        break;
      case Kind::Array:
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            arr_[i].writeImpl(os, indent, depth + 1);
        }
        newline(depth);
        os << ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            writeEscaped(os, obj_[i].first);
            os << (indent > 0 ? ": " : ":");
            obj_[i].second.writeImpl(os, indent, depth + 1);
        }
        newline(depth);
        os << '}';
        break;
    }
}

void
Value::write(std::ostream &os, int indent) const
{
    writeImpl(os, indent, 0);
}

std::string
Value::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

Value
Value::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace json
} // namespace wisc
