/**
 * @file
 * Fundamental scalar type aliases shared by every WISC library.
 */

#ifndef WISC_COMMON_TYPES_HH_
#define WISC_COMMON_TYPES_HH_

#include <cstdint>

namespace wisc {

/** Byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** "This event never happened" sentinel for Cycle-valued timestamps.
 *  Cycle 0 is a legitimate timestamp (the first simulated cycle), so
 *  absent events must be marked out-of-band. */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/** Architectural general-purpose register index. */
using RegIdx = std::uint8_t;

/** Architectural predicate register index. */
using PredIdx = std::uint8_t;

/** Sequence number of a dynamic instruction (monotonically increasing). */
using SeqNum = std::uint64_t;

/** Signed machine word: WISC is a 64-bit architecture. */
using Word = std::int64_t;

/** Unsigned machine word. */
using UWord = std::uint64_t;

/** Number of architectural general-purpose registers. */
inline constexpr unsigned kNumIntRegs = 64;

/** Number of architectural predicate registers; p0 is hardwired TRUE. */
inline constexpr unsigned kNumPredRegs = 16;

/** Register index conventions (software ABI, not enforced by hardware). */
inline constexpr RegIdx kRegZero = 0;   ///< always reads 0, writes ignored
inline constexpr RegIdx kRegSp = 1;     ///< stack pointer by convention
inline constexpr RegIdx kRegRa = 2;     ///< link register used by CALL/RET

} // namespace wisc

#endif // WISC_COMMON_TYPES_HH_
