/**
 * @file
 * Small bit-manipulation helpers used by predictors and caches.
 */

#ifndef WISC_COMMON_BITUTIL_HH_
#define WISC_COMMON_BITUTIL_HH_

#include <bit>
#include <cstdint>

namespace wisc {

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t x)
{
    return static_cast<unsigned>(std::bit_width(x) - 1);
}

/** Mask with the low n bits set (n <= 64). */
constexpr std::uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~0ull : ((1ull << n) - 1);
}

/** Extract bits [lo, lo+len) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned lo, unsigned len)
{
    return (x >> lo) & maskBits(len);
}

/** Saturating increment of an n-bit counter. */
inline void
satIncrement(std::uint8_t &ctr, unsigned nbits)
{
    if (ctr < maskBits(nbits))
        ++ctr;
}

/** Saturating decrement. */
inline void
satDecrement(std::uint8_t &ctr)
{
    if (ctr > 0)
        --ctr;
}

} // namespace wisc

#endif // WISC_COMMON_BITUTIL_HH_
