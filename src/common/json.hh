/**
 * @file
 * Small JSON document model used by the experiment harness to emit
 * machine-readable results (`--json` / WISC_RESULTS_JSON).
 *
 * Design goals, in order: (1) exact round-tripping of uint64 counters —
 * cycle and event counts must not pass through a double; (2) a
 * deterministic, insertion-ordered writer so emitted files diff cleanly
 * across runs; (3) a strict parser good enough for the regression tests
 * to round-trip what the writer produces. Not goals: speed on huge
 * documents, comments, or lenient parsing.
 */

#ifndef WISC_COMMON_JSON_HH_
#define WISC_COMMON_JSON_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace wisc {
namespace json {

/** A JSON value: null, bool, number (uint/int/double), string, array,
 *  or object. Objects preserve insertion order. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Uint,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Int ||
               kind_ == Kind::Double;
    }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    // ---- scalar accessors (hard error on kind mismatch) ----
    bool asBool() const;
    std::uint64_t asUint() const;
    std::int64_t asInt() const;
    double asDouble() const; ///< any numeric kind
    const std::string &asString() const;

    // ---- array ----
    /** Append an element (array only). Returns the stored element. */
    Value &push(Value v);
    /** Element count of an array or member count of an object. */
    std::size_t size() const;
    /** Array element by index; hard error if out of range. */
    const Value &at(std::size_t i) const;

    // ---- object ----
    /** Insert-or-find a member (object only; a fresh Value is Null). */
    Value &operator[](const std::string &key);
    /** Member lookup; nullptr if absent (object only). */
    const Value *find(const std::string &key) const;
    /** Member lookup; hard error if absent. */
    const Value &at(const std::string &key) const;
    /** Members in insertion order (object only). */
    const std::vector<std::pair<std::string, Value>> &members() const;

    // ---- serialization ----
    /** Write the document; indent > 0 pretty-prints. */
    void write(std::ostream &os, int indent = 2) const;
    std::string dump(int indent = 2) const;

    /** Strict parse; throws FatalError on malformed input. */
    static Value parse(const std::string &text);

  private:
    void writeImpl(std::ostream &os, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

} // namespace json
} // namespace wisc

#endif // WISC_COMMON_JSON_HH_
