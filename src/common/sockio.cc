#include "common/sockio.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace wisc {

namespace {

bool
fillAddr(const std::string &path, sockaddr_un &addr, std::string *error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** write(2) the whole buffer, retrying short writes and EINTR. */
bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** read(2) exactly n bytes. Returns n on success, 0 on immediate EOF,
 *  -1 on error, and the partial count on EOF mid-buffer. */
ssize_t
readAll(int fd, char *data, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, data + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            break; // EOF
        got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Socket
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr, error))
        return Socket{};

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return Socket{};
    }
    Socket sock(fd);
    ::unlink(path.c_str()); // stale socket file from a dead daemon
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        if (error)
            *error = "bind '" + path + "': " + std::strerror(errno);
        return Socket{};
    }
    if (::listen(fd, 64) < 0) {
        if (error)
            *error = "listen '" + path + "': " + std::strerror(errno);
        return Socket{};
    }
    return sock;
}

Socket
acceptConn(const Socket &listener)
{
    for (;;) {
        int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        return Socket{};
    }
}

Socket
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr, error))
        return Socket{};

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return Socket{};
    }
    Socket sock(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (error)
            *error = "connect '" + path + "': " + std::strerror(errno);
        return Socket{};
    }
    return sock;
}

bool
sendFrame(const Socket &sock, const std::string &payload)
{
    if (!sock.valid() || payload.size() > kMaxFrameBytes)
        return false;
    char len[4];
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        len[i] = static_cast<char>(n >> (8 * i));
    return writeAll(sock.fd(), len, 4) &&
           writeAll(sock.fd(), payload.data(), payload.size());
}

FrameStatus
recvFrame(const Socket &sock, std::string &payload)
{
    if (!sock.valid())
        return FrameStatus::Error;
    char len[4];
    ssize_t r = readAll(sock.fd(), len, 4);
    if (r < 0)
        return FrameStatus::Error;
    if (r == 0)
        return FrameStatus::Eof;
    if (r != 4)
        return FrameStatus::Truncated;

    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(static_cast<unsigned char>(len[i]))
             << (8 * i);
    if (n > kMaxFrameBytes)
        return FrameStatus::Oversized;

    payload.resize(n);
    if (n == 0)
        return FrameStatus::Ok;
    r = readAll(sock.fd(), payload.data(), n);
    if (r < 0)
        return FrameStatus::Error;
    if (static_cast<std::uint32_t>(r) != n)
        return FrameStatus::Truncated;
    return FrameStatus::Ok;
}

} // namespace wisc
