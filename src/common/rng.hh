/**
 * @file
 * Deterministic xorshift64* pseudo-random number generator.
 *
 * Used by workload input generation and by the deterministic value
 * synthesizer for wrong-path memory. Fully reproducible across platforms,
 * unlike std::mt19937 distributions.
 */

#ifndef WISC_COMMON_RNG_HH_
#define WISC_COMMON_RNG_HH_

#include <cstdint>

#include "common/log.hh"

namespace wisc {

/** xorshift64* generator with convenience range/probability helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        wisc_assert(bound != 0, "Rng::below(0)");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. The span is computed in
     *  unsigned arithmetic so wide ranges (e.g. lo=INT64_MIN) are not
     *  UB, and the full 64-bit span has a fast path instead of wrapping
     *  the modulus bound to zero. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        wisc_assert(lo <= hi, "Rng::range lo > hi");
        std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo);
        if (span == ~std::uint64_t{0})
            return static_cast<std::int64_t>(next());
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                         below(span + 1));
    }

    /** True with the given probability (0.0 .. 1.0). */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

  private:
    std::uint64_t state_;
};

/**
 * Stateless 64-bit mix hash (splitmix64 finalizer). Used to synthesize
 * deterministic-but-arbitrary values, e.g. initial memory contents.
 */
inline std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace wisc

#endif // WISC_COMMON_RNG_HH_
