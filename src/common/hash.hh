/**
 * @file
 * Streaming 64-bit content hashing for fingerprinting immutable
 * simulation inputs (Program images, SimParams) and checksumming the
 * on-disk run cache.
 *
 * The hasher is FNV-1a over the appended byte stream with a splitmix64
 * finalizer to decorrelate the low bits (plain FNV-1a is weak in its
 * low bits for short inputs). It is *not* cryptographic — the cache it
 * keys is a local performance artifact, not a trust boundary — but it
 * is stable across processes and runs, which is what content
 * addressing needs. Never hash raw struct memory: padding bytes are
 * indeterminate. Append each field explicitly.
 */

#ifndef WISC_COMMON_HASH_HH_
#define WISC_COMMON_HASH_HH_

#include <cstddef>
#include <cstdint>
#include <string>

namespace wisc {

class Hasher
{
  public:
    /** Append raw bytes to the stream. */
    void
    bytes(const void *data, std::size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state_ ^= p[i];
            state_ *= kFnvPrime;
        }
    }

    /** Append one unsigned 64-bit value (little-endian byte order,
     *  independent of host endianness). */
    void
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(b, 8);
    }

    void u32(std::uint32_t v) { u64(v); }
    void u8(std::uint8_t v) { u64(v); }
    void b(bool v) { u64(v ? 1 : 0); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Append a double by bit pattern (all fingerprinted doubles are
     *  produced deterministically, so bit equality is the right
     *  notion of "same configuration"). */
    void f64(double v);

    /** Append a string: length prefix + contents, so ("ab","c") and
     *  ("a","bc") hash differently. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** Final digest. The hasher may keep accumulating afterwards;
     *  digest() is a pure function of the bytes appended so far. */
    std::uint64_t
    digest() const
    {
        return mix(state_);
    }

    /** splitmix64 finalizer (public: the disk cache uses it to derive
     *  independent check words from one stream hash). */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

  private:
    static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

    std::uint64_t state_ = kFnvOffset;
};

/** One-shot convenience: FNV-1a + finalizer over a byte buffer. */
std::uint64_t hashBytes(const void *data, std::size_t n);

} // namespace wisc

#endif // WISC_COMMON_HASH_HH_
