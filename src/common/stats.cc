#include "common/stats.hh"

#include <iomanip>

namespace wisc {

Counter &
StatSet::counter(const std::string &name, const std::string &desc)
{
    auto &e = counters_[name];
    if (e.desc.empty())
        e.desc = desc;
    return e.counter;
}

Histogram &
StatSet::histogram(const std::string &name, std::size_t buckets,
                   const std::string &desc)
{
    if (buckets == 0)
        wisc_fatal("histogram '", name, "' registered with zero buckets");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, HistEntry{desc, Histogram(buckets)})
                 .first;
    }
    return it->second.hist;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.counter.value();
}

std::uint64_t
StatSet::require(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        wisc_fatal("unknown statistic '", name,
                   "' (misspelled name, or the component that registers "
                   "it never ran)");
    return it->second.counter.value();
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

const Histogram &
StatSet::requireHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        wisc_fatal("unknown histogram '", name, "'");
    return it->second.hist;
}

void
StatSet::resetAll()
{
    for (auto &kv : counters_)
        kv.second.counter.reset();
    for (auto &kv : histograms_)
        kv.second.hist.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : counters_) {
        os << std::left << std::setw(44) << kv.first << " "
           << std::right << std::setw(14) << kv.second.counter.value();
        if (!kv.second.desc.empty())
            os << "  # " << kv.second.desc;
        os << "\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second.hist;
        os << std::left << std::setw(44) << kv.first
           << " (histogram, n=" << h.count() << ")";
        if (!kv.second.desc.empty())
            os << "  # " << kv.second.desc;
        os << "\n";
        for (std::size_t i = 0; i < h.numBuckets(); ++i) {
            if (!h.bucket(i))
                continue;
            os << "  " << std::left << std::setw(42)
               << ((i + 1 == h.numBuckets())
                       ? ">=" + std::to_string(i)
                       : std::to_string(i))
               << " " << std::right << std::setw(14) << h.bucket(i)
               << "\n";
        }
    }
}

std::vector<std::string>
StatSet::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatSet::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &kv : histograms_)
        names.push_back(kv.first);
    return names;
}

} // namespace wisc
