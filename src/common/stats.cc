#include "common/stats.hh"

#include <iomanip>

namespace wisc {

Counter &
StatSet::counter(const std::string &name, const std::string &desc)
{
    auto &e = counters_[name];
    if (e.desc.empty())
        e.desc = desc;
    return e.counter;
}

Histogram &
StatSet::histogram(const std::string &name, std::size_t buckets,
                   const std::string &desc)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, HistEntry{desc, Histogram(buckets)})
                 .first;
    }
    return it->second.hist;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.counter.value();
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

void
StatSet::resetAll()
{
    for (auto &kv : counters_)
        kv.second.counter.reset();
    for (auto &kv : histograms_)
        kv.second.hist.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : counters_) {
        os << std::left << std::setw(44) << kv.first << " "
           << std::right << std::setw(14) << kv.second.counter.value();
        if (!kv.second.desc.empty())
            os << "  # " << kv.second.desc;
        os << "\n";
    }
    for (const auto &kv : histograms_) {
        os << std::left << std::setw(44) << kv.first
           << " (histogram, n=" << kv.second.hist.count() << ")\n";
    }
}

std::vector<std::string>
StatSet::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

} // namespace wisc
