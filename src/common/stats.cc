#include "common/stats.hh"

#include <iomanip>

namespace wisc {

Counter &
StatSet::counter(const std::string &name, const std::string &desc)
{
    if (const char *kind = kindOf(name); kind && kind[0] != 'c')
        wisc_fatal("statistic '", name, "' is a ", kind,
                   "; cannot re-register it as a counter");
    auto &e = counters_[name];
    if (e.desc.empty())
        e.desc = desc;
    return e.counter;
}

Histogram &
StatSet::histogram(const std::string &name, std::size_t buckets,
                   const std::string &desc)
{
    if (buckets == 0)
        wisc_fatal("histogram '", name, "' registered with zero buckets");
    if (const char *kind = kindOf(name); kind && kind[0] != 'h')
        wisc_fatal("statistic '", name, "' is a ", kind,
                   "; cannot re-register it as a histogram");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, HistEntry{desc, Histogram(buckets)})
                 .first;
    }
    return it->second.hist;
}

StatTable &
StatSet::table(const std::string &name, std::vector<std::string> columns,
               const std::string &desc)
{
    if (const char *kind = kindOf(name); kind && kind[0] != 't')
        wisc_fatal("statistic '", name, "' is a ", kind,
                   "; cannot re-register it as a table");
    auto it = tables_.find(name);
    if (it == tables_.end()) {
        it = tables_.emplace(name,
                             TableEntry{desc, StatTable(std::move(columns))})
                 .first;
    }
    return it->second.table;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.counter.value();
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

const char *
StatSet::kindOf(const std::string &name) const
{
    if (counters_.count(name))
        return "counter";
    if (histograms_.count(name))
        return "histogram";
    if (tables_.count(name))
        return "table";
    return nullptr;
}

namespace {

[[noreturn]] void
badLookup(const char *wanted, const std::string &name, const char *actual)
{
    if (actual)
        wisc_fatal("statistic '", name, "' is a ", actual, ", not a ",
                   wanted, "; read it with require<",
                   actual[0] == 'c'
                       ? "Counter"
                       : (actual[0] == 'h' ? "Histogram" : "StatTable"),
                   ">");
    wisc_fatal("unknown ", wanted, " '", name,
               "' (misspelled name, or the component that registers it "
               "never ran)");
}

} // namespace

template <> const Counter &
StatSet::require<Counter>(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        badLookup("counter", name, kindOf(name));
    return it->second.counter;
}

template <> const Histogram &
StatSet::require<Histogram>(const std::string &name) const
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        badLookup("histogram", name, kindOf(name));
    return it->second.hist;
}

template <> const StatTable &
StatSet::require<StatTable>(const std::string &name) const
{
    auto it = tables_.find(name);
    if (it == tables_.end())
        badLookup("table", name, kindOf(name));
    return it->second.table;
}

void
StatSet::resetAll()
{
    for (auto &kv : counters_)
        kv.second.counter.reset();
    for (auto &kv : histograms_)
        kv.second.hist.reset();
    for (auto &kv : tables_)
        kv.second.table.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : counters_) {
        os << std::left << std::setw(44) << kv.first << " "
           << std::right << std::setw(14) << kv.second.counter.value();
        if (!kv.second.desc.empty())
            os << "  # " << kv.second.desc;
        os << "\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second.hist;
        os << std::left << std::setw(44) << kv.first
           << " (histogram, n=" << h.count() << ")";
        if (!kv.second.desc.empty())
            os << "  # " << kv.second.desc;
        os << "\n";
        for (std::size_t i = 0; i < h.numBuckets(); ++i) {
            if (!h.bucket(i))
                continue;
            os << "  " << std::left << std::setw(42)
               << ((i + 1 == h.numBuckets())
                       ? ">=" + std::to_string(i)
                       : std::to_string(i))
               << " " << std::right << std::setw(14) << h.bucket(i)
               << "\n";
        }
    }
    for (const auto &kv : tables_) {
        const StatTable &t = kv.second.table;
        os << std::left << std::setw(44) << kv.first
           << " (table, rows=" << t.numRows() << ")";
        if (!kv.second.desc.empty())
            os << "  # " << kv.second.desc;
        os << "\n  " << std::left << std::setw(16) << "key";
        for (const auto &c : t.columns())
            os << " " << std::right << std::setw(12) << c;
        os << "\n";
        for (const auto &row : t.rows()) {
            os << "  " << std::left << std::setw(16) << row.first;
            for (std::uint64_t v : row.second)
                os << " " << std::right << std::setw(12) << v;
            os << "\n";
        }
    }
}

std::vector<std::string>
StatSet::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatSet::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &kv : histograms_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatSet::tableNames() const
{
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto &kv : tables_)
        names.push_back(kv.first);
    return names;
}

} // namespace wisc
