#include "isa/isa.hh"

#include <sstream>

#include "common/log.hh"

namespace wisc {

namespace {

struct OpInfo
{
    const char *name;
    bool writesReg;
    bool writesPred;
    bool readsRs1;
    bool readsRs2;
    InstrClass cls;
};

// Indexed by Opcode. Order must match the enum.
const OpInfo kOpInfo[] = {
    {"add",     true,  false, true,  true,  InstrClass::IntAlu},
    {"sub",     true,  false, true,  true,  InstrClass::IntAlu},
    {"and",     true,  false, true,  true,  InstrClass::IntAlu},
    {"or",      true,  false, true,  true,  InstrClass::IntAlu},
    {"xor",     true,  false, true,  true,  InstrClass::IntAlu},
    {"shl",     true,  false, true,  true,  InstrClass::IntAlu},
    {"shr",     true,  false, true,  true,  InstrClass::IntAlu},
    {"sra",     true,  false, true,  true,  InstrClass::IntAlu},
    {"mul",     true,  false, true,  true,  InstrClass::IntMul},
    {"div",     true,  false, true,  true,  InstrClass::IntDiv},
    {"rem",     true,  false, true,  true,  InstrClass::IntDiv},
    {"addi",    true,  false, true,  false, InstrClass::IntAlu},
    {"andi",    true,  false, true,  false, InstrClass::IntAlu},
    {"ori",     true,  false, true,  false, InstrClass::IntAlu},
    {"xori",    true,  false, true,  false, InstrClass::IntAlu},
    {"shli",    true,  false, true,  false, InstrClass::IntAlu},
    {"shri",    true,  false, true,  false, InstrClass::IntAlu},
    {"srai",    true,  false, true,  false, InstrClass::IntAlu},
    {"muli",    true,  false, true,  false, InstrClass::IntMul},
    {"li",      true,  false, false, false, InstrClass::IntAlu},
    {"cmp.eq",  false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.ne",  false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.lt",  false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.le",  false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.gt",  false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.ge",  false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.ltu", false, true,  true,  true,  InstrClass::IntAlu},
    {"cmp.geu", false, true,  true,  true,  InstrClass::IntAlu},
    {"cmpi.eq", false, true,  true,  false, InstrClass::IntAlu},
    {"cmpi.ne", false, true,  true,  false, InstrClass::IntAlu},
    {"cmpi.lt", false, true,  true,  false, InstrClass::IntAlu},
    {"cmpi.le", false, true,  true,  false, InstrClass::IntAlu},
    {"cmpi.gt", false, true,  true,  false, InstrClass::IntAlu},
    {"cmpi.ge", false, true,  true,  false, InstrClass::IntAlu},
    {"pset",    false, true,  false, false, InstrClass::IntAlu},
    {"pnot",    false, true,  false, false, InstrClass::IntAlu},
    {"pand",    false, true,  false, false, InstrClass::IntAlu},
    {"por",     false, true,  false, false, InstrClass::IntAlu},
    {"ld",      true,  false, true,  false, InstrClass::Load},
    {"st",      false, false, true,  true,  InstrClass::Store},
    {"ld1",     true,  false, true,  false, InstrClass::Load},
    {"st1",     false, false, true,  true,  InstrClass::Store},
    {"br",      false, false, false, false, InstrClass::Branch},
    {"jmp",     false, false, false, false, InstrClass::Branch},
    {"jmpr",    false, false, true,  false, InstrClass::Branch},
    {"call",    true,  false, false, false, InstrClass::Branch},
    {"ret",     false, false, true,  false, InstrClass::Branch},
    {"nop",     false, false, false, false, InstrClass::Other},
    {"halt",    false, false, false, false, InstrClass::Other},
};

static_assert(sizeof(kOpInfo) / sizeof(kOpInfo[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "kOpInfo must cover every opcode");

const OpInfo &
info(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    wisc_assert(idx < static_cast<std::size_t>(Opcode::NumOpcodes),
                "bad opcode ", idx);
    return kOpInfo[idx];
}

} // namespace

bool Instruction::writesReg() const { return info(op).writesReg; }
bool Instruction::writesPred() const { return info(op).writesPred; }
bool Instruction::readsRs1() const { return info(op).readsRs1; }
bool Instruction::readsRs2() const { return info(op).readsRs2; }
InstrClass Instruction::instrClass() const { return info(op).cls; }

std::uint16_t
predecodeFlags(const Instruction &inst)
{
    const OpInfo &i = info(inst.op);
    std::uint16_t f = 0;
    if (inst.isControl())
        f |= kPreCtrl;
    if (inst.op == Opcode::Br)
        f |= kPreCondBr;
    if (inst.isLoad())
        f |= kPreLoad;
    if (inst.isStore())
        f |= kPreStore;
    if (inst.isMem())
        f |= kPreMem;
    if (i.writesReg)
        f |= kPreWritesReg;
    if (i.writesPred)
        f |= kPreWritesPred;
    if (i.readsRs1)
        f |= kPreReadsRs1;
    if (i.readsRs2)
        f |= kPreReadsRs2;
    switch (inst.op) {
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU:
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
        f |= kPreCompare;
        break;
      default:
        break;
    }
    if (inst.qp != 0 && i.writesReg && inst.op != Opcode::Br)
        f |= kPreSelectShape;
    return f;
}

const char *
opcodeName(Opcode op)
{
    return info(op).name;
}

const char *
wishKindName(WishKind w)
{
    switch (w) {
      case WishKind::None: return "";
      case WishKind::Jump: return "wish.jump";
      case WishKind::Join: return "wish.join";
      case WishKind::Loop: return "wish.loop";
    }
    return "?";
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.qp != 0)
        os << "(p" << unsigned(inst.qp) << ") ";
    if (inst.unc)
        os << "unc.";

    switch (inst.op) {
      case Opcode::Br:
        os << (inst.wish == WishKind::None ? "br"
                                           : wishKindName(inst.wish))
           << " @" << inst.target;
        break;
      case Opcode::Jmp:
        os << "jmp @" << inst.target;
        break;
      case Opcode::Call:
        os << "call r" << unsigned(inst.rd) << ", @" << inst.target;
        break;
      case Opcode::JmpR:
        os << "jmpr r" << unsigned(inst.rs1);
        break;
      case Opcode::Ret:
        os << "ret r" << unsigned(inst.rs1);
        break;
      case Opcode::Li:
        os << "li r" << unsigned(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::PSet:
        os << "pset p" << unsigned(inst.pd) << ", " << (inst.imm & 1);
        break;
      case Opcode::PNot:
        os << "pnot p" << unsigned(inst.pd) << ", p" << unsigned(inst.ps);
        break;
      case Opcode::PAnd:
      case Opcode::POr:
        os << opcodeName(inst.op) << " p" << unsigned(inst.pd) << ", p"
           << unsigned(inst.ps) << ", p" << unsigned(inst.ps2);
        break;
      case Opcode::Ld:
      case Opcode::Ld1:
        os << opcodeName(inst.op) << " r" << unsigned(inst.rd) << ", [r"
           << unsigned(inst.rs1) << (inst.imm >= 0 ? "+" : "") << inst.imm
           << "]";
        break;
      case Opcode::St:
      case Opcode::St1:
        os << opcodeName(inst.op) << " [r" << unsigned(inst.rs1)
           << (inst.imm >= 0 ? "+" : "") << inst.imm << "], r"
           << unsigned(inst.rs2);
        break;
      case Opcode::Nop:
      case Opcode::Halt:
        os << opcodeName(inst.op);
        break;
      default:
        os << opcodeName(inst.op) << " ";
        if (inst.writesPred()) {
            os << "p" << unsigned(inst.pd);
            if (inst.pd2 != kPredNone)
                os << "/p" << unsigned(inst.pd2);
            os << " = ";
        } else if (inst.writesReg()) {
            os << "r" << unsigned(inst.rd) << ", ";
        }
        if (inst.readsRs1())
            os << "r" << unsigned(inst.rs1);
        if (inst.readsRs2())
            os << ", r" << unsigned(inst.rs2);
        else if (!inst.writesPred() || !inst.readsRs2())
            // Immediate forms print the immediate last.
            switch (inst.op) {
              case Opcode::AddI: case Opcode::AndI: case Opcode::OrI:
              case Opcode::XorI: case Opcode::ShlI: case Opcode::ShrI:
              case Opcode::SraI: case Opcode::MulI:
              case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
              case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
                os << ", " << inst.imm;
                break;
              default:
                break;
            }
        break;
    }
    return os.str();
}

} // namespace wisc
