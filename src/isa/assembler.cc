#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "common/log.hh"

namespace wisc {

namespace {

/** A pending direct-target fixup: instruction index -> label name. */
struct Fixup
{
    std::uint32_t inst;
    std::string label;
    int line;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == ';' || c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

[[noreturn]] void
asmError(int line, const std::string &msg)
{
    wisc_fatal("assembler: line ", line, ": ", msg);
}

RegIdx
parseReg(const std::string &tok, int line)
{
    if (tok.size() < 2 || tok[0] != 'r')
        asmError(line, "expected register, got '" + tok + "'");
    char *end = nullptr;
    long v = std::strtol(tok.c_str() + 1, &end, 10);
    if (*end != '\0' || v < 0 || v >= static_cast<long>(kNumIntRegs))
        asmError(line, "bad register '" + tok + "'");
    return static_cast<RegIdx>(v);
}

PredIdx
parsePred(const std::string &tok, int line)
{
    if (tok.size() < 2 || tok[0] != 'p')
        asmError(line, "expected predicate, got '" + tok + "'");
    char *end = nullptr;
    long v = std::strtol(tok.c_str() + 1, &end, 10);
    if (*end != '\0' || v < 0 || v >= static_cast<long>(kNumPredRegs))
        asmError(line, "bad predicate '" + tok + "'");
    return static_cast<PredIdx>(v);
}

Word
parseImm(const std::string &tok, int line)
{
    char *end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 0);
    if (end == tok.c_str() || *end != '\0')
        asmError(line, "bad immediate '" + tok + "'");
    return static_cast<Word>(v);
}

const std::map<std::string, Opcode> &
mnemonics()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> m;
        for (unsigned i = 0;
             i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
            auto op = static_cast<Opcode>(i);
            m[opcodeName(op)] = op;
        }
        return m;
    }();
    return table;
}

bool
isAluRRR(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sra: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem:
        return true;
      default:
        return false;
    }
}

bool
isAluRRI(Opcode op)
{
    switch (op) {
      case Opcode::AddI: case Opcode::AndI: case Opcode::OrI:
      case Opcode::XorI: case Opcode::ShlI: case Opcode::ShrI:
      case Opcode::SraI: case Opcode::MulI:
        return true;
      default:
        return false;
    }
}

bool
isCmpRR(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU:
        return true;
      default:
        return false;
    }
}

bool
isCmpRI(Opcode op)
{
    switch (op) {
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
        return true;
      default:
        return false;
    }
}

} // namespace

Program
assemble(const std::string &source)
{
    Program prog;
    std::vector<Fixup> fixups;
    std::string pending_entry;
    int entry_line = 0;

    std::istringstream in(source);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        auto toks = tokenize(raw);
        if (toks.empty())
            continue;

        // Directives.
        if (toks[0] == ".data") {
            if (toks.size() < 2)
                asmError(lineno, ".data needs a base address");
            Addr base = static_cast<Addr>(parseImm(toks[1], lineno));
            std::vector<Word> words;
            for (std::size_t i = 2; i < toks.size(); ++i)
                words.push_back(parseImm(toks[i], lineno));
            prog.addData(base, std::move(words));
            continue;
        }
        if (toks[0] == ".entry") {
            if (toks.size() != 2)
                asmError(lineno, ".entry needs one label");
            pending_entry = toks[1];
            entry_line = lineno;
            continue;
        }

        // Labels (possibly several on one line, possibly followed by code).
        std::size_t t = 0;
        while (t < toks.size() && toks[t].back() == ':') {
            prog.defineLabel(toks[t].substr(0, toks[t].size() - 1));
            ++t;
        }
        if (t == toks.size())
            continue;

        Instruction inst;

        // Optional qualifying-predicate prefix "(pN)".
        if (toks[t].front() == '(') {
            std::string g = toks[t];
            if (g.back() != ')')
                asmError(lineno, "bad guard '" + g + "'");
            inst.qp = parsePred(g.substr(1, g.size() - 2), lineno);
            ++t;
            if (t == toks.size())
                asmError(lineno, "guard with no instruction");
        }

        std::string mnem = toks[t];
        std::vector<std::string> ops(toks.begin() + t + 1, toks.end());

        // Wish-branch sugar.
        WishKind wk = WishKind::None;
        if (mnem == "wish.jump") { mnem = "br"; wk = WishKind::Jump; }
        else if (mnem == "wish.join") { mnem = "br"; wk = WishKind::Join; }
        else if (mnem == "wish.loop") { mnem = "br"; wk = WishKind::Loop; }

        auto it = mnemonics().find(mnem);
        if (it == mnemonics().end())
            asmError(lineno, "unknown mnemonic '" + mnem + "'");
        inst.op = it->second;
        inst.wish = wk;

        auto need = [&](std::size_t n) {
            if (ops.size() != n)
                asmError(lineno, "wrong operand count for '" + mnem + "'");
        };

        switch (inst.op) {
          case Opcode::Br:
            // "br pN, label" — condition predicate then target.
            need(2);
            inst.qp = parsePred(ops[0], lineno);
            fixups.push_back({static_cast<std::uint32_t>(prog.size()),
                              ops[1], lineno});
            break;
          case Opcode::Jmp:
            need(1);
            fixups.push_back({static_cast<std::uint32_t>(prog.size()),
                              ops[0], lineno});
            break;
          case Opcode::Call:
            need(2);
            inst.rd = parseReg(ops[0], lineno);
            fixups.push_back({static_cast<std::uint32_t>(prog.size()),
                              ops[1], lineno});
            break;
          case Opcode::JmpR:
          case Opcode::Ret:
            need(1);
            inst.rs1 = parseReg(ops[0], lineno);
            break;
          case Opcode::Li:
            need(2);
            inst.rd = parseReg(ops[0], lineno);
            inst.imm = parseImm(ops[1], lineno);
            break;
          case Opcode::PSet:
            need(2);
            inst.pd = parsePred(ops[0], lineno);
            inst.imm = parseImm(ops[1], lineno);
            break;
          case Opcode::PNot:
            need(2);
            inst.pd = parsePred(ops[0], lineno);
            inst.ps = parsePred(ops[1], lineno);
            break;
          case Opcode::PAnd:
          case Opcode::POr:
            need(3);
            inst.pd = parsePred(ops[0], lineno);
            inst.ps = parsePred(ops[1], lineno);
            inst.ps2 = parsePred(ops[2], lineno);
            break;
          case Opcode::Ld:
          case Opcode::Ld1:
            need(3);
            inst.rd = parseReg(ops[0], lineno);
            inst.rs1 = parseReg(ops[1], lineno);
            inst.imm = parseImm(ops[2], lineno);
            break;
          case Opcode::St:
          case Opcode::St1:
            need(3);
            inst.rs2 = parseReg(ops[0], lineno);
            inst.rs1 = parseReg(ops[1], lineno);
            inst.imm = parseImm(ops[2], lineno);
            break;
          case Opcode::Nop:
          case Opcode::Halt:
            need(0);
            break;
          default:
            if (isAluRRR(inst.op)) {
                need(3);
                inst.rd = parseReg(ops[0], lineno);
                inst.rs1 = parseReg(ops[1], lineno);
                inst.rs2 = parseReg(ops[2], lineno);
            } else if (isAluRRI(inst.op)) {
                need(3);
                inst.rd = parseReg(ops[0], lineno);
                inst.rs1 = parseReg(ops[1], lineno);
                inst.imm = parseImm(ops[2], lineno);
            } else if (isCmpRR(inst.op)) {
                need(4);
                inst.pd = parsePred(ops[0], lineno);
                inst.pd2 = parsePred(ops[1], lineno);
                inst.rs1 = parseReg(ops[2], lineno);
                inst.rs2 = parseReg(ops[3], lineno);
            } else if (isCmpRI(inst.op)) {
                need(4);
                inst.pd = parsePred(ops[0], lineno);
                inst.pd2 = parsePred(ops[1], lineno);
                inst.rs1 = parseReg(ops[2], lineno);
                inst.imm = parseImm(ops[3], lineno);
            } else {
                asmError(lineno, "unhandled mnemonic '" + mnem + "'");
            }
            break;
        }

        prog.append(inst);
    }

    // Resolve fixups.
    for (const auto &f : fixups) {
        if (!prog.hasLabel(f.label))
            asmError(f.line, "undefined label '" + f.label + "'");
        prog.code()[f.inst].target = prog.label(f.label);
    }
    if (!pending_entry.empty()) {
        if (!prog.hasLabel(pending_entry))
            asmError(entry_line,
                     "undefined entry label '" + pending_entry + "'");
        prog.setEntry(prog.label(pending_entry));
    }

    prog.validate();
    return prog;
}

} // namespace wisc
