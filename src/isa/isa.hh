/**
 * @file
 * The WISC instruction set: a RISC-like, fully predicated µop ISA.
 *
 * WISC plays the role of the paper's "generic RISC µops translated from
 * IA-64" (§4.1). Every instruction carries a qualifying predicate (qp);
 * when the qp evaluates FALSE the instruction is an architectural NOP.
 * Conditional branches use the qp as their branch condition, exactly like
 * IA-64's "(qp) br.cond". Compare instructions write a predicate and,
 * optionally, its complement (pd2), mirroring IA-64's two-target compares.
 *
 * Wish-branch support follows Figure 7 of the paper: a conditional branch
 * additionally carries a btype (normal/wish) and wtype (jump/join/loop)
 * hint. Hardware without wish support may ignore the hints and treat the
 * branch as a normal conditional branch.
 */

#ifndef WISC_ISA_ISA_HH_
#define WISC_ISA_ISA_HH_

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace wisc {

/** Every architectural µop opcode. */
enum class Opcode : std::uint8_t
{
    // Three-register ALU.
    Add, Sub, And, Or, Xor, Shl, Shr, Sra, Mul, Div, Rem,
    // Register-immediate ALU.
    AddI, AndI, OrI, XorI, ShlI, ShrI, SraI, MulI,
    // Load immediate into a register.
    Li,
    // Register-register compares: pd = (rs1 rel rs2), pd2 = !pd (optional).
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpLtU, CmpGeU,
    // Register-immediate compares.
    CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,
    // Predicate-register operations.
    PSet,   ///< pd = imm & 1
    PNot,   ///< pd = !ps
    PAnd,   ///< pd = ps && ps2
    POr,    ///< pd = ps || ps2
    // Memory: address = rs1 + imm.
    Ld,     ///< rd = mem64[rs1 + imm]
    St,     ///< mem64[rs1 + imm] = rs2
    Ld1,    ///< rd = zext(mem8[rs1 + imm])
    St1,    ///< mem8[rs1 + imm] = rs2 & 0xff
    // Control flow. Br is taken iff its qp is TRUE.
    Br,     ///< conditional branch (wish hints apply to this opcode only)
    Jmp,    ///< unconditional direct jump
    JmpR,   ///< unconditional indirect jump to rs1
    Call,   ///< rd = return address; jump to target
    Ret,    ///< indirect jump to rs1 (return)
    // Miscellaneous.
    Nop,
    Halt,

    NumOpcodes
};

/** Wish-branch hint (the wtype field of Figure 7; None == btype 0). */
enum class WishKind : std::uint8_t
{
    None,   ///< normal conditional branch
    Jump,   ///< first wish branch of an if-converted region
    Join,   ///< control-dependent follow-on wish branch
    Loop,   ///< predicated backward branch
};

/** Functional-unit class used by the timing model. */
enum class InstrClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Branch,
    Other,
};

/** Sentinel predicate destination meaning "no predicate written". Writing
 *  p0 is architecturally meaningless (p0 is hardwired TRUE), so index 0
 *  doubles as the null destination. */
inline constexpr PredIdx kPredNone = 0;

/** Sentinel for "no branch target". */
inline constexpr std::uint32_t kNoTarget = 0xffffffff;

/** Base byte address of the text segment; each µop occupies 4 bytes. */
inline constexpr Addr kTextBase = 0x10000;

/** Fixed encoded size of one µop in the I-cache image. */
inline constexpr Addr kInstBytes = 4;

/**
 * One architectural µop. Fields not used by an opcode are zero. The
 * 'target' of control transfers is an *instruction index* into the owning
 * Program; byte addresses are derived as kTextBase + index * kInstBytes.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    /** Qualifying predicate; 0 (p0) means always execute. For Br this is
     *  also the branch condition. */
    PredIdx qp = 0;
    RegIdx rd = 0;          ///< destination register
    RegIdx rs1 = 0;         ///< first source register
    RegIdx rs2 = 0;         ///< second source register
    PredIdx pd = kPredNone; ///< predicate destination
    PredIdx pd2 = kPredNone;///< complement predicate destination
    PredIdx ps = 0;         ///< predicate source (PNot/PAnd/POr)
    PredIdx ps2 = 0;        ///< second predicate source (PAnd/POr)
    Word imm = 0;           ///< immediate operand
    std::uint32_t target = kNoTarget; ///< branch target (instruction index)
    WishKind wish = WishKind::None;   ///< wish hint; valid only for Br
    /** IA-64-style unconditional-compare semantics: when the qualifying
     *  predicate is FALSE, a compare with unc set writes FALSE to both
     *  predicate destinations instead of preserving them. Required by
     *  if-conversion so that dead-path guard predicates read FALSE. */
    bool unc = false;

    bool isBranch() const { return op == Opcode::Br; }
    bool
    isControl() const
    {
        return op == Opcode::Br || op == Opcode::Jmp || op == Opcode::JmpR ||
               op == Opcode::Call || op == Opcode::Ret;
    }
    bool isWish() const { return op == Opcode::Br && wish != WishKind::None; }
    bool isLoad() const { return op == Opcode::Ld || op == Opcode::Ld1; }
    bool isStore() const { return op == Opcode::St || op == Opcode::St1; }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    isIndirect() const
    {
        return op == Opcode::JmpR || op == Opcode::Ret;
    }

    /** True iff this opcode writes an integer register when qp is TRUE. */
    bool writesReg() const;
    /** True iff this opcode writes one or two predicate registers. */
    bool writesPred() const;
    /** True iff rs1 is a live source for this opcode. */
    bool readsRs1() const;
    /** True iff rs2 is a live source for this opcode. */
    bool readsRs2() const;
    /** Functional-unit class for the timing model. */
    InstrClass instrClass() const;
};

/**
 * Predecoded static properties of one instruction, packed into a bit
 * mask. The cycle-level core computes these once per static instruction
 * (instead of re-deriving them from the opcode tables on every fetch of
 * every dynamic instance) and carries the mask in each in-flight µop.
 * All bits are functions of the instruction encoding only — never of
 * machine configuration — so the mask is valid for any SimParams.
 */
enum PreFlag : std::uint16_t
{
    kPreCtrl = 1 << 0,       ///< isControl()
    kPreCondBr = 1 << 1,     ///< op == Br
    kPreLoad = 1 << 2,       ///< isLoad()
    kPreStore = 1 << 3,      ///< isStore()
    kPreMem = 1 << 4,        ///< isMem()
    kPreWritesReg = 1 << 5,  ///< writesReg()
    kPreWritesPred = 1 << 6, ///< writesPred()
    kPreReadsRs1 = 1 << 7,   ///< readsRs1()
    kPreReadsRs2 = 1 << 8,   ///< readsRs2()
    kPreCompare = 1 << 9,    ///< integer compare (writes pd/pd2)
    /** Static shape of the select-µop expansion rule: a guarded
     *  register-writing non-branch (§5.3.3). */
    kPreSelectShape = 1 << 10,
};

/** Compute the PreFlag mask for one instruction. */
std::uint16_t predecodeFlags(const Instruction &inst);

/** Mnemonic for an opcode ("add", "cmp.lt", ...). */
const char *opcodeName(Opcode op);

/** Mnemonic suffix for a wish kind ("", "wish.jump", ...). */
const char *wishKindName(WishKind w);

/** Disassemble one instruction (targets printed as indices). */
std::string disassemble(const Instruction &inst);

/** Byte address of the instruction at the given index. */
inline Addr
instAddr(std::uint64_t index)
{
    return kTextBase + index * kInstBytes;
}

/** Inverse of instAddr. */
inline std::uint64_t
addrToIndex(Addr pc)
{
    return (pc - kTextBase) / kInstBytes;
}

} // namespace wisc

#endif // WISC_ISA_ISA_HH_
