/**
 * @file
 * Program: an executable WISC image — code, labels, and initial data.
 */

#ifndef WISC_ISA_PROGRAM_HH_
#define WISC_ISA_PROGRAM_HH_

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace wisc {

/** One contiguous run of initialized 64-bit data words. */
struct DataSegment
{
    Addr base = 0;
    std::vector<Word> words;
};

/**
 * An executable program image. Instructions are stored as a flat vector;
 * control-flow targets are indices into that vector. Data segments seed
 * the simulated memory before execution.
 */
class Program
{
  public:
    /** Append one instruction; returns its index. */
    std::uint32_t
    append(const Instruction &inst)
    {
        code_.push_back(inst);
        return static_cast<std::uint32_t>(code_.size() - 1);
    }

    /** Bind a label name to the *next* appended instruction's index. */
    void defineLabel(const std::string &name);

    /** Look up a previously defined label. Fatal if missing. */
    std::uint32_t label(const std::string &name) const;

    /** True iff the label exists. */
    bool hasLabel(const std::string &name) const;

    /** Add an initialized data segment. */
    void
    addData(Addr base, std::vector<Word> words)
    {
        data_.push_back({base, std::move(words)});
    }

    /** Replace every data segment (swap in a different input set). */
    void
    setData(std::vector<DataSegment> segs)
    {
        data_ = std::move(segs);
    }

    const std::vector<Instruction> &code() const { return code_; }
    std::vector<Instruction> &code() { return code_; }

    /**
     * Raw pointer to the instruction image. The cycle-level core keeps
     * per-µop pointers into this array instead of copying Instruction
     * by value into every in-flight µop, so the image must stay
     * immutable (no append) for the duration of a simulation — which
     * also makes it safe to share one Program across the parallel
     * runner's worker threads.
     */
    const Instruction *codeData() const { return code_.data(); }
    const std::vector<DataSegment> &data() const { return data_; }
    const std::map<std::string, std::uint32_t> &labels() const
    {
        return labels_;
    }

    std::size_t size() const { return code_.size(); }
    const Instruction &at(std::uint32_t idx) const;

    /** Entry instruction index (default 0). */
    std::uint32_t entry() const { return entry_; }
    void setEntry(std::uint32_t e) { entry_ = e; }

    /**
     * Check structural well-formedness: every control transfer with a
     * direct target points inside the code, predicate destinations are
     * legal, and the program contains a Halt. Fatal on violation.
     */
    void validate() const;

    /** Full disassembly listing with label annotations. */
    std::string listing() const;

    /**
     * Content fingerprint of everything a simulation observes: the
     * instruction image (every field of every µop), the data segments,
     * and the entry point. Labels are deliberately excluded — they are
     * listing metadata and never reach the core — so relabeling a
     * binary does not invalidate cached runs. Two Programs with equal
     * fingerprints produce bit-identical simulations under equal
     * SimParams.
     */
    std::uint64_t fingerprint() const;

  private:
    std::vector<Instruction> code_;
    std::vector<DataSegment> data_;
    std::map<std::string, std::uint32_t> labels_;
    std::uint32_t entry_ = 0;
};

} // namespace wisc

#endif // WISC_ISA_PROGRAM_HH_
