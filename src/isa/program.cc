#include "isa/program.hh"

#include <sstream>

#include "common/hash.hh"
#include "common/log.hh"

namespace wisc {

void
Program::defineLabel(const std::string &name)
{
    auto idx = static_cast<std::uint32_t>(code_.size());
    auto [it, inserted] = labels_.emplace(name, idx);
    if (!inserted)
        wisc_fatal("duplicate label '", name, "'");
}

std::uint32_t
Program::label(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        wisc_fatal("undefined label '", name, "'");
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return labels_.count(name) != 0;
}

const Instruction &
Program::at(std::uint32_t idx) const
{
    wisc_assert(idx < code_.size(), "instruction index ", idx,
                " out of range (size ", code_.size(), ")");
    return code_[idx];
}

void
Program::validate() const
{
    if (code_.empty())
        wisc_fatal("empty program");
    if (entry_ >= code_.size())
        wisc_fatal("entry point out of range");

    bool has_halt = false;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        const Instruction &inst = code_[i];
        if (inst.op == Opcode::Halt)
            has_halt = true;
        const bool direct = inst.op == Opcode::Br || inst.op == Opcode::Jmp ||
                            inst.op == Opcode::Call;
        if (direct) {
            if (inst.target == kNoTarget || inst.target >= code_.size())
                wisc_fatal("instruction ", i, " has bad target ",
                           inst.target);
        }
        if (inst.wish != WishKind::None && inst.op != Opcode::Br)
            wisc_fatal("instruction ", i, " has wish hint on non-branch");
        if (inst.qp >= kNumPredRegs || inst.pd >= kNumPredRegs ||
            inst.pd2 >= kNumPredRegs || inst.ps >= kNumPredRegs ||
            inst.ps2 >= kNumPredRegs)
            wisc_fatal("instruction ", i, " has bad predicate index");
        if (inst.rd >= kNumIntRegs || inst.rs1 >= kNumIntRegs ||
            inst.rs2 >= kNumIntRegs)
            wisc_fatal("instruction ", i, " has bad register index");
        if (inst.writesPred() && inst.pd == kPredNone &&
            inst.pd2 == kPredNone)
            wisc_fatal("instruction ", i,
                       " writes no predicate destination");
    }
    if (!has_halt)
        wisc_fatal("program has no halt instruction");
}

std::uint64_t
Program::fingerprint() const
{
    // Hash field by field, never raw struct memory: Instruction has
    // padding bytes whose contents are indeterminate.
    Hasher h;
    h.str("wisc.program.v1");
    h.u32(entry_);
    h.u64(code_.size());
    for (const Instruction &inst : code_) {
        h.u8(static_cast<std::uint8_t>(inst.op));
        h.u8(inst.qp);
        h.u8(inst.rd);
        h.u8(inst.rs1);
        h.u8(inst.rs2);
        h.u8(inst.pd);
        h.u8(inst.pd2);
        h.u8(inst.ps);
        h.u8(inst.ps2);
        h.i64(inst.imm);
        h.u32(inst.target);
        h.u8(static_cast<std::uint8_t>(inst.wish));
        h.b(inst.unc);
    }
    h.u64(data_.size());
    for (const DataSegment &seg : data_) {
        h.u64(seg.base);
        h.u64(seg.words.size());
        for (Word w : seg.words)
            h.i64(w);
    }
    return h.digest();
}

std::string
Program::listing() const
{
    // Invert the label map for annotation.
    std::map<std::uint32_t, std::string> by_index;
    for (const auto &kv : labels_)
        by_index[kv.second] += kv.first + ": ";

    std::ostringstream os;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        auto it = by_index.find(static_cast<std::uint32_t>(i));
        if (it != by_index.end())
            os << it->second << "\n";
        os << "  " << i << ":\t" << disassemble(code_[i]) << "\n";
    }
    return os.str();
}

} // namespace wisc
