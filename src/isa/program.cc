#include "isa/program.hh"

#include <sstream>

#include "common/log.hh"

namespace wisc {

void
Program::defineLabel(const std::string &name)
{
    auto idx = static_cast<std::uint32_t>(code_.size());
    auto [it, inserted] = labels_.emplace(name, idx);
    if (!inserted)
        wisc_fatal("duplicate label '", name, "'");
}

std::uint32_t
Program::label(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        wisc_fatal("undefined label '", name, "'");
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return labels_.count(name) != 0;
}

const Instruction &
Program::at(std::uint32_t idx) const
{
    wisc_assert(idx < code_.size(), "instruction index ", idx,
                " out of range (size ", code_.size(), ")");
    return code_[idx];
}

void
Program::validate() const
{
    if (code_.empty())
        wisc_fatal("empty program");
    if (entry_ >= code_.size())
        wisc_fatal("entry point out of range");

    bool has_halt = false;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        const Instruction &inst = code_[i];
        if (inst.op == Opcode::Halt)
            has_halt = true;
        const bool direct = inst.op == Opcode::Br || inst.op == Opcode::Jmp ||
                            inst.op == Opcode::Call;
        if (direct) {
            if (inst.target == kNoTarget || inst.target >= code_.size())
                wisc_fatal("instruction ", i, " has bad target ",
                           inst.target);
        }
        if (inst.wish != WishKind::None && inst.op != Opcode::Br)
            wisc_fatal("instruction ", i, " has wish hint on non-branch");
        if (inst.qp >= kNumPredRegs || inst.pd >= kNumPredRegs ||
            inst.pd2 >= kNumPredRegs || inst.ps >= kNumPredRegs ||
            inst.ps2 >= kNumPredRegs)
            wisc_fatal("instruction ", i, " has bad predicate index");
        if (inst.rd >= kNumIntRegs || inst.rs1 >= kNumIntRegs ||
            inst.rs2 >= kNumIntRegs)
            wisc_fatal("instruction ", i, " has bad register index");
        if (inst.writesPred() && inst.pd == kPredNone &&
            inst.pd2 == kPredNone)
            wisc_fatal("instruction ", i,
                       " writes no predicate destination");
    }
    if (!has_halt)
        wisc_fatal("program has no halt instruction");
}

std::string
Program::listing() const
{
    // Invert the label map for annotation.
    std::map<std::uint32_t, std::string> by_index;
    for (const auto &kv : labels_)
        by_index[kv.second] += kv.first + ": ";

    std::ostringstream os;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        auto it = by_index.find(static_cast<std::uint32_t>(i));
        if (it != by_index.end())
            os << it->second << "\n";
        os << "  " << i << ":\t" << disassemble(code_[i]) << "\n";
    }
    return os.str();
}

} // namespace wisc
