/**
 * @file
 * Two-pass text assembler for WISC.
 *
 * Syntax (one instruction per line, ';' or '#' start comments):
 *
 *   label:
 *       (p1) add r1, r2, r3       ; optional qualifying-predicate prefix
 *       addi r1, r2, 42
 *       li r5, 0x100
 *       cmp.lt p1, p2, r3, r4     ; pd, pd2 (p0 = "no complement"), rs1, rs2
 *       cmpi.ge p1, p0, r3, 7
 *       pset p1, 1
 *       pnot p2, p1
 *       pand p3, p1, p2
 *       ld r1, r2, 8              ; rd, base, offset
 *       st r3, r2, 8              ; value, base, offset
 *       br p1, target             ; sugar for "(p1) br target"
 *       wish.jump p1, target
 *       wish.join p1, target
 *       wish.loop p1, target
 *       jmp target
 *       call r2, target
 *       ret r2
 *       jmpr r3
 *       halt
 *   .data 0x20000 1 2 3           ; base address then words
 *   .entry label
 *
 * Errors raise FatalError with a line number.
 */

#ifndef WISC_ISA_ASSEMBLER_HH_
#define WISC_ISA_ASSEMBLER_HH_

#include <string>

#include "isa/program.hh"

namespace wisc {

/** Assemble source text into a validated Program. */
Program assemble(const std::string &source);

} // namespace wisc

#endif // WISC_ISA_ASSEMBLER_HH_
