/**
 * @file
 * Integration tests for the out-of-order core: functional correctness
 * against the reference emulator, misprediction-penalty calibration,
 * predication-overhead timing, oracle knobs, and the wish-branch
 * recovery behaviors (no-flush low-confidence jumps, wish-loop
 * early/late/no-exit classification).
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/stats.hh"
#include "compiler/builder.hh"
#include "compiler/driver.hh"
#include "isa/assembler.hh"
#include "uarch/core.hh"

namespace wisc {
namespace {

SimResult
runSim(const Program &p, const SimParams &params, StatSet &stats)
{
    return simulate(p, params, stats);
}

SimResult
runSim(const Program &p, const SimParams &params = SimParams{})
{
    StatSet stats;
    return runSim(p, params, stats);
}

TEST(CoreTest, StraightLineProgram)
{
    Program p = assemble(R"(
        li r5, 6
        li r6, 7
        mul r4, r5, r6
        halt
    )");
    SimResult r = runSim(p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 42);
    EXPECT_EQ(r.retiredUops, 4u);
    // Front end depth dominates a tiny program.
    EXPECT_GT(r.cycles, 20u);
    EXPECT_LT(r.cycles, 400u);
}

TEST(CoreTest, MatchesEmulatorOnLoops)
{
    Program p = assemble(R"(
        li r4, 0
        li r5, 1
        loop:
        add r4, r4, r5
        addi r5, r5, 1
        cmpi.le p1, p0, r5, 200
        br p1, loop
        halt
    )");
    Emulator emu;
    EmuResult ref = emu.run(p);
    SimResult r = runSim(p); // checkFinalState cross-checks internally
    EXPECT_EQ(r.resultReg, ref.resultReg);
    EXPECT_EQ(r.retiredUops, ref.dynInsts);
}

TEST(CoreTest, IpcReasonableOnIndependentWork)
{
    // A long run of independent adds should approach the 8-wide limit.
    std::string src = "li r4, 0\n";
    for (int rep = 0; rep < 50; ++rep)
        for (int r = 10; r < 18; ++r)
            src += "addi r" + std::to_string(r) + ", r" +
                   std::to_string(r) + ", 1\n";
    src += "halt\n";
    SimResult r = runSim(assemble(src));
    EXPECT_GT(r.ipc(), 3.0);
}

TEST(CoreTest, DependentChainSerializes)
{
    std::string src = "li r5, 0\n";
    for (int rep = 0; rep < 400; ++rep)
        src += "addi r5, r5, 1\n";
    src += "addi r4, r5, 0\nhalt\n";
    SimResult r = runSim(assemble(src));
    // One add per cycle at best.
    EXPECT_GT(r.cycles, 400u);
    EXPECT_EQ(r.resultReg, 400);
}

/** Cycles per iteration of a loop whose branch alternates T/N/T/N...
 *  approximates (body + misprediction penalty) once the predictor
 *  settles into always-mispredicting or always-correct behavior. */
TEST(CoreTest, MispredictionPenaltyNearThirtyCycles)
{
    // A branch on the low bit of an LFSR-ish pseudo-random value is
    // effectively unpredictable: roughly half the iterations flush.
    Program p = assemble(R"(
        li r5, 0
        li r6, 12345
        li r4, 0
        loop:
        muli r6, r6, 1103515245
        addi r6, r6, 12345
        shri r7, r6, 16
        andi r7, r7, 1
        cmpi.eq p1, p2, r7, 1
        br p1, skip
        addi r4, r4, 1
        skip:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 2000
        br p1, loop
        halt
    )");
    StatSet stats;
    SimParams params;
    SimResult r = runSim(p, params, stats);
    ASSERT_TRUE(r.halted);

    std::uint64_t mispredicts = stats.get("core.branch_mispredicts");
    ASSERT_GT(mispredicts, 500u) << "branch should be hard to predict";

    // Cycles beyond the dataflow minimum divided by mispredictions
    // should be near the configured 30-cycle penalty.
    SimParams perfect;
    perfect.oracle.perfectCBP = true;
    StatSet pstats;
    SimResult pr = runSim(p, perfect, pstats);
    double penalty = static_cast<double>(r.cycles - pr.cycles) /
                     static_cast<double>(mispredicts);
    EXPECT_GT(penalty, 20.0);
    EXPECT_LT(penalty, 45.0);
}

TEST(CoreTest, PipelineDepthScalesPenalty)
{
    Program p = assemble(R"(
        li r5, 0
        li r6, 99991
        li r4, 0
        loop:
        muli r6, r6, 69069
        addi r6, r6, 1
        shri r7, r6, 13
        andi r7, r7, 1
        cmpi.eq p1, p2, r7, 1
        br p1, skip
        addi r4, r4, 1
        skip:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 1500
        br p1, loop
        halt
    )");
    SimParams shallow;
    shallow.pipelineStages = 10;
    SimParams deep;
    deep.pipelineStages = 30;
    SimResult rs = runSim(p, shallow);
    SimResult rd = runSim(p, deep);
    EXPECT_LT(rs.cycles, rd.cycles);
}

TEST(CoreTest, CacheMissesCostCycles)
{
    // Walk far more memory than L1+L2 to force misses.
    Program miss = assemble(R"(
        li r5, 0
        li r6, 0x100000
        li r4, 0
        loop:
        ld r7, r6, 0
        add r4, r4, r7
        addi r6, r6, 4096
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 400
        br p1, loop
        halt
    )");
    Program hit = assemble(R"(
        li r5, 0
        li r6, 0x100000
        li r4, 0
        loop:
        ld r7, r6, 0
        add r4, r4, r7
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 400
        br p1, loop
        halt
    )");
    SimResult rm = runSim(miss);
    SimResult rh = runSim(hit);
    // 400 independent cold misses through 16 MSHRs at ~300 cycles each.
    EXPECT_GT(rm.cycles, rh.cycles + 400 / 16 * 300 / 2)
        << "misses should be bounded by MSHR-limited memory parallelism";
}

TEST(CoreTest, StoreToLoadForwarding)
{
    Program p = assemble(R"(
        li r6, 0x40000
        li r5, 0
        li r4, 0
        loop:
        st r5, r6, 0
        ld r7, r6, 0
        add r4, r4, r7
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 100
        br p1, loop
        halt
    )");
    SimResult r = runSim(p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 99 * 100 / 2);
}

/**
 * Build the mcf pathology: a linked-list chase where the *next pointer*
 * is selected by a data-dependent (but heavily biased, hence highly
 * predictable) condition. Branch prediction starts the next chase load
 * speculatively; predication serializes it behind the value load and
 * compare — the §5.1 "serialization of critical load instructions".
 *
 * Node layout at base + i*stride: [next_a@0, next_b@8, ... val@128] —
 * the value lives on a different cache line than the pointers, as in a
 * real mcf node where the orientation field and the arc pointers sit in
 * different structures.
 */
Program
buildChase(bool predicated, int nodes, int biasMod)
{
    const char *pred = R"(
        li r6, 0x200000
        li r4, 0
        loop:
        ld r7, r6, 128
        cmpi.gt p1, p2, r7, 0
        (p1) ld r6, r6, 0
        (p2) ld r6, r6, 8
        addi r4, r4, 1
        cmpi.ne p3, p0, r6, 0
        br p3, loop
        halt
    )";
    const char *branchy = R"(
        li r6, 0x200000
        li r4, 0
        loop:
        ld r7, r6, 128
        cmpi.gt p1, p2, r7, 0
        br p2, other
        ld r6, r6, 0
        jmp merge
        other:
        ld r6, r6, 8
        merge:
        addi r4, r4, 1
        cmpi.ne p3, p0, r6, 0
        br p3, loop
        halt
    )";
    Program p = assemble(predicated ? pred : branchy);

    // Linked list with large stride so every access misses.
    const Addr base = 0x200000;
    const Word stride = 4160;
    for (int i = 0; i < nodes; ++i) {
        Addr a = base + static_cast<Addr>(i) * stride;
        Word next = (i + 1 < nodes) ? static_cast<Word>(a + stride) : 0;
        // val > 0 except every biasMod-th node: branch ~always taken.
        Word val = (biasMod > 0 && i % biasMod == 0) ? -1 : 1;
        p.addData(a, {next, next});
        p.addData(a + 128, {val});
    }
    return p;
}

TEST(CoreTest, PredicationSerializesCriticalLoads)
{
    // The mcf effect (§5.1): with a predictable selection condition,
    // predicating the pointer selection roughly doubles the per-node
    // latency (value-load + compare + chase-load, serialized).
    Program pred = buildChase(true, 400, 16);
    Program br = buildChase(false, 400, 16);
    SimResult rp = runSim(pred);
    SimResult rb = runSim(br);
    EXPECT_GT(rp.cycles, rb.cycles * 3 / 2)
        << "predicated chase must be much slower than the branchy one";
}

TEST(CoreTest, NoDependOracleRemovesPredicationDelay)
{
    Program pred = buildChase(true, 400, 16);
    SimParams base;
    SimParams nodep;
    nodep.oracle.noDepend = true;
    SimResult rb = runSim(pred, base);
    SimResult rn = runSim(pred, nodep);
    EXPECT_LT(rn.cycles, rb.cycles * 3 / 4);
}

TEST(CoreTest, NoFetchOracleSavesBandwidth)
{
    // Lots of predicated-off instructions.
    Program p = assemble(R"(
        pset p1, 0
        li r5, 0
        li r4, 0
        loop:
        (p1) addi r4, r4, 1
        (p1) addi r4, r4, 1
        (p1) addi r4, r4, 1
        (p1) addi r4, r4, 1
        (p1) addi r4, r4, 1
        (p1) addi r4, r4, 1
        addi r5, r5, 1
        cmpi.lt p2, p0, r5, 500
        br p2, loop
        halt
    )");
    SimParams base;
    SimParams nofetch;
    nofetch.oracle.noFetch = true;
    StatSet s1, s2;
    SimResult rb = runSim(p, base, s1);
    SimResult rn = runSim(p, nofetch, s2);
    EXPECT_LT(rn.cycles, rb.cycles);
    EXPECT_LT(rn.retiredUops, rb.retiredUops);
    EXPECT_EQ(rn.resultReg, rb.resultReg);
}

TEST(CoreTest, PerfectCbpEliminatesFlushes)
{
    Program p = assemble(R"(
        li r5, 0
        li r6, 777
        li r4, 0
        loop:
        muli r6, r6, 69069
        addi r6, r6, 7
        shri r7, r6, 11
        andi r7, r7, 1
        cmpi.eq p1, p2, r7, 1
        br p1, skip
        addi r4, r4, 1
        skip:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 500
        br p1, loop
        halt
    )");
    SimParams perfect;
    perfect.oracle.perfectCBP = true;
    StatSet stats;
    SimResult r = runSim(p, perfect, stats);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(stats.get("core.flushes"), 0u);
}

TEST(CoreTest, CallRetUseRas)
{
    Program p = assemble(R"(
        li r4, 0
        li r5, 0
        loop:
        call r2, func
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 50
        br p1, loop
        halt
        func:
        addi r4, r4, 1
        ret r2
    )");
    StatSet stats;
    SimResult r = runSim(p, SimParams{}, stats);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 50);
}

TEST(CoreTest, IndirectJumpResolvesCorrectly)
{
    // A two-target indirect jump; target addresses live in a table.
    Program p = assemble(R"(
        li r4, 0
        li r5, 0
        li r9, 0x30000
        loop:
        andi r7, r5, 1
        shli r8, r7, 3
        add r8, r9, r8
        ld r10, r8, 0
        jmpr r10
        halt
        t1:
        addi r4, r4, 1
        jmp merge
        t2:
        addi r4, r4, 2
        merge:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 40
        br p1, loop
        halt
    )");
    Word t1 = static_cast<Word>(instAddr(p.label("t1")));
    Word t2 = static_cast<Word>(instAddr(p.label("t2")));
    p.addData(0x30000, {t1, t2});

    SimResult r = runSim(p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 20 * 1 + 20 * 2);
}

// ---- Wish-branch behaviors -------------------------------------------

/** Kernel with one hammock on pseudo-random data plus enough arm size to
 *  wish-convert; returns the five Table-3 binaries. */
std::map<BinaryVariant, CompiledBinary>
wishKernelVariants(int trip, int mask)
{
    KernelBuilder b;
    b.li(10, 0);
    b.li(4, 0);
    b.li(6, 12345);
    b.li(11, trip);
    b.doWhileLoop(5, [&] {
        b.muli(6, 6, 1103515245);
        b.addi(6, 6, 12345);
        b.shri(12, 6, 16);
        b.andi(12, 12, mask);
        b.cmpi(Opcode::CmpEqI, 1, 2, 12, 0);
        b.ifThenElse(
            1, 2,
            [&] {
                b.addi(4, 4, 7);
                b.muli(20, 4, 3);
                b.add(4, 4, 20);
                b.addi(4, 4, -1);
                b.addi(4, 4, 2);
                b.addi(4, 4, 5);
            },
            [&] {
                b.addi(4, 4, 9);
                b.muli(21, 4, 2);
                b.add(4, 4, 21);
                b.addi(4, 4, 4);
                b.addi(4, 4, 3);
                b.addi(4, 4, 1);
            });
        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 5, 0, 10, 11);
    });
    IrFunction fn = b.finish();
    return compileAllVariants(fn);
}

TEST(WishCoreTest, AllVariantsProduceSameResultOnCore)
{
    auto variants = wishKernelVariants(300, 1);
    Word ref = 0;
    bool first = true;
    for (const auto &kv : variants) {
        SimResult r = runSim(kv.second.program);
        ASSERT_TRUE(r.halted) << variantName(kv.first);
        if (first) {
            ref = r.resultReg;
            first = false;
        }
        EXPECT_EQ(r.resultReg, ref) << variantName(kv.first);
    }
}

TEST(WishCoreTest, LowConfWishJumpAvoidsFlushes)
{
    // Hard-to-predict hammock: wish binary should flush far less than
    // the normal binary.
    auto variants = wishKernelVariants(2000, 1);
    StatSet sn, sw;
    SimParams params;
    runSim(variants.at(BinaryVariant::Normal).program, params, sn);
    runSim(variants.at(BinaryVariant::WishJumpJoin).program, params, sw);
    EXPECT_LT(sw.get("core.flushes"), sn.get("core.flushes") / 2)
        << "low-confidence wish jumps must not flush";
}

TEST(WishCoreTest, WishStatsCounted)
{
    auto variants = wishKernelVariants(2000, 1);
    StatSet stats;
    SimParams params;
    runSim(variants.at(BinaryVariant::WishJumpJoin).program, params,
           stats);
    std::uint64_t total =
        stats.get("wish.jump.low.correct") +
        stats.get("wish.jump.low.mispred") +
        stats.get("wish.jump.high.correct") +
        stats.get("wish.jump.high.mispred");
    EXPECT_GT(total, 1500u);
}

TEST(WishCoreTest, PredictableWishBranchGoesHighConf)
{
    // mask=0 makes the condition always true: trivially predictable.
    auto variants = wishKernelVariants(2000, 0);
    StatSet stats;
    SimParams params;
    runSim(variants.at(BinaryVariant::WishJumpJoin).program, params,
           stats);
    std::uint64_t high = stats.get("wish.jump.high.correct");
    std::uint64_t low = stats.get("wish.jump.low.correct") +
                        stats.get("wish.jump.low.mispred");
    EXPECT_GT(high, low * 3)
        << "a predictable wish jump should run in high-confidence mode";
}

TEST(WishCoreTest, PerfectConfidenceNotWorse)
{
    auto variants = wishKernelVariants(2000, 1);
    SimParams real;
    SimParams perf;
    perf.oracle.perfectConfidence = true;
    SimResult rr = runSim(variants.at(BinaryVariant::WishJumpJoin).program,
                          real);
    SimResult rp = runSim(variants.at(BinaryVariant::WishJumpJoin).program,
                          perf);
    EXPECT_LE(rp.cycles, rr.cycles * 21 / 20);
}

/** A loop with data-dependent trip counts: wish loops should observe
 *  late exits without flushing. */
std::map<BinaryVariant, CompiledBinary>
wishLoopKernelVariants(int outer)
{
    KernelBuilder b;
    b.li(10, 0);  // outer i
    b.li(4, 0);   // checksum
    b.li(6, 999); // rng state
    b.li(11, outer);
    b.doWhileLoop(5, [&] {
        // inner trip = 1 + (rand & 7): short, variable.
        b.muli(6, 6, 69069);
        b.addi(6, 6, 12345);
        b.shri(12, 6, 16);
        b.andi(12, 12, 7);
        b.addi(12, 12, 1);
        b.li(13, 0);
        b.doWhileLoop(1, [&] {
            b.add(4, 4, 13);
            b.addi(13, 13, 1);
            b.cmp(Opcode::CmpLt, 1, 0, 13, 12);
        });
        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 5, 0, 10, 11);
    });
    IrFunction fn = b.finish();
    return compileAllVariants(fn);
}

TEST(WishCoreTest, WishLoopLateExitObserved)
{
    auto variants = wishLoopKernelVariants(1500);
    const auto &wjjl = variants.at(BinaryVariant::WishJumpJoinLoop);
    ASSERT_GT(wjjl.staticWishLoops, 0u);

    StatSet stats;
    SimParams params;
    SimResult r = runSim(wjjl.program, params, stats);
    ASSERT_TRUE(r.halted);

    std::uint64_t late = stats.get("wish.loop.low.late_exit");
    std::uint64_t early = stats.get("wish.loop.low.early_exit");
    std::uint64_t noexit = stats.get("wish.loop.low.no_exit");
    EXPECT_GT(late + early + noexit, 0u)
        << "the variable-trip loop must mispredict in low-conf mode";
    EXPECT_GT(late, 0u) << "late exits should occur with a 512-entry "
                           "window and short loops";
}

TEST(WishCoreTest, WishLoopBinaryNotSlowerThanNormal)
{
    auto variants = wishLoopKernelVariants(1500);
    SimResult rn = runSim(variants.at(BinaryVariant::Normal).program);
    SimResult rw =
        runSim(variants.at(BinaryVariant::WishJumpJoinLoop).program);
    // Hard-to-predict short loops: wish loops should help (or at least
    // not hurt by much).
    EXPECT_LT(rw.cycles, rn.cycles * 11 / 10);
}

TEST(WishCoreTest, SelectUopMechanismRuns)
{
    auto variants = wishKernelVariants(500, 1);
    SimParams sel;
    sel.predMech = PredMechanism::SelectUop;
    for (const auto &kv : variants) {
        SimResult r = runSim(kv.second.program, sel);
        EXPECT_TRUE(r.halted) << variantName(kv.first);
    }
    // Select-µop adds µop overhead on predicated code.
    StatSet s1, s2;
    SimParams cstyle;
    runSim(variants.at(BinaryVariant::BaseMax).program, cstyle, s1);
    runSim(variants.at(BinaryVariant::BaseMax).program, sel, s2);
    EXPECT_GT(s2.get("core.retired_uops"), s1.get("core.retired_uops"));
}

TEST(WishCoreTest, WishDisabledTreatsHintsAsNormalBranches)
{
    auto variants = wishKernelVariants(800, 1);
    SimParams off;
    off.wishEnabled = false;
    StatSet stats;
    SimResult r = runSim(variants.at(BinaryVariant::WishJumpJoin).program,
                         off, stats);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(stats.get("wish.jump.low.correct") +
                  stats.get("wish.jump.low.mispred") +
                  stats.get("wish.jump.high.correct") +
                  stats.get("wish.jump.high.mispred"),
              0u);
}

} // namespace
} // namespace wisc
