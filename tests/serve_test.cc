/**
 * @file
 * wisc-serve test suite (ctest label: serve-tsan — matched by both
 * `ctest -L serve` and the sanitizer jobs' `-L tsan`; configure with
 * -DWISC_SANITIZE=thread / address,undefined to run it instrumented).
 *
 * Covers, against an in-process ServeServer:
 *  - wire-schema round trips: Program and SimParams survive JSON with
 *    their fingerprints intact, RunOutcome bit-identically;
 *  - the hello handshake: version skew, machine skew, and
 *    run-before-hello are clean error replies;
 *  - protocol robustness: truncated frames, oversized length prefixes,
 *    garbage JSON, unknown types, and a deterministic random-bytes fuzz
 *    loop — the daemon must answer with error frames or close the
 *    connection, never crash or wedge;
 *  - admission control: a full daemon answers `overloaded` with a
 *    retry-after hint;
 *  - the multi-process contention test: N forked client processes share
 *    one daemon and one cache directory, every client observes
 *    bit-identical outcomes (equal to a local cache-bypass simulation),
 *    and /stats proves cross-client coalescing happened.
 *
 * This binary has a custom main: re-exec'd with --serve-shard-client it
 * becomes a shard client (fork+exec, because fork alone is unsafe in a
 * threaded gtest process).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "common/log.hh"
#include "common/sockio.hh"
#include "harness/json_writer.hh"
#include "harness/run_cache.hh"
#include "harness/runner.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "uarch/params_json.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

namespace fs = std::filesystem;

/** Fresh temp directory per test, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        dir_ = fs::temp_directory_path() /
               ("wisc_serve_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path() const { return dir_.string(); }

  private:
    static inline int counter_ = 0;
    fs::path dir_;
};

std::string
freshSocketPath()
{
    static int counter = 0;
    return (fs::temp_directory_path() /
            ("wisc_serve_sock_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + ".sock"))
        .string();
}

/** Order-insensitive-free digest of everything a RunOutcome carries
 *  (maps are ordered, so iteration is deterministic). */
std::uint64_t
outcomeDigest(const RunOutcome &o)
{
    Hasher h;
    h.u64(o.result.cycles);
    h.u64(o.result.retiredUops);
    h.u64(static_cast<std::uint64_t>(o.result.resultReg));
    h.u64(o.result.memFingerprint);
    h.u32(o.result.halted ? 1 : 0);
    for (const auto &kv : o.stats) {
        h.str(kv.first);
        h.u64(kv.second);
    }
    for (const auto &kv : o.hists) {
        h.str(kv.first);
        h.u64(kv.second.count);
        for (std::uint64_t b : kv.second.buckets)
            h.u64(b);
    }
    for (const auto &kv : o.tables) {
        h.str(kv.first);
        for (const auto &c : kv.second.columns)
            h.str(c);
        for (const auto &row : kv.second.rows) {
            h.u64(row.first);
            for (std::uint64_t x : row.second)
                h.u64(x);
        }
    }
    return h.digest();
}

/** The request set every shard client runs: distinct real workload
 *  programs, identical across clients so their requests collide. */
std::vector<Program>
shardPrograms()
{
    CompiledWorkload w = compileWorkload("mcf");
    std::vector<Program> progs;
    progs.push_back(programFor(w, BinaryVariant::Normal, InputSet::A));
    progs.push_back(
        programFor(w, BinaryVariant::WishJumpJoin, InputSet::A));
    progs.push_back(programFor(w, BinaryVariant::Normal, InputSet::C));
    return progs;
}

/** One raw framed request/reply, below the ServeClient layer (so tests
 *  can speak malformed protocol on purpose). */
json::Value
rawRequest(const Socket &sock, const json::Value &msg)
{
    EXPECT_TRUE(sendFrame(sock, msg.dump(0)));
    std::string payload;
    EXPECT_EQ(recvFrame(sock, payload), FrameStatus::Ok);
    return json::Value::parse(payload);
}

Socket
rawConnect(const std::string &path)
{
    std::string error;
    Socket s = connectUnix(path, &error);
    EXPECT_TRUE(s.valid()) << error;
    return s;
}

/** Connect + valid hello on a raw socket. */
Socket
rawHandshake(const std::string &path)
{
    Socket s = rawConnect(path);
    json::Value hello = serve::makeMsg("hello", 1);
    hello["protocol"] = serve::kProtocolVersion;
    hello["machine"] = serve::machineFingerprint();
    const json::Value reply = rawRequest(s, hello);
    EXPECT_EQ(reply.at("type").asString(), "hello");
    return s;
}

// ---- wire-schema round trips ------------------------------------------

TEST(ServeWireTest, ProgramRoundTripPreservesFingerprint)
{
    for (const Program &p : shardPrograms()) {
        const json::Value doc = serve::programToJson(p);
        // Through text, like the real wire.
        const Program back =
            serve::programFromJson(json::Value::parse(doc.dump(0)));
        EXPECT_EQ(back.fingerprint(), p.fingerprint());
        EXPECT_EQ(back.size(), p.size());
        EXPECT_EQ(back.entry(), p.entry());
    }
}

TEST(ServeWireTest, ProgramDecodeRejectsGarbage)
{
    const Program p = shardPrograms().front();
    json::Value doc = serve::programToJson(p);
    doc["v"] = 99u;
    EXPECT_THROW(serve::programFromJson(doc), FatalError);

    doc = serve::programToJson(p);
    doc["entry"] = std::uint64_t{1u << 30}; // out of range
    EXPECT_THROW(serve::programFromJson(doc), FatalError);

    EXPECT_THROW(serve::programFromJson(json::Value(7u)), FatalError);
}

TEST(ServeWireTest, SimParamsRoundTripPreservesFingerprint)
{
    SimParams p;
    EXPECT_EQ(simParamsFromJson(simParamsToJson(p)).fingerprint(),
              p.fingerprint());

    // Perturb a scattering of fields of every flavor the codec handles:
    // plain unsigned, bool, enum, nested cache/oracle/sampling.
    p.robSize = 64;
    p.fetchWidth = 4;
    p.confThreshold = 15;
    p.predictor = PredictorKind::Tage;
    p.confKind = ConfKind::UpDown;
    p.predMech = PredMechanism::SelectUop;
    p.oracle.perfectCBP = true;
    p.il1.sizeBytes = 32 * 1024;
    p.sampling.enabled = true;
    p.sampling.measureUops = 12345;
    p.dynPred = DynPredMode::MergePoint;
    p.dynMergeMinConf = 5;
    p.dynFetchGateCycles = 11;
    const SimParams q =
        simParamsFromJson(json::Value::parse(simParamsToJson(p).dump(2)));
    EXPECT_EQ(q.fingerprint(), p.fingerprint());
    EXPECT_EQ(q.robSize, 64u);
    EXPECT_EQ(q.predictor, PredictorKind::Tage);
    EXPECT_TRUE(q.sampling.enabled);
    EXPECT_EQ(q.dynPred, DynPredMode::MergePoint);
    EXPECT_EQ(q.dynMergeMinConf, 5u);
    EXPECT_EQ(q.dynFetchGateCycles, 11u);
}

TEST(ServeWireTest, SimParamsDecodeIsStrictBothWays)
{
    json::Value doc = simParamsToJson(SimParams{});
    doc["not_a_knob"] = 1u; // unknown key: version-skewed document
    EXPECT_THROW(simParamsFromJson(doc), FatalError);

    // A document missing a field (here: a build that lost robSize)
    // must fail loudly, not default-fill a different machine.
    const json::Value full = simParamsToJson(SimParams{});
    json::Value partial = json::Value::object();
    for (const auto &kv : full.members())
        if (kv.first != "robSize")
            partial[kv.first] = kv.second;
    EXPECT_THROW(simParamsFromJson(partial), FatalError);
}

TEST(ServeWireTest, RunOutcomeRoundTripsBitIdentically)
{
    CompiledWorkload w = compileWorkload("mcf");
    SimParams params;
    params.collectBranchProfile = true; // exercise the tables section
    const RunOutcome out = captureRun(
        programFor(w, BinaryVariant::Normal, InputSet::A), params, {});
    const RunOutcome back =
        runOutcomeFromJson(json::Value::parse(toJson(out).dump(0)));
    EXPECT_EQ(outcomeDigest(back), outcomeDigest(out));
    EXPECT_FALSE(out.tables.empty());
}

// ---- handshake and protocol robustness --------------------------------

class ServeServerTest : public ::testing::Test
{
  protected:
    void
    startServer(unsigned maxPending = 256,
                const std::string &cacheDir = {})
    {
        serve::ServeOptions opts;
        opts.socketPath = freshSocketPath();
        opts.cacheDir = cacheDir;
        opts.maxPending = maxPending;
        opts.retryAfterMs = 1;
        server_ = std::make_unique<serve::ServeServer>(opts);
        server_->start();
    }
    void
    TearDown() override
    {
        if (server_)
            server_->stop();
    }
    const std::string &socket() const { return server_->options().socketPath; }

    std::unique_ptr<serve::ServeServer> server_;
};

TEST_F(ServeServerTest, HandshakeRejectsProtocolSkew)
{
    startServer();
    Socket s = rawConnect(socket());
    json::Value hello = serve::makeMsg("hello", 1);
    hello["protocol"] = serve::kProtocolVersion + 1;
    hello["machine"] = serve::machineFingerprint();
    const json::Value reply = rawRequest(s, hello);
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(), "protocol-version-mismatch");
    // The daemon hangs up on a failed handshake.
    std::string payload;
    EXPECT_NE(recvFrame(s, payload), FrameStatus::Ok);
    EXPECT_EQ(server_->statsJson().at("handshake_rejects").asUint(), 1u);
}

TEST_F(ServeServerTest, HandshakeRejectsMachineSkew)
{
    startServer();
    Socket s = rawConnect(socket());
    json::Value hello = serve::makeMsg("hello", 1);
    hello["protocol"] = serve::kProtocolVersion;
    hello["machine"] = serve::machineFingerprint() ^ 1;
    const json::Value reply = rawRequest(s, hello);
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(),
              "machine-fingerprint-mismatch");
}

TEST_F(ServeServerTest, RequestBeforeHelloIsRejected)
{
    startServer();
    Socket s = rawConnect(socket());
    const json::Value reply = rawRequest(s, serve::makeMsg("stats", 7));
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(), "handshake-required");
    EXPECT_EQ(reply.at("id").asUint(), 7u);
}

TEST_F(ServeServerTest, TruncatedFramesNeverWedgeTheDaemon)
{
    startServer();
    {
        // EOF mid-length-prefix.
        Socket s = rawConnect(socket());
        const char twoBytes[2] = {0x10, 0x00};
        ASSERT_EQ(::send(s.fd(), twoBytes, 2, 0), 2);
    }
    {
        // Length prefix promising more payload than ever arrives.
        Socket s = rawConnect(socket());
        const unsigned char frame[8] = {0x40, 0, 0, 0, 'a', 'b', 'c', 'd'};
        ASSERT_EQ(::send(s.fd(), frame, 8, 0), 8);
    }
    // Both connections dropped cleanly; a fresh one still works.
    Socket s = rawHandshake(socket());
    const json::Value stats = rawRequest(s, serve::makeMsg("stats", 1));
    EXPECT_EQ(stats.at("type").asString(), "stats");
    EXPECT_EQ(stats.at("connections").asUint(), 3u);
}

TEST_F(ServeServerTest, OversizedLengthPrefixGetsErrorReply)
{
    startServer();
    Socket s = rawConnect(socket());
    const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0x7f}; // ~2 GiB
    ASSERT_EQ(::send(s.fd(), prefix, 4, 0), 4);
    std::string payload;
    ASSERT_EQ(recvFrame(s, payload), FrameStatus::Ok);
    const json::Value reply = json::Value::parse(payload);
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(), "oversized-frame");
    EXPECT_NE(recvFrame(s, payload), FrameStatus::Ok); // then hangup
}

TEST_F(ServeServerTest, GarbageJsonAndUnknownTypesAreErrorReplies)
{
    startServer();
    Socket s = rawHandshake(socket());

    ASSERT_TRUE(sendFrame(s, "{this is not json"));
    std::string payload;
    ASSERT_EQ(recvFrame(s, payload), FrameStatus::Ok);
    EXPECT_EQ(json::Value::parse(payload).at("error").asString(),
              "bad-json");

    json::Value bogus = serve::makeMsg("frobnicate", 9);
    json::Value reply = rawRequest(s, bogus);
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(), "unknown-type");
    EXPECT_EQ(reply.at("id").asUint(), 9u);

    // Malformed run request: structured, but not a program.
    json::Value badRun = serve::makeMsg("run", 10);
    badRun["program"] = json::Value(1u);
    badRun["params"] = simParamsToJson(SimParams{});
    reply = rawRequest(s, badRun);
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(), "bad-request");

    // Version-skewed params document (unknown knob) is caught too.
    json::Value skewRun = serve::makeMsg("run", 11);
    skewRun["program"] =
        serve::programToJson(shardPrograms().front());
    skewRun["params"] = simParamsToJson(SimParams{});
    skewRun["params"]["knob_from_the_future"] = 1u;
    reply = rawRequest(s, skewRun);
    EXPECT_EQ(reply.at("type").asString(), "error");
    EXPECT_EQ(reply.at("error").asString(), "bad-request");

    // Connection is still healthy afterwards.
    reply = rawRequest(s, serve::makeMsg("stats", 12));
    EXPECT_EQ(reply.at("type").asString(), "stats");
}

TEST_F(ServeServerTest, RandomBytesFuzzNeverCrashes)
{
    startServer();
    std::uint64_t rng = 0x9e3779b97f4a7c15ull; // fixed seed: deterministic
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int iter = 0; iter < 64; ++iter) {
        Socket s = rawConnect(socket());
        ASSERT_TRUE(s.valid());
        // Some connections handshake first, some spray bytes raw.
        if (iter % 3 == 0) {
            json::Value hello = serve::makeMsg("hello", 1);
            hello["protocol"] = serve::kProtocolVersion;
            hello["machine"] = serve::machineFingerprint();
            (void)rawRequest(s, hello);
        }
        if (iter % 2 == 0) {
            // Well-framed garbage payload: the server must answer with
            // an error frame and keep going.
            std::string payload(next() % 128, '\0');
            for (char &c : payload)
                c = static_cast<char>(next());
            (void)sendFrame(s, payload);
            std::string reply;
            (void)recvFrame(s, reply);
        } else {
            // Raw byte spray, framing and all from the RNG. The server
            // may legitimately block for the rest of a partial frame,
            // so don't wait for a reply — just hang up (the server then
            // sees a truncated frame and drops the connection).
            unsigned char bytes[64];
            const std::size_t n = 1 + next() % sizeof(bytes);
            for (std::size_t i = 0; i < n; ++i)
                bytes[i] = static_cast<unsigned char>(next());
            (void)::send(s.fd(), bytes, n, 0);
        }
    }
    // The daemon survived and still serves real clients.
    serve::ServeClient client(socket());
    EXPECT_EQ(client.stats().at("type").asString(), "stats");
}

// ---- admission control ------------------------------------------------

TEST_F(ServeServerTest, FullDaemonAnswersOverloaded)
{
    startServer(/*maxPending=*/0);
    Socket s = rawHandshake(socket());
    json::Value run = serve::makeMsg("run", 21);
    run["program"] = serve::programToJson(shardPrograms().front());
    run["params"] = simParamsToJson(SimParams{});
    const json::Value reply = rawRequest(s, run);
    EXPECT_EQ(reply.at("type").asString(), "overloaded");
    EXPECT_EQ(reply.at("id").asUint(), 21u);
    EXPECT_GE(reply.at("retry_after_ms").asUint(), 1u);
    EXPECT_EQ(server_->statsJson().at("overloaded").asUint(), 1u);
}

// ---- end-to-end runs and the ServeClient layer ------------------------

TEST_F(ServeServerTest, ClientRunMatchesLocalSimulation)
{
    TempDir cache;
    startServer(256, cache.path());
    serve::ServeClient client(socket());

    const Program prog = shardPrograms().front();
    const SimParams params;
    const RunOutcome remote = client.run(prog, params);
    const RunOutcome local = captureRun(prog, params, {});
    EXPECT_EQ(outcomeDigest(remote), outcomeDigest(local));

    // The identical request again: served from the daemon's memo.
    const RunOutcome again = client.run(prog, params);
    EXPECT_EQ(outcomeDigest(again), outcomeDigest(local));
    const json::Value stats = client.stats();
    EXPECT_GE(stats.at("coalesced").asUint(), 1u);
    EXPECT_EQ(stats.at("completed").asUint(), 2u);
    EXPECT_GT(stats.at("served_uops").asUint(), 0u);

    // The run landed in the shared persistent cache.
    EXPECT_FALSE(fs::is_empty(cache.path()));
}

// ---- multi-process cache contention -----------------------------------

/** Forked shard clients write "<digest> <coalesced>" here. */
int
shardClientMain(const std::string &socketPath, const std::string &outFile)
{
    try {
        serve::ServeClient client(socketPath);
        Hasher h;
        for (const Program &prog : shardPrograms())
            h.u64(outcomeDigest(client.run(prog, SimParams{})));
        std::ofstream out(outFile);
        out << h.digest() << " "
            << client.stats().at("coalesced").asUint() << "\n";
        return out ? 0 : 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "shard client failed: %s\n", e.what());
        return 4;
    }
}

TEST_F(ServeServerTest, ForkedClientsShareOneCacheBitIdentically)
{
    TempDir cache;
    startServer(256, cache.path());

    constexpr int kClients = 4;
    TempDir outDir;
    std::vector<pid_t> pids;
    std::vector<std::string> outFiles;
    for (int i = 0; i < kClients; ++i) {
        outFiles.push_back(outDir.path() + "/client" +
                           std::to_string(i));
        // fork+exec: fork alone is unsafe in this threaded process.
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ::execl("/proc/self/exe", "wisc_serve_tests",
                    "--serve-shard-client", socket().c_str(),
                    outFiles.back().c_str(), (char *)nullptr);
            _exit(127);
        }
        pids.push_back(pid);
    }
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "client exited with status " << status;
    }

    // Every client saw bit-identical outcomes...
    std::vector<std::uint64_t> digests;
    for (const std::string &f : outFiles) {
        std::ifstream in(f);
        std::uint64_t digest = 0, coalesced = 0;
        ASSERT_TRUE(in >> digest >> coalesced) << f;
        digests.push_back(digest);
    }
    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(digests[i], digests[0]);

    // ...identical to a local cache-bypass simulation of the same set.
    Hasher h;
    for (const Program &prog : shardPrograms())
        h.u64(outcomeDigest(captureRun(prog, SimParams{}, {})));
    EXPECT_EQ(digests[0], h.digest());

    // Cross-client coalescing: 4 clients x 3 programs = 12 requests but
    // only 3 distinct simulations; /stats must show the joins.
    const json::Value stats = server_->statsJson();
    EXPECT_EQ(stats.at("completed").asUint(), 12u);
    EXPECT_GE(stats.at("coalesced").asUint(), 1u);
    EXPECT_EQ(stats.at("cache").at("misses").asUint(), 3u);
    EXPECT_EQ(stats.at("cache").at("corrupt").asUint(), 0u);
    EXPECT_EQ(stats.at("connections").asUint(),
              static_cast<std::uint64_t>(kClients));

    // And exactly the three distinct runs were persisted, shared by all.
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(cache.path())) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 3u);
}

} // namespace
} // namespace wisc

int
main(int argc, char **argv)
{
    if (argc == 4 &&
        std::string(argv[1]) == "--serve-shard-client")
        return wisc::shardClientMain(argv[2], argv[3]);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
