/**
 * @file
 * Unit tests for the wish-branch front-end hardware: the Figure-8 mode
 * state machine, the Table-1 multi-wish-join prediction rules, the
 * §3.5.3 predicate dependency elimination buffer (with complement
 * pairing), the wish-loop last-prediction buffer, loop instances, and
 * the overestimating loop predictor.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "uarch/wish.hh"

namespace wisc {
namespace {

class WishEngineTest : public ::testing::Test
{
  protected:
    WishEngineTest() : engine_(stats_, /*loopBias=*/false) {}

    StatSet stats_;
    WishEngine engine_;
};

TEST_F(WishEngineTest, StartsInNormalMode)
{
    EXPECT_EQ(engine_.mode(), FrontEndMode::Normal);
}

TEST_F(WishEngineTest, HighConfJumpEntersHighConfMode)
{
    engine_.setBranchPredicate(1);
    WishDecision d =
        engine_.onWishBranch(10, WishKind::Jump, true, true, 50);
    EXPECT_EQ(d.branchMode, FrontEndMode::HighConf);
    EXPECT_TRUE(d.effectiveTaken) << "predictor is followed";
    EXPECT_EQ(engine_.mode(), FrontEndMode::HighConf);
}

TEST_F(WishEngineTest, LowConfJumpForcesNotTaken)
{
    engine_.setBranchPredicate(1);
    WishDecision d =
        engine_.onWishBranch(10, WishKind::Jump, true, false, 50);
    EXPECT_EQ(d.branchMode, FrontEndMode::LowConf);
    EXPECT_FALSE(d.effectiveTaken) << "low confidence forces not-taken";
    EXPECT_EQ(engine_.mode(), FrontEndMode::LowConf);
}

TEST_F(WishEngineTest, Table1JoinsForcedNotTakenInLowConfMode)
{
    // Row 4 of Table 1: jump low -> everything not-taken.
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, false, 50);
    engine_.setBranchPredicate(2);
    WishDecision join1 =
        engine_.onWishBranch(20, WishKind::Join, true, true, 50);
    EXPECT_FALSE(join1.effectiveTaken)
        << "a join after a low-confidence jump is not-taken even if its "
           "own confidence is high";
    EXPECT_EQ(join1.branchMode, FrontEndMode::LowConf);
}

TEST_F(WishEngineTest, Table1JoinUsesPredictorWhenAllHigh)
{
    // Row 1 of Table 1: all high -> all use the predictor.
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, false, true, 50);
    engine_.setBranchPredicate(2);
    WishDecision join =
        engine_.onWishBranch(20, WishKind::Join, true, true, 60);
    EXPECT_TRUE(join.effectiveTaken);
    EXPECT_EQ(join.branchMode, FrontEndMode::HighConf);
}

TEST_F(WishEngineTest, Table1LowConfJoinEntersLowMode)
{
    // Row 2/3 of Table 1: the first low-confidence join flips the mode;
    // later joins are forced not-taken.
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, false, true, 50);
    engine_.setBranchPredicate(2);
    WishDecision j1 =
        engine_.onWishBranch(20, WishKind::Join, true, false, 60);
    EXPECT_FALSE(j1.effectiveTaken);
    EXPECT_EQ(engine_.mode(), FrontEndMode::LowConf);
    engine_.setBranchPredicate(3);
    WishDecision j2 =
        engine_.onWishBranch(30, WishKind::Join, true, true, 70);
    EXPECT_FALSE(j2.effectiveTaken);
}

TEST_F(WishEngineTest, TargetFetchedExitsLowConfMode)
{
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, false, 50);
    EXPECT_EQ(engine_.mode(), FrontEndMode::LowConf);
    engine_.onInstructionFetched(11);
    engine_.onInstructionFetched(49);
    EXPECT_EQ(engine_.mode(), FrontEndMode::LowConf);
    engine_.onInstructionFetched(50); // the jump's target
    EXPECT_EQ(engine_.mode(), FrontEndMode::Normal);
}

TEST_F(WishEngineTest, FlushReturnsToNormal)
{
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, false, 50);
    engine_.onFlush();
    EXPECT_EQ(engine_.mode(), FrontEndMode::Normal);
}

TEST_F(WishEngineTest, PredicateBufferArmsOnHighConf)
{
    engine_.noteCompare(1, 2); // cmp wrote (p1, p2 = !p1)
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, true, 50);

    auto p1 = engine_.predictedPredicate(1);
    auto p2 = engine_.predictedPredicate(2);
    ASSERT_TRUE(p1.has_value());
    ASSERT_TRUE(p2.has_value());
    EXPECT_TRUE(*p1) << "taken wish jump implies TRUE predicate";
    EXPECT_FALSE(*p2) << "the complement is predicted FALSE";
}

TEST_F(WishEngineTest, PredicateBufferPredictsFalseWhenNotTaken)
{
    engine_.noteCompare(1, 2);
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, false, true, 50);
    EXPECT_FALSE(*engine_.predictedPredicate(1));
    EXPECT_TRUE(*engine_.predictedPredicate(2));
}

TEST_F(WishEngineTest, PredicateBufferNotArmedOnLowConf)
{
    engine_.noteCompare(1, 2);
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, false, 50);
    EXPECT_FALSE(engine_.predictedPredicate(1).has_value())
        << "low-confidence mode does not predict the predicate";
}

TEST_F(WishEngineTest, PredicateBufferInvalidatedByWriter)
{
    engine_.noteCompare(1, 2);
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, true, 50);
    ASSERT_TRUE(engine_.predictedPredicate(1).has_value());
    engine_.notePredWrite(1); // decode sees an instruction writing p1
    EXPECT_FALSE(engine_.predictedPredicate(1).has_value());
    EXPECT_TRUE(engine_.predictedPredicate(2).has_value())
        << "only the written predicate is invalidated";
}

TEST_F(WishEngineTest, PredicateBufferClearedByFlush)
{
    engine_.noteCompare(1, 2);
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Jump, true, true, 50);
    engine_.onFlush();
    EXPECT_FALSE(engine_.predictedPredicate(1).has_value());
    EXPECT_FALSE(engine_.predictedPredicate(2).has_value());
}

TEST_F(WishEngineTest, LoopRecordsLastPrediction)
{
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Loop, true, false, 10);
    EXPECT_TRUE(engine_.lastLoopPrediction(10));
    engine_.onWishBranch(10, WishKind::Loop, false, false, 10);
    EXPECT_FALSE(engine_.lastLoopPrediction(10));
}

TEST_F(WishEngineTest, LoopInstanceBumpsOnPredictedExit)
{
    engine_.setBranchPredicate(1);
    std::uint32_t i0 = engine_.loopInstance(10);
    engine_.onWishBranch(10, WishKind::Loop, true, false, 10);
    EXPECT_EQ(engine_.loopInstance(10), i0) << "taken: same instance";
    engine_.onWishBranch(10, WishKind::Loop, false, false, 10);
    EXPECT_EQ(engine_.loopInstance(10), i0 + 1) << "exit: new instance";
}

TEST_F(WishEngineTest, LowConfLoopStaysLowUntilExit)
{
    engine_.setBranchPredicate(1);
    engine_.onWishBranch(10, WishKind::Loop, true, false, 10);
    EXPECT_EQ(engine_.mode(), FrontEndMode::LowConf);
    engine_.onWishBranch(10, WishKind::Loop, true, false, 10);
    EXPECT_EQ(engine_.mode(), FrontEndMode::LowConf);
    engine_.onWishBranch(10, WishKind::Loop, false, false, 10);
    EXPECT_EQ(engine_.mode(), FrontEndMode::Normal)
        << "front-end exit leaves low-confidence mode (Figure 8)";
}

TEST_F(WishEngineTest, HighConfLoopArmsPredicate)
{
    engine_.setBranchPredicate(3);
    engine_.onWishBranch(10, WishKind::Loop, true, true, 10);
    ASSERT_TRUE(engine_.predictedPredicate(3).has_value());
    EXPECT_TRUE(*engine_.predictedPredicate(3));
}

TEST(WishLoopBiasTest, OverestimatesAfterLearningTrips)
{
    StatSet stats;
    WishEngine e(stats, /*loopBias=*/true);
    e.setBranchPredicate(1);

    // Teach the engine a trip count of ~6 (predictor exits at 6), then
    // drain any suppressed instance so the next entry starts fresh.
    for (int rep = 0; rep < 8; ++rep) {
        for (int i = 0; i < 5; ++i)
            e.onWishBranch(10, WishKind::Loop, true, false, 10);
        for (int guard = 0; guard < 32; ++guard) {
            WishDecision d =
                e.onWishBranch(10, WishKind::Loop, false, false, 10);
            if (!d.effectiveTaken)
                break;
        }
    }

    // Now the hybrid wants to exit after 2 iterations; the bias should
    // keep predicting taken (low confidence).
    e.onWishBranch(10, WishKind::Loop, true, false, 10);
    e.onWishBranch(10, WishKind::Loop, true, false, 10);
    WishDecision d = e.onWishBranch(10, WishKind::Loop, false, false, 10);
    EXPECT_TRUE(d.effectiveTaken)
        << "the overestimating predictor overrides an early exit";
    EXPECT_GT(stats.get("wish.loop_bias_overrides"), 0u);
}

TEST(WishLoopBiasTest, NoOverrideWhenDisabled)
{
    StatSet stats;
    WishEngine e(stats, /*loopBias=*/false);
    e.setBranchPredicate(1);
    for (int rep = 0; rep < 8; ++rep) {
        for (int i = 0; i < 5; ++i)
            e.onWishBranch(10, WishKind::Loop, true, false, 10);
        e.onWishBranch(10, WishKind::Loop, false, false, 10);
    }
    e.onWishBranch(10, WishKind::Loop, true, false, 10);
    WishDecision d = e.onWishBranch(10, WishKind::Loop, false, false, 10);
    EXPECT_FALSE(d.effectiveTaken);
    EXPECT_EQ(stats.get("wish.loop_bias_overrides"), 0u);
}

} // namespace
} // namespace wisc
