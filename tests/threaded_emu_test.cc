/**
 * @file
 * Step-budget and dispatch-engine regression tests for the functional
 * execution layer: threadedRun() budget semantics (zero budget, exact
 * stop at the budget, resumable legs via nextPc), switch-vs-threaded
 * architectural equality, and the fast-forward engine's monotone
 * advanceTo() contract. The sampled runner's window arithmetic caps
 * every position at Emulator::kDefaultMaxSteps and assumes a leg never
 * overshoots its target by even one instruction — these tests pin that
 * contract down.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "arch/state_diff.hh"
#include "arch/threaded.hh"
#include "isa/assembler.hh"
#include "uarch/fastfwd.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

/** Sum 1..10 with a predicated tail: 16 dynamic instructions of
 *  arithmetic, compares, branches, and a FALSE-qp retire. */
Program
loopProgram()
{
    return assemble(R"(
        li r4, 0
        li r5, 1
        loop:
        add r4, r4, r5
        addi r5, r5, 1
        cmpi.le p1, p0, r5, 10
        br p1, loop
        pset p2, 0
        (p2) addi r4, r4, 99
        halt
    )");
}

/** Dynamic instructions to Halt, measured once with the reference
 *  switch interpreter. */
std::uint64_t
haltSteps(const Program &p)
{
    Emulator emu;
    EmuResult r =
        emu.run(p, nullptr, Emulator::kDefaultMaxSteps, EmuDispatch::Switch);
    EXPECT_TRUE(r.halted);
    return r.dynInsts;
}

// ------------------------------------------------------------ step budgets

TEST(ThreadedBudget, ZeroBudgetExecutesNothing)
{
    Program p = loopProgram();
    ArchState s;
    s.reset();
    s.loadData(p);
    ThreadedResult r = threadedRun(p, s, p.entry(), 0, NullExecHooks{});
    EXPECT_EQ(r.steps, 0u);
    EXPECT_EQ(r.predFalse, 0u);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.nextPc, p.entry());
    EXPECT_EQ(s.readReg(4), 0);
}

TEST(ThreadedBudget, StopsExactlyAtBudgetNeverOvershoots)
{
    Program p = loopProgram();
    const std::uint64_t h = haltSteps(p);
    ASSERT_GT(h, 2u);

    // Every budget short of Halt stops at *exactly* the budget — the
    // engine checks before each dispatch, so a fetch-ahead overshoot
    // would break the sampled runner's whole-run coordinate.
    for (std::uint64_t budget : {std::uint64_t{1}, h / 2, h - 1}) {
        ArchState s;
        s.reset();
        s.loadData(p);
        ThreadedResult r =
            threadedRun(p, s, p.entry(), budget, NullExecHooks{});
        EXPECT_EQ(r.steps, budget) << "budget " << budget;
        EXPECT_FALSE(r.halted) << "budget " << budget;
    }

    // A budget of exactly the halt distance retires the Halt; any
    // surplus budget is not consumed past it.
    for (std::uint64_t budget : {h, h + 1, h + 1000}) {
        ArchState s;
        s.reset();
        s.loadData(p);
        ThreadedResult r =
            threadedRun(p, s, p.entry(), budget, NullExecHooks{});
        EXPECT_EQ(r.steps, h) << "budget " << budget;
        EXPECT_TRUE(r.halted) << "budget " << budget;
    }
}

TEST(ThreadedBudget, ResumedLegsMatchUninterruptedRun)
{
    Program p = loopProgram();

    ArchState whole;
    whole.reset();
    whole.loadData(p);
    ThreadedResult w = threadedRun(p, whole, p.entry(),
                                   Emulator::kDefaultMaxSteps,
                                   NullExecHooks{});
    ASSERT_TRUE(w.halted);

    // Re-run in 3-instruction legs, feeding nextPc back in. Totals and
    // every architectural state word must match the one-shot run.
    ArchState legs;
    legs.reset();
    legs.loadData(p);
    std::uint64_t steps = 0, predFalse = 0;
    std::uint32_t pc = p.entry();
    bool halted = false;
    unsigned guard = 0;
    while (!halted) {
        ASSERT_LT(++guard, 100u) << "legged run failed to halt";
        ThreadedResult leg = threadedRun(p, legs, pc, 3, NullExecHooks{});
        steps += leg.steps;
        predFalse += leg.predFalse;
        pc = leg.nextPc;
        halted = leg.halted;
    }
    EXPECT_EQ(steps, w.steps);
    EXPECT_EQ(predFalse, w.predFalse);
    EXPECT_FALSE(firstStateDiff(whole, legs));
}

// ------------------------------------------------------ dispatch equality

TEST(DispatchEquality, SwitchAndThreadedBitIdenticalOnLoop)
{
    Program p = loopProgram();
    Emulator sw, th;
    EmuResult a =
        sw.run(p, nullptr, Emulator::kDefaultMaxSteps, EmuDispatch::Switch);
    EmuResult b = th.run(p, nullptr, Emulator::kDefaultMaxSteps,
                         EmuDispatch::Threaded);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.predFalse, b.predFalse);
    EXPECT_EQ(a.resultReg, b.resultReg);
    EXPECT_EQ(a.memFingerprint, b.memFingerprint);
    EXPECT_FALSE(firstStateDiff(sw.state(), th.state()));
}

TEST(DispatchEquality, BudgetLimitedLegsAgreeAcrossEngines)
{
    // Under a budget that lands mid-loop, both engines must stop at
    // the same instruction with the same partial state.
    Program p = loopProgram();
    const std::uint64_t h = haltSteps(p);
    for (std::uint64_t budget : {h / 3, h - 1}) {
        Emulator sw, th;
        EmuResult a = sw.run(p, nullptr, budget, EmuDispatch::Switch);
        EmuResult b = th.run(p, nullptr, budget, EmuDispatch::Threaded);
        EXPECT_FALSE(a.halted);
        EXPECT_FALSE(b.halted);
        EXPECT_EQ(a.dynInsts, b.dynInsts) << "budget " << budget;
        EXPECT_EQ(a.predFalse, b.predFalse) << "budget " << budget;
        EXPECT_FALSE(firstStateDiff(sw.state(), th.state()))
            << "budget " << budget;
    }
}

TEST(DispatchEquality, WorkloadVariantsMatchAcrossEngines)
{
    // A real kernel in its branchy and fully wish-converted forms:
    // every opcode class the compiler emits flows through both
    // engines, and the final state must agree word for word.
    CompiledWorkload w = compileWorkload("gzip");
    for (BinaryVariant v :
         {BinaryVariant::Normal, BinaryVariant::WishJumpJoinLoop}) {
        Program p = programFor(w, v, InputSet::A);
        Emulator sw, th;
        EmuResult a = sw.run(p, nullptr, Emulator::kDefaultMaxSteps,
                             EmuDispatch::Switch);
        EmuResult b = th.run(p, nullptr, Emulator::kDefaultMaxSteps,
                             EmuDispatch::Threaded);
        ASSERT_TRUE(a.halted);
        EXPECT_EQ(a.dynInsts, b.dynInsts);
        EXPECT_EQ(a.predFalse, b.predFalse);
        EXPECT_EQ(a.resultReg, b.resultReg);
        EXPECT_EQ(a.memFingerprint, b.memFingerprint);
        EXPECT_FALSE(firstStateDiff(sw.state(), th.state()));
    }
}

// -------------------------------------------------- fast-forward contract

TEST(FastForward, AdvanceToIsMonotoneAndExact)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program p = programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);

    Emulator ref;
    EmuResult r = ref.run(p);
    ASSERT_TRUE(r.halted);

    SimParams sp;
    FastForward ff(p, sp);
    ff.advanceTo(100);
    EXPECT_EQ(ff.uops(), 100u); // never overshoots
    ff.advanceTo(50); // a target at or below the position is a no-op
    EXPECT_EQ(ff.uops(), 100u);
    ff.advanceTo(100);
    EXPECT_EQ(ff.uops(), 100u);

    ff.advanceTo(Emulator::kDefaultMaxSteps);
    EXPECT_TRUE(ff.halted());
    EXPECT_EQ(ff.uops(), r.dynInsts);
    EXPECT_EQ(ff.predFalse(), r.predFalse);
    EXPECT_EQ(ff.archState().readReg(4), r.resultReg);
    EXPECT_EQ(ff.archState().mem().fingerprint(), r.memFingerprint);

    // Advancing a halted engine is also a no-op.
    ff.advanceTo(Emulator::kDefaultMaxSteps);
    EXPECT_EQ(ff.uops(), r.dynInsts);
}

} // namespace
} // namespace wisc
