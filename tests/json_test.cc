/**
 * @file
 * Tests for the JSON document model and the harness result emitter:
 * value semantics, writer/parser round-trips, and the BENCH_*.json
 * schema (counters, histograms, and the normalized matrix survive a
 * round-trip exactly).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "harness/json_writer.hh"

namespace wisc {
namespace {

TEST(JsonValueTest, ScalarKindsAndAccessors)
{
    EXPECT_TRUE(json::Value().isNull());
    EXPECT_TRUE(json::Value(true).asBool());
    EXPECT_EQ(json::Value(std::uint64_t(42)).asUint(), 42u);
    EXPECT_EQ(json::Value(-7).asInt(), -7);
    EXPECT_DOUBLE_EQ(json::Value(1.5).asDouble(), 1.5);
    EXPECT_EQ(json::Value("hi").asString(), "hi");
    // Cross-kind numeric access works where lossless...
    EXPECT_EQ(json::Value(7).asUint(), 7u);
    EXPECT_DOUBLE_EQ(json::Value(std::uint64_t(3)).asDouble(), 3.0);
    // ...and is a hard error otherwise.
    EXPECT_THROW(json::Value("x").asUint(), FatalError);
    EXPECT_THROW(json::Value(-1).asUint(), FatalError);
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder)
{
    json::Value v = json::Value::object();
    v["zebra"] = 1;
    v["apple"] = 2;
    v["zebra"] = 3; // update in place, not reorder
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v.members()[0].first, "zebra");
    EXPECT_EQ(v.members()[1].first, "apple");
    EXPECT_EQ(v.at("zebra").asInt(), 3);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), FatalError);
}

TEST(JsonValueTest, Uint64RoundTripsExactly)
{
    // Values a double cannot represent must survive dump+parse.
    const std::uint64_t big = 0xffffffffffffffffull;
    const std::uint64_t odd = (1ull << 53) + 1;
    json::Value v = json::Value::object();
    v["big"] = big;
    v["odd"] = odd;
    json::Value back = json::Value::parse(v.dump());
    EXPECT_EQ(back.at("big").asUint(), big);
    EXPECT_EQ(back.at("odd").asUint(), odd);
}

TEST(JsonValueTest, DoubleRoundTripsExactly)
{
    json::Value v = json::Value::array();
    v.push(0.1);
    v.push(1.0 / 3.0);
    v.push(-2.5e-300);
    json::Value back = json::Value::parse(v.dump());
    EXPECT_EQ(back.at(std::size_t(0)).asDouble(), 0.1);
    EXPECT_EQ(back.at(std::size_t(1)).asDouble(), 1.0 / 3.0);
    EXPECT_EQ(back.at(std::size_t(2)).asDouble(), -2.5e-300);
}

TEST(JsonValueTest, StringEscaping)
{
    json::Value v = json::Value::object();
    v["k"] = std::string("a\"b\\c\nd\te\x01f");
    json::Value back = json::Value::parse(v.dump());
    EXPECT_EQ(back.at("k").asString(), "a\"b\\c\nd\te\x01f");
}

TEST(JsonParseTest, AcceptsStandardDocument)
{
    json::Value v = json::Value::parse(
        "  { \"a\": [1, -2, 3.5, true, false, null],\n"
        "    \"b\": { \"nested\": \"\\u0041\\u00e9\" } } ");
    EXPECT_EQ(v.at("a").size(), 6u);
    EXPECT_EQ(v.at("a").at(std::size_t(0)).asUint(), 1u);
    EXPECT_EQ(v.at("a").at(std::size_t(1)).asInt(), -2);
    EXPECT_TRUE(v.at("a").at(std::size_t(4)).kind() ==
                json::Value::Kind::Bool);
    EXPECT_TRUE(v.at("a").at(std::size_t(5)).isNull());
    EXPECT_EQ(v.at("b").at("nested").asString(), "A\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput)
{
    EXPECT_THROW(json::Value::parse(""), FatalError);
    EXPECT_THROW(json::Value::parse("{"), FatalError);
    EXPECT_THROW(json::Value::parse("[1,]"), FatalError);
    EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), FatalError);
    EXPECT_THROW(json::Value::parse("tru"), FatalError);
    EXPECT_THROW(json::Value::parse("'single'"), FatalError);
}

RunOutcome
makeOutcome(std::uint64_t cycles)
{
    RunOutcome r;
    r.result.halted = true;
    r.result.cycles = cycles;
    r.result.retiredUops = 2 * cycles;
    r.result.resultReg = 99;
    r.stats["core.cycles"] = cycles;
    r.stats["core.branch_mispredicts"] = 17;
    r.hists["core.fetch_width"] = HistogramSnapshot{{5, 0, 3, 1}, 9};
    return r;
}

TEST(JsonWriterTest, RunOutcomeSchemaRoundTrips)
{
    RunOutcome r = makeOutcome(1000);
    json::Value back = json::Value::parse(toJson(r).dump());

    EXPECT_TRUE(back.at("halted").asBool());
    EXPECT_EQ(back.at("cycles").asUint(), 1000u);
    EXPECT_EQ(back.at("retired_uops").asUint(), 2000u);
    EXPECT_DOUBLE_EQ(back.at("ipc").asDouble(), 2.0);
    EXPECT_EQ(back.at("counters").at("core.cycles").asUint(), 1000u);
    EXPECT_EQ(back.at("counters").at("core.branch_mispredicts").asUint(),
              17u);

    const json::Value &h =
        back.at("histograms").at("core.fetch_width");
    EXPECT_EQ(h.at("count").asUint(), 9u);
    ASSERT_EQ(h.at("buckets").size(), 4u);
    EXPECT_EQ(h.at("buckets").at(std::size_t(0)).asUint(), 5u);
    EXPECT_EQ(h.at("buckets").at(std::size_t(2)).asUint(), 3u);

    // Table-free runs must not grow a "tables" key (document schema
    // stays byte-compatible with pre-attribution emitters).
    EXPECT_EQ(back.find("tables"), nullptr);
}

TEST(JsonWriterTest, RunOutcomeTablesSectionRoundTrips)
{
    RunOutcome r = makeOutcome(10);
    TableSnapshot t;
    t.columns = {"count", "mispred"};
    t.rows[0x40] = {7, 2};
    t.rows[0x80] = {3, 0};
    r.tables["core.branch_profile"] = t;

    json::Value back = json::Value::parse(toJson(r).dump());
    const json::Value &bp = back.at("tables").at("core.branch_profile");
    EXPECT_EQ(bp.at("columns").at(std::size_t(1)).asString(), "mispred");
    ASSERT_EQ(bp.at("rows").size(), 2u);
    const json::Value &row = bp.at("rows").at(std::size_t(0));
    EXPECT_EQ(row.at("key").asUint(), 0x40u);
    EXPECT_EQ(row.at("values").at(std::size_t(0)).asUint(), 7u);
    EXPECT_EQ(row.at("values").at(std::size_t(1)).asUint(), 2u);
}

TEST(JsonWriterTest, NormalizedResultsSchemaRoundTrips)
{
    NormalizedResults r;
    r.benchmarks = {"gzip", "mcf"};
    r.seriesLabels = {"BASE-DEF", "wish-jjl"};
    r.relTime = {{0.9, 0.8}, {2.0, 1.0}};
    r.avg = {1.45, 0.9};
    r.avgNoMcf = {0.9, 0.8};
    r.baseline = {makeOutcome(100), makeOutcome(200)};
    r.outcomes = {{makeOutcome(90), makeOutcome(80)},
                  {makeOutcome(400), makeOutcome(200)}};

    json::Value back = json::Value::parse(toJson(r).dump());

    EXPECT_EQ(back.at("benchmarks").at(std::size_t(1)).asString(), "mcf");
    EXPECT_EQ(back.at("series").at(std::size_t(0)).asString(),
              "BASE-DEF");
    EXPECT_EQ(back.at("rel_time")
                  .at(std::size_t(1))
                  .at(std::size_t(0))
                  .asDouble(),
              2.0);
    EXPECT_EQ(back.at("avg").at(std::size_t(0)).asDouble(), 1.45);
    EXPECT_EQ(back.at("avg_nomcf").at(std::size_t(1)).asDouble(), 0.8);

    ASSERT_EQ(back.at("runs").size(), 2u);
    const json::Value &run0 = back.at("runs").at(std::size_t(0));
    EXPECT_EQ(run0.at("benchmark").asString(), "gzip");
    EXPECT_EQ(run0.at("baseline").at("cycles").asUint(), 100u);
    ASSERT_EQ(run0.at("series").size(), 2u);
    EXPECT_EQ(run0.at("series").at(std::size_t(1)).at("cycles").asUint(),
              80u);
}

TEST(JsonWriterTest, TableExport)
{
    Table t({"benchmark", "value"});
    t.addRow({"gzip", "1.25"});
    json::Value back = json::Value::parse(toJson(t).dump());
    EXPECT_EQ(back.at("headers").at(std::size_t(0)).asString(),
              "benchmark");
    EXPECT_EQ(back.at("rows").at(std::size_t(0)).at(std::size_t(1))
                  .asString(),
              "1.25");
}

} // namespace
} // namespace wisc
