/**
 * @file
 * Tests for the cycle-attribution engine and the Probe/Sink API
 * (ctest labels: attribution, tsan).
 *
 * The contract under test:
 *  - the CPI stack is exhaustive and exclusive: the attrib.* buckets
 *    sum to exactly core.cycles on every (benchmark, variant) pair;
 *  - the per-static-branch profile table is consistent with the
 *    aggregate branch counters;
 *  - observability is free when off and invisible when on: a null sink
 *    changes nothing, and collecting attribution perturbs no default
 *    statistic (the run cache depends on this separation).
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/run_cache.hh"
#include "harness/runner.hh"
#include "uarch/attribution.hh"

namespace wisc {
namespace {

/** The attrib.* counter names, mirroring the engine's taxonomy. */
const char *const kBuckets[] = {
    "attrib.base",            "attrib.pred_nop",
    "attrib.pred_wait",       "attrib.flush_normal",
    "attrib.flush_wish_high", "attrib.flush_loop_early",
    "attrib.flush_loop_noexit", "attrib.cache_miss",
    "attrib.fetch_stall",     "attrib.rob_iq_full",
};

std::uint64_t
stackSum(const RunOutcome &r)
{
    std::uint64_t sum = 0;
    for (const char *name : kBuckets)
        sum += r.require(name);
    return sum;
}

RunOutcome
attributedRun(const CompiledWorkload &w, BinaryVariant v,
              const SimParams &base)
{
    SimParams p = base;
    p.collectAttribution = true;
    p.collectBranchProfile = true;
    RunRequest req{w, v, InputSet::A, p};
    req.cache = RunRequest::CachePolicy::Bypass;
    return run(req);
}

/** Every benchmark × every binary variant: the CPI stack must account
 *  for each cycle exactly once. This is the engine's hard invariant
 *  (it also asserts internally; this proves it end-to-end through the
 *  harness snapshot). */
TEST(AttributionInvariant, CpiStackSumsToCyclesOnEveryVariant)
{
    for (const std::string &name : workloadNames()) {
        CompiledWorkload w = compileWorkload(name);
        for (BinaryVariant v : kAllVariants) {
            RunOutcome r = attributedRun(w, v, SimParams{});
            ASSERT_TRUE(r.result.halted)
                << name << "/" << variantName(v);
            EXPECT_EQ(stackSum(r), r.result.cycles)
                << name << "/" << variantName(v);

            // Binaries without wish hints can only flush "normally".
            if (v == BinaryVariant::Normal || v == BinaryVariant::BaseDef
                || v == BinaryVariant::BaseMax) {
                EXPECT_EQ(r.require("attrib.flush_wish_high"), 0u)
                    << name;
                EXPECT_EQ(r.require("attrib.flush_loop_early"), 0u)
                    << name;
                EXPECT_EQ(r.require("attrib.flush_loop_noexit"), 0u)
                    << name;
            }
        }
    }
}

/** The invariant must also hold on non-default machines — the poll
 *  scheduler, the select-µop predication mechanism, a small window,
 *  and the oracle knobs all classify differently. */
TEST(AttributionInvariant, CpiStackSumsToCyclesOnVariantMachines)
{
    CompiledWorkload w = compileWorkload("gzip");

    SimParams poll;
    poll.pollScheduler = true;
    SimParams select;
    select.predMech = PredMechanism::SelectUop;
    SimParams small;
    small.robSize = 128;
    small.iqSize = 32;
    small.lsqSize = 64;
    SimParams noDep;
    noDep.oracle.noDepend = true;
    SimParams perfect;
    perfect.oracle.perfectCBP = true;

    for (const SimParams &p : {poll, select, small, noDep, perfect}) {
        RunOutcome r =
            attributedRun(w, BinaryVariant::WishJumpJoinLoop, p);
        ASSERT_TRUE(r.result.halted);
        EXPECT_EQ(stackSum(r), r.result.cycles);
    }

    // A perfect predictor never flushes, so no flush bucket may charge.
    RunOutcome r =
        attributedRun(w, BinaryVariant::WishJumpJoinLoop, perfect);
    EXPECT_EQ(r.require("attrib.flush_normal"), 0u);
    EXPECT_EQ(r.require("attrib.flush_wish_high"), 0u);
    EXPECT_EQ(r.require("attrib.flush_loop_early"), 0u);
    EXPECT_EQ(r.require("attrib.flush_loop_noexit"), 0u);
}

/** The per-PC profile must agree with the aggregate counters: summing
 *  the table's count/mispred columns reproduces core.cond_branches and
 *  core.branch_mispredicts, and confidence-classified rows decompose
 *  into the four hi/lo × correct/wrong cells. */
TEST(AttributionInvariant, BranchProfileMatchesAggregateCounters)
{
    CompiledWorkload w = compileWorkload("vpr");
    RunOutcome r =
        attributedRun(w, BinaryVariant::WishJumpJoinLoop, SimParams{});

    ASSERT_TRUE(r.tables.count("core.branch_profile"));
    const TableSnapshot &t = r.tables.at("core.branch_profile");
    ASSERT_EQ(t.columns.size(),
              static_cast<std::size_t>(kBpNumCols));
    EXPECT_FALSE(t.rows.empty());

    std::uint64_t count = 0, mispred = 0, classified = 0;
    for (const auto &row : t.rows) {
        count += row.second[kBpCount];
        mispred += row.second[kBpMispred];
        classified += row.second[kBpHiCorrect] + row.second[kBpHiWrong] +
                      row.second[kBpLoCorrect] + row.second[kBpLoWrong];
        // A row's confidence cells never exceed its total count.
        EXPECT_LE(row.second[kBpHiCorrect] + row.second[kBpHiWrong] +
                      row.second[kBpLoCorrect] + row.second[kBpLoWrong],
                  row.second[kBpCount]);
    }
    EXPECT_EQ(count, r.require("core.cond_branches"));
    EXPECT_EQ(mispred, r.require("core.branch_mispredicts"));
    EXPECT_GT(classified, 0u)
        << "wish branches must be confidence-classified";
}

/** A sink with every handler defaulted must be behaviorally invisible:
 *  identical timing, identical statistics. */
TEST(ProbeApi, NullSinkLeavesTheRunBitIdentical)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog =
        programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);

    RunOutcome plain = captureRun(prog, SimParams{});
    ProbeSink null; // all handlers default to empty bodies
    RunOutcome observed = captureRun(prog, SimParams{}, {&null});

    EXPECT_EQ(plain.result.cycles, observed.result.cycles);
    EXPECT_EQ(plain.result.retiredUops, observed.result.retiredUops);
    EXPECT_EQ(plain.result.memFingerprint,
              observed.result.memFingerprint);
    EXPECT_EQ(plain.stats, observed.stats);
    ASSERT_EQ(plain.hists.size(), observed.hists.size());
    for (const auto &kv : plain.hists) {
        const HistogramSnapshot &o = observed.hists.at(kv.first);
        EXPECT_EQ(kv.second.count, o.count) << kv.first;
        EXPECT_EQ(kv.second.buckets, o.buckets) << kv.first;
    }
}

/** Turning attribution on adds the attrib.* counters and the profile
 *  table and nothing else: every default statistic stays bit-identical,
 *  so golden runs and cached entries are unaffected by observability. */
TEST(ProbeApi, AttributionAddsStatsWithoutPerturbingAny)
{
    CompiledWorkload w = compileWorkload("parser");
    Program prog =
        programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);

    RunOutcome plain = captureRun(prog, SimParams{});
    SimParams p;
    p.collectAttribution = true;
    p.collectBranchProfile = true;
    RunOutcome attr = captureRun(prog, p);

    EXPECT_EQ(plain.result.cycles, attr.result.cycles);
    EXPECT_EQ(plain.result.memFingerprint, attr.result.memFingerprint);
    EXPECT_TRUE(plain.tables.empty())
        << "tables must be opt-in (golden stats depend on it)";
    for (const auto &kv : plain.stats) {
        auto it = attr.stats.find(kv.first);
        ASSERT_NE(it, attr.stats.end()) << kv.first;
        EXPECT_EQ(it->second, kv.second) << kv.first;
    }
    // And the additions are exactly the attrib.* counters.
    for (const auto &kv : attr.stats)
        if (!plain.stats.count(kv.first))
            EXPECT_EQ(kv.first.rfind("attrib.", 0), 0u) << kv.first;
}

/** Requests that attach sinks must bypass the cache: a replayed
 *  outcome cannot drive observers. */
TEST(ProbeApi, SinkRequestsBypassTheRunCache)
{
    RunService &svc = RunService::global();
    const bool oldMemo = svc.memoize();
    svc.setMemoize(true);

    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);
    const RunCacheStats before = svc.stats();

    ProbeSink null;
    RunRequest req{prog, SimParams{}};
    req.sinks.push_back(&null);
    RunOutcome a = run(req);
    RunOutcome b = run(req);
    EXPECT_EQ(a.result.cycles, b.result.cycles);

    const RunCacheStats after = svc.stats();
    EXPECT_EQ(after.dedupHits, before.dedupHits)
        << "sink-carrying requests must not be served from memo";
    EXPECT_EQ(after.misses, before.misses)
        << "sink-carrying requests must not populate the service";

    svc.setMemoize(oldMemo);
}

} // namespace
} // namespace wisc
