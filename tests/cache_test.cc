/**
 * @file
 * Unit tests for the cache tag arrays and the memory hierarchy: LRU
 * replacement, hierarchy latencies, line-fill timing windows, the
 * text-warming helper, and the MSHR-facing probe.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "uarch/cache.hh"

namespace wisc {
namespace {

TEST(CacheTest, MissThenHit)
{
    StatSet stats;
    Cache c({1024, 2, 64, 1}, "t", stats);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)) << "same 64B line";
    EXPECT_FALSE(c.access(0x140)) << "next line";
}

TEST(CacheTest, LruReplacement)
{
    StatSet stats;
    // 1 KB, 2-way, 64B lines -> 8 sets. Lines 0, 8, 16 share set 0.
    Cache c({1024, 2, 64, 1}, "t", stats);
    c.access(0 * 64);
    c.access(8 * 64);
    c.access(0 * 64);  // 0 is MRU
    c.access(16 * 64); // evicts 8
    EXPECT_TRUE(c.probe(0 * 64));
    EXPECT_FALSE(c.probe(8 * 64));
    EXPECT_TRUE(c.probe(16 * 64));
}

TEST(CacheTest, ProbeDoesNotAllocate)
{
    StatSet stats;
    Cache c({1024, 2, 64, 1}, "t", stats);
    EXPECT_FALSE(c.probe(0x500));
    EXPECT_FALSE(c.probe(0x500)) << "probe must not allocate";
    EXPECT_FALSE(c.access(0x500));
    EXPECT_TRUE(c.probe(0x500));
}

TEST(CacheTest, ResetInvalidates)
{
    StatSet stats;
    Cache c({1024, 2, 64, 1}, "t", stats);
    c.access(0x100);
    c.reset();
    EXPECT_FALSE(c.probe(0x100));
}

TEST(MemorySystemTest, HierarchyLatencies)
{
    SimParams p; // L1 2 cycles, L2 +6, memory +300
    StatSet stats;
    MemorySystem mem(p, stats);

    unsigned cold = mem.loadAccess(0x10000, 0);
    EXPECT_EQ(cold, 2u + 6u + 300u);

    // Wait for the fill to complete before re-accessing.
    unsigned warm = mem.loadAccess(0x10000, 1000);
    EXPECT_EQ(warm, 2u);
}

TEST(MemorySystemTest, FillWindowChargesRemainingTime)
{
    SimParams p;
    StatSet stats;
    MemorySystem mem(p, stats);

    unsigned cold = mem.loadAccess(0x10000, 0);
    ASSERT_GT(cold, 100u);
    // A second access to the same line 10 cycles later pays the rest of
    // the fill, not a fresh hit.
    unsigned second = mem.loadAccess(0x10008, 10);
    EXPECT_EQ(second, cold - 10 + p.dl1.hitLatency);
}

TEST(MemorySystemTest, L2HitAfterL1Eviction)
{
    SimParams p;
    p.dl1 = {128, 1, 64, 2}; // tiny L1: 2 lines, direct mapped
    StatSet stats;
    MemorySystem mem(p, stats);

    mem.loadAccess(0 * 64, 0);
    // Same L1 set (2-line direct-mapped L1: sets = 2), different line.
    mem.loadAccess(2 * 64, 1000);
    mem.loadAccess(4 * 64, 2000); // evicts line 0 from L1
    unsigned lat = mem.loadAccess(0 * 64, 3000);
    EXPECT_EQ(lat, p.dl1.hitLatency + p.l2.hitLatency) << "L2 hit";
}

TEST(MemorySystemTest, WarmTextMakesFetchesHit)
{
    SimParams p;
    StatSet stats;
    MemorySystem mem(p, stats);
    mem.warmText(0x10000, 4096);
    for (Addr a = 0x10000; a < 0x11000; a += 64)
        EXPECT_EQ(mem.fetchAccess(a), p.il1.hitLatency);
}

TEST(MemorySystemTest, StoreAllocates)
{
    SimParams p;
    StatSet stats;
    MemorySystem mem(p, stats);
    mem.storeAccess(0x40000);
    EXPECT_TRUE(mem.loadWouldHitL1(0x40000));
}

TEST(CacheTest, GeometryValidation)
{
    StatSet stats;
    CacheParams bad{64, 4, 64, 1}; // 64B total with 4 ways of 64B lines
    EXPECT_DEATH(
        {
            Cache c(bad, "t", stats);
            c.access(0);
        },
        "cache");
}

} // namespace
} // namespace wisc
