/**
 * @file
 * The fixed (workload, binary variant, machine) matrix behind the
 * golden-stat regression test. The golden values in
 * golden_stats_data.inc were captured from this exact matrix on the
 * seed (poll-scheduler) core; the test proves the event-driven
 * scheduler and DynInst layout rewrite left every counter and histogram
 * bit-identical. Regenerate with the golden_stats_gen tool after an
 * *intentional* timing-model change:
 *
 *   build/tests/golden_stats_gen > tests/golden_stats_data.inc
 */

#ifndef WISC_TESTS_GOLDEN_RUNS_HH_
#define WISC_TESTS_GOLDEN_RUNS_HH_

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace wisc {

struct GoldenRunSpec
{
    std::string label;
    std::string workload;
    BinaryVariant variant;
    InputSet input;
    SimParams params;
};

/** One run per binary *type* (normal branch / predicated / wish), plus
 *  the select-µop machine and a small-window machine for config
 *  coverage. */
inline std::vector<GoldenRunSpec>
goldenRuns()
{
    SimParams def;

    SimParams selectUop = def;
    selectUop.predMech = PredMechanism::SelectUop;

    SimParams smallWindow = def;
    smallWindow.robSize = 128;
    smallWindow.iqSize = 32;
    smallWindow.lsqSize = 64;

    return {
        {"normal", "gzip", BinaryVariant::Normal, InputSet::A, def},
        {"base-max", "gzip", BinaryVariant::BaseMax, InputSet::A, def},
        {"wish-jjl", "gzip", BinaryVariant::WishJumpJoinLoop, InputSet::A,
         def},
        {"wish-jjl-selectuop", "gzip", BinaryVariant::WishJumpJoinLoop,
         InputSet::A, selectUop},
        {"wish-jjl-win128", "gzip", BinaryVariant::WishJumpJoinLoop,
         InputSet::A, smallWindow},
    };
}

} // namespace wisc

#endif // WISC_TESTS_GOLDEN_RUNS_HH_
