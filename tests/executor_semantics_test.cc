/**
 * @file
 * Golden semantic tests for every WISC ALU/compare opcode, plus
 * randomized cross-checks of wrapping arithmetic against host-side
 * reference computations.
 */

#include <gtest/gtest.h>

#include "arch/executor.hh"
#include "common/rng.hh"

namespace wisc {
namespace {

Word
runOp(Opcode op, Word a, Word b, Word imm = 0)
{
    ArchState s;
    s.writeReg(6, a);
    s.writeReg(7, b);
    Instruction i;
    i.op = op;
    i.rd = 5;
    i.rs1 = 6;
    i.rs2 = 7;
    i.imm = imm;
    executeInst(i, 0, 4, s, nullptr);
    return s.readReg(5);
}

bool
runCmp(Opcode op, Word a, Word b, Word imm = 0)
{
    ArchState s;
    s.writeReg(6, a);
    s.writeReg(7, b);
    Instruction i;
    i.op = op;
    i.pd = 1;
    i.pd2 = 2;
    i.rs1 = 6;
    i.rs2 = 7;
    i.imm = imm;
    executeInst(i, 0, 4, s, nullptr);
    // The complement must always be the inverse.
    EXPECT_NE(s.readPred(1), s.readPred(2));
    return s.readPred(1);
}

TEST(ExecutorSemantics, AluGoldenValues)
{
    EXPECT_EQ(runOp(Opcode::Add, 3, 4), 7);
    EXPECT_EQ(runOp(Opcode::Sub, 3, 4), -1);
    EXPECT_EQ(runOp(Opcode::And, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(runOp(Opcode::Or, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(runOp(Opcode::Xor, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(runOp(Opcode::Shl, 3, 4), 48);
    EXPECT_EQ(runOp(Opcode::Shr, -1, 60), 15) << "logical shift";
    EXPECT_EQ(runOp(Opcode::Sra, -16, 2), -4) << "arithmetic shift";
    EXPECT_EQ(runOp(Opcode::Mul, -3, 5), -15);
    EXPECT_EQ(runOp(Opcode::Div, 17, 5), 3);
    EXPECT_EQ(runOp(Opcode::Div, -17, 5), -3) << "C truncation";
    EXPECT_EQ(runOp(Opcode::Rem, 17, 5), 2);
    EXPECT_EQ(runOp(Opcode::Rem, -17, 5), -2);
}

TEST(ExecutorSemantics, ImmediateGoldenValues)
{
    EXPECT_EQ(runOp(Opcode::AddI, 3, 0, 4), 7);
    EXPECT_EQ(runOp(Opcode::AndI, 0b1100, 0, 0b1010), 0b1000);
    EXPECT_EQ(runOp(Opcode::OrI, 0b1100, 0, 0b1010), 0b1110);
    EXPECT_EQ(runOp(Opcode::XorI, 0b1100, 0, 0b1010), 0b0110);
    EXPECT_EQ(runOp(Opcode::ShlI, 3, 0, 4), 48);
    EXPECT_EQ(runOp(Opcode::ShrI, -1, 0, 60), 15);
    EXPECT_EQ(runOp(Opcode::SraI, -16, 0, 2), -4);
    EXPECT_EQ(runOp(Opcode::MulI, -3, 0, 5), -15);
}

TEST(ExecutorSemantics, ShiftAmountsMaskTo6Bits)
{
    EXPECT_EQ(runOp(Opcode::Shl, 1, 64), 1) << "shift by 64 wraps to 0";
    EXPECT_EQ(runOp(Opcode::Shl, 1, 65), 2);
    EXPECT_EQ(runOp(Opcode::ShrI, 8, 0, 67), 1);
}

TEST(ExecutorSemantics, WrappingAddMatchesUnsignedHost)
{
    Rng rng(44);
    for (int i = 0; i < 200; ++i) {
        Word a = static_cast<Word>(rng.next());
        Word b = static_cast<Word>(rng.next());
        Word expect = static_cast<Word>(static_cast<UWord>(a) +
                                        static_cast<UWord>(b));
        EXPECT_EQ(runOp(Opcode::Add, a, b), expect);
        Word expectMul = static_cast<Word>(static_cast<UWord>(a) *
                                           static_cast<UWord>(b));
        EXPECT_EQ(runOp(Opcode::Mul, a, b), expectMul);
    }
}

TEST(ExecutorSemantics, CompareGoldenValues)
{
    EXPECT_TRUE(runCmp(Opcode::CmpEq, 5, 5));
    EXPECT_FALSE(runCmp(Opcode::CmpEq, 5, 6));
    EXPECT_TRUE(runCmp(Opcode::CmpNe, 5, 6));
    EXPECT_TRUE(runCmp(Opcode::CmpLt, -1, 0));
    EXPECT_FALSE(runCmp(Opcode::CmpLtU, -1, 0)) << "-1 is huge unsigned";
    EXPECT_TRUE(runCmp(Opcode::CmpGeU, -1, 0));
    EXPECT_TRUE(runCmp(Opcode::CmpLe, 5, 5));
    EXPECT_FALSE(runCmp(Opcode::CmpGt, 5, 5));
    EXPECT_TRUE(runCmp(Opcode::CmpGe, 5, 5));
}

TEST(ExecutorSemantics, CompareImmediateGoldenValues)
{
    EXPECT_TRUE(runCmp(Opcode::CmpEqI, 5, 0, 5));
    EXPECT_TRUE(runCmp(Opcode::CmpNeI, 5, 0, 6));
    EXPECT_TRUE(runCmp(Opcode::CmpLtI, -10, 0, -9));
    EXPECT_TRUE(runCmp(Opcode::CmpLeI, 7, 0, 7));
    EXPECT_FALSE(runCmp(Opcode::CmpGtI, 7, 0, 7));
    EXPECT_TRUE(runCmp(Opcode::CmpGeI, 7, 0, 7));
}

TEST(ExecutorSemantics, PredicateOps)
{
    ArchState s;
    s.writePred(3, true);
    s.writePred(4, false);

    Instruction pnot;
    pnot.op = Opcode::PNot;
    pnot.pd = 5;
    pnot.ps = 3;
    executeInst(pnot, 0, 4, s, nullptr);
    EXPECT_FALSE(s.readPred(5));

    Instruction pand;
    pand.op = Opcode::PAnd;
    pand.pd = 5;
    pand.ps = 3;
    pand.ps2 = 4;
    executeInst(pand, 0, 4, s, nullptr);
    EXPECT_FALSE(s.readPred(5));

    Instruction por;
    por.op = Opcode::POr;
    por.pd = 5;
    por.ps = 3;
    por.ps2 = 4;
    executeInst(por, 0, 4, s, nullptr);
    EXPECT_TRUE(s.readPred(5));

    Instruction pset;
    pset.op = Opcode::PSet;
    pset.pd = 5;
    pset.imm = 0;
    executeInst(pset, 0, 4, s, nullptr);
    EXPECT_FALSE(s.readPred(5));
}

TEST(ExecutorSemantics, ByteMemoryOps)
{
    ArchState s;
    s.writeReg(6, 0x50000);
    s.writeReg(7, 0x1FF); // only the low byte must be stored

    Instruction st1;
    st1.op = Opcode::St1;
    st1.rs1 = 6;
    st1.rs2 = 7;
    st1.imm = 3;
    executeInst(st1, 0, 4, s, nullptr);
    EXPECT_EQ(s.mem().readByte(0x50003), 0xFF);

    Instruction ld1;
    ld1.op = Opcode::Ld1;
    ld1.rd = 8;
    ld1.rs1 = 6;
    ld1.imm = 3;
    executeInst(ld1, 0, 4, s, nullptr);
    EXPECT_EQ(s.readReg(8), 0xFF) << "zero-extended";
}

TEST(ExecutorSemantics, WordMemoryRoundTripRandom)
{
    Rng rng(91);
    ArchState s;
    s.writeReg(6, 0x60000);
    for (int i = 0; i < 100; ++i) {
        Word v = static_cast<Word>(rng.next());
        Word off = static_cast<Word>(8 * rng.below(64));
        s.writeReg(7, v);

        Instruction st;
        st.op = Opcode::St;
        st.rs1 = 6;
        st.rs2 = 7;
        st.imm = off;
        executeInst(st, 0, 4, s, nullptr);

        Instruction ld;
        ld.op = Opcode::Ld;
        ld.rd = 8;
        ld.rs1 = 6;
        ld.imm = off;
        executeInst(ld, 0, 4, s, nullptr);
        EXPECT_EQ(s.readReg(8), v);
    }
}

TEST(ExecutorSemantics, EffectiveAddressReported)
{
    ArchState s;
    s.writeReg(6, 0x1000);
    Instruction ld;
    ld.op = Opcode::Ld;
    ld.rd = 8;
    ld.rs1 = 6;
    ld.imm = -16;
    StepResult r = executeInst(ld, 0, 4, s, nullptr);
    EXPECT_EQ(r.memAddr, 0xFF0u);
    EXPECT_EQ(r.memSize, 8);
}

} // namespace
} // namespace wisc
