/**
 * @file
 * Tests for the run-memoization subsystem (ctest label: cache):
 * fingerprint stability and sensitivity, in-process dedup semantics,
 * persistent round-trips that are bit-identical to fresh simulations,
 * and corruption fallback (truncation, bit flips, version skew).
 *
 * The concurrency hammer lives in run_cache_concurrency_test.cc inside
 * the tsan-labeled wisc_parallel_tests binary.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/hash.hh"
#include "common/log.hh"
#include "golden_runs.hh"
#include "harness/experiments.hh"
#include "harness/run_cache.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

namespace fs = std::filesystem;

/** Fresh temp directory per test, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        dir_ = fs::temp_directory_path() /
               ("wisc_cache_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path() const { return dir_.string(); }

  private:
    static inline int counter_ = 0;
    fs::path dir_;
};

/** Minimal halting program whose checksum register (r4) carries seed. */
Program
tinyProgram(Word seed)
{
    Program p;
    p.append({.op = Opcode::Li, .rd = 4, .imm = seed});
    p.append({.op = Opcode::AddI, .rd = 4, .rs1 = 4, .imm = 1});
    p.append({.op = Opcode::Halt});
    return p;
}

void
expectOutcomesIdentical(const RunOutcome &a, const RunOutcome &b)
{
    EXPECT_EQ(a.result.halted, b.result.halted);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.retiredUops, b.result.retiredUops);
    EXPECT_EQ(a.result.resultReg, b.result.resultReg);
    EXPECT_EQ(a.result.memFingerprint, b.result.memFingerprint);
    EXPECT_EQ(a.stats, b.stats);
    ASSERT_EQ(a.hists.size(), b.hists.size());
    for (const auto &kv : a.hists) {
        auto it = b.hists.find(kv.first);
        ASSERT_NE(it, b.hists.end()) << kv.first;
        EXPECT_EQ(kv.second.count, it->second.count) << kv.first;
        EXPECT_EQ(kv.second.buckets, it->second.buckets) << kv.first;
    }
    ASSERT_EQ(a.tables.size(), b.tables.size());
    for (const auto &kv : a.tables) {
        auto it = b.tables.find(kv.first);
        ASSERT_NE(it, b.tables.end()) << kv.first;
        EXPECT_EQ(kv.second.columns, it->second.columns) << kv.first;
        EXPECT_EQ(kv.second.rows, it->second.rows) << kv.first;
    }
}

// ---- fingerprints -----------------------------------------------------

TEST(HashTest, StreamingMatchesOneShotAndChunking)
{
    const char data[] = "wish branches";
    Hasher whole;
    whole.bytes(data, sizeof(data));
    Hasher split;
    split.bytes(data, 5);
    split.bytes(data + 5, sizeof(data) - 5);
    EXPECT_EQ(whole.digest(), split.digest());
    EXPECT_EQ(whole.digest(), hashBytes(data, sizeof(data)));
    EXPECT_NE(whole.digest(), hashBytes(data, sizeof(data) - 1));
}

TEST(FingerprintTest, ProgramFingerprintIsStableAndContentAddressed)
{
    // Two structurally identical builds hash identically.
    EXPECT_EQ(tinyProgram(7).fingerprint(), tinyProgram(7).fingerprint());
    // Any content change lands in the digest.
    EXPECT_NE(tinyProgram(7).fingerprint(), tinyProgram(8).fingerprint());

    Program extraData = tinyProgram(7);
    extraData.addData(0x20000, {1, 2, 3});
    EXPECT_NE(extraData.fingerprint(), tinyProgram(7).fingerprint());

    // Labels are listing metadata: relabeling must not invalidate
    // cached runs.
    Program labeled = tinyProgram(7);
    labeled.defineLabel("epilogue");
    EXPECT_EQ(labeled.fingerprint(), tinyProgram(7).fingerprint());
}

TEST(FingerprintTest, CompiledWorkloadFingerprintsAreReproducible)
{
    CompiledWorkload a = compileWorkload("gzip");
    CompiledWorkload b = compileWorkload("gzip");
    for (BinaryVariant v : kAllVariants) {
        Program pa = programFor(a, v, InputSet::A);
        Program pb = programFor(b, v, InputSet::A);
        EXPECT_EQ(pa.fingerprint(), pb.fingerprint())
            << variantName(v);
        // Different input data, same code: different fingerprint.
        Program pc = programFor(a, v, InputSet::C);
        EXPECT_NE(pa.fingerprint(), pc.fingerprint())
            << variantName(v);
    }
}

/** Every SimParams field must perturb the fingerprint: a field that
 *  does not land in the digest would let the cache replay a stale
 *  result for a different machine. The sizeof static_assert in
 *  params.cc forces this list to grow with the struct. */
TEST(FingerprintTest, EverySimParamsFieldPerturbsTheHash)
{
    struct FieldPerturbation
    {
        const char *name;
        std::function<void(SimParams &)> perturb;
    };
    const std::vector<FieldPerturbation> fields = {
        {"fetchWidth", [](SimParams &p) { ++p.fetchWidth; }},
        {"decodeWidth", [](SimParams &p) { ++p.decodeWidth; }},
        {"issueWidth", [](SimParams &p) { ++p.issueWidth; }},
        {"retireWidth", [](SimParams &p) { ++p.retireWidth; }},
        {"maxCondBrPerFetch",
         [](SimParams &p) { ++p.maxCondBrPerFetch; }},
        {"memPortsPerCycle", [](SimParams &p) { ++p.memPortsPerCycle; }},
        {"robSize", [](SimParams &p) { ++p.robSize; }},
        {"iqSize", [](SimParams &p) { ++p.iqSize; }},
        {"lsqSize", [](SimParams &p) { ++p.lsqSize; }},
        {"pipelineStages", [](SimParams &p) { ++p.pipelineStages; }},
        {"il1.sizeBytes", [](SimParams &p) { p.il1.sizeBytes *= 2; }},
        {"il1.ways", [](SimParams &p) { ++p.il1.ways; }},
        {"il1.lineBytes", [](SimParams &p) { p.il1.lineBytes *= 2; }},
        {"il1.hitLatency", [](SimParams &p) { ++p.il1.hitLatency; }},
        {"dl1.sizeBytes", [](SimParams &p) { p.dl1.sizeBytes *= 2; }},
        {"dl1.ways", [](SimParams &p) { ++p.dl1.ways; }},
        {"dl1.lineBytes", [](SimParams &p) { p.dl1.lineBytes *= 2; }},
        {"dl1.hitLatency", [](SimParams &p) { ++p.dl1.hitLatency; }},
        {"l2.sizeBytes", [](SimParams &p) { p.l2.sizeBytes *= 2; }},
        {"l2.ways", [](SimParams &p) { ++p.l2.ways; }},
        {"l2.lineBytes", [](SimParams &p) { p.l2.lineBytes *= 2; }},
        {"l2.hitLatency", [](SimParams &p) { ++p.l2.hitLatency; }},
        {"memLatency", [](SimParams &p) { ++p.memLatency; }},
        {"maxOutstandingMisses",
         [](SimParams &p) { ++p.maxOutstandingMisses; }},
        {"gshareEntries", [](SimParams &p) { p.gshareEntries *= 2; }},
        {"pasHistEntries", [](SimParams &p) { p.pasHistEntries *= 2; }},
        {"pasPatternEntries",
         [](SimParams &p) { p.pasPatternEntries *= 2; }},
        {"pasHistBits", [](SimParams &p) { ++p.pasHistBits; }},
        {"selectorEntries",
         [](SimParams &p) { p.selectorEntries *= 2; }},
        {"btbSets", [](SimParams &p) { p.btbSets *= 2; }},
        {"btbWays", [](SimParams &p) { ++p.btbWays; }},
        {"rasEntries", [](SimParams &p) { ++p.rasEntries; }},
        {"indirectEntries",
         [](SimParams &p) { p.indirectEntries *= 2; }},
        {"indirectHistBits",
         [](SimParams &p) { ++p.indirectHistBits; }},
        {"predictor",
         [](SimParams &p) { p.predictor = PredictorKind::Tage; }},
        {"bimodalEntries",
         [](SimParams &p) { p.bimodalEntries *= 2; }},
        {"twoLevelEntries",
         [](SimParams &p) { p.twoLevelEntries *= 2; }},
        {"twoLevelHistBits",
         [](SimParams &p) { ++p.twoLevelHistBits; }},
        {"tageTables", [](SimParams &p) { ++p.tageTables; }},
        {"tageEntriesLog2", [](SimParams &p) { ++p.tageEntriesLog2; }},
        {"tageTagBits", [](SimParams &p) { ++p.tageTagBits; }},
        {"tageMinHist", [](SimParams &p) { ++p.tageMinHist; }},
        {"tageMaxHist", [](SimParams &p) { --p.tageMaxHist; }},
        {"tageBaseEntriesLog2",
         [](SimParams &p) { ++p.tageBaseEntriesLog2; }},
        {"tageUsefulBits", [](SimParams &p) { ++p.tageUsefulBits; }},
        {"tageResetPeriod",
         [](SimParams &p) { p.tageResetPeriod *= 2; }},
        {"confSets", [](SimParams &p) { p.confSets *= 2; }},
        {"confWays", [](SimParams &p) { ++p.confWays; }},
        {"confHistBits", [](SimParams &p) { ++p.confHistBits; }},
        {"confCtrBits", [](SimParams &p) { ++p.confCtrBits; }},
        {"confThreshold", [](SimParams &p) { ++p.confThreshold; }},
        {"confTagBits", [](SimParams &p) { ++p.confTagBits; }},
        {"confMissIsHigh",
         [](SimParams &p) { p.confMissIsHigh = !p.confMissIsHigh; }},
        {"confKind",
         [](SimParams &p) { p.confKind = ConfKind::UpDown; }},
        {"udConfEntries", [](SimParams &p) { p.udConfEntries *= 2; }},
        {"udConfHistBits", [](SimParams &p) { ++p.udConfHistBits; }},
        {"udConfMax", [](SimParams &p) { ++p.udConfMax; }},
        {"udConfThreshold", [](SimParams &p) { ++p.udConfThreshold; }},
        {"udConfDownStep", [](SimParams &p) { ++p.udConfDownStep; }},
        {"latAlu", [](SimParams &p) { ++p.latAlu; }},
        {"latMul", [](SimParams &p) { ++p.latMul; }},
        {"latDiv", [](SimParams &p) { ++p.latDiv; }},
        {"latBranch", [](SimParams &p) { ++p.latBranch; }},
        {"latStoreForward", [](SimParams &p) { ++p.latStoreForward; }},
        {"predMech",
         [](SimParams &p) { p.predMech = PredMechanism::SelectUop; }},
        {"wishEnabled",
         [](SimParams &p) { p.wishEnabled = !p.wishEnabled; }},
        {"wishLoopBias",
         [](SimParams &p) { p.wishLoopBias = !p.wishLoopBias; }},
        {"dynPred",
         [](SimParams &p) { p.dynPred = DynPredMode::MergePoint; }},
        {"dynFetchGateCycles",
         [](SimParams &p) { ++p.dynFetchGateCycles; }},
        {"dynMergeEntries", [](SimParams &p) { ++p.dynMergeEntries; }},
        {"dynMergeMinConf", [](SimParams &p) { ++p.dynMergeMinConf; }},
        {"dynMaxRegionUops",
         [](SimParams &p) { ++p.dynMaxRegionUops; }},
        {"dynMergeTrackUops",
         [](SimParams &p) { ++p.dynMergeTrackUops; }},
        {"oracle.noDepend",
         [](SimParams &p) { p.oracle.noDepend = true; }},
        {"oracle.noFetch", [](SimParams &p) { p.oracle.noFetch = true; }},
        {"oracle.perfectCBP",
         [](SimParams &p) { p.oracle.perfectCBP = true; }},
        {"oracle.perfectConfidence",
         [](SimParams &p) { p.oracle.perfectConfidence = true; }},
        {"sampling.enabled",
         [](SimParams &p) { p.sampling.enabled = true; }},
        {"sampling.periodUops",
         [](SimParams &p) { ++p.sampling.periodUops; }},
        {"sampling.warmupUops",
         [](SimParams &p) { ++p.sampling.warmupUops; }},
        {"sampling.measureUops",
         [](SimParams &p) { ++p.sampling.measureUops; }},
        {"sampling.prefixUops",
         [](SimParams &p) { ++p.sampling.prefixUops; }},
        {"maxCycles", [](SimParams &p) { --p.maxCycles; }},
        {"maxRetired", [](SimParams &p) { --p.maxRetired; }},
        {"checkFinalState",
         [](SimParams &p) { p.checkFinalState = !p.checkFinalState; }},
        {"collectAttribution",
         [](SimParams &p) { p.collectAttribution = true; }},
        {"collectBranchProfile",
         [](SimParams &p) { p.collectBranchProfile = true; }},
        {"pollScheduler",
         [](SimParams &p) { p.pollScheduler = !p.pollScheduler; }},
    };

    const std::uint64_t base = SimParams{}.fingerprint();
    EXPECT_EQ(base, SimParams{}.fingerprint()); // stable

    for (const FieldPerturbation &f : fields) {
        SimParams p;
        f.perturb(p);
        EXPECT_NE(p.fingerprint(), base)
            << "field '" << f.name
            << "' does not land in SimParams::fingerprint()";
    }
}

// ---- in-process dedup -------------------------------------------------

TEST(RunServiceTest, PassThroughServiceAlwaysSimulates)
{
    RunService svc; // default: no memo, no disk
    Program p = tinyProgram(1);
    RunOutcome a = svc.run(p, SimParams{});
    RunOutcome b = svc.run(p, SimParams{});
    expectOutcomesIdentical(a, b);
    EXPECT_EQ(svc.stats().misses, 2u);
    EXPECT_EQ(svc.stats().dedupHits, 0u);
}

TEST(RunServiceTest, MemoizationRunsEachDistinctSimulationOnce)
{
    RunService svc;
    svc.setMemoize(true);
    Program p1 = tinyProgram(1);
    Program p2 = tinyProgram(2);

    RunOutcome first = svc.run(p1, SimParams{});
    RunOutcome again = svc.run(p1, SimParams{});
    RunOutcome other = svc.run(p2, SimParams{});
    expectOutcomesIdentical(first, again);
    EXPECT_NE(first.result.resultReg, other.result.resultReg);

    RunCacheStats s = svc.stats();
    EXPECT_EQ(s.misses, 2u);    // p1 and p2, once each
    EXPECT_EQ(s.dedupHits, 1u); // the repeat of p1
    EXPECT_EQ(s.diskHits, 0u);
}

TEST(RunServiceTest, MemoizedOutcomeMatchesFreshSimulation)
{
    RunService svc;
    svc.setMemoize(true);
    for (const GoldenRunSpec &spec : goldenRuns()) {
        CompiledWorkload w = compileWorkload(spec.workload);
        Program prog = programFor(w, spec.variant, spec.input);
        RunOutcome cached = svc.run(prog, spec.params);
        RunOutcome fresh = captureRun(prog, spec.params);
        expectOutcomesIdentical(cached, fresh);
    }
}

// ---- persistent layer -------------------------------------------------

TEST(RunCacheDiskTest, EncodeDecodeRoundTripsExactly)
{
    Program prog = tinyProgram(3);
    RunOutcome out = captureRun(prog, SimParams{});
    const RunKey key{prog.fingerprint(), SimParams{}.fingerprint()};

    std::string bytes = encodeRunOutcome(key, out);
    RunOutcome back;
    ASSERT_TRUE(decodeRunOutcome(bytes, key, back));
    expectOutcomesIdentical(out, back);

    // Wrong key: rejected (entry content-addressed by both hashes).
    RunOutcome scratch;
    EXPECT_FALSE(
        decodeRunOutcome(bytes, RunKey{key.prog + 1, key.params},
                         scratch));
    EXPECT_FALSE(
        decodeRunOutcome(bytes, RunKey{key.prog, key.params + 1},
                         scratch));
}

/** Runs that produce StatTables (attribution observability on) must
 *  survive the v2 entry format: encode/decode round-trips the tables
 *  exactly, and a second service replays them from disk. */
TEST(RunCacheDiskTest, AttributionTablesRoundTripAndReplayFromDisk)
{
    TempDir dir;
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::WishJumpJoinLoop,
                              InputSet::A);
    SimParams p;
    p.collectAttribution = true;
    p.collectBranchProfile = true;

    RunService writer(dir.path());
    RunOutcome fresh = writer.run(prog, p);
    ASSERT_TRUE(fresh.stats.count("attrib.base"));
    ASSERT_TRUE(fresh.tables.count("core.branch_profile"));
    EXPECT_FALSE(fresh.tables.at("core.branch_profile").rows.empty());

    const RunKey key{prog.fingerprint(), p.fingerprint()};
    std::string bytes = encodeRunOutcome(key, fresh);
    RunOutcome back;
    ASSERT_TRUE(decodeRunOutcome(bytes, key, back));
    expectOutcomesIdentical(fresh, back);

    RunService reader(dir.path());
    RunOutcome replayed = reader.run(prog, p);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    expectOutcomesIdentical(fresh, replayed);
}

TEST(RunCacheDiskTest, SecondServiceReplaysBitIdenticalOutcome)
{
    TempDir dir;
    CompiledWorkload w = compileWorkload("crafty");
    Program prog = programFor(w, BinaryVariant::WishJumpJoinLoop,
                              InputSet::A);

    RunService writer(dir.path());
    RunOutcome fresh = writer.run(prog, SimParams{});
    EXPECT_EQ(writer.stats().misses, 1u);
    ASSERT_TRUE(
        fs::exists(writer.entryPath(
            RunKey{prog.fingerprint(), SimParams{}.fingerprint()})));

    // A different service (≈ a different process) replays from disk.
    RunService reader(dir.path());
    RunOutcome replayed = reader.run(prog, SimParams{});
    EXPECT_EQ(reader.stats().diskHits, 1u);
    EXPECT_EQ(reader.stats().misses, 0u);
    expectOutcomesIdentical(fresh, replayed);
}

TEST(RunCacheDiskTest, TruncatedEntryFallsBackToFreshRun)
{
    TempDir dir;
    Program prog = tinyProgram(4);
    const RunKey key{prog.fingerprint(), SimParams{}.fingerprint()};

    RunOutcome fresh;
    {
        RunService svc(dir.path());
        fresh = svc.run(prog, SimParams{});
    }
    const std::string path = RunService(dir.path()).entryPath(key);
    ASSERT_TRUE(fs::exists(path));

    // Truncate the entry to half its size.
    const auto full = fs::file_size(path);
    fs::resize_file(path, full / 2);

    RunService svc(dir.path());
    RunOutcome recovered = svc.run(prog, SimParams{});
    expectOutcomesIdentical(fresh, recovered);
    RunCacheStats s = svc.stats();
    EXPECT_EQ(s.corrupt, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.misses, 1u);
    // The fresh run repaired the entry.
    EXPECT_EQ(fs::file_size(path), full);
}

TEST(RunCacheDiskTest, BitFlippedEntryFallsBackToFreshRun)
{
    TempDir dir;
    Program prog = tinyProgram(5);
    const RunKey key{prog.fingerprint(), SimParams{}.fingerprint()};

    RunOutcome fresh;
    {
        RunService svc(dir.path());
        fresh = svc.run(prog, SimParams{});
    }
    const std::string path = RunService(dir.path()).entryPath(key);

    // Flip one bit in the middle of the payload.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    bytes[bytes.size() / 2] ^= 0x10;
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    RunService svc(dir.path());
    RunOutcome recovered = svc.run(prog, SimParams{});
    expectOutcomesIdentical(fresh, recovered);
    EXPECT_EQ(svc.stats().corrupt, 1u);
    EXPECT_EQ(svc.stats().misses, 1u);
}

TEST(RunCacheDiskTest, VersionSkewIsRejectedNotMisread)
{
    TempDir dir;
    Program prog = tinyProgram(6);
    const RunKey key{prog.fingerprint(), SimParams{}.fingerprint()};

    {
        RunService svc(dir.path());
        svc.run(prog, SimParams{});
    }
    const std::string path = RunService(dir.path()).entryPath(key);

    // Bump the format version field (bytes 8..11, after the magic).
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    char v99 = 99;
    f.write(&v99, 1);
    f.close();

    RunService svc(dir.path());
    RunOutcome out = svc.run(prog, SimParams{});
    EXPECT_TRUE(out.result.halted);
    EXPECT_EQ(svc.stats().corrupt, 1u);
    EXPECT_EQ(svc.stats().misses, 1u);
}

// ---- harness wiring ---------------------------------------------------

TEST(ExperimentGuardTest, EmptyBenchmarkListIsAHardError)
{
    EXPECT_THROW(runNormalizedExperiment({}, InputSet::A, SimParams{},
                                         /*benchmarks=*/{}, /*jobs=*/1),
                 FatalError);
}

/** The acceptance gate: a normalized experiment served entirely from a
 *  warm disk cache is bit-identical to one computed fresh. */
TEST(RunCacheDiskTest, NormalizedExperimentIsBitIdenticalWarmVsCold)
{
    TempDir dir;
    const std::vector<SeriesSpec> series = {
        {"wish-jjl", BinaryVariant::WishJumpJoinLoop, SimParams{}},
    };
    const std::vector<std::string> benches = {"gzip"};

    RunService &svc = RunService::global();
    const std::string oldDir = svc.cacheDir();
    const bool oldMemo = svc.memoize();

    svc.setCacheDir(dir.path());
    svc.setMemoize(false); // force the second pass to the disk layer
    NormalizedResults cold = runNormalizedExperiment(
        series, InputSet::A, SimParams{}, benches, 1);
    NormalizedResults warm = runNormalizedExperiment(
        series, InputSet::A, SimParams{}, benches, 1);

    svc.setCacheDir(oldDir);
    svc.setMemoize(oldMemo);

    ASSERT_EQ(cold.baseline.size(), warm.baseline.size());
    expectOutcomesIdentical(cold.baseline[0], warm.baseline[0]);
    expectOutcomesIdentical(cold.outcomes[0][0], warm.outcomes[0][0]);
    EXPECT_EQ(cold.relTime, warm.relTime);
}

} // namespace
} // namespace wisc
