/**
 * @file
 * Unit tests for the JRS confidence estimator: streak thresholds, reset
 * on misprediction, both cold-miss policies, history sensitivity, and
 * tagged-set eviction.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "uarch/confidence.hh"
#include "uarch/updown_conf.hh"

namespace wisc {
namespace {

SimParams
confParams(bool missHigh, unsigned threshold = 4)
{
    SimParams p;
    p.confSets = 16;
    p.confWays = 2;
    p.confThreshold = threshold;
    p.confCtrBits = 4;
    p.confMissIsHigh = missHigh;
    return p;
}

TEST(ConfidenceTest, ConservativeColdMissIsLow)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(false), stats);
    EXPECT_FALSE(c.estimate(100, 0));
}

TEST(ConfidenceTest, OptimisticColdMissIsHigh)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(true), stats);
    EXPECT_TRUE(c.estimate(100, 0));
}

TEST(ConfidenceTest, StreakReachesThreshold)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(false, 4), stats);
    for (int i = 0; i < 3; ++i)
        c.update(100, 0, true);
    EXPECT_FALSE(c.estimate(100, 0)) << "3 < threshold 4";
    c.update(100, 0, true);
    EXPECT_TRUE(c.estimate(100, 0));
}

TEST(ConfidenceTest, MispredictionResetsCounter)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(false, 4), stats);
    for (int i = 0; i < 8; ++i)
        c.update(100, 0, true);
    EXPECT_TRUE(c.estimate(100, 0));
    c.update(100, 0, false);
    EXPECT_FALSE(c.estimate(100, 0));
}

TEST(ConfidenceTest, OptimisticAllocatesOnlyOnMispredict)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(true, 4), stats);
    // Correct updates on a cold entry leave it unallocated: still high.
    c.update(100, 0, true);
    EXPECT_TRUE(c.estimate(100, 0));
    // A mispredict allocates with counter 0: low until re-trained.
    c.update(100, 0, false);
    EXPECT_FALSE(c.estimate(100, 0));
    for (int i = 0; i < 4; ++i)
        c.update(100, 0, true);
    EXPECT_TRUE(c.estimate(100, 0));
}

TEST(ConfidenceTest, HistoryDistinguishesContexts)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(false, 4), stats);
    for (int i = 0; i < 8; ++i)
        c.update(100, 0xAB, true);
    EXPECT_TRUE(c.estimate(100, 0xAB));
    EXPECT_FALSE(c.estimate(100, 0x13))
        << "a different history context is a different entry";
}

TEST(ConfidenceTest, ZeroHistoryBitsIgnoresHistory)
{
    SimParams p = confParams(false, 4);
    p.confHistBits = 0;
    StatSet stats;
    JrsConfidenceEstimator c(p, stats);
    for (int i = 0; i < 8; ++i)
        c.update(100, 0xAB, true);
    EXPECT_TRUE(c.estimate(100, 0xFF))
        << "with 0 history bits, all contexts share one entry";
}

TEST(ConfidenceTest, ResetClearsState)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(false, 4), stats);
    for (int i = 0; i < 8; ++i)
        c.update(100, 0, true);
    c.reset();
    EXPECT_FALSE(c.estimate(100, 0));
}

TEST(ConfidenceTest, CounterSaturates)
{
    StatSet stats;
    JrsConfidenceEstimator c(confParams(false, 15), stats);
    for (int i = 0; i < 100; ++i)
        c.update(100, 0, true);
    EXPECT_TRUE(c.estimate(100, 0)) << "saturated at 4-bit maximum";
}

TEST(UpDownConfidenceTest, ColdIsLow)
{
    SimParams p;
    StatSet stats;
    UpDownConfidenceEstimator c(p, stats);
    EXPECT_FALSE(c.estimate(100, 0));
}

TEST(UpDownConfidenceTest, ToleratesRareRegularMispredicts)
{
    // 3% misprediction rate: a JRS streak counter with threshold 8 is
    // high only ~75% of the time; the rate-based up/down counter should
    // stay high almost always once warm.
    SimParams p;
    StatSet stats;
    UpDownConfidenceEstimator c(p, stats);
    // Warm up.
    for (int i = 0; i < 200; ++i)
        c.update(100, 0, i % 33 != 0);
    unsigned high = 0;
    for (int i = 0; i < 330; ++i) {
        if (c.estimate(100, 0))
            ++high;
        c.update(100, 0, i % 33 != 0);
    }
    EXPECT_GT(high, 300u);
}

TEST(UpDownConfidenceTest, HardBranchStaysLow)
{
    SimParams p;
    StatSet stats;
    UpDownConfidenceEstimator c(p, stats);
    Rng rng(5);
    for (int i = 0; i < 300; ++i)
        c.update(100, 0, rng.chance(0.6)); // 40% mispredicts
    unsigned high = 0;
    for (int i = 0; i < 100; ++i) {
        if (c.estimate(100, 0))
            ++high;
        c.update(100, 0, rng.chance(0.6));
    }
    EXPECT_LT(high, 20u);
}

} // namespace
} // namespace wisc
