/**
 * @file
 * Unit tests for the branch-prediction stack: gshare/PAs hybrid
 * learning, speculative-history checkpointing, BTB insertion/eviction
 * with wish-type bits, the return address stack, and the indirect
 * target cache.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "uarch/bpred.hh"

namespace wisc {
namespace {

SimParams
smallParams()
{
    SimParams p;
    p.gshareEntries = 1024;
    p.pasHistEntries = 64;
    p.pasPatternEntries = 1024;
    p.selectorEntries = 256;
    p.btbSets = 16;
    p.btbWays = 2;
    return p;
}

TEST(HybridPredictorTest, LearnsAlwaysTaken)
{
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);
    for (int i = 0; i < 50; ++i) {
        BpredCheckpoint ckpt;
        bool pred = bp.predict(42, ckpt);
        bp.updateSpeculative(42, pred);
        bp.train(42, true, ckpt);
        bp.recover(42, true, ckpt); // keep history exact
    }
    BpredCheckpoint ckpt;
    EXPECT_TRUE(bp.predict(42, ckpt));
}

TEST(HybridPredictorTest, LearnsAlternatingViaHistory)
{
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);
    bool dir = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        dir = !dir;
        BpredCheckpoint ckpt;
        bool pred = bp.predict(42, ckpt);
        if (i >= 200 && pred == dir)
            ++correct;
        bp.updateSpeculative(42, pred);
        bp.train(42, dir, ckpt);
        bp.recover(42, dir, ckpt);
    }
    // A history-based predictor captures a strict alternation.
    EXPECT_GT(correct, 190);
}

TEST(HybridPredictorTest, CheckpointRestoresHistory)
{
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);
    bp.updateSpeculative(1, true);
    bp.updateSpeculative(2, false);
    std::uint64_t before = bp.globalHistory();

    BpredCheckpoint ckpt;
    bp.predict(3, ckpt);
    bp.updateSpeculative(3, true); // speculative, to be undone
    bp.updateSpeculative(4, true);
    EXPECT_NE(bp.globalHistory(), (before << 1) | 0);

    bp.recover(3, false, ckpt); // branch 3 actually not taken
    EXPECT_EQ(bp.globalHistory(), (before << 1) | 0);
}

TEST(HybridPredictorTest, SelectorPicksBetterComponent)
{
    // A pattern gshare can learn but a short local history cannot
    // (period longer than PAs history); after training, prediction
    // accuracy must be high, implying the selector settled correctly.
    StatSet stats;
    SimParams p = smallParams();
    HybridPredictor bp(p, stats);
    Rng rng(3);
    int correct = 0, total = 0;
    for (int i = 0; i < 2000; ++i) {
        bool dir = (i % 7) < 3; // period-7 pattern
        BpredCheckpoint ckpt;
        bool pred = bp.predict(77, ckpt);
        if (i > 1000) {
            ++total;
            if (pred == dir)
                ++correct;
        }
        bp.updateSpeculative(77, pred);
        bp.train(77, dir, ckpt);
        bp.recover(77, dir, ckpt);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(HybridPredictorTest, SelectorTrainsOnFetchTimePredictions)
{
    // Regression: with two in-flight branches whose gshare entries
    // alias, training the second branch retrains the shared counter
    // before the first branch retires. The selector must be judged on
    // the prediction gshare actually made at fetch, not on the
    // counter's retirement-time value — the old code punished gshare
    // for a prediction it never made.
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);

    BpredCheckpoint ckptA;
    bool predA = bp.predict(4, ckptA); // gshare index 4 ^ hist 0
    EXPECT_TRUE(predA) << "fresh counters are weakly taken";
    EXPECT_TRUE(ckptA.gshareTaken);
    bp.updateSpeculative(4, predA);

    // Second in-flight branch: pc=5 under hist=1 hits gshare entry
    // 5^1 == 4^0, the same counter branch A predicted with.
    BpredCheckpoint ckptB;
    bool predB = bp.predict(5, ckptB);
    bp.updateSpeculative(5, predB);

    // B retires (twice, for determinism) as not-taken, driving the
    // shared gshare counter to strongly not-taken while A is still in
    // flight.
    bp.train(5, false, ckptB);
    bp.train(5, false, ckptB);

    // A retires taken. Both components predicted taken at fetch, so
    // the selector must not move. The buggy selector re-read the
    // clobbered counter, judged gshare wrong, and switched this PC to
    // the PAs side.
    bp.train(4, true, ckptA);

    bp.recover(4, false, BpredCheckpoint{}); // histories back to 0
    BpredCheckpoint probe;
    // The shared gshare counter now says not-taken while PAs says
    // taken; a selector still (correctly) on the gshare side predicts
    // not-taken.
    EXPECT_FALSE(bp.predict(4, probe))
        << "selector was mistrained against retirement-time counters";
}

TEST(BtbTest, InsertLookup)
{
    StatSet stats;
    Btb btb(smallParams(), stats);
    EXPECT_EQ(btb.lookup(100), nullptr);
    btb.insert(100, 200, WishKind::Jump, true);
    const BtbEntry *e = btb.lookup(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 200u);
    EXPECT_EQ(e->wish, WishKind::Jump);
    EXPECT_TRUE(e->isConditional);
}

TEST(BtbTest, LruEviction)
{
    StatSet stats;
    SimParams p = smallParams(); // 16 sets x 2 ways
    Btb btb(p, stats);
    // Three branches in the same set (stride = sets).
    btb.insert(0, 1, WishKind::None, true);
    btb.insert(16, 2, WishKind::None, true);
    btb.lookup(0); // make pc=0 recently used
    btb.insert(32, 3, WishKind::None, true); // evicts pc=16
    EXPECT_NE(btb.lookup(0), nullptr);
    EXPECT_EQ(btb.lookup(16), nullptr);
    EXPECT_NE(btb.lookup(32), nullptr);
}

TEST(BtbTest, UpdateExistingEntry)
{
    StatSet stats;
    Btb btb(smallParams(), stats);
    btb.insert(5, 10, WishKind::None, true);
    btb.insert(5, 20, WishKind::Loop, true);
    const BtbEntry *e = btb.lookup(5);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 20u);
    EXPECT_EQ(e->wish, WishKind::Loop);
}

TEST(RasTest, PushPopLifo)
{
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    ras.push(30);
    EXPECT_EQ(ras.pop(), 30u);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_EQ(ras.pop(), 0u) << "empty stack returns 0";
}

TEST(RasTest, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // drops 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(RasTest, CheckpointRestore)
{
    ReturnAddressStack ras(8);
    ras.push(10);
    RasCheckpoint ckpt = ras.checkpoint();
    ras.push(20);
    ras.push(30);
    ras.restore(ckpt);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(RasTest, RestoreRepairsTopAcrossOverflow)
{
    // Regression: the old shift-down overflow moved every entry to a
    // new slot but restore() only repaired the top-of-stack *index*,
    // so a flush spanning an overflow popped a shifted wrong-path
    // target. TOS-value repair must restore the checkpointed top even
    // when wrong-path pushes wrapped the buffer over its slot.
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    RasCheckpoint ckpt = ras.checkpoint();
    // Wrong path: three pushes overflow the 4-entry stack, wrapping
    // onto the slots holding 10 and 20.
    ras.push(91);
    ras.push(92);
    ras.push(93);
    ras.restore(ckpt);
    EXPECT_EQ(ras.pop(), 20u) << "checkpointed top must survive a "
                                 "wrong-path overflow";
}

TEST(RasTest, RestoreRepairsPopThenPushClobber)
{
    // A wrong-path pop followed by a push overwrites the checkpointed
    // top slot in place; value repair covers this too.
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    RasCheckpoint ckpt = ras.checkpoint();
    ras.pop();
    ras.push(99); // lands in 20's slot
    ras.restore(ckpt);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(IndirectTargetCacheTest, LearnsPerHistoryTargets)
{
    StatSet stats;
    SimParams p;
    IndirectTargetCache itc(256, p.indirectHistBits, stats);
    itc.update(50, 0xAA, 111);
    itc.update(50, 0x55, 222);
    EXPECT_EQ(itc.predict(50, 0xAA), 111u);
    EXPECT_EQ(itc.predict(50, 0x55), 222u);
}

TEST(IndirectTargetCacheTest, IndexMasksHistoryToConfiguredBits)
{
    // Regression: the index hashed the full unbounded 64-bit history,
    // so two machines identical in every fingerprinted structure could
    // diverge on history bits older than any architected table. Two
    // histories equal in the low `histBits` must alias.
    StatSet stats;
    IndirectTargetCache itc(256, /*histBits=*/8, stats);
    itc.update(50, 0xAB, 111);
    EXPECT_EQ(itc.predict(50, 0xAB | (1ull << 8)), 111u)
        << "bit 8 must be masked off at histBits=8";
    EXPECT_EQ(itc.predict(50, 0xAB | (0xFFull << 32)), 111u)
        << "high history bits must be masked off";
}

} // namespace
} // namespace wisc
