/**
 * @file
 * Unit tests for the branch-prediction stack: gshare/PAs hybrid
 * learning, speculative-history checkpointing, BTB insertion/eviction
 * with wish-type bits, the return address stack, and the indirect
 * target cache.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "uarch/bpred.hh"

namespace wisc {
namespace {

SimParams
smallParams()
{
    SimParams p;
    p.gshareEntries = 1024;
    p.pasHistEntries = 64;
    p.pasPatternEntries = 1024;
    p.selectorEntries = 256;
    p.btbSets = 16;
    p.btbWays = 2;
    return p;
}

TEST(HybridPredictorTest, LearnsAlwaysTaken)
{
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);
    for (int i = 0; i < 50; ++i) {
        BpredCheckpoint ckpt;
        bool pred = bp.predict(42, ckpt);
        bp.updateSpeculative(42, pred);
        bp.train(42, true, ckpt);
        bp.recover(42, true, ckpt); // keep history exact
    }
    BpredCheckpoint ckpt;
    EXPECT_TRUE(bp.predict(42, ckpt));
}

TEST(HybridPredictorTest, LearnsAlternatingViaHistory)
{
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);
    bool dir = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        dir = !dir;
        BpredCheckpoint ckpt;
        bool pred = bp.predict(42, ckpt);
        if (i >= 200 && pred == dir)
            ++correct;
        bp.updateSpeculative(42, pred);
        bp.train(42, dir, ckpt);
        bp.recover(42, dir, ckpt);
    }
    // A history-based predictor captures a strict alternation.
    EXPECT_GT(correct, 190);
}

TEST(HybridPredictorTest, CheckpointRestoresHistory)
{
    StatSet stats;
    HybridPredictor bp(smallParams(), stats);
    bp.updateSpeculative(1, true);
    bp.updateSpeculative(2, false);
    std::uint64_t before = bp.globalHistory();

    BpredCheckpoint ckpt;
    bp.predict(3, ckpt);
    bp.updateSpeculative(3, true); // speculative, to be undone
    bp.updateSpeculative(4, true);
    EXPECT_NE(bp.globalHistory(), (before << 1) | 0);

    bp.recover(3, false, ckpt); // branch 3 actually not taken
    EXPECT_EQ(bp.globalHistory(), (before << 1) | 0);
}

TEST(HybridPredictorTest, SelectorPicksBetterComponent)
{
    // A pattern gshare can learn but a short local history cannot
    // (period longer than PAs history); after training, prediction
    // accuracy must be high, implying the selector settled correctly.
    StatSet stats;
    SimParams p = smallParams();
    HybridPredictor bp(p, stats);
    Rng rng(3);
    int correct = 0, total = 0;
    for (int i = 0; i < 2000; ++i) {
        bool dir = (i % 7) < 3; // period-7 pattern
        BpredCheckpoint ckpt;
        bool pred = bp.predict(77, ckpt);
        if (i > 1000) {
            ++total;
            if (pred == dir)
                ++correct;
        }
        bp.updateSpeculative(77, pred);
        bp.train(77, dir, ckpt);
        bp.recover(77, dir, ckpt);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(BtbTest, InsertLookup)
{
    StatSet stats;
    Btb btb(smallParams(), stats);
    EXPECT_EQ(btb.lookup(100), nullptr);
    btb.insert(100, 200, WishKind::Jump, true);
    const BtbEntry *e = btb.lookup(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 200u);
    EXPECT_EQ(e->wish, WishKind::Jump);
    EXPECT_TRUE(e->isConditional);
}

TEST(BtbTest, LruEviction)
{
    StatSet stats;
    SimParams p = smallParams(); // 16 sets x 2 ways
    Btb btb(p, stats);
    // Three branches in the same set (stride = sets).
    btb.insert(0, 1, WishKind::None, true);
    btb.insert(16, 2, WishKind::None, true);
    btb.lookup(0); // make pc=0 recently used
    btb.insert(32, 3, WishKind::None, true); // evicts pc=16
    EXPECT_NE(btb.lookup(0), nullptr);
    EXPECT_EQ(btb.lookup(16), nullptr);
    EXPECT_NE(btb.lookup(32), nullptr);
}

TEST(BtbTest, UpdateExistingEntry)
{
    StatSet stats;
    Btb btb(smallParams(), stats);
    btb.insert(5, 10, WishKind::None, true);
    btb.insert(5, 20, WishKind::Loop, true);
    const BtbEntry *e = btb.lookup(5);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 20u);
    EXPECT_EQ(e->wish, WishKind::Loop);
}

TEST(RasTest, PushPopLifo)
{
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    ras.push(30);
    EXPECT_EQ(ras.pop(), 30u);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_EQ(ras.pop(), 0u) << "empty stack returns 0";
}

TEST(RasTest, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // drops 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(RasTest, CheckpointRestore)
{
    ReturnAddressStack ras(8);
    ras.push(10);
    unsigned top = ras.top();
    ras.push(20);
    ras.push(30);
    ras.restore(top);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(IndirectTargetCacheTest, LearnsPerHistoryTargets)
{
    StatSet stats;
    IndirectTargetCache itc(256, stats);
    itc.update(50, 0xAA, 111);
    itc.update(50, 0x55, 222);
    EXPECT_EQ(itc.predict(50, 0xAA), 111u);
    EXPECT_EQ(itc.predict(50, 0x55), 222u);
}

} // namespace
} // namespace wisc
