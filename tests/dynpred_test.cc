/**
 * @file
 * Dynamic-predication suite (ctest label dynpred-tsan, matched by
 * `ctest -L dynpred` and the ThreadSanitizer job's `-L tsan`).
 *
 * Covers, in order:
 *  - MergePointTable learning: if-then and if-then-else reconvergence
 *    from synthetic retired streams, usefulness training, tracking
 *    budget, and checkpoint round-trips;
 *  - end-to-end region correctness: MergePoint and FetchGate runs must
 *    reproduce the functional emulator's architectural results, with
 *    both the region-success and the region-failure (missed merge
 *    point) paths exercised;
 *  - the attribution invariant in every dynPred mode (the CPI stack
 *    sums exactly to cycles);
 *  - the confidence history-oracle regression: the estimate the core
 *    consulted at fetch for every retired branch must be reproducible
 *    from a parallel estimator fed only retired-order updates under the
 *    fetch-time (actual-outcome) history — wrong-path fetches must
 *    leave no trace in the estimator;
 *  - nested wish × dynamic regions: a differential fuzz campaign over
 *    machines that run compiler wish branches and hardware merge-point
 *    regions simultaneously, with flush recovery under ROB pressure;
 *  - sampled-simulation guards: the MergePoint/fast-forward exclusion,
 *    the 0-window fallback, and the 1-window case reporting its CPI
 *    confidence interval as unavailable instead of dividing by zero.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/emulator.hh"
#include "arch/executor.hh"
#include "common/bytes.hh"
#include "common/stats.hh"
#include "fuzz/fuzzer.hh"
#include "harness/runner.hh"
#include "isa/assembler.hh"
#include "harness/sampled_runner.hh"
#include "uarch/confidence.hh"
#include "uarch/mergepoint.hh"
#include "uarch/probe.hh"

namespace wisc {
namespace {

// ---------------------------------------------------------------------
// MergePointTable unit tests
// ---------------------------------------------------------------------

/** Retire a linear run of non-branch µops [from, to). */
void
retireLinear(MergePointTable &t, std::uint32_t from, std::uint32_t to)
{
    for (std::uint32_t pc = from; pc < to; ++pc)
        t.onRetire(pc, pc + 1, false, 0);
}

TEST(MergePointTable, LearnsIfThenReconvergence)
{
    // Hammock: Br@10 (taken target 20) over a 9-µop then-block; both
    // paths reconverge at 20, which is exactly the taken target.
    MergePointTable t(64, 96);

    // Not-taken traversal: the branch allocates merge=20, the tracker
    // walks the then-block and confirms at 20.
    t.onRetire(10, 11, true, 20);
    retireLinear(t, 11, 20);
    t.onRetire(20, 21, false, 0);
    EXPECT_FALSE(t.predict(10, 2).has_value()) << "one confirmation";

    // Taken traversal confirms again (branch retires straight to 20).
    t.onRetire(10, 20, true, 20);
    t.onRetire(20, 21, false, 0);

    auto m = t.predict(10, 2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, 20u);
}

TEST(MergePointTable, LearnsIfThenElseFromJumpOverElse)
{
    // if-then-else: Br@10 taken->14 (else), then-block 11..13 ends with
    // Jmp@13 -> 18 (join), else-block 14..17 falls into 18.
    MergePointTable t(64, 96);

    // Not-taken traversal: initial estimate is the taken target (14);
    // the Jmp@13 retires with nextPc 18 — a forward jump past the
    // estimate — which moves the merge estimate to 18.
    t.onRetire(10, 11, true, 14);
    retireLinear(t, 11, 13);
    t.onRetire(13, 18, false, 0); // the jump over the else-block
    t.onRetire(18, 19, false, 0); // lands at 18: first confirmation
    EXPECT_FALSE(t.predict(10, 2).has_value())
        << "moving the estimate resets confirmation, so only the "
           "arrival at 18 has confirmed so far";

    // Taken traversal walks the else-block and confirms 18 again.
    t.onRetire(10, 14, true, 14);
    retireLinear(t, 14, 18);
    t.onRetire(18, 19, false, 0);

    auto m = t.predict(10, 2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, 18u);
}

TEST(MergePointTable, BackwardExitAbandonsTheSample)
{
    // A loop back edge inside the tracked region: no forward
    // reconvergence, the sample is abandoned, nothing confirms.
    MergePointTable t(64, 96);
    t.onRetire(10, 11, true, 20);
    t.onRetire(11, 5, false, 0); // backwards, out of the hammock
    t.onRetire(20, 21, false, 0);
    EXPECT_FALSE(t.predict(10, 1).has_value());
}

TEST(MergePointTable, TrackingBudgetBoundsTheWalk)
{
    // Budget of 4 retired µops: a 9-µop then-block never confirms.
    MergePointTable t(64, 4);
    t.onRetire(10, 11, true, 20);
    retireLinear(t, 11, 20);
    t.onRetire(20, 21, false, 0);
    EXPECT_FALSE(t.predict(10, 1).has_value());
}

TEST(MergePointTable, UsefulnessKillsAndRevivesEntries)
{
    MergePointTable t(64, 96);
    for (int pass = 0; pass < 2; ++pass) {
        t.onRetire(10, 20, true, 20);
        t.onRetire(20, 21, false, 0);
    }
    ASSERT_TRUE(t.predict(10, 2).has_value());

    // One failed region (allocation usefulness is 1, failure costs 2).
    t.noteOutcome(10, /*failed=*/true, /*mispredicted=*/true);
    EXPECT_FALSE(t.predict(10, 2).has_value())
        << "a failed region must suppress further predictions";

    // A successful flush-saving region revives it.
    t.noteOutcome(10, /*failed=*/false, /*mispredicted=*/true);
    EXPECT_TRUE(t.predict(10, 2).has_value());

    // Persistent "predictor was right anyway" decay kills it again.
    for (int i = 0; i < 4; ++i)
        t.noteOutcome(10, /*failed=*/false, /*mispredicted=*/false);
    EXPECT_FALSE(t.predict(10, 2).has_value());
}

TEST(MergePointTable, CheckpointRoundTripsMidTracking)
{
    MergePointTable t(64, 96);
    t.onRetire(10, 20, true, 20);
    t.onRetire(20, 21, false, 0);
    t.onRetire(10, 11, true, 20); // leave a sample mid-flight
    retireLinear(t, 11, 15);

    ByteWriter w;
    t.saveState(w);
    const ByteBuffer buf = w.take();

    MergePointTable u(64, 96);
    ByteReader r(buf);
    u.restoreState(r);

    // The restored table finishes the interrupted walk identically.
    retireLinear(t, 15, 20);
    t.onRetire(20, 21, false, 0);
    retireLinear(u, 15, 20);
    u.onRetire(20, 21, false, 0);
    auto mt = t.predict(10, 2);
    auto mu = u.predict(10, 2);
    ASSERT_TRUE(mt.has_value());
    ASSERT_TRUE(mu.has_value());
    EXPECT_EQ(*mt, *mu);
}

// ---------------------------------------------------------------------
// End-to-end region correctness
// ---------------------------------------------------------------------

RunOutcome
dynRun(const Program &prog, DynPredMode mode, bool perfectConf,
       const std::vector<ProbeSink *> &sinks = {})
{
    SimParams p;
    p.wishEnabled = false; // normal binaries: no compiler hints
    p.dynPred = mode;
    p.oracle.perfectConfidence = perfectConf;
    return captureRun(prog, p, sinks);
}

/** MergePoint regions — including failed ones — must be architecturally
 *  invisible: same result register, same memory fingerprint as the
 *  functional emulator, on machines that trigger heavily (the perfect
 *  confidence oracle flags every mispredicted branch low-confidence). */
TEST(DynPredRegion, MergePointMatchesEmulatorWithFailedRegions)
{
    bool sawFailure = false, sawSuccess = false;
    for (const char *name : {"gzip", "vpr", "mcf"}) {
        CompiledWorkload w = compileWorkload(name);
        Program prog =
            programFor(w, BinaryVariant::Normal, InputSet::A);

        Emulator emu;
        EmuResult ref = emu.run(prog);
        ASSERT_TRUE(ref.halted) << name;

        RunOutcome r =
            dynRun(prog, DynPredMode::MergePoint, /*perfectConf=*/true);
        ASSERT_TRUE(r.result.halted) << name;
        EXPECT_EQ(r.result.resultReg, ref.resultReg) << name;
        EXPECT_EQ(r.result.memFingerprint, ref.memFingerprint) << name;

        EXPECT_GT(r.require("dyn.triggers"), 0u) << name;
        // Triggers squashed by an older branch's flush resolve as
        // neither success nor failure, so <= rather than ==.
        EXPECT_LE(r.require("dyn.region_success") +
                      r.require("dyn.region_failed"),
                  r.require("dyn.triggers"))
            << name;
        sawFailure |= r.require("dyn.region_failed") > 0;
        sawSuccess |= r.require("dyn.region_success") > 0;
    }
    EXPECT_TRUE(sawFailure)
        << "the missed-merge-point flush path was never exercised";
    EXPECT_TRUE(sawSuccess)
        << "no region ever reconverged; the mechanism is inert";
}

/** FetchGate is pure timing: architectural results identical to the
 *  emulator, strictly more cycles than the ungated machine (every gate
 *  is an injected stall), and gates actually fired. */
TEST(DynPredRegion, FetchGateStallsWithoutArchEffects)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    Emulator emu;
    EmuResult ref = emu.run(prog);

    RunOutcome off = dynRun(prog, DynPredMode::Off, false);
    RunOutcome gate = dynRun(prog, DynPredMode::FetchGate, false);

    ASSERT_TRUE(gate.result.halted);
    EXPECT_EQ(gate.result.resultReg, ref.resultReg);
    EXPECT_EQ(gate.result.memFingerprint, ref.memFingerprint);
    EXPECT_EQ(gate.result.retiredUops, off.result.retiredUops)
        << "fetch gating must not add or drop retired µops";
    EXPECT_GT(gate.require("dyn.fetch_gates"), 0u);
    EXPECT_GT(gate.result.cycles, off.result.cycles);
}

/** dynPred=Off must not even register the dyn.* counters — the golden
 *  statistics namespace is bit-identical to the pre-dynPred machine. */
TEST(DynPredRegion, OffModeRegistersNoDynCounters)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);
    RunOutcome off = dynRun(prog, DynPredMode::Off, false);
    for (const auto &kv : off.stats)
        EXPECT_NE(kv.first.rfind("dyn.", 0), 0u) << kv.first;

    RunOutcome on = dynRun(prog, DynPredMode::MergePoint, false);
    EXPECT_EQ(on.stat("dyn.triggers"), on.require("dyn.triggers"));
}

/** The CPI stack must stay exhaustive and exclusive in every dynamic
 *  mode: nullified region µops, deferred trigger resolution and gate
 *  stalls all land in exactly one bucket. */
TEST(DynPredRegion, AttributionSumsToCyclesInEveryMode)
{
    const char *const kBuckets[] = {
        "attrib.base",            "attrib.pred_nop",
        "attrib.pred_wait",       "attrib.flush_normal",
        "attrib.flush_wish_high", "attrib.flush_loop_early",
        "attrib.flush_loop_noexit", "attrib.cache_miss",
        "attrib.fetch_stall",     "attrib.rob_iq_full",
    };
    CompiledWorkload w = compileWorkload("vpr");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    for (DynPredMode mode : {DynPredMode::Off, DynPredMode::MergePoint,
                             DynPredMode::FetchGate}) {
        SimParams p;
        p.wishEnabled = false;
        p.dynPred = mode;
        p.oracle.perfectConfidence = true; // maximize triggers/gates
        p.collectAttribution = true;
        RunOutcome r = captureRun(prog, p);
        ASSERT_TRUE(r.result.halted);
        std::uint64_t sum = 0;
        for (const char *b : kBuckets)
            sum += r.require(b);
        EXPECT_EQ(sum, r.result.cycles)
            << "mode " << static_cast<int>(mode);
    }
}

// ---------------------------------------------------------------------
// Confidence history-oracle regression (the fidelity audit)
// ---------------------------------------------------------------------

struct ConfRecord
{
    std::uint64_t uid;
    std::uint32_t pc;
    Cycle fetchCycle;
    Cycle retireCycle;
    bool highConf;
    bool mispredicted;
};

/** Records the fetch cycle of every µop and the confidence decision of
 *  every retired conditional branch. */
struct ConfSink final : ProbeSink
{
    std::unordered_map<std::uint64_t, Cycle> fetchCycle;
    std::vector<ConfRecord> records;

    void
    onFetch(const FetchProbe &p) override
    {
        fetchCycle.emplace(p.uid, p.cycle);
    }

    void
    onRetire(const RetireProbe &p) override
    {
        if (!p.isCondBr || !p.confValid)
            return;
        auto it = fetchCycle.find(p.uid);
        ASSERT_NE(it, fetchCycle.end());
        records.push_back(ConfRecord{p.uid, p.pc, it->second, p.cycle,
                                     p.highConf, p.mispredicted});
    }
};

/**
 * The audit's contract, checked end-to-end: the confidence value the
 * core consulted at fetch equals what a parallel JRS estimator
 * produces when fed only *retired-order* updates under each branch's
 * actual-outcome global history. Two things break this if the
 * squash/update plumbing regresses:
 *  - a wrong-path fetch mutating estimator state (queries must be
 *    pure), or
 *  - an update keyed to resolve-time instead of fetch-time history.
 * The only tolerated ambiguity is a branch retiring on the very cycle
 * a later one is fetched — intra-cycle stage order is not part of the
 * contract, so both pre- and post-update estimates are accepted there.
 */
TEST(ConfidenceHistoryOracle, FetchEstimateMatchesRetireOrderedReplay)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    SimParams params;
    params.wishEnabled = false;
    params.dynPred = DynPredMode::FetchGate; // estimator on, no regions
    ConfSink sink;
    RunOutcome r = captureRun(prog, params, {&sink});
    ASSERT_TRUE(r.result.halted);
    ASSERT_FALSE(sink.records.empty());
    ASSERT_EQ(sink.records.size(), r.require("core.cond_branches"));

    // Functional replay: the retired conditional-branch stream with
    // actual taken directions.
    struct FuncBr
    {
        std::uint32_t pc;
        bool taken;
    };
    std::vector<FuncBr> funcBrs;
    {
        ArchState st;
        st.reset();
        st.loadData(prog);
        std::uint32_t pc = prog.entry();
        const auto codeSize = static_cast<std::uint32_t>(prog.size());
        while (true) {
            const Instruction &inst = prog.at(pc);
            StepResult s = executeInst(inst, pc, codeSize, st, nullptr);
            if (inst.op == Opcode::Br)
                funcBrs.push_back(FuncBr{pc, s.taken});
            if (s.halted)
                break;
            pc = s.nextIndex;
        }
    }
    ASSERT_EQ(funcBrs.size(), sink.records.size());

    // Retired-order replay against a parallel estimator.
    StatSet oracleStats;
    JrsConfidenceEstimator oracle(params, oracleStats);
    std::uint64_t hist = 0;
    std::vector<std::uint64_t> histAtFetch(funcBrs.size());
    for (std::size_t i = 0; i < funcBrs.size(); ++i) {
        ASSERT_EQ(sink.records[i].pc, funcBrs[i].pc) << "at branch " << i;
        histAtFetch[i] = hist;
        hist = (hist << 1) | (funcBrs[i].taken ? 1 : 0);
    }

    std::size_t applied = 0;
    std::size_t ambiguous = 0;
    for (std::size_t i = 0; i < sink.records.size(); ++i) {
        const ConfRecord &rec = sink.records[i];
        while (applied < i &&
               sink.records[applied].retireCycle < rec.fetchCycle) {
            const ConfRecord &u = sink.records[applied];
            oracle.update(u.pc, histAtFetch[applied], !u.mispredicted);
            ++applied;
        }
        const bool strict = oracle.estimate(rec.pc, histAtFetch[i]);
        if (strict == rec.highConf)
            continue;
        // Same-cycle retire/fetch tie: peek past the tied updates.
        JrsConfidenceEstimator peek = oracle;
        std::size_t k = applied;
        bool matched = false;
        while (k < i &&
               sink.records[k].retireCycle == rec.fetchCycle) {
            const ConfRecord &u = sink.records[k];
            peek.update(u.pc, histAtFetch[k], !u.mispredicted);
            ++k;
            if (peek.estimate(rec.pc, histAtFetch[i]) == rec.highConf) {
                matched = true;
                break;
            }
        }
        ++ambiguous;
        ASSERT_TRUE(matched)
            << "branch " << i << " @pc " << rec.pc
            << ": fetch-time estimate " << rec.highConf
            << " is not reproducible from retired-order updates";
    }
    // Ties must be the exception, not the rule — if most decisions need
    // the tie-break the strict replay model itself is wrong.
    EXPECT_LT(ambiguous, sink.records.size() / 10);
}

// ---------------------------------------------------------------------
// Nested wish × dynamic regions (differential property test)
// ---------------------------------------------------------------------

/** Machines running compiler wish branches and hardware merge-point
 *  regions at the same time, differentially fuzzed against the
 *  reference emulator across all five binary variants. The small-ROB
 *  point forces flushes to land while regions and predicate buffers
 *  are live (the §3.5.3/§3.5.4 recovery interaction). */
TEST(NestedWishDynPred, FuzzCampaignFindsNoDivergence)
{
    FuzzOptions opts;
    opts.seed = 20260808;
    opts.runs = 40;
    opts.shrink = false; // report raw; this is a regression gate
    opts.matrix.clear();
    {
        SimParams p;
        p.checkFinalState = false;
        p.maxCycles = 20'000'000;
        p.maxRetired = 20'000'000;
        p.dynPred = DynPredMode::MergePoint;
        p.dynMergeMinConf = 1;
        p.dynMergeEntries = 64;
        p.confSets = 16;
        p.confHistBits = 4;
        p.confThreshold = 6;
        opts.matrix.push_back({"wish+dynpred", p});

        p.robSize = 32;
        p.iqSize = 8;
        p.lsqSize = 16;
        p.dynMaxRegionUops = 16;
        opts.matrix.push_back({"wish+dynpred-tiny-rob", p});
    }

    FuzzReport rep = fuzzCampaign(opts, nullptr);
    EXPECT_GT(rep.coreRuns, 0u);
    for (const FuzzFailure &f : rep.failures)
        ADD_FAILURE() << f.kind << ": " << f.detail
                      << " (seed " << f.seed << ")";
    EXPECT_TRUE(rep.ok());
}

/** Directed version: a hand-written kernel whose loop body holds both a
 *  compiler-marked wish hammock and an unmarked hammock on the same
 *  pseudo-random state, under ROB pressure. The compiled workloads
 *  cannot serve here — the wish compiler marks *every* forward hammock
 *  in those small kernels, leaving only backward loop branches
 *  unmarked, and the merge table only learns forward reconvergence —
 *  so this is the one place both mechanisms can provably interleave.
 *  The run must match the emulator architecturally and must fire both
 *  wish predication and hardware regions. */
TEST(NestedWishDynPred, WishBinaryWithMergePointMatchesEmulator)
{
    // Full-period LCG (mod 2^13) drives both hammock conditions, so
    // neither branch settles into a predictable streak: the wish jump
    // keeps entering low-confidence mode and the unmarked branch keeps
    // presenting low-confidence trigger opportunities.
    Program prog = assemble(R"(
        li r11, 2500
        li r13, 524288
        li r10, 0
        li r4, 0
        li r20, 12345
    loop:
        muli r20, r20, 13
        addi r20, r20, 7
        andi r20, r20, 8191
        ; wish hammock on bit 3: then-block under p2, else under p1.
        andi r21, r20, 8
        cmpi.eq p1, p2, r21, 0
        wish.jump p1, welse
        (p2) add r4, r4, r20
        (p2) xori r4, r4, 85
        (p2) addi r4, r4, 3
        wish.join p2, wjoin
    welse:
        (p1) muli r22, r20, 3
        (p1) add r4, r4, r22
        (p1) addi r4, r4, 1
    wjoin:
        ; unmarked hammock on bit 5: the merge-point candidate.
        andi r23, r20, 32
        cmpi.eq p3, p0, r23, 0
        br p3, hjoin
        add r4, r4, r20
        xori r4, r4, 51
        addi r4, r4, 9
    hjoin:
        ; store a checksum byte so the memory fingerprint carries
        ; signal through the comparison below.
        andi r24, r4, 255
        andi r25, r20, 4095
        add r26, r13, r25
        st r24, r26, 0
        addi r10, r10, 1
        cmp.lt p7, p0, r10, r11
        br p7, loop
        halt
    )");

    Emulator emu;
    EmuResult ref = emu.run(prog);
    ASSERT_TRUE(ref.halted);

    // A high JRS threshold keeps both data-dependent branches in the
    // low-confidence regime; one merge-table confirmation suffices.
    SimParams p;
    p.wishEnabled = true;
    p.dynPred = DynPredMode::MergePoint;
    p.dynMergeMinConf = 1;
    p.confThreshold = 14;
    p.robSize = 64;
    p.iqSize = 16;
    p.lsqSize = 32;
    RunOutcome r = captureRun(prog, p);
    ASSERT_TRUE(r.result.halted);
    EXPECT_EQ(r.result.resultReg, ref.resultReg);
    EXPECT_EQ(r.result.memFingerprint, ref.memFingerprint);
    EXPECT_GT(r.require("dyn.triggers"), 0u)
        << "hardware regions never fired next to wish branches";
    EXPECT_GT(r.stat("wish.low_conf_entries"), 0u)
        << "wish predication never fired";
}

// ---------------------------------------------------------------------
// Sampled-simulation guards (satellite 3)
// ---------------------------------------------------------------------

TEST(SampledDynPred, MergePointIsRejectedByTheSampler)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);
    SimParams p;
    p.sampling.enabled = true;
    p.dynPred = DynPredMode::MergePoint;
    EXPECT_DEATH(runSampled(prog, p), "merge-point");
}

TEST(SampledRunner, ZeroMeasuredWindowsFallsBackToFullRun)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    // A period far past the program's end: the first window start is
    // beyond the functional run, so no window measures anything.
    SimParams p;
    p.sampling.enabled = true;
    p.sampling.periodUops = 1'000'000'000'000ull;
    RunOutcome r = runSampled(prog, p);
    ASSERT_TRUE(r.result.halted);
    EXPECT_EQ(r.stat("sampling.fallback"), 1u);

    RunOutcome full = captureRun(prog, SimParams{});
    EXPECT_EQ(r.result.cycles, full.result.cycles);
    EXPECT_EQ(r.result.memFingerprint, full.result.memFingerprint);
}

/** One measured window: a CPI estimate exists but has no variance to
 *  derive a confidence interval from. The half-width must be reported
 *  as unavailable (valid=0, no cpi_se stat) — not as a silent 0.0 from
 *  a 0/0 division, which reads as perfect confidence downstream. */
TEST(SampledRunner, SingleWindowReportsSeUnavailable)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    // Learn the program's invariant length, then pick a period that
    // lands exactly one window inside it.
    Emulator emu;
    EmuResult ref = emu.run(prog);
    ASSERT_TRUE(ref.halted);
    const std::uint64_t qpTrue = ref.dynInsts - ref.predFalse;

    SimParams p;
    p.sampling.enabled = true;
    p.sampling.periodUops = qpTrue; // first window at qpTrue/2, no 2nd
    p.sampling.warmupUops = 200;
    p.sampling.measureUops = 500;
    RunOutcome r = runSampled(prog, p);
    ASSERT_TRUE(r.result.halted);
    ASSERT_EQ(r.require("sampling.windows"), 1u);
    EXPECT_EQ(r.require("sampling.cpi_se_valid"), 0u);
    EXPECT_EQ(r.stats.count("sampling.cpi_se_x1e6"), 0u)
        << "an unavailable half-width must not be emitted at all";
    EXPECT_GT(r.require("sampling.cpi_x1e6"), 0u)
        << "the point estimate itself is still available";
}

/** Two windows restore the normal report shape (regression guard for
 *  the valid flag's polarity). */
TEST(SampledRunner, TwoWindowsReportAValidSe)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    Emulator emu;
    EmuResult ref = emu.run(prog);
    const std::uint64_t qpTrue = ref.dynInsts - ref.predFalse;

    SimParams p;
    p.sampling.enabled = true;
    p.sampling.periodUops = qpTrue / 2; // windows at ~25% and ~75%
    p.sampling.warmupUops = 200;
    p.sampling.measureUops = 500;
    RunOutcome r = runSampled(prog, p);
    ASSERT_TRUE(r.result.halted);
    ASSERT_GE(r.require("sampling.windows"), 2u);
    EXPECT_EQ(r.require("sampling.cpi_se_valid"), 1u);
    EXPECT_EQ(r.stats.count("sampling.cpi_se_x1e6"), 1u);
}

} // namespace
} // namespace wisc
