/**
 * @file
 * Tests for the CFG analyses: immediate postdominators validated against
 * a brute-force reference on randomly generated CFGs, regionBlocks
 * behavior, acyclicity checks, and the chain-merging simplifier.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "compiler/analysis.hh"
#include "compiler/simplify.hh"

namespace wisc {
namespace {

/** Build a random CFG: each block falls through, jumps forward, or
 *  conditionally branches; the last block halts. */
IrFunction
randomCfg(std::uint64_t seed, unsigned blocks)
{
    Rng rng(seed);
    IrFunction fn;
    for (unsigned i = 0; i < blocks; ++i)
        fn.newBlock();
    fn.setEntry(0);

    for (unsigned i = 0; i < blocks; ++i) {
        Terminator t;
        if (i + 1 == blocks) {
            t.kind = TermKind::Halt;
        } else {
            auto fwd = [&] {
                return static_cast<BlockId>(
                    i + 1 + rng.below(blocks - i - 1));
            };
            switch (rng.below(3)) {
              case 0:
                t.kind = TermKind::Fallthrough;
                t.next = i + 1;
                break;
              case 1:
                t.kind = TermKind::Jump;
                t.taken = fwd();
                break;
              default: {
                t.kind = TermKind::CondBr;
                t.cond = 1;
                t.condC = 2;
                t.taken = fwd();
                t.next = i + 1;
                // The IR requires a defining compare for real passes;
                // analyses don't care, but keep blocks well-formed.
                Instruction cmp;
                cmp.op = Opcode::CmpLtI;
                cmp.pd = 1;
                cmp.pd2 = 2;
                cmp.rs1 = 5;
                fn.block(i).insts.push_back(cmp);
                break;
              }
            }
        }
        fn.block(i).term = t;
    }
    return fn;
}

/** Brute-force postdominator sets via path enumeration on the acyclic
 *  random CFGs above (every path from b must pass through d). */
std::set<BlockId>
brutePostdoms(const IrFunction &fn, BlockId b)
{
    // DFS over all paths from b to Halt; intersect visited sets.
    std::set<BlockId> inter;
    bool first = true;
    std::vector<std::pair<BlockId, std::vector<BlockId>>> stack;
    stack.push_back({b, {b}});
    while (!stack.empty()) {
        auto [cur, path] = stack.back();
        stack.pop_back();
        auto succs = fn.successors(cur);
        if (succs.empty()) {
            std::set<BlockId> s(path.begin(), path.end());
            if (first) {
                inter = s;
                first = false;
            } else {
                std::set<BlockId> out;
                for (BlockId x : inter)
                    if (s.count(x))
                        out.insert(x);
                inter = out;
            }
            continue;
        }
        for (BlockId nxt : succs) {
            auto p = path;
            p.push_back(nxt);
            stack.push_back({nxt, p});
        }
    }
    inter.erase(b);
    return inter;
}

class PostdomProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, PostdomProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(PostdomProperty, MatchesBruteForce)
{
    IrFunction fn = randomCfg(GetParam(), 10);
    auto ipdom = immediatePostdominators(fn);

    for (BlockId b = 0; b + 1 < fn.numBlocks(); ++b) {
        std::set<BlockId> strict = brutePostdoms(fn, b);
        if (strict.empty()) {
            EXPECT_EQ(ipdom[b], kNoBlock) << "block " << b;
            continue;
        }
        ASSERT_NE(ipdom[b], kNoBlock) << "block " << b;
        EXPECT_TRUE(strict.count(ipdom[b]))
            << "ipdom must be a strict postdominator (block " << b << ")";
        // The immediate postdominator is postdominated by every other
        // strict postdominator of b.
        std::set<BlockId> ofIpdom = brutePostdoms(fn, ipdom[b]);
        for (BlockId d : strict) {
            if (d != ipdom[b])
                EXPECT_TRUE(ofIpdom.count(d))
                    << "block " << b << ": " << d
                    << " should postdominate ipdom " << ipdom[b];
        }
    }
}

TEST(RegionBlocksTest, EmptyWhenEdgesGoStraightToJoin)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId j = fn.newBlock();
    fn.setEntry(a);
    Instruction cmp;
    cmp.op = Opcode::CmpLtI;
    cmp.pd = 1;
    cmp.pd2 = 2;
    fn.block(a).insts.push_back(cmp);
    Terminator t;
    t.kind = TermKind::CondBr;
    t.cond = 1;
    t.condC = 2;
    t.taken = j;
    t.next = j;
    fn.block(a).term = t;
    fn.block(j).term = Terminator{}; // Halt

    EXPECT_TRUE(regionBlocks(fn, a, j).empty());
}

TEST(IsAcyclicTest, DetectsSelfLoop)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId b = fn.newBlock();
    fn.setEntry(a);
    Instruction cmp;
    cmp.op = Opcode::CmpLtI;
    cmp.pd = 1;
    cmp.pd2 = 2;
    fn.block(a).insts.push_back(cmp);
    Terminator t;
    t.kind = TermKind::CondBr;
    t.cond = 1;
    t.condC = 2;
    t.taken = a; // self loop
    t.next = b;
    fn.block(a).term = t;
    fn.block(b).term = Terminator{};

    EXPECT_FALSE(isAcyclic(fn, {a}));
    EXPECT_TRUE(isAcyclic(fn, {b}));
}

TEST(SimplifyTest, MergesForwardChain)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId b = fn.newBlock();
    BlockId c = fn.newBlock();
    fn.setEntry(a);
    Instruction li;
    li.op = Opcode::Li;
    li.rd = 5;
    li.imm = 1;
    fn.block(a).insts.push_back(li);
    fn.block(b).insts.push_back(li);
    fn.block(c).insts.push_back(li);

    Terminator ta;
    ta.kind = TermKind::Jump;
    ta.taken = b;
    fn.block(a).term = ta;
    Terminator tb;
    tb.kind = TermKind::Fallthrough;
    tb.next = c;
    fn.block(b).term = tb;
    fn.block(c).term = Terminator{}; // Halt

    EXPECT_EQ(simplifyChains(fn), 2u);
    EXPECT_FALSE(fn.block(a).dead);
    EXPECT_TRUE(fn.block(b).dead);
    EXPECT_TRUE(fn.block(c).dead);
    EXPECT_EQ(fn.block(a).insts.size(), 3u);
    EXPECT_EQ(fn.block(a).term.kind, TermKind::Halt);
}

TEST(SimplifyTest, DoesNotMergeMultiPredecessorTarget)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId b = fn.newBlock();
    BlockId j = fn.newBlock();
    fn.setEntry(a);
    Instruction cmp;
    cmp.op = Opcode::CmpLtI;
    cmp.pd = 1;
    cmp.pd2 = 2;
    fn.block(a).insts.push_back(cmp);

    Terminator ta;
    ta.kind = TermKind::CondBr;
    ta.cond = 1;
    ta.condC = 2;
    ta.taken = j;
    ta.next = b;
    fn.block(a).term = ta;
    Terminator tb;
    tb.kind = TermKind::Fallthrough;
    tb.next = j;
    fn.block(b).term = tb;
    fn.block(j).term = Terminator{};

    EXPECT_EQ(simplifyChains(fn), 0u) << "j has two predecessors";
}

TEST(SimplifyTest, DoesNotMergeBackwardEdges)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId b = fn.newBlock();
    fn.setEntry(b); // entry is the LATER block
    Terminator tb;
    tb.kind = TermKind::Jump;
    tb.taken = a; // backward jump
    fn.block(b).term = tb;
    fn.block(a).term = Terminator{};

    EXPECT_EQ(simplifyChains(fn), 0u);
}

} // namespace
} // namespace wisc
