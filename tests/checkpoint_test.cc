/**
 * @file
 * Checkpoint and split-run regression tests for sampled simulation
 * (`ctest -L sampling`, alongside the bench-side smoke entry):
 *
 *  - split-advance invariance: interrupting a detailed run with extra
 *    advance() legs must leave the final SimResult and every counter
 *    bit-identical to the uninterrupted run, property-tested across
 *    the differential fuzzer's SimParams matrix (TAGE, bimodal,
 *    attribution, poll scheduler, ...) on generated programs;
 *  - fast-forward checkpoint injection: a Core restored from a
 *    FastForward checkpoint (which carries the wish-engine replica,
 *    hasWish) must finish the program with the exact architectural
 *    result, and the qp-true retire counts of the two legs must sum
 *    to the functional total — the coordinate identity the sampled
 *    estimator extrapolates in;
 *  - restore guards: a checkpoint must not restore into a core with a
 *    different machine configuration or program image;
 *  - sampled-run sanity: a prefix covering the whole program degrades
 *    to exact full detail; a genuinely sampled run keeps architectural
 *    results exact and the CPI estimate in a sane band.
 */

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/generator.hh"
#include "harness/runner.hh"
#include "isa/program.hh"
#include "uarch/core.hh"
#include "uarch/fastfwd.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

std::map<std::string, std::uint64_t>
counters(const StatSet &s)
{
    std::map<std::string, std::uint64_t> m;
    for (const std::string &name : s.counterNames())
        m[name] = s.get(name);
    return m;
}

void
expectSimResultsEqual(const SimResult &a, const SimResult &b,
                      const std::string &what)
{
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.retiredUops, b.retiredUops) << what;
    EXPECT_EQ(a.resultReg, b.resultReg) << what;
    EXPECT_EQ(a.memFingerprint, b.memFingerprint) << what;
}

// ------------------------------------------------------- split advance

TEST(SplitRun, AdvanceLegsAreBitIdenticalAcrossParamsMatrix)
{
    // The sampled runner drives every window as advance(warmup,
    // no-drain) + advance(measure, no-drain); this property says the
    // legging itself can never perturb the machine. Checked across
    // the fuzzer's machine matrix so the predictor zoo (TAGE,
    // bimodal), the poll scheduler, and attribution all get the same
    // guarantee.
    const std::vector<ParamsPoint> matrix = defaultParamsMatrix(true);
    for (std::uint64_t seed : {3ull, 17ull}) {
        Program prog = generateProgram(seed).lower();
        for (const ParamsPoint &pt : matrix) {
            StatSet sa;
            Core ca(pt.params, sa);
            ca.beginRun(prog);
            ca.advance(UINT64_MAX);
            SimResult ra = ca.finishRun();
            ASSERT_TRUE(ra.halted) << pt.label << " seed " << seed;

            StatSet sb;
            Core cb(pt.params, sb);
            cb.beginRun(prog);
            cb.advance(ra.retiredUops / 3, /*drain=*/false);
            cb.advance(2 * ra.retiredUops / 3, /*drain=*/false);
            cb.advance(UINT64_MAX);
            SimResult rb = cb.finishRun();

            const std::string what =
                pt.label + " seed " + std::to_string(seed);
            expectSimResultsEqual(ra, rb, what);
            EXPECT_EQ(counters(sa), counters(sb)) << what;
        }
    }
}

TEST(SplitRun, CoreCheckpointRoundTripIsBitIdentical)
{
    // Save warm state at a drained boundary, restore into a *fresh*
    // core with a fresh StatSet, continue to completion: the combined
    // statistics must be bit-identical to a run that drained at the
    // same point and continued in place. Property-tested across the
    // fuzzer's machine matrix so TAGE, bimodal, attribution, and the
    // poll scheduler all round-trip.
    // Seeds chosen for the longest generated runs (~1.3–1.7k µops) so
    // a drained boundary at a third of the run lands strictly before
    // the halt even with a 512-entry ROB's worth of in-flight work.
    const std::vector<ParamsPoint> matrix = defaultParamsMatrix(true);
    for (std::uint64_t seed : {168ull, 187ull}) {
        Program prog = generateProgram(seed).lower();
        for (const ParamsPoint &pt : matrix) {
            // Pre-pass: measure the run length under these params (the
            // wish decisions, and hence the retire count, depend on the
            // front end) so the boundary is placed mid-run.
            std::uint64_t total;
            {
                StatSet s0;
                Core c0(pt.params, s0);
                c0.beginRun(prog);
                c0.advance(UINT64_MAX);
                SimResult r0 = c0.finishRun();
                ASSERT_TRUE(r0.halted) << pt.label << " seed " << seed;
                total = r0.retiredUops;
            }
            const std::uint64_t boundary = total / 3;

            // Reference: drain at the boundary, keep going in place.
            StatSet sa;
            Core ca(pt.params, sa);
            ca.beginRun(prog);
            ca.advance(boundary, /*drain=*/true);
            ASSERT_FALSE(ca.halted()) << pt.label << " seed " << seed;
            ca.advance(UINT64_MAX);
            SimResult ra = ca.finishRun();
            ASSERT_TRUE(ra.halted) << pt.label << " seed " << seed;

            // Round trip: same drain, checkpoint, restore elsewhere.
            StatSet sb1;
            Core cb1(pt.params, sb1);
            cb1.beginRun(prog);
            cb1.advance(boundary, /*drain=*/true);
            CoreCheckpoint ckpt;
            cb1.checkpoint(ckpt);
            cb1.finishRun();

            StatSet sb2;
            Core cb2(pt.params, sb2);
            cb2.beginRun(prog, ckpt);
            // beginRun re-warms the text image into the fresh StatSet;
            // the uninterrupted run paid that warming once, so leg 2's
            // share is the delta past the restore point.
            const std::map<std::string, std::uint64_t> warm =
                counters(sb2);
            cb2.advance(UINT64_MAX);
            SimResult rb = cb2.finishRun();

            const std::string what =
                pt.label + " seed " + std::to_string(seed);
            expectSimResultsEqual(ra, rb, what);

            // Counters are leg-local deltas and additive across the
            // boundary: leg 1 plus leg 2 (minus leg 2's duplicated
            // text-image warming) must reproduce the uninterrupted
            // totals exactly.
            std::map<std::string, std::uint64_t> sum = counters(sb1);
            for (const auto &kv : counters(sb2))
                sum[kv.first] += kv.second;
            for (const auto &kv : warm)
                sum[kv.first] -= kv.second;
            EXPECT_EQ(sum, counters(sa)) << what;
        }
    }
}

// ------------------------------------------------- checkpoint injection

TEST(Checkpoint, FastForwardInjectionKeepsArchitecturalResultsExact)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog =
        programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);

    Emulator ref;
    EmuResult er = ref.run(prog);
    ASSERT_TRUE(er.halted);

    SimParams sp;
    sp.checkFinalState = false;

    FastForward ff(prog, sp);
    ff.advanceTo(er.dynInsts / 2);
    ASSERT_FALSE(ff.halted());

    CoreCheckpoint ckpt;
    ff.checkpoint(ckpt);
    EXPECT_TRUE(ckpt.hasWish); // the wish-engine replica rides along
    EXPECT_FALSE(ckpt.hasAttribShadow);
    EXPECT_EQ(ckpt.retiredUops, ff.uops());

    StatSet ws;
    Core core(sp, ws);
    core.beginRun(prog, ckpt);
    core.advance(UINT64_MAX);
    SimResult r = core.finishRun();

    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, er.resultReg);
    EXPECT_EQ(r.memFingerprint, er.memFingerprint);

    // The qp-true coordinate identity: functional-prefix qp-true plus
    // the detailed continuation's qp-true retires equals the whole
    // functional qp-true length, even though the raw retire count
    // diverges (the core pads with nullified µops when it predicates).
    const std::uint64_t prefixQt = ff.uops() - ff.predFalse();
    const std::uint64_t contQt = (r.retiredUops - ckpt.retiredUops) -
                                 ws.get("core.retired_pred_false");
    EXPECT_EQ(prefixQt + contQt, er.dynInsts - er.predFalse);
}

TEST(Checkpoint, RestoreGuardsRejectMismatchedMachineAndProgram)
{
    CompiledWorkload w = compileWorkload("mcf");
    Program prog =
        programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);
    Program other =
        programFor(w, BinaryVariant::Normal, InputSet::A);

    SimParams sp;
    sp.checkFinalState = false;
    FastForward ff(prog, sp);
    ff.advanceTo(10'000);

    CoreCheckpoint ckpt;
    ff.checkpoint(ckpt);

    // The guards are simulator invariants (wisc_assert → abort), so
    // they are checked as death tests.
    SimParams wrong = sp;
    wrong.robSize = 64;
    EXPECT_DEATH(
        {
            StatSet s1;
            Core c1(wrong, s1);
            c1.beginRun(prog, ckpt);
        },
        "different machine configuration");
    EXPECT_DEATH(
        {
            StatSet s2;
            Core c2(sp, s2);
            c2.beginRun(other, ckpt);
        },
        "different program");
}

// ------------------------------------------------------- sampled sanity

TEST(SampledRun, PrefixCoveringWholeProgramIsExact)
{
    // With a detailed prefix longer than the program, stratum B is
    // empty and the "estimate" must equal a full detailed run to the
    // cycle.
    CompiledWorkload w = compileWorkload("mcf");
    Program prog =
        programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);

    SimParams fp;
    fp.checkFinalState = false;
    RunOutcome full = captureRun(prog, fp);
    ASSERT_TRUE(full.result.halted);

    SimParams sp = fp;
    sp.sampling.enabled = true;
    sp.sampling.prefixUops = 4 * full.result.retiredUops;
    RunOutcome samp = captureRun(prog, sp);

    EXPECT_EQ(samp.result.cycles, full.result.cycles);
    EXPECT_EQ(samp.result.retiredUops, full.result.retiredUops);
    EXPECT_EQ(samp.result.resultReg, full.result.resultReg);
    EXPECT_EQ(samp.result.memFingerprint, full.result.memFingerprint);
    EXPECT_EQ(samp.require("sampling.windows"), 0u);
    EXPECT_EQ(samp.require("core.cycles"), full.require("core.cycles"));
}

TEST(SampledRun, PeriodicWindowsKeepExactResultsAndSaneEstimate)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program prog =
        programFor(w, BinaryVariant::WishJumpJoinLoop, InputSet::A);

    SimParams fp;
    fp.checkFinalState = false;
    RunOutcome full = captureRun(prog, fp);
    ASSERT_TRUE(full.result.halted);
    const std::uint64_t ujt =
        full.result.retiredUops - full.require("core.retired_pred_false");

    SimParams sp = fp;
    sp.sampling.enabled = true;
    sp.sampling.warmupUops = 2 * fp.robSize;
    sp.sampling.measureUops = 4 * fp.robSize;
    sp.sampling.periodUops = std::max<std::uint64_t>(
        ujt / 8, sp.sampling.warmupUops + sp.sampling.measureUops);
    RunOutcome samp = captureRun(prog, sp);

    // Architectural results are exact, never estimated.
    EXPECT_EQ(samp.require("sampling.qp_true_uops"), ujt);
    EXPECT_EQ(samp.result.resultReg, full.result.resultReg);
    EXPECT_EQ(samp.result.memFingerprint, full.result.memFingerprint);
    EXPECT_EQ(samp.stats.count("sampling.fallback"), 0u);
    EXPECT_GT(samp.require("sampling.windows"), 0u);

    // The CPI estimate is statistical; this is a plumbing sanity band,
    // not the accuracy floor (bench/sampling_validation enforces that).
    const double cpiF = static_cast<double>(full.result.cycles) /
                        static_cast<double>(full.result.retiredUops);
    const double cpiS = static_cast<double>(samp.result.cycles) /
                        static_cast<double>(samp.result.retiredUops);
    EXPECT_GT(cpiS, 0.3 * cpiF);
    EXPECT_LT(cpiS, 3.0 * cpiF);
}

} // namespace
} // namespace wisc
