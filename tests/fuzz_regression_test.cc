/**
 * @file
 * Replays every minimized reproducer checked in under
 * tests/fuzz_regressions/ (WISC_FUZZ_REGRESSION_DIR) through the full
 * differential check. Each .ir file becomes its own named test case.
 *
 * Contract: a reproducer documents a program shape that once diverged
 * (or is a representative stress shape); the current tree must check
 * out clean on it — all five variants architecturally equivalent on the
 * emulator and the core across the smoke matrix. A file whose name
 * contains ".xfail." tracks a known-open divergence instead: it is
 * expected to STILL fail, and starts passing only when the underlying
 * bug is fixed (at which point the marker is removed).
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hh"

namespace wisc {
namespace {

namespace fs = std::filesystem;

std::vector<std::string>
reproducerFiles()
{
    std::vector<std::string> out;
    const fs::path dir = WISC_FUZZ_REGRESSION_DIR;
    if (!fs::exists(dir))
        return out;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".ir")
            out.push_back(e.path().string());
    std::sort(out.begin(), out.end());
    return out;
}

class FuzzRegression : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FuzzRegression, Replays)
{
    std::ifstream in(GetParam());
    ASSERT_TRUE(in) << "cannot open " << GetParam();
    std::ostringstream body;
    body << in.rdbuf();

    FuzzOptions opts; // smoke matrix, core enabled
    CheckOutcome c = replayReproducer(body.str(), opts);

    const bool xfail =
        GetParam().find(".xfail.") != std::string::npos;
    if (xfail) {
        EXPECT_FALSE(c.ok)
            << GetParam()
            << " is marked xfail but no longer reproduces — the bug is "
               "fixed; drop the .xfail marker from the filename";
    } else {
        EXPECT_TRUE(c.ok) << GetParam() << " regressed: [" << c.kind
                          << "] " << c.detail;
    }
}

std::string
caseName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string n = fs::path(info.param).stem().string();
    for (char &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(Checked, FuzzRegression,
                         ::testing::ValuesIn(reproducerFiles()),
                         caseName);

/** Keeps the suite non-empty (and the directory contract visible) even
 *  if every reproducer were ever removed. */
TEST(FuzzRegressionDir, Exists)
{
    EXPECT_TRUE(fs::exists(WISC_FUZZ_REGRESSION_DIR));
    EXPECT_FALSE(reproducerFiles().empty())
        << "tests/fuzz_regressions/ should carry at least the seed "
           "reproducers";
}

} // namespace
} // namespace wisc
