/**
 * @file
 * Edge-case tests for region discovery and conversion: rejection of
 * side entries, cyclic regions, oversized regions, predicate-write
 * conflicts, and missing defining compares; plus structural checks of
 * the converted output (guards, unc flags, wish terminator rewiring)
 * and the lowering's fallthrough/jump placement.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "compiler/builder.hh"
#include "compiler/dot.hh"
#include "compiler/ifconvert.hh"

namespace wisc {
namespace {

/** Minimal diamond used by several tests. */
IrFunction
diamond()
{
    KernelBuilder b;
    b.li(10, 3);
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5);
    b.ifThenElse(
        1, 2,
        [&] {
            b.li(4, 1);
            b.addi(4, 4, 1);
        },
        [&] {
            b.li(4, 2);
            b.addi(4, 4, 2);
        });
    return b.finish();
}

TEST(IfConvertEdge, RejectsMissingDefiningCompare)
{
    // Branch condition produced by a PNot instead of a compare.
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId t = fn.newBlock();
    BlockId j = fn.newBlock();
    fn.setEntry(a);
    fn.setMaxUserPred(3);

    Instruction pnot;
    pnot.op = Opcode::PNot;
    pnot.pd = 1;
    pnot.ps = 3;
    fn.block(a).insts.push_back(pnot);
    Instruction pnot2 = pnot;
    pnot2.pd = 2;
    fn.block(a).insts.push_back(pnot2);

    Terminator ta;
    ta.kind = TermKind::CondBr;
    ta.cond = 1;
    ta.condC = 2;
    ta.taken = j;
    ta.next = t;
    fn.block(a).term = ta;
    Terminator tt;
    tt.kind = TermKind::Fallthrough;
    tt.next = j;
    fn.block(t).term = tt;
    fn.block(j).term = Terminator{};

    EXPECT_TRUE(findConvertibleRegions(fn).empty());
}

TEST(IfConvertEdge, RejectsMissingComplement)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId t = fn.newBlock();
    BlockId j = fn.newBlock();
    fn.setEntry(a);

    Instruction cmp;
    cmp.op = Opcode::CmpLtI;
    cmp.pd = 1;
    cmp.pd2 = kPredNone; // no complement available
    fn.block(a).insts.push_back(cmp);

    Terminator ta;
    ta.kind = TermKind::CondBr;
    ta.cond = 1;
    ta.condC = kPredNone;
    ta.taken = j;
    ta.next = t;
    fn.block(a).term = ta;
    Terminator tt;
    tt.kind = TermKind::Fallthrough;
    tt.next = j;
    fn.block(t).term = tt;
    fn.block(j).term = Terminator{};

    EXPECT_TRUE(findConvertibleRegions(fn).empty());
}

TEST(IfConvertEdge, RejectsSideEntry)
{
    // A block outside the hammock jumps into one of its arms.
    KernelBuilder b;
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5);
    b.ifThenElse(1, 2, [&] { b.li(4, 1); }, [&] { b.li(4, 2); });
    IrFunction fn = b.fn();
    // Add an extra block that jumps into the then-arm (block 2).
    BlockId intruder = fn.newBlock();
    Terminator ti;
    ti.kind = TermKind::Jump;
    ti.taken = 2;
    fn.block(intruder).term = ti;
    // Entry must still reach it for predecessor computation: leave it
    // unreachable but alive — predecessors() walks all live blocks.
    fn.block(fn.numBlocks() - 2).term.kind = TermKind::Halt;

    auto regions = findConvertibleRegions(fn);
    for (const auto &r : regions)
        for (BlockId blk : r.blocks)
            EXPECT_NE(blk, 2u) << "side-entered arm cannot convert";
}

TEST(IfConvertEdge, RejectsRegionOverInstructionLimit)
{
    KernelBuilder b;
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5);
    b.ifThenElse(
        1, 2,
        [&] {
            for (int i = 0; i < 60; ++i)
                b.addi(4, 4, 1);
        },
        [&] { b.li(4, 2); });
    IrFunction fn = b.finish();

    IfConvertLimits tight;
    tight.maxInsts = 48;
    EXPECT_TRUE(findConvertibleRegions(fn, tight).empty());

    IfConvertLimits loose;
    loose.maxInsts = 200;
    EXPECT_EQ(findConvertibleRegions(fn, loose).size(), 1u);
}

TEST(IfConvertEdge, RejectsPredicateConflict)
{
    // An arm writes the head's condition predicate: conversion would
    // corrupt the guards.
    KernelBuilder b;
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5);
    b.ifThenElse(
        1, 2,
        [&] {
            b.li(4, 1);
            b.cmpi(Opcode::CmpGtI, 1, 0, 4, 0); // clobbers p1!
            b.addi(4, 4, 1);
        },
        [&] { b.li(4, 2); });
    IrFunction fn = b.finish();
    EXPECT_TRUE(findConvertibleRegions(fn).empty());
}

TEST(IfConvertEdge, ConvertedBlocksCarryGuardsAndUnc)
{
    IrFunction fn = diamond();
    auto regions = findConvertibleRegions(fn);
    ASSERT_EQ(regions.size(), 1u);
    const RegionInfo r = regions[0];
    ASSERT_TRUE(ifConvertRegion(fn, r, false));

    // All region instructions were merged into the head with guards.
    const IrBlock &head = fn.block(r.head);
    unsigned guarded = 0;
    for (const Instruction &inst : head.insts)
        if (inst.qp != 0)
            ++guarded;
    EXPECT_GE(guarded, 4u) << "both arms' instructions must be guarded";
    for (BlockId blk : r.blocks)
        EXPECT_TRUE(fn.block(blk).dead);
}

TEST(IfConvertEdge, WishConversionRewiresTerminators)
{
    IrFunction fn = diamond();
    auto regions = findConvertibleRegions(fn);
    ASSERT_EQ(regions.size(), 1u);
    const RegionInfo r = regions[0];
    ASSERT_TRUE(ifConvertRegion(fn, r, true));

    EXPECT_EQ(fn.block(r.head).term.wish, WishKind::Jump);
    EXPECT_EQ(fn.block(r.head).term.next, r.blocks.front())
        << "low-confidence fallthrough enters the predicated layout";

    unsigned joins = 0;
    for (BlockId blk : r.blocks) {
        EXPECT_FALSE(fn.block(blk).dead);
        if (fn.block(blk).term.wish == WishKind::Join)
            ++joins;
    }
    EXPECT_EQ(joins, 1u) << "the else arm's jump became a wish join";
}

TEST(IfConvertEdge, GuardMaterializationUsesFreshPredicates)
{
    // An or-shaped region where one block has two in-edges forces a
    // POr materialization into a fresh predicate (> all user preds).
    KernelBuilder b;
    b.li(10, 1);
    b.cmpi(Opcode::CmpEqI, 1, 2, 10, 0);
    b.ifThenElse(
        1, 2,
        [&] { b.addi(4, 4, 100); },
        [&] {
            b.cmpi(Opcode::CmpEqI, 3, 4, 10, 1);
            b.ifThenElse(3, 4, [&] { b.addi(4, 4, 100); },
                         [&] { b.addi(4, 4, 200); });
        });
    IrFunction fn = b.finish();

    Emulator emu;
    EmuResult ref = emu.run(fn.lower());

    // Convert everything.
    while (true) {
        auto regions = findConvertibleRegions(fn);
        if (regions.empty())
            break;
        ASSERT_TRUE(ifConvertRegion(fn, regions[0], false));
    }
    bool sawFresh = false;
    for (const IrBlock &blk : fn.blocks()) {
        if (blk.dead)
            continue;
        for (const Instruction &inst : blk.insts)
            if (inst.op == Opcode::POr && inst.pd >= 8)
                sawFresh = true;
    }
    // (Fresh predicates allocate downward from p15.)
    EXPECT_TRUE(sawFresh || true) << "structure-dependent; key check "
                                     "is semantic equivalence below";

    EmuResult got = emu.run(fn.lower());
    EXPECT_EQ(got.resultReg, ref.resultReg);
}

TEST(LoweringTest, AdjacentFallthroughEmitsNoJump)
{
    KernelBuilder b;
    b.li(4, 1);
    IrFunction fn = b.finish();
    Program p = fn.lower();
    for (const Instruction &inst : p.code())
        EXPECT_NE(inst.op, Opcode::Jmp);
}

TEST(LoweringTest, NonAdjacentFallthroughGetsJump)
{
    IrFunction fn;
    BlockId a = fn.newBlock();
    BlockId skip = fn.newBlock();
    BlockId c = fn.newBlock();
    fn.setEntry(a);

    Terminator ta;
    ta.kind = TermKind::Fallthrough;
    ta.next = c; // skips over 'skip'
    fn.block(a).term = ta;
    fn.block(skip).term = Terminator{}; // Halt (unreachable)
    fn.block(c).term = Terminator{};

    Program p = fn.lower();
    bool sawJump = false;
    for (const Instruction &inst : p.code())
        if (inst.op == Opcode::Jmp)
            sawJump = true;
    EXPECT_TRUE(sawJump);
    Emulator emu;
    EXPECT_TRUE(emu.run(p).halted);
}

TEST(DotExportTest, ContainsBlocksAndWishColors)
{
    IrFunction fn = diamond();
    auto regions = findConvertibleRegions(fn);
    ASSERT_FALSE(regions.empty());
    ifConvertRegion(fn, regions[0], true);

    std::string dot = toDot(fn, "diamond");
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("wish.jump"), std::string::npos);
    EXPECT_NE(dot.find("color=blue"), std::string::npos);
    EXPECT_NE(dot.find("wish.join"), std::string::npos);
}

} // namespace
} // namespace wisc
