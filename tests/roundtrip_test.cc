/**
 * @file
 * Round-trip and consistency properties across the toolchain surface:
 * every compiled workload binary disassembles without error and its
 * listing re-mentions every label; lowering is deterministic; programs
 * survive data replacement (setData) unchanged in code.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

TEST(RoundTripTest, ListingsCoverEveryInstruction)
{
    CompiledWorkload w = compileWorkload("crafty");
    for (BinaryVariant v : kAllVariants) {
        const Program &p = w.variants.at(v).program;
        std::string listing = p.listing();
        // One numbered line per instruction.
        std::size_t lines = 0;
        for (char c : listing)
            if (c == '\n')
                ++lines;
        EXPECT_GE(lines, p.size()) << variantName(v);
        // Every label appears.
        for (const auto &kv : p.labels())
            EXPECT_NE(listing.find(kv.first), std::string::npos)
                << variantName(v) << " label " << kv.first;
    }
}

TEST(RoundTripTest, LoweringIsDeterministic)
{
    IrFunction f1 = buildWorkloadFn("parser");
    IrFunction f2 = buildWorkloadFn("parser");
    Program p1 = f1.lower();
    Program p2 = f2.lower();
    ASSERT_EQ(p1.size(), p2.size());
    for (std::uint32_t i = 0; i < p1.size(); ++i) {
        EXPECT_EQ(disassemble(p1.at(i)), disassemble(p2.at(i)))
            << "instruction " << i;
    }
}

TEST(RoundTripTest, SetDataLeavesCodeUntouched)
{
    CompiledWorkload w = compileWorkload("gzip");
    Program a = programFor(w, BinaryVariant::Normal, InputSet::A);
    Program c = programFor(w, BinaryVariant::Normal, InputSet::C);
    ASSERT_EQ(a.size(), c.size());
    for (std::uint32_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(disassemble(a.at(i)), disassemble(c.at(i)));
    EXPECT_NE(a.data().size() + c.data().size(), 0u);
}

TEST(RoundTripTest, AssembleOfSimpleListingStyleSource)
{
    // The assembler accepts what the docs advertise; run it end to end.
    Program p = assemble(R"(
        .entry main
        helper:
        addi r4, r4, 5
        ret r2
        main:
        li r4, 0
        call r2, helper
        call r2, helper
        halt
    )");
    Emulator emu;
    EmuResult r = emu.run(p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 10);
}

TEST(RoundTripTest, DisassembleEveryWorkloadInstruction)
{
    for (const std::string &name : workloadNames()) {
        IrFunction fn = buildWorkloadFn(name);
        Program p = fn.lower();
        for (const Instruction &inst : p.code()) {
            std::string d = disassemble(inst);
            EXPECT_FALSE(d.empty());
            EXPECT_EQ(d.find('?'), std::string::npos)
                << name << ": " << d;
        }
    }
}

} // namespace
} // namespace wisc
