/**
 * @file
 * Property-based tests.
 *
 *  - Random structured kernels (nested hammocks + loops over random
 *    data) compile through all five variants and remain architecturally
 *    equivalent — the central compiler-correctness property.
 *  - The timing core's final state matches the functional emulator for
 *    every variant of every random kernel (the execute-at-fetch /
 *    undo-log machinery is exercised under random flush patterns).
 *  - The event-driven wakeup scheduler and the poll-based reference
 *    scheduler (SimParams::pollScheduler) produce identical simulations
 *    for every random kernel, across binary variants, window sizes, and
 *    predication mechanisms.
 *  - Predicated-off instructions are architectural NOPs for every
 *    opcode.
 *  - The undo log restores arbitrary random state mutations exactly.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "arch/executor.hh"
#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/driver.hh"
#include "uarch/core.hh"

namespace wisc {
namespace {

/** Generate a random structured kernel driven by the seed. */
IrFunction
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelBuilder b;

    // Random data block the kernel reads.
    std::vector<Word> data(256);
    for (Word &w : data)
        w = rng.range(-1000, 1000);
    b.data(0x20000, data);

    b.li(12, 0x20000);
    b.li(10, 0);
    b.li(4, 0);
    b.li(11, static_cast<Word>(60 + rng.below(80))); // outer trips

    // Emit a few random straight-line ops on scratch regs r20-r27.
    auto randomOps = [&](int count) {
        for (int i = 0; i < count; ++i) {
            RegIdx rd = static_cast<RegIdx>(20 + rng.below(8));
            RegIdx ra = static_cast<RegIdx>(20 + rng.below(8));
            switch (rng.below(6)) {
              case 0: b.add(rd, ra, 4); break;
              case 1: b.xori(rd, ra, static_cast<Word>(rng.below(255)));
                      break;
              case 2: b.muli(rd, ra, static_cast<Word>(1 + rng.below(7)));
                      break;
              case 3: b.shri(rd, ra, static_cast<Word>(rng.below(5)));
                      break;
              case 4: b.sub(rd, 4, ra); break;
              default: b.addi(rd, ra, static_cast<Word>(rng.below(11)));
                       break;
            }
        }
        b.add(4, 4, static_cast<RegIdx>(20 + rng.below(8)));
    };

    b.doWhileLoop(7, [&] {
        // Load a data-dependent value.
        b.andi(30, 10, 255);
        b.shli(30, 30, 3);
        b.add(30, 30, 12);
        b.ld(20, 30, 0);

        // Random nested control flow (depth <= 2).
        int shape = static_cast<int>(rng.below(4));
        b.cmpi(Opcode::CmpGtI, 1, 2, 20,
               static_cast<Word>(rng.range(-500, 500)));
        if (shape == 0) {
            b.ifThen(1, 2, [&] { randomOps(3 + rng.below(6)); });
        } else if (shape == 1) {
            b.ifThenElse(1, 2, [&] { randomOps(3 + rng.below(6)); },
                         [&] { randomOps(3 + rng.below(6)); });
        } else if (shape == 2) {
            b.ifThenElse(
                1, 2, [&] { randomOps(2 + rng.below(4)); },
                [&] {
                    b.cmpi(Opcode::CmpLtI, 3, 5, 20, 0);
                    b.ifThenElse(3, 5,
                                 [&] { randomOps(2 + rng.below(4)); },
                                 [&] { randomOps(2 + rng.below(4)); });
                });
        } else {
            // A short data-dependent inner loop (wish-loop candidate).
            b.andi(31, 20, 7);
            b.li(32, 0);
            b.doWhileLoop(6, [&] {
                b.add(4, 4, 32);
                b.addi(32, 32, 1);
                b.cmp(Opcode::CmpLe, 6, 0, 32, 31);
            });
        }

        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 7, 0, 10, 11);
    });
    return b.finish();
}

class RandomKernel : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernel,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST_P(RandomKernel, VariantsEquivalentFunctionally)
{
    IrFunction fn = randomKernel(GetParam());
    auto variants = compileAllVariants(fn);
    EXPECT_EQ(verifyVariantEquivalence(variants), 5u);
}

TEST_P(RandomKernel, TimingCoreMatchesEmulator)
{
    IrFunction fn = randomKernel(GetParam());
    auto variants = compileAllVariants(fn);

    Emulator emu;
    EmuResult ref =
        emu.run(variants.at(BinaryVariant::Normal).program);

    SimParams params; // checkFinalState panics internally on divergence
    for (BinaryVariant v : kAllVariants) {
        StatSet stats;
        SimResult r = simulate(variants.at(v).program, params, stats);
        ASSERT_TRUE(r.halted) << variantName(v);
        EXPECT_EQ(r.resultReg, ref.resultReg) << variantName(v);
        EXPECT_EQ(r.memFingerprint, ref.memFingerprint) << variantName(v);
    }
}

TEST_P(RandomKernel, SelectUopMachineMatchesToo)
{
    IrFunction fn = randomKernel(GetParam());
    auto variants = compileAllVariants(fn);

    SimParams params;
    params.predMech = PredMechanism::SelectUop;
    StatSet stats;
    SimResult r = simulate(
        variants.at(BinaryVariant::WishJumpJoinLoop).program, params,
        stats);
    EXPECT_TRUE(r.halted);
}

TEST_P(RandomKernel, EventSchedulerMatchesPollReference)
{
    IrFunction fn = randomKernel(GetParam());
    auto variants = compileAllVariants(fn);

    // The poll run additionally asserts, every cycle, that the wakeup
    // chains agree with the rescanned dependence state (see
    // Core::stageIssuePoll), so this compares the schedulers' outputs
    // *and* their intermediate states.
    struct Config
    {
        BinaryVariant variant;
        unsigned rob;
        PredMechanism mech;
    };
    const Config configs[] = {
        {BinaryVariant::Normal, 512, PredMechanism::CStyle},
        {BinaryVariant::BaseMax, 64, PredMechanism::CStyle},
        {BinaryVariant::WishJumpJoinLoop, 64, PredMechanism::CStyle},
        {BinaryVariant::WishJumpJoinLoop, 512, PredMechanism::SelectUop},
    };
    for (const Config &c : configs) {
        SimParams event;
        event.robSize = c.rob;
        event.iqSize = c.rob / 4;
        event.lsqSize = c.rob / 2;
        event.predMech = c.mech;
        SimParams poll = event;
        poll.pollScheduler = true;

        const Program &prog = variants.at(c.variant).program;
        StatSet evStats, pollStats;
        SimResult ev = simulate(prog, event, evStats);
        SimResult ref = simulate(prog, poll, pollStats);
        const std::string what = std::string(variantName(c.variant)) +
                                 " rob=" + std::to_string(c.rob);
        EXPECT_EQ(ev.cycles, ref.cycles) << what;
        EXPECT_EQ(ev.retiredUops, ref.retiredUops) << what;
        EXPECT_EQ(ev.memFingerprint, ref.memFingerprint) << what;
    }
}

// --- executor predication property over every opcode ------------------

class PredicationNullifies
    : public ::testing::TestWithParam<unsigned>
{
};

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, PredicationNullifies,
    ::testing::Range(0u, static_cast<unsigned>(Opcode::NumOpcodes)));

TEST_P(PredicationNullifies, FalseGuardLeavesStateUntouched)
{
    Opcode op = static_cast<Opcode>(GetParam());

    Instruction inst;
    inst.op = op;
    inst.qp = 1; // guard predicate (FALSE below)
    inst.rd = 5;
    inst.rs1 = 6;
    inst.rs2 = 7;
    inst.pd = (op == Opcode::PSet || inst.writesPred()) ? 2 : kPredNone;
    inst.pd2 = kPredNone;
    inst.ps = 3;
    inst.ps2 = 4;
    inst.imm = 9;
    if (op == Opcode::Br || op == Opcode::Jmp || op == Opcode::Call)
        inst.target = 1;

    ArchState s;
    s.writePred(1, false);
    s.writeReg(6, 0x30000);
    s.writeReg(7, 55);
    s.writeReg(5, 42);
    s.writePred(2, true);
    s.mem().writeWord(0x30009, 1234);

    std::uint64_t memBefore = s.mem().fingerprint();
    StepResult r = executeInst(inst, 0, 10, s, nullptr);

    EXPECT_FALSE(r.qpTrue);
    EXPECT_FALSE(r.taken);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.nextIndex, 1u) << "fall through";
    EXPECT_EQ(s.readReg(5), 42) << "no register write";
    EXPECT_TRUE(s.readPred(2)) << "no predicate write (non-unc)";
    EXPECT_EQ(s.mem().fingerprint(), memBefore) << "no memory write";
}

// --- undo log random property ------------------------------------------

class UndoProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, UndoProperty,
                         ::testing::Values(3, 17, 99, 12345));

TEST_P(UndoProperty, RandomMutationsRollBackExactly)
{
    Rng rng(GetParam());
    ArchState state;
    UndoLog log;

    // Baseline state.
    for (unsigned r = 1; r < kNumIntRegs; ++r)
        state.writeReg(static_cast<RegIdx>(r), rng.range(-5000, 5000));
    for (unsigned p = 1; p < kNumPredRegs; ++p)
        state.writePred(static_cast<PredIdx>(p), rng.chance(0.5));
    for (int i = 0; i < 32; ++i)
        state.mem().writeWord(0x40000 + 8 * rng.below(64),
                              static_cast<UWord>(rng.next()));

    std::uint64_t fpBefore = state.mem().fingerprint();
    Word regsBefore[kNumIntRegs];
    bool predsBefore[kNumPredRegs];
    for (unsigned r = 0; r < kNumIntRegs; ++r)
        regsBefore[r] = state.readReg(static_cast<RegIdx>(r));
    for (unsigned p = 0; p < kNumPredRegs; ++p)
        predsBefore[p] = state.readPred(static_cast<PredIdx>(p));

    auto mark = log.mark();
    for (int i = 0; i < 200; ++i) {
        switch (rng.below(3)) {
          case 0: {
            RegIdx r = static_cast<RegIdx>(1 + rng.below(63));
            log.recordReg(r, state.readReg(r));
            state.writeReg(r, rng.range(-9999, 9999));
            break;
          }
          case 1: {
            PredIdx p = static_cast<PredIdx>(1 + rng.below(15));
            log.recordPred(p, state.readPred(p));
            state.writePred(p, rng.chance(0.5));
            break;
          }
          default: {
            Addr a = 0x40000 + 8 * rng.below(64);
            log.recordMem(a, 8, state.mem().readWord(a));
            state.mem().writeWord(a, static_cast<UWord>(rng.next()));
            break;
          }
        }
    }

    log.rollbackTo(mark, state);
    EXPECT_EQ(state.mem().fingerprint(), fpBefore);
    for (unsigned r = 0; r < kNumIntRegs; ++r)
        EXPECT_EQ(state.readReg(static_cast<RegIdx>(r)), regsBefore[r]);
    for (unsigned p = 0; p < kNumPredRegs; ++p)
        EXPECT_EQ(state.readPred(static_cast<PredIdx>(p)),
                  predsBefore[p]);
}

} // namespace
} // namespace wisc
